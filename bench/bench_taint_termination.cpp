/**
 * @file
 * TAINTCHECK precision study (paper Sections 4.4 / 6.2).
 *
 * Quantifies the paper's core precision statement for TAINTCHECK — the
 * analysis "sacrifices precision only due to the lack of a relative
 * ordering among recent events" — on a racy shared-variable workload:
 *
 *  - false negatives are zero under both Check termination conditions
 *    (Theorem 6.2), at every epoch size;
 *  - false positives rise with epoch size while the window is smaller
 *    than the workload's sharing correlation length (a barrier round),
 *    then plateau: beyond that, every racy inheritance is already
 *    potentially concurrent, and the flags are exactly the uses that
 *    *some* valid ordering taints — unavoidable without ordering info;
 *  - the sequential-consistency termination condition prunes
 *    program-order-impossible chains (see taintcheck_demo and the unit
 *    tests for the Figure 2 pattern); at workload scale its totals
 *    coincide with the relaxed variant's because the two-phase roots
 *    required for soundness (Lemma 6.3) are termination-agnostic.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "butterfly/window.hpp"
#include "lifeguards/taintcheck.hpp"
#include "memmodel/interleaver.hpp"

namespace bfly {
namespace {

struct TaintResult
{
    std::size_t uses = 0;
    std::size_t truePos = 0;
    std::size_t fpSc = 0;
    std::size_t fpRelaxed = 0;
    std::size_t fn = 0;
};

TaintResult
runOne(std::size_t epoch, std::uint64_t seed)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 40000;
    wcfg.seed = seed;
    const Workload w = makeTaintMix(wcfg);

    Rng rng(seed * 101 + 9);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, epoch * wcfg.numThreads);

    TaintCheckConfig cfg;
    cfg.granularity = 8;

    TaintCheckOracle oracle(cfg);
    oracle.runOnTrace(trace);

    TaintResult result;
    for (const auto &tt : trace.threads)
        for (const Event &e : tt.events)
            result.uses += e.kind == EventKind::Use;
    result.truePos = oracle.errors().size();

    auto fp_of = [&](TaintTermination term, std::size_t *fn) {
        ButterflyTaintCheck butterfly(layout, cfg, term);
        WindowSchedule().run(layout, butterfly);
        std::size_t fp = 0;
        for (const auto &rec : butterfly.errors().records()) {
            if (!oracle.errors().flagged(rec.tid, rec.index))
                ++fp;
        }
        if (fn) {
            for (const auto &rec : oracle.errors().records()) {
                if (!butterfly.errors().flagged(rec.tid, rec.index))
                    ++*fn;
            }
        }
        return fp;
    };

    result.fpSc =
        fp_of(TaintTermination::SequentialConsistency, &result.fn);
    result.fpRelaxed = fp_of(TaintTermination::Relaxed, &result.fn);
    return result;
}

constexpr std::size_t kEpochs[] = {8, 16, 32, 64, 192, 768};

void
BM_TaintPrecision(benchmark::State &state)
{
    const std::size_t epoch = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const TaintResult r = runOne(epoch, 1);
        state.counters["fp_sc"] = static_cast<double>(r.fpSc);
        state.counters["fp_relaxed"] =
            static_cast<double>(r.fpRelaxed);
        state.counters["false_neg"] = static_cast<double>(r.fn);
    }
}
BENCHMARK(BM_TaintPrecision)
    ->Arg(8)
    ->Arg(64)
    ->Arg(768)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printSummary()
{
    std::printf("\n=== TAINTCHECK precision vs epoch size ===\n");
    std::printf("%8s %8s %10s %10s %14s %8s\n", "h", "uses",
                "oracle-TP", "FP (SC)", "FP (relaxed)", "FN");
    for (const std::size_t epoch : kEpochs) {
        const TaintResult r = runOne(epoch, 1);
        std::printf("%8zu %8zu %10zu %10zu %14zu %8zu\n", epoch,
                    r.uses, r.truePos, r.fpSc, r.fpRelaxed, r.fn);
    }
    std::printf(
        "FP grows with the epoch until the window covers the "
        "workload's sharing\ncorrelation length, then plateaus at the "
        "set of uses some valid ordering\ntaints — the precision cost "
        "of having no inter-thread ordering, and nothing\nmore. False "
        "negatives are zero everywhere.\n\n");
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printSummary();
    return 0;
}
