/**
 * @file
 * Ablation A4: projected benefit of first-pass caching (Section 7.2's
 * future work).
 *
 * The paper attributes much of the prototype's per-event overhead to the
 * ~7-10 instructions that record each monitored load/store for the
 * second pass, and suggests "caching parts of our first-pass analysis
 * and reusing it when the same monitored code is revisited". This
 * ablation prices that optimization: a repeated (filter-hit) access
 * reuses its cached record instead of rebuilding it. Workloads with
 * within-epoch reuse (LU's blocked updates, FMM's cell re-evaluations)
 * benefit most; streaming workloads (FFT) barely change — recording was
 * never their repeated work.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace bfly {
namespace {

const SessionResult &
runWith(WorkloadFactory factory, unsigned threads, bool caching)
{
    static std::map<std::tuple<WorkloadFactory, unsigned, bool>,
                    SessionResult>
        cache;
    const auto key = std::make_tuple(factory, threads, caching);
    auto it = cache.find(key);
    if (it == cache.end()) {
        SessionConfig cfg =
            bench::paperSession(factory, threads, bench::kLargeEpoch);
        cfg.costs.firstPassCaching = caching;
        it = cache.emplace(key, runSession(cfg)).first;
    }
    return it->second;
}

void
BM_AblationCaching(benchmark::State &state, const std::string &name,
                   WorkloadFactory factory, bool caching)
{
    for (auto _ : state) {
        const SessionResult r = runWith(factory, 8, caching);
        state.counters["butterfly"] = r.perf.butterfly.normalized;
    }
}

void
printSummary()
{
    std::printf("\n=== Ablation A4: first-pass caching (projected, "
                "8 threads, h=%zu) ===\n",
                bench::kLargeEpoch);
    std::printf("%-14s %12s %12s %10s\n", "benchmark", "prototype",
                "with cache", "speedup");
    for (const auto &[name, factory] : paperWorkloads()) {
        const SessionResult base = runWith(factory, 8, false);
        const SessionResult cached = runWith(factory, 8, true);
        std::printf("%-14s %12.2f %12.2f %9.2fx\n", name.c_str(),
                    base.perf.butterfly.normalized,
                    cached.perf.butterfly.normalized,
                    base.perf.butterfly.normalized /
                        cached.perf.butterfly.normalized);
    }
    std::printf("(the paper's \"we believe this overhead is not "
                "fundamental\" claim, priced)\n\n");
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;
    for (const auto &[name, factory] : paperWorkloads()) {
        for (bool caching : {false, true}) {
            benchmark::RegisterBenchmark(
                ("ablation_caching/" + name +
                 (caching ? "/cached" : "/prototype"))
                    .c_str(),
                [name = name, factory = factory,
                 caching](benchmark::State &s) {
                    BM_AblationCaching(s, name, factory, caching);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printSummary();
    return 0;
}
