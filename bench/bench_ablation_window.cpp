/**
 * @file
 * Ablation A2: the heartbeat/epoch mechanism is load-bearing.
 *
 * Butterfly analysis is only sound if everything in epoch l is globally
 * visible before anything in epoch l+2 executes — the property the
 * heartbeat guarantees by construction (Section 4.1). The paper's
 * footnote 4 points at the hazard this ablation demonstrates: workloads
 * are not balanced, so "in the worst case, one thread will execute h*n
 * instructions while the rest will execute 0".
 *
 * We build exactly that workload: a fast producer thread that runs 3x as
 * many instructions per barrier round as its consumer sibling, and frees
 * a shared block the consumer reads moments later (a real use-after-free
 * race). Two epoch mechanisms are compared on the same executions:
 *
 *  - heartbeat slicing (time-like, by global progress): the free and the
 *    racing read land in adjacent epochs; the butterfly lifeguard flags
 *    the race. Zero false negatives, always.
 *  - naive per-thread instruction-count slicing ("cut every h of *my*
 *    instructions", no delivery guarantee): the fast thread's free lands
 *    many nominal epochs *after* the slow thread's simultaneous read, so
 *    the analysis concludes the read happened safely first — a false
 *    negative.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "butterfly/window.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "memmodel/interleaver.hpp"

namespace bfly {
namespace {

struct WindowResult
{
    std::size_t oracleErrors = 0;
    std::size_t fnHeartbeat = 0;
    std::size_t fnNaive = 0;
};

WindowResult
runOne(std::uint64_t seed)
{
    // Unbalanced producer/consumer rounds (footnote 4's skew): thread 0
    // emits 300 events per barrier round, thread 1 only 100.
    constexpr std::size_t kRounds = 12;
    constexpr std::size_t kFastPerRound = 300;
    constexpr std::size_t kSlowPerRound = 100;
    constexpr Addr kBlock = 0x2000;

    std::vector<std::vector<Event>> programs(2);
    programs[0].push_back(Event::alloc(kBlock, 64));
    programs[1].push_back(Event::nop());
    programs[0].push_back(Event::barrier());
    programs[1].push_back(Event::barrier());

    for (std::size_t r = 0; r < kRounds; ++r) {
        if (r + 1 == kRounds) {
            // The fast thread frees the block at the START of its last
            // round; the slow thread's read comes at the END of its own
            // (much shorter) round — so in real time the free almost
            // surely precedes the read: a genuine use-after-free.
            programs[0].push_back(Event::freeOf(kBlock, 64));
        } else {
            programs[0].push_back(Event::nop());
        }
        for (std::size_t i = 0; i + 1 < kFastPerRound; ++i)
            programs[0].push_back(Event::write(0x20000 + 8 * (i % 64), 8)); // unmonitored filler
        for (std::size_t i = 0; i + 1 < kSlowPerRound; ++i)
            programs[1].push_back(Event::nop());
        programs[1].push_back(Event::read(kBlock, 8));
        programs[0].push_back(Event::barrier());
        programs[1].push_back(Event::barrier());
    }
    // No further activity on the block: the racy last-round read is the
    // only error, so false-negative accounting cannot be masked by a
    // different flagged event on the same address.

    Rng rng(seed * 97 + 3);
    InterleaveConfig icfg;
    Trace trace = interleave(programs, icfg, rng);

    AddrCheckConfig acfg;
    acfg.heapBase = 0x1000;
    acfg.heapLimit = 0x10000;

    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);

    // Event-exact false negatives: the racy read itself must be
    // flagged. (The key-overlap relaxation of compareToOracle would let
    // an unrelated warm-up false positive on the same block mask the
    // miss; both mechanisms are measured with the same strict rule.)
    auto fn_with = [&](const EpochLayout &layout) {
        ButterflyAddrCheck butterfly(layout, acfg);
        WindowSchedule().run(layout, butterfly);
        std::size_t missed = 0;
        for (const ErrorRecord &rec : oracle.errors().records()) {
            if (!butterfly.errors().flagged(rec.tid, rec.index))
                ++missed;
        }
        return missed;
    };

    WindowResult result;
    result.oracleErrors = oracle.errors().size();
    result.fnHeartbeat =
        fn_with(EpochLayout::byGlobalSeq(trace, 100 * 2));
    result.fnNaive = fn_with(EpochLayout::uniform(trace, 100));
    return result;
}

void
BM_AblationWindow(benchmark::State &state)
{
    const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        const WindowResult r = runOne(seed);
        state.counters["oracle_errors"] =
            static_cast<double>(r.oracleErrors);
        state.counters["fn_heartbeat_epochs"] =
            static_cast<double>(r.fnHeartbeat);
        state.counters["fn_naive_epochs"] =
            static_cast<double>(r.fnNaive);
    }
}
BENCHMARK(BM_AblationWindow)->DenseRange(1, 10)->Iterations(1);

void
printSummary()
{
    std::printf("\n=== Ablation A2: heartbeat epochs vs naive "
                "per-thread slicing ===\n");
    std::printf("%4s  %13s %20s %18s\n", "seed", "oracle-errors",
                "FN heartbeat-epochs", "FN naive-slicing");
    std::size_t naive_total = 0, hb_total = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const WindowResult r = runOne(seed);
        std::printf("%4llu  %13zu %20zu %18zu\n",
                    static_cast<unsigned long long>(seed),
                    r.oracleErrors, r.fnHeartbeat, r.fnNaive);
        hb_total += r.fnHeartbeat;
        naive_total += r.fnNaive;
    }
    std::printf("heartbeat slicing: %zu false negatives (provably 0); "
                "naive per-thread slicing: %zu missed errors\n\n",
                hb_total, naive_total);
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printSummary();
    return 0;
}
