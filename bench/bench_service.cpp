/**
 * @file
 * Monitoring-service throughput: sessions x chunk-size sweep plus a
 * reactor-shard scaling group over a loopback Unix-domain socket.
 *
 * Each configuration starts one MonitorServer, then N client threads
 * each replay the same heartbeat-marked synthetic trace through full
 * sessions (open -> chunked log stream -> TraceEnd -> report). Reported
 * per config: wall seconds, end-to-end monitored events/sec across all
 * sessions, mean session latency, and Busy sheds survived. Every remote
 * report is checked against the in-process reference — a divergence
 * fails the binary, so the bench doubles as a conformance smoke.
 *
 * Writes BENCH_bench_service.json (directory overridable with
 * BFLY_BENCH_JSON_DIR). `--quick` shrinks the sweep for CI smoke;
 * `--batch` turns on the server-side columnar pass-1 kernels
 * (MuxConfig::batchMode) while the reference stays scalar, so the
 * conformance check also proves batch-mode bit-identity end to end.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "trace/log_codec.hpp"

namespace bfly {
namespace {

using service::MonitorClient;
using service::MonitorServer;
using service::RemoteReport;
using service::RunResult;
using service::ServerConfig;
using service::SessionSpec;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Heartbeat-marked synthetic trace over a private heap window: a mix
 *  of writes and unallocated reads so ADDRCHECK does real work. */
Trace
makeMarkedTrace(unsigned threads, unsigned epochs, unsigned per_epoch,
                Addr heap_base)
{
    Trace trace;
    trace.threads.resize(threads);
    for (unsigned t = 0; t < threads; ++t) {
        trace.threads[t].tid = t;
        std::vector<Event> &events = trace.threads[t].events;
        const Addr base = heap_base + t * 0x10000;
        events.push_back(Event::alloc(base, 4096));
        for (unsigned l = 0; l < epochs; ++l) {
            if (l > 0)
                events.push_back(Event::heartbeat());
            for (unsigned i = 0; i < per_epoch; ++i) {
                const Addr addr = base + 8 * (i % 512);
                if (i % 4 == 3)
                    events.push_back(Event::read(addr + 0x8000, 8));
                else if (i % 2 == 0)
                    events.push_back(Event::write(addr, 8));
                else
                    events.push_back(Event::read(addr, 8));
            }
        }
    }
    return trace;
}

/**
 * Bursty variant of the marked trace: long runs of tiny epochs broken
 * by an occasional fat one. Pathological for a fixed fine h (per-epoch
 * scheduling overhead dominates) and exactly what the adaptive
 * size-target policy is for.
 */
Trace
makeBurstyTrace(unsigned threads, unsigned epochs, Addr heap_base)
{
    Trace trace;
    trace.threads.resize(threads);
    for (unsigned t = 0; t < threads; ++t) {
        trace.threads[t].tid = t;
        std::vector<Event> &events = trace.threads[t].events;
        const Addr base = heap_base + t * 0x10000;
        events.push_back(Event::alloc(base, 4096));
        for (unsigned l = 0; l < epochs; ++l) {
            if (l > 0)
                events.push_back(Event::heartbeat());
            // Tiny epochs of irregular size with a fat one every 16th:
            // the irregularity keeps the size-target policy from
            // settling into one fixed merge width.
            const unsigned burst =
                (l % 16 == 15) ? 256 : (l % 3 == 0 ? 24 : 8);
            for (unsigned i = 0; i < burst; ++i) {
                const Addr addr = base + 8 * (i % 512);
                if (i % 4 == 3)
                    events.push_back(Event::read(addr + 0x8000, 8));
                else if (i % 2 == 0)
                    events.push_back(Event::write(addr, 8));
                else
                    events.push_back(Event::read(addr, 8));
            }
        }
    }
    return trace;
}

/** The same event stream under a statically coarser h: keep only every
 *  @p keep_every-th heartbeat marker (a platform emitting heartbeats
 *  that much less often). */
Trace
withCoarserMarkers(const Trace &marked, unsigned keep_every)
{
    Trace out;
    out.threads.resize(marked.numThreads());
    for (std::size_t t = 0; t < marked.numThreads(); ++t) {
        out.threads[t].tid = marked.threads[t].tid;
        unsigned seen = 0;
        for (const Event &e : marked.threads[t].events) {
            if (e.kind == EventKind::Heartbeat) {
                if (++seen % keep_every != 0)
                    continue;
            }
            out.threads[t].events.push_back(e);
        }
    }
    return out;
}

struct SweepResult
{
    std::string mode = "static"; ///< static | fine | coarse | adaptive
    std::size_t sessions = 0;
    std::size_t chunkBytes = 0;
    std::size_t shards = 1;
    std::size_t traces = 0;
    std::uint64_t events = 0;
    std::uint64_t busyRetries = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t failures = 0;
    std::uint64_t sheds = 0;    ///< Overload rejections (adaptive only)
    std::uint64_t hChanges = 0; ///< epoch-width changes observed
    double wallSecs = 0;
    double meanLatencyMs = 0;
    double
    eventsPerSec() const
    {
        return wallSecs > 0 ? static_cast<double>(events) / wallSecs
                            : 0.0;
    }
};

SweepResult
benchConfig(std::size_t sessions, std::size_t chunk_bytes,
            std::size_t traces_per_session, const Trace &marked,
            const SessionSpec &spec, const RemoteReport &reference,
            bool batch, std::size_t shards = 1,
            std::size_t adaptive_target_events = 0)
{
    ServerConfig scfg;
    scfg.unixPath = "/tmp/bfly-bench-" + std::to_string(::getpid()) +
                    "-" + std::to_string(sessions) + "-" +
                    std::to_string(chunk_bytes) + "-" +
                    std::to_string(shards) +
                    (adaptive_target_events ? "-a" : "") + ".sock";
    // Server-side batched kernels; the reference report stays scalar,
    // so the conformance check doubles as a batch bit-identity check.
    scfg.mux.batchMode = batch;
    scfg.shards = shards;
    if (adaptive_target_events > 0) {
        scfg.mux.adaptive = true;
        scfg.mux.controller.targetEventsPerEpoch = adaptive_target_events;
    }
    MonitorServer server(scfg);
    if (!server.start()) {
        std::fprintf(stderr, "bench_service: bind failed\n");
        std::exit(1);
    }

    SweepResult r;
    r.sessions = sessions;
    r.chunkBytes = chunk_bytes;
    r.shards = shards;
    std::atomic<std::uint64_t> busy{0}, mismatches{0}, failures{0};
    std::atomic<std::uint64_t> latencyUs{0}, sheds{0}, hChanges{0};

    // Adaptive runs verify against the realized slicing the server
    // advertised. The deterministic size-target policy picks the same
    // spans for every session over the same trace, so one cached
    // reference per distinct span vector covers the whole sweep.
    std::mutex refMutex;
    std::map<std::vector<std::uint32_t>, RemoteReport> refBySpans;
    auto referenceFor =
        [&](const std::vector<std::uint32_t> &spans) -> const RemoteReport & {
        if (spans.empty())
            return reference;
        std::lock_guard<std::mutex> lock(refMutex);
        auto it = refBySpans.find(spans);
        if (it == refBySpans.end())
            it = refBySpans
                     .emplace(spans,
                              service::analyzeReference(
                                  spec, marked,
                                  EpochLayout::coalescedFromHeartbeats(
                                      marked, spans)))
                     .first;
        return it->second;
    };

    if (adaptive_target_events > 0) {
        // One untimed warmup session: populates the span-keyed
        // reference cache so the timed window measures the service,
        // not the checker.
        service::ClientConfig ccfg;
        ccfg.chunkBytes = chunk_bytes;
        MonitorClient warm(ccfg);
        if (warm.connectUnix(scfg.unixPath)) {
            const RunResult res = warm.run(spec, marked);
            if (res.ok)
                (void)referenceFor(res.epochSpans);
        }
    }

    const double t0 = now();
    std::vector<std::thread> workers;
    for (std::size_t s = 0; s < sessions; ++s) {
        workers.emplace_back([&] {
            for (std::size_t i = 0; i < traces_per_session; ++i) {
                service::ClientConfig ccfg;
                ccfg.chunkBytes = chunk_bytes;
                MonitorClient client(ccfg);
                if (!client.connectUnix(scfg.unixPath)) {
                    failures.fetch_add(1);
                    continue;
                }
                const double s0 = now();
                const RunResult remote = client.run(spec, marked);
                latencyUs.fetch_add(
                    static_cast<std::uint64_t>((now() - s0) * 1e6));
                if (!remote.ok) {
                    if (remote.overloaded)
                        sheds.fetch_add(1);
                    else
                        failures.fetch_add(1);
                } else if (!remote.report.identical(
                               referenceFor(remote.epochSpans)))
                    mismatches.fetch_add(1);
                busy.fetch_add(remote.busyRetries);
                hChanges.fetch_add(remote.hChanges());
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
    r.wallSecs = now() - t0;
    server.stop();

    r.traces = sessions * traces_per_session;
    r.events = static_cast<std::uint64_t>(marked.instructionCount()) *
               r.traces;
    r.busyRetries = busy.load();
    r.mismatches = mismatches.load();
    r.failures = failures.load();
    r.sheds = sheds.load();
    r.hChanges = hChanges.load();
    r.meanLatencyMs = r.traces
                          ? static_cast<double>(latencyUs.load()) / 1000.0 /
                                static_cast<double>(r.traces)
                          : 0.0;
    return r;
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;

    bool quick = false;
    bool batch = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--batch") == 0)
            batch = true;
    }

    const Addr heap = 0x1000000;
    const Trace marked = makeMarkedTrace(4, quick ? 8 : 24,
                                         quick ? 100 : 400, heap);
    SessionSpec spec;
    spec.lifeguard = 0; // ADDRCHECK
    spec.numThreads = static_cast<std::uint32_t>(marked.numThreads());
    spec.granularity = 8;
    spec.heapBase = heap;
    spec.heapLimit = heap + 0x1000000;
    const service::RemoteReport reference = service::analyzeReference(
        spec, marked, EpochLayout::fromHeartbeats(marked));

    const std::size_t traces_per_session = quick ? 2 : 8;
    std::vector<std::size_t> session_counts =
        quick ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 4, 8};
    std::vector<std::size_t> chunk_sizes =
        quick ? std::vector<std::size_t>{64 * 1024}
              : std::vector<std::size_t>{4 * 1024, 64 * 1024};

    std::printf("%-22s %10s %12s %12s %8s\n", "config", "wall_s",
                "events/s", "latency_ms", "busy");
    std::vector<SweepResult> results;
    bool clean = true;
    for (std::size_t sessions : session_counts) {
        for (std::size_t chunk : chunk_sizes) {
            const SweepResult r = benchConfig(
                sessions, chunk, traces_per_session, marked, spec,
                reference, batch);
            results.push_back(r);
            std::printf("%-22s %10.3f %12.0f %12.3f %8llu%s\n",
                        ("s" + std::to_string(sessions) + "_c" +
                         std::to_string(chunk))
                            .c_str(),
                        r.wallSecs, r.eventsPerSec(), r.meanLatencyMs,
                        static_cast<unsigned long long>(r.busyRetries),
                        r.mismatches + r.failures
                            ? "  CONFORMANCE FAIL"
                            : "");
            if (r.mismatches + r.failures)
                clean = false;
        }
    }

    // Shard-scaling group: same load, varying reactor count. On a
    // multi-core runner 2 shards should beat 1; on a single hardware
    // thread the useful assertion is "not slower" — the ratio lands in
    // the JSON so CI can hold the floor it calibrated for its runner.
    const std::size_t shard_sessions = quick ? 4 : 8;
    const std::vector<std::size_t> shard_counts =
        quick ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 4};
    double shard1EventsPerSec = 0, shard2EventsPerSec = 0;
    for (std::size_t shards : shard_counts) {
        const SweepResult r =
            benchConfig(shard_sessions, 64 * 1024, traces_per_session,
                        marked, spec, reference, batch, shards);
        results.push_back(r);
        std::printf("%-22s %10.3f %12.0f %12.3f %8llu%s\n",
                    ("s" + std::to_string(shard_sessions) + "_sh" +
                     std::to_string(shards))
                        .c_str(),
                    r.wallSecs, r.eventsPerSec(), r.meanLatencyMs,
                    static_cast<unsigned long long>(r.busyRetries),
                    r.mismatches + r.failures ? "  CONFORMANCE FAIL"
                                              : "");
        if (r.mismatches + r.failures)
            clean = false;
        if (shards == 1)
            shard1EventsPerSec = r.eventsPerSec();
        else if (shards == 2)
            shard2EventsPerSec = r.eventsPerSec();
    }
    const double shardRatio =
        shard1EventsPerSec > 0 ? shard2EventsPerSec / shard1EventsPerSec
                               : 0.0;
    std::printf("shard scaling 2-vs-1: %.3fx\n", shardRatio);

    // Adaptive epoch-sizing group: a bursty trace (runs of tiny epochs
    // with occasional fat ones) served three ways — the platform's own
    // fine markers, the same events with 8x coarser markers (the static
    // tuning a perfectly informed operator would pick), and the fine
    // markers under the adaptive size-target policy, which must land
    // within 5% of the best static choice while staying bit-identical
    // over its realized slicing.
    const unsigned burstyEpochs = quick ? 128 : 192;
    const Trace bursty = makeBurstyTrace(4, burstyEpochs, heap);
    const Trace burstyCoarse = withCoarserMarkers(bursty, 8);
    SessionSpec bspec = spec;
    bspec.numThreads = static_cast<std::uint32_t>(bursty.numThreads());
    const RemoteReport fineRef = service::analyzeReference(
        bspec, bursty, EpochLayout::fromHeartbeats(bursty));
    const RemoteReport coarseRef = service::analyzeReference(
        bspec, burstyCoarse, EpochLayout::fromHeartbeats(burstyCoarse));

    const std::size_t adaptiveSessions = quick ? 4 : 8;
    // Tiny bursty epochs carry 32-96 decoded events across the 4
    // threads (mean ~53); a 448-event target merges ~8 of them per
    // analyzed epoch — the same ballpark as the 8x-coarser static
    // markers — while a fat epoch still cuts the group short.
    const std::size_t targetEvents = 448;
    struct AdaptiveRow
    {
        const char *mode;
        const Trace *trace;
        const RemoteReport *ref;
        std::size_t target;
    };
    const AdaptiveRow rows[] = {
        {"fine", &bursty, &fineRef, 0},
        {"coarse", &burstyCoarse, &coarseRef, 0},
        {"adaptive", &bursty, &fineRef, targetEvents},
    };
    // Longer runs than the main sweep: the ratio below carries a CI
    // floor, and sub-100ms walls are scheduler noise.
    const std::size_t adaptiveTraces = quick ? 6 : 12;
    double fineEps = 0, coarseEps = 0, adaptiveEps = 0;
    std::uint64_t adaptiveSheds = 0, staticSheds = 0;
    for (const AdaptiveRow &row : rows) {
        // Best-of-two: these rows feed a ratio with a CI floor, and a
        // single short run is at the mercy of the scheduler. Either
        // run failing conformance still fails the row.
        SweepResult r =
            benchConfig(adaptiveSessions, 64 * 1024, adaptiveTraces,
                        *row.trace, bspec, *row.ref, batch, 1,
                        row.target);
        {
            const SweepResult again = benchConfig(
                adaptiveSessions, 64 * 1024, adaptiveTraces,
                *row.trace, bspec, *row.ref, batch, 1, row.target);
            const std::uint64_t mm = r.mismatches + again.mismatches;
            const std::uint64_t ff = r.failures + again.failures;
            if (again.eventsPerSec() > r.eventsPerSec())
                r = again;
            r.mismatches = mm;
            r.failures = ff;
        }
        r.mode = row.mode;
        results.push_back(r);
        std::printf("%-22s %10.3f %12.0f %12.3f %8llu%s\n",
                    ("bursty_" + std::string(row.mode)).c_str(),
                    r.wallSecs, r.eventsPerSec(), r.meanLatencyMs,
                    static_cast<unsigned long long>(r.busyRetries),
                    r.mismatches + r.failures ? "  CONFORMANCE FAIL"
                                              : "");
        if (r.mismatches + r.failures)
            clean = false;
        if (std::strcmp(row.mode, "fine") == 0) {
            fineEps = r.eventsPerSec();
            staticSheds += r.sheds;
        } else if (std::strcmp(row.mode, "coarse") == 0) {
            coarseEps = r.eventsPerSec();
            staticSheds += r.sheds;
        } else {
            adaptiveEps = r.eventsPerSec();
            adaptiveSheds = r.sheds;
        }
    }
    const double bestStatic = std::max(fineEps, coarseEps);
    const double adaptiveRatio =
        bestStatic > 0 ? adaptiveEps / bestStatic : 0.0;
    std::printf("adaptive vs best static: %.3fx (sheds %llu vs %llu)\n",
                adaptiveRatio,
                static_cast<unsigned long long>(adaptiveSheds),
                static_cast<unsigned long long>(staticSheds));

    // Write-then-rename, like JsonRecorder: never leave a torn file.
    const std::string path =
        bfly::bench::benchJsonDir() + "/BENCH_bench_service.json";
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_service\",\n  \"quick\": %s,\n"
                 "  \"batch\": %s,\n  \"shard_ratio_2v1\": %.3f,\n"
                 "  \"adaptive_ratio\": %.3f,\n"
                 "  \"adaptive_sheds\": %llu,\n"
                 "  \"static_sheds\": %llu,\n"
                 "  \"sweep\": [\n",
                 quick ? "true" : "false", batch ? "true" : "false",
                 shardRatio, adaptiveRatio,
                 static_cast<unsigned long long>(adaptiveSheds),
                 static_cast<unsigned long long>(staticSheds));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"sessions\": %zu, "
            "\"chunk_bytes\": %zu, \"shards\": %zu, "
            "\"traces\": %zu, \"events\": %llu, \"wall_seconds\": %.6f, "
            "\"events_per_sec\": %.0f, \"mean_latency_ms\": %.3f, "
            "\"busy_retries\": %llu, \"mismatches\": %llu, "
            "\"failures\": %llu, \"sheds\": %llu, "
            "\"h_changes\": %llu}%s\n",
            r.mode.c_str(), r.sessions, r.chunkBytes, r.shards, r.traces,
            static_cast<unsigned long long>(r.events), r.wallSecs,
            r.eventsPerSec(), r.meanLatencyMs,
            static_cast<unsigned long long>(r.busyRetries),
            static_cast<unsigned long long>(r.mismatches),
            static_cast<unsigned long long>(r.failures),
            static_cast<unsigned long long>(r.sheds),
            static_cast<unsigned long long>(r.hChanges),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (std::fclose(f) != 0 || std::rename(tmp.c_str(), path.c_str())) {
        std::remove(tmp.c_str());
        std::fprintf(stderr, "cannot finalize %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return clean ? 0 : 1;
}
