/**
 * @file
 * Shared infrastructure for the paper-reproduction benchmarks.
 *
 * Every figure benchmark drives full monitoring sessions through the
 * harness. Sessions are deterministic and relatively slow (seconds), so
 * results are memoized per configuration and each google-benchmark
 * registration runs one iteration, reporting the paper's metrics as
 * counters. A human-readable table in the paper's layout is printed at
 * exit.
 *
 * Scale note: the paper ran billions of instructions per benchmark with
 * epoch sizes h of 8K and 64K instructions. This reproduction runs
 * ~400K events per thread with h of 2048 and 16384 — the same 8x epoch
 * ratio and the same epochs-per-phase ratios, so relative shapes are
 * preserved while absolute false-positive rates sit higher (see
 * EXPERIMENTS.md).
 */

#ifndef BUTTERFLY_BENCH_BENCH_COMMON_HPP
#define BUTTERFLY_BENCH_BENCH_COMMON_HPP

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/session.hpp"
#include "telemetry/exporter.hpp"

namespace bfly::bench {

/**
 * Output directory for the per-binary JSON result file. Defaults to the
 * directory holding the benchmark binary (i.e. inside the build tree),
 * so running a bench from the source root cannot litter it with
 * artifacts; override with BFLY_BENCH_JSON_DIR.
 */
inline std::string
benchJsonDir()
{
    if (const char *dir = std::getenv("BFLY_BENCH_JSON_DIR"))
        return dir;
    std::error_code ec;
    const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec && exe.has_parent_path())
        return exe.parent_path().string();
    return ".";
}

/**
 * Collects (name, config, wall seconds, events/sec) rows and writes
 * `BENCH_<binary>.json` at process exit, so every benchmark binary
 * leaves a machine-readable record of the run for perf tracking.
 */
class JsonRecorder
{
  public:
    static JsonRecorder &
    get()
    {
        static JsonRecorder r;
        return r;
    }

    void
    record(std::string name, std::string config, double wall_seconds,
           double events_per_sec)
    {
        rows_.push_back(Row{std::move(name), std::move(config),
                            wall_seconds, events_per_sec});
    }

    ~JsonRecorder()
    {
        if (rows_.empty())
            return;
        // Write-then-rename so a crash (or two binaries racing on the
        // same output directory) never leaves a truncated JSON file for
        // the CI parser to choke on: readers see the old file or the
        // complete new one, nothing in between.
        const std::string path =
            benchJsonDir() + "/BENCH_" + binaryName() + ".json";
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (!f)
            return;
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                     binaryName().c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row &r = rows_[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"config\": \"%s\", "
                         "\"wall_seconds\": %.6f, "
                         "\"events_per_sec\": %.1f}%s\n",
                         r.name.c_str(), r.config.c_str(), r.wallSeconds,
                         r.eventsPerSec, i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        const bool ok = std::fclose(f) == 0;
        if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0)
            std::remove(tmp.c_str());
    }

    static std::string
    binaryName()
    {
#if defined(__GLIBC__)
        return program_invocation_short_name;
#else
        return "bench";
#endif
    }

  private:
    struct Row
    {
        std::string name;
        std::string config;
        double wallSeconds;
        double eventsPerSec;
    };
    std::vector<Row> rows_;
};

/**
 * Telemetry capture directory for benchmark runs, or nullptr.
 *
 * Set BFLY_TELEMETRY_DIR=/some/dir to enable telemetry around every
 * session a benchmark binary runs and write one
 * `<workload>_t<threads>_h<epoch>.metrics.json` (registry snapshot) and
 * matching `.trace.json` (Chrome trace, Perfetto-loadable) per session
 * into that directory. Unset, telemetry stays disabled and sessions run
 * at full speed.
 */
inline const char *
telemetryDir()
{
    static const char *dir = std::getenv("BFLY_TELEMETRY_DIR");
    return dir;
}

/** The paper's epoch sizes, scaled by the run-length compression. */
inline constexpr std::size_t kSmallEpoch = 2048;  ///< "h = 8K"
inline constexpr std::size_t kLargeEpoch = 16384; ///< "h = 64K"

/** Thread counts from Figure 11. */
inline constexpr unsigned kThreadCounts[] = {2, 4, 8};

/**
 * Process-wide batched-kernel toggle for session benchmarks. Set from a
 * `--batch` CLI flag before any session runs; every paperSession()
 * config picks it up. Reports are bit-identical either way, so a
 * batched run is directly comparable to a scalar one.
 */
inline bool &
batchMode()
{
    static bool enabled = false;
    return enabled;
}

/** Benchmark-scale workload knobs. */
inline SessionConfig
paperSession(WorkloadFactory factory, unsigned threads,
             std::size_t epoch_size)
{
    SessionConfig cfg;
    cfg.factory = factory;
    cfg.workload.numThreads = threads;
    cfg.workload.instrPerThread = 400000;
    cfg.workload.phaseEvents = 9000;
    cfg.workload.warmupNops = 40000;
    cfg.epochSize = epoch_size;
    cfg.batchMode = batchMode();
    return cfg;
}

/** Memoized session runner keyed by (workload, threads, epoch). */
inline const SessionResult &
cachedSession(const std::string &workload, WorkloadFactory factory,
              unsigned threads, std::size_t epoch_size)
{
    using Key = std::tuple<std::string, unsigned, std::size_t>;
    static std::map<Key, SessionResult> cache;
    const Key key{workload, threads, epoch_size};
    auto it = cache.find(key);
    if (it == cache.end()) {
        const char *dir = telemetryDir();
        if (dir) {
            telemetry::setEnabled(true);
            telemetry::resetAll(); // one export per session
        }
        const auto t0 = std::chrono::steady_clock::now();
        it = cache
                 .emplace(key, runSession(paperSession(
                                   factory, threads, epoch_size)))
                 .first;
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const std::string config = workload + "_t" +
                                   std::to_string(threads) + "_h" +
                                   std::to_string(epoch_size);
        JsonRecorder::get().record(
            "session", config, wall,
            wall > 0.0 ? static_cast<double>(it->second.instructions) /
                             wall
                       : 0.0);
        if (dir) {
            const std::string stem = std::string(dir) + "/" + workload +
                                     "_t" + std::to_string(threads) +
                                     "_h" + std::to_string(epoch_size);
            telemetry::dumpMetricsJson(stem + ".metrics.json");
            telemetry::dumpChromeTrace(stem + ".trace.json");
        }
    }
    return it->second;
}

} // namespace bfly::bench

#endif // BUTTERFLY_BENCH_BENCH_COMMON_HPP
