/**
 * @file
 * Figure 11: execution time normalized to sequential, unmonitored
 * execution, for every benchmark at 2/4/8 application threads under
 * three configurations: timesliced monitoring (state of the art),
 * parallel butterfly monitoring, and parallel execution without
 * monitoring. Epoch size h = 16384 (the paper's 64K, scaled).
 *
 * Expected shape (paper Section 7.2): at two threads the comparison is
 * mixed; butterfly scales with threads while timesliced does not, so by
 * eight threads butterfly wins in five of six benchmarks (four by a wide
 * margin), with BLACKSCHOLES converging on — but not quite past — the
 * crossover.
 *
 * `--batch` runs every monitored session with the columnar (SoA)
 * batched pass-1 kernels instead of the scalar walk; reports are
 * bit-identical, so the two runs are directly comparable.
 */

#include <cstring>

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace bfly {
namespace {

void
BM_Fig11(benchmark::State &state, const std::string &name,
         WorkloadFactory factory, unsigned threads)
{
    for (auto _ : state) {
        const SessionResult &r =
            bench::cachedSession(name, factory, threads,
                                 bench::kLargeEpoch);
        state.counters["timesliced"] = r.perf.timesliced.normalized;
        state.counters["butterfly"] = r.perf.butterfly.normalized;
        state.counters["no_monitor"] =
            r.perf.parallelNoMonitor.normalized;
        state.counters["false_neg"] =
            static_cast<double>(r.accuracy.falseNegatives);
    }
}

void
printFigure11()
{
    std::printf("\n=== Figure 11: normalized execution time "
                "(h = %zu, ~64K-scaled) ===\n",
                bench::kLargeEpoch);
    std::printf("%-14s %3s  %11s %11s %11s\n", "benchmark", "T",
                "timesliced", "butterfly", "no-monitor");
    for (const auto &[name, factory] : paperWorkloads()) {
        for (unsigned threads : bench::kThreadCounts) {
            const SessionResult &r = bench::cachedSession(
                name, factory, threads, bench::kLargeEpoch);
            std::printf("%-14s %3u  %11.2f %11.2f %11.2f\n",
                        name.c_str(), threads,
                        r.perf.timesliced.normalized,
                        r.perf.butterfly.normalized,
                        r.perf.parallelNoMonitor.normalized);
        }
    }
    std::printf("\n");
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;
    // --batch: run every monitored session with the columnar pass-1
    // kernels (reports are bit-identical; only throughput may change).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0) {
            bench::batchMode() = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    for (const auto &[name, factory] : paperWorkloads()) {
        for (unsigned threads : bench::kThreadCounts) {
            benchmark::RegisterBenchmark(
                ("fig11/" + name + "/threads:" +
                 std::to_string(threads))
                    .c_str(),
                [name = name, factory = factory,
                 threads](benchmark::State &s) {
                    BM_Fig11(s, name, factory, threads);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printFigure11();
    return 0;
}
