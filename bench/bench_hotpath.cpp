/**
 * @file
 * Hot-path microbenchmarks: the three substrates this repo's monitoring
 * overhead is built from, each measured against an inline copy of the
 * seed implementation so the speedup is computed within one binary on
 * one machine state:
 *
 *   dispatch     spawn+join std::threads per pass (seed) vs one batch on
 *                the persistent WorkerPool;
 *   set_algebra  node-based std::unordered_set wrapper (seed) vs the
 *                open-addressed inline-buffered FlatSet, over the union/
 *                intersect/subtract/contains mix the dataflow equations
 *                use;
 *   shadow_range per-element hash-map lookups (seed) vs page-span walks
 *                and the last-page cache, over range fills, range scans
 *                and sequential pointwise traffic;
 *   addrcheck_pass1 / taintcheck_pass1
 *                the scalar per-event pass-1 kernels (seed) vs the
 *                batched columnar kernels (sort-by-key runs + bulk set
 *                inserts) over one synthetic block — same driver, same
 *                block, only setBatchMode differs, and the reports are
 *                bit-identical by contract.
 *
 * Writes BENCH_bench_hotpath.json (see bench_common.hpp; directory
 * overridable with BFLY_BENCH_JSON_DIR). `--quick` shrinks every group
 * for the CI smoke run. Not a google-benchmark binary: the paired
 * seed-vs-new measurement and the speedup field need a custom driver.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/addr_set.hpp"
#include "common/rng.hpp"
#include "common/shadow_memory.hpp"
#include "common/worker_pool.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/taintcheck.hpp"

namespace bfly {
namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::atomic<std::uint64_t> g_sink{0};

// ---------------------------------------------------------------------
// Seed reference implementations (copied from the pre-overhaul sources,
// trimmed to the operations measured here).
// ---------------------------------------------------------------------

/** The seed FlatSet: a thin wrapper over std::unordered_set. */
class RefSet
{
  public:
    bool contains(Addr k) const { return set_.count(k) != 0; }
    std::size_t size() const { return set_.size(); }
    void insert(Addr k) { set_.insert(k); }

    void
    unionWith(const RefSet &other)
    {
        for (Addr k : other.set_)
            set_.insert(k);
    }

    void
    intersectWith(const RefSet &other)
    {
        for (auto it = set_.begin(); it != set_.end();) {
            if (!other.contains(*it))
                it = set_.erase(it);
            else
                ++it;
        }
    }

    void
    subtract(const RefSet &other)
    {
        if (other.size() < set_.size()) {
            for (Addr k : other.set_)
                set_.erase(k);
        } else {
            for (auto it = set_.begin(); it != set_.end();) {
                if (other.contains(*it))
                    it = set_.erase(it);
                else
                    ++it;
            }
        }
    }

  private:
    std::unordered_set<Addr> set_;
};

/** The seed ShadowMemory: one directory lookup per element, no cache. */
class RefShadow
{
  public:
    static constexpr std::size_t kPageSize = 4096;
    static constexpr Addr kOffsetMask = kPageSize - 1;

    std::uint8_t
    get(Addr addr) const
    {
        auto it = pages_.find(addr >> 12);
        if (it == pages_.end())
            return 0;
        return (*it->second)[addr & kOffsetMask];
    }

    void
    set(Addr addr, std::uint8_t value)
    {
        auto &slot = pages_[addr >> 12];
        if (!slot)
            slot = std::make_unique<std::array<std::uint8_t, kPageSize>>();
        (*slot)[addr & kOffsetMask] = value;
    }

    void
    setRange(Addr addr, std::size_t len, std::uint8_t value)
    {
        for (std::size_t k = 0; k < len; ++k)
            set(addr + k, value);
    }

    bool
    rangeEquals(Addr addr, std::size_t len, std::uint8_t value) const
    {
        for (std::size_t k = 0; k < len; ++k) {
            if (get(addr + k) != value)
                return false;
        }
        return true;
    }

  private:
    std::unordered_map<Addr,
                       std::unique_ptr<std::array<std::uint8_t, kPageSize>>>
        pages_;
};

// ---------------------------------------------------------------------
// Group 1: pass dispatch.
// ---------------------------------------------------------------------

/** Per-block stand-in: a little arithmetic so items are not free. */
void
blockWork(std::size_t item)
{
    std::uint64_t acc = item + 1;
    for (int i = 0; i < 64; ++i)
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    g_sink.fetch_add(acc, std::memory_order_relaxed);
}

struct GroupResult
{
    const char *name;
    double seedOpsPerSec = 0;
    double newOpsPerSec = 0;
    double speedup() const { return newOpsPerSec / seedOpsPerSec; }
};

GroupResult
benchDispatch(bool quick)
{
    const std::size_t nthreads =
        std::min<std::size_t>(8, std::max(2u,
                                          std::thread::hardware_concurrency()));
    const std::size_t rounds = quick ? 200 : 2000;

    // Seed: spawn + join one std::thread per block, twice per epoch.
    const double t0 = now();
    for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<std::thread> threads;
        threads.reserve(nthreads);
        for (std::size_t t = 0; t < nthreads; ++t)
            threads.emplace_back(blockWork, t);
        for (std::thread &th : threads)
            th.join();
    }
    const double seedSecs = now() - t0;

    // New: one persistent pool, one batch submission per pass.
    WorkerPool pool(nthreads);
    const double t1 = now();
    for (std::size_t r = 0; r < rounds; ++r)
        pool.run(nthreads, blockWork);
    const double newSecs = now() - t1;

    GroupResult g{"dispatch"};
    g.seedOpsPerSec = static_cast<double>(rounds) / seedSecs;
    g.newOpsPerSec = static_cast<double>(rounds) / newSecs;
    return g;
}

// ---------------------------------------------------------------------
// Group 2: set algebra.
// ---------------------------------------------------------------------

/** The dataflow mix over one pair of sets; returns elements touched. */
template <typename Set>
std::uint64_t
setMix(const Set &a, const Set &b, const std::vector<Addr> &probes)
{
    std::uint64_t touched = 0;

    Set u = a;
    u.unionWith(b);
    touched += u.size();

    Set i = a;
    i.intersectWith(b);
    touched += a.size();

    Set d = a;
    d.subtract(b);
    touched += a.size();

    std::uint64_t hits = 0;
    for (Addr p : probes)
        hits += u.contains(p) ? 1 : 0;
    g_sink.fetch_add(hits + i.size() + d.size(),
                     std::memory_order_relaxed);
    touched += probes.size();
    return touched;
}

template <typename Set>
double
runSetGroup(bool quick, std::uint64_t &elems_out)
{
    // Sizes span the paper's regimes: tiny per-block summaries through
    // epoch-level SOS sets.
    const std::size_t sizes[] = {6, 64, 1024, 8192};
    std::uint64_t elems = 0;
    double secs = 0;
    for (std::size_t n : sizes) {
        Rng rng(n);
        Set a, b;
        for (std::size_t i = 0; i < n; ++i) {
            a.insert(rng.next() % (4 * n));
            b.insert(rng.next() % (4 * n));
        }
        std::vector<Addr> probes(256);
        for (Addr &p : probes)
            p = rng.next() % (4 * n);

        std::size_t reps = (quick ? 40000 : 400000) / n + 1;
        const double t0 = now();
        for (std::size_t r = 0; r < reps; ++r)
            elems += setMix(a, b, probes);
        secs += now() - t0;
    }
    elems_out = elems;
    return secs;
}

GroupResult
benchSetAlgebra(bool quick)
{
    std::uint64_t seedElems = 0, newElems = 0;
    const double seedSecs = runSetGroup<RefSet>(quick, seedElems);
    const double newSecs = runSetGroup<AddrSet>(quick, newElems);

    GroupResult g{"set_algebra"};
    g.seedOpsPerSec = static_cast<double>(seedElems) / seedSecs;
    g.newOpsPerSec = static_cast<double>(newElems) / newSecs;
    return g;
}

// ---------------------------------------------------------------------
// Group 3: shadow ranges.
// ---------------------------------------------------------------------

template <typename Shadow>
std::uint64_t
shadowMix(Shadow &shadow, bool quick)
{
    const std::size_t reps = quick ? 200 : 2000;
    std::uint64_t entries = 0;
    // Allocation-sized spans that straddle page boundaries (the
    // ADDRCHECK oracle's access pattern), then a sequential pointwise
    // sweep (the per-key metadata pattern).
    for (std::size_t r = 0; r < reps; ++r) {
        const Addr base = 0x1000 * (r % 64) + 0x800;
        shadow.setRange(base, 4096, 1);
        entries += 4096;
        const bool eq = shadow.rangeEquals(base, 4096, 1);
        g_sink.fetch_add(eq, std::memory_order_relaxed);
        entries += 4096;
        for (Addr a = base; a < base + 1024; ++a) {
            shadow.set(a, static_cast<std::uint8_t>(a & 0xff));
            entries += 1;
        }
        std::uint64_t sum = 0;
        for (Addr a = base; a < base + 1024; ++a)
            sum += shadow.get(a);
        g_sink.fetch_add(sum, std::memory_order_relaxed);
        entries += 1024;
        shadow.setRange(base, 4096, 0);
        entries += 4096;
    }
    return entries;
}

GroupResult
benchShadowRange(bool quick)
{
    GroupResult g{"shadow_range"};
    {
        RefShadow shadow;
        const double t0 = now();
        const std::uint64_t entries = shadowMix(shadow, quick);
        g.seedOpsPerSec = static_cast<double>(entries) / (now() - t0);
    }
    {
        ShadowMemory<std::uint8_t> shadow(0);
        const double t0 = now();
        const std::uint64_t entries = shadowMix(shadow, quick);
        g.newOpsPerSec = static_cast<double>(entries) / (now() - t0);
    }
    return g;
}

// ---------------------------------------------------------------------
// Groups 4+5: batched vs scalar lifeguard pass-1 kernels.
// ---------------------------------------------------------------------

/**
 * One ADDRCHECK pass-1 block in the regime the batched kernel targets:
 * allocations covering a bounded working set followed by a dense stream
 * of accesses into it (plus a tail of frees), all monitored. No event
 * flags an error, so both kernels measure pure set-building.
 */
std::vector<Event>
makeAddrBlock(std::size_t n, std::size_t working_keys, Rng &rng)
{
    const Addr heap = 0x10000;
    std::vector<Event> events;
    events.reserve(n);
    // Cover the working set with 8-key span allocs (granularity 8).
    for (Addr k = 0; k < working_keys; k += 8)
        events.push_back(Event::alloc(heap + k * 8, 64));
    while (events.size() + working_keys / 16 < n) {
        const Addr a = heap + (rng.next() % working_keys) * 8;
        switch (rng.next() % 8) {
          case 0:
            events.push_back(Event::write(a, 8));
            break;
          case 1:
            events.push_back(
                Event::assign(a, heap + (rng.next() % working_keys) * 8));
            break;
          default:
            events.push_back(Event::read(a, 8));
            break;
        }
    }
    for (Addr k = 0; k < working_keys / 2; k += 8)
        events.push_back(Event::freeOf(heap + k * 8, 64));
    return events;
}

GroupResult
benchAddrCheckPass1(bool quick)
{
    const std::size_t n = 8192;
    Rng rng(1234);
    const std::vector<Event> events = makeAddrBlock(n, 512, rng);
    const BlockView block{0, 0, {events.data(), events.size()}, 0};

    AddrCheckConfig cfg;
    cfg.granularity = 8;
    ButterflyAddrCheck driver(std::size_t{1}, cfg);

    const std::size_t reps = quick ? 40 : 400;
    GroupResult g{"addrcheck_pass1"};
    // Warm both paths once (page-in, scratch growth) before timing.
    driver.setBatchMode(false);
    driver.pass1(block);
    const double t0 = now();
    for (std::size_t r = 0; r < reps; ++r)
        driver.pass1(block);
    g.seedOpsPerSec =
        static_cast<double>(reps * events.size()) / (now() - t0);

    driver.setBatchMode(true);
    driver.pass1(block);
    const double t1 = now();
    for (std::size_t r = 0; r < reps; ++r)
        driver.pass1(block);
    g.newOpsPerSec =
        static_cast<double>(reps * events.size()) / (now() - t1);
    return g;
}

/** TAINTCHECK pass-1 block: taint/untaint/assign mix (rule building). */
std::vector<Event>
makeTaintBlock(std::size_t n, std::size_t working_keys, Rng &rng)
{
    const Addr heap = 0x10000;
    std::vector<Event> events;
    events.reserve(n);
    auto key = [&] { return heap + (rng.next() % working_keys) * 8; };
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng.next() % 8) {
          case 0:
            events.push_back(Event::taintSrc(key(), 8));
            break;
          case 1:
            events.push_back(Event::untaint(key(), 8));
            break;
          case 2:
          case 3:
            events.push_back(Event::write(key(), 8));
            break;
          default:
            events.push_back(Event::assign2(key(), key(), key()));
            break;
        }
    }
    return events;
}

GroupResult
benchTaintCheckPass1(bool quick)
{
    const std::size_t n = 8192;
    Rng rng(4321);
    const std::vector<Event> events = makeTaintBlock(n, 512, rng);
    const BlockView block{0, 0, {events.data(), events.size()}, 0};

    TaintCheckConfig cfg;
    ButterflyTaintCheck driver(std::size_t{1}, cfg);

    const std::size_t reps = quick ? 40 : 400;
    GroupResult g{"taintcheck_pass1"};
    driver.setBatchMode(false);
    driver.pass1(block);
    const double t0 = now();
    for (std::size_t r = 0; r < reps; ++r)
        driver.pass1(block);
    g.seedOpsPerSec =
        static_cast<double>(reps * events.size()) / (now() - t0);

    driver.setBatchMode(true);
    driver.pass1(block);
    const double t1 = now();
    for (std::size_t r = 0; r < reps; ++r)
        driver.pass1(block);
    g.newOpsPerSec =
        static_cast<double>(reps * events.size()) / (now() - t1);
    return g;
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    using bfly::GroupResult;
    const GroupResult groups[] = {
        bfly::benchDispatch(quick),
        bfly::benchSetAlgebra(quick),
        bfly::benchShadowRange(quick),
        bfly::benchAddrCheckPass1(quick),
        bfly::benchTaintCheckPass1(quick),
    };

    std::printf("%-14s %16s %16s %9s\n", "group", "seed ops/s",
                "new ops/s", "speedup");
    for (const GroupResult &g : groups) {
        std::printf("%-14s %16.0f %16.0f %8.2fx\n", g.name,
                    g.seedOpsPerSec, g.newOpsPerSec, g.speedup());
    }

    const std::string path = bfly::bench::benchJsonDir() +
                             "/BENCH_bench_hotpath.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_hotpath\",\n"
                 "  \"quick\": %s,\n  \"groups\": {\n",
                 quick ? "true" : "false");
    const std::size_t ngroups = std::size(groups);
    for (std::size_t i = 0; i < ngroups; ++i) {
        const GroupResult &g = groups[i];
        std::fprintf(f,
                     "    \"%s\": {\"seed_ops_per_sec\": %.1f, "
                     "\"new_ops_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                     g.name, g.seedOpsPerSec, g.newOpsPerSec, g.speedup(),
                     i + 1 < ngroups ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
