/**
 * @file
 * Table 1: simulator and benchmark parameters.
 *
 * Prints the simulated machine configuration in the paper's layout and
 * validates it with microbenchmarks: each cache level's access latency
 * must match Table 1 (L1-D 2 cycles, L2 +6, memory +90), and the L2 must
 * scale with core count (4 cores - 2 MB, 8 - 4 MB, 16 - 8 MB).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "sim/cmp.hpp"

namespace bfly {
namespace {

void
printTable1()
{
    std::printf("\n=== Table 1: Simulator and Benchmark Parameters ===\n");
    std::printf("%-12s %s\n", "Cores", "{4,8,16} cores");
    std::printf("%-12s %s\n", "Pipeline", "in-order scalar, 1 cycle/instr");
    const CmpConfig cfg = CmpConfig::forCores(8);
    std::printf("%-12s %uB\n", "Line size", cfg.l1d.lineBytes);
    std::printf("%-12s %zuKB, %u-way set-assoc, %llu cycle latency\n",
                "L1-D", cfg.l1d.sizeBytes / 1024, cfg.l1d.assoc,
                static_cast<unsigned long long>(cfg.l1d.latency));
    for (unsigned cores : {4u, 8u, 16u}) {
        const CmpConfig c = CmpConfig::forCores(cores);
        std::printf("%-12s %zuMB, %u-way set-assoc, %u banks, "
                    "%llu cycle latency (at %u cores)\n",
                    "L2", c.l2.sizeBytes / (1024 * 1024), c.l2.assoc,
                    c.l2Banks,
                    static_cast<unsigned long long>(c.l2.latency), cores);
    }
    std::printf("%-12s %llu cycle latency\n", "Memory",
                static_cast<unsigned long long>(cfg.memLatency));
    std::printf("%-12s 8KB\n", "Log buffer");
    std::printf("%-12s barnes fft fmm ocean blackscholes lu "
                "(synthetic kernels, see DESIGN.md)\n\n",
                "Workloads");
}

void
BM_L1HitLatency(benchmark::State &state)
{
    Cmp cmp(CmpConfig::forCores(4));
    cmp.access(0, 0x1000, false); // warm the line
    Cycles total = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        total += cmp.access(0, 0x1000, false);
        ++n;
    }
    state.counters["cycles/access"] =
        static_cast<double>(total) / static_cast<double>(n);
}
BENCHMARK(BM_L1HitLatency);

void
BM_L2HitLatency(benchmark::State &state)
{
    Cmp cmp(CmpConfig::forCores(4));
    Cycles total = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        state.PauseTiming();
        cmp.access(1, 0x2000, true); // core 1 owns it; core 0 misses L1
        state.ResumeTiming();
        total += cmp.access(0, 0x2000, false);
        cmp.access(0, 0x2000, true); // force core0 invalidation next round
        state.PauseTiming();
        cmp.access(1, 0x2000, true);
        state.ResumeTiming();
        ++n;
    }
    state.counters["cycles/access"] =
        static_cast<double>(total) / static_cast<double>(n);
}
BENCHMARK(BM_L2HitLatency);

void
BM_MemoryLatency(benchmark::State &state)
{
    Cmp cmp(CmpConfig::forCores(4));
    Cycles total = 0;
    std::uint64_t n = 0;
    Addr a = 0;
    for (auto _ : state) {
        a += 64 * 1024 * 1024; // never-touched line: full miss path
        total += cmp.access(0, a, false);
        ++n;
    }
    state.counters["cycles/access"] =
        static_cast<double>(total) / static_cast<double>(n);
}
BENCHMARK(BM_MemoryLatency);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Events simulated per second by the CMP model (capacity planning
    // for the figure benchmarks).
    Cmp cmp(CmpConfig::forCores(8));
    Rng rng(1);
    std::uint64_t n = 0;
    for (auto _ : state) {
        cmp.access(static_cast<unsigned>(n % 8),
                   0x10000 + 8 * rng.below(1 << 16), (n & 1) != 0);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorThroughput);

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    bfly::printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
