/**
 * @file
 * Ablation A3 / capacity planning: throughput of the core primitives the
 * butterfly analysis is built from — set algebra, shadow memory, the
 * simulated heap, the interleaver, and the full ADDRCHECK lifeguard
 * (events per second of wall-clock, i.e. the speed of this
 * implementation, distinct from the simulated-cycle figures).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "butterfly/window.hpp"
#include "common/shadow_memory.hpp"
#include "memmodel/interleaver.hpp"

namespace bfly {
namespace {

void
BM_AddrSetUnion(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    AddrSet a, b;
    Rng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
        a.insert(rng.next() % (4 * n));
        b.insert(rng.next() % (4 * n));
    }
    for (auto _ : state) {
        AddrSet c = a;
        c.unionWith(b);
        benchmark::DoNotOptimize(c.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AddrSetUnion)->Range(64, 16384);

void
BM_AddrSetIntersects(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    AddrSet a, b;
    Rng rng(2);
    for (std::size_t i = 0; i < n; ++i) {
        a.insert(rng.next() % (8 * n));
        b.insert(rng.next() % (8 * n));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.intersects(b));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AddrSetIntersects)->Range(64, 16384);

void
BM_ShadowMemory(benchmark::State &state)
{
    ShadowMemory<std::uint8_t> shadow(0);
    Rng rng(3);
    std::uint64_t n = 0;
    for (auto _ : state) {
        const Addr a = rng.below(1 << 22);
        if (n & 1)
            shadow.set(a, 1);
        else
            benchmark::DoNotOptimize(shadow.get(a));
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShadowMemory);

void
BM_SimHeapMallocFree(benchmark::State &state)
{
    SimHeap heap(0x10000000, 64 * 1024 * 1024);
    Rng rng(4);
    std::vector<Addr> live;
    std::uint64_t n = 0;
    for (auto _ : state) {
        if (live.size() < 256 || rng.chance(0.5)) {
            const Addr a = heap.malloc(16 + 16 * rng.below(16));
            if (a != kNoAddr)
                live.push_back(a);
        } else {
            const std::size_t k = rng.below(live.size());
            heap.free(live[k]);
            live[k] = live.back();
            live.pop_back();
        }
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimHeapMallocFree);

void
BM_InterleaverThroughput(benchmark::State &state)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 20000;
    const Workload w = makeRandomMix(wcfg);
    std::uint64_t events = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        InterleaveConfig icfg;
        icfg.model = MemModel::TSO;
        const Trace trace = interleave(w.programs, icfg, rng);
        events += trace.instructionCount();
        benchmark::DoNotOptimize(trace.threads.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_InterleaverThroughput)->Unit(benchmark::kMillisecond);

void
BM_ButterflyAddrCheckThroughput(benchmark::State &state)
{
    // Wall-clock events/second of the functional lifeguard itself.
    WorkloadConfig wcfg;
    wcfg.numThreads = static_cast<unsigned>(state.range(0));
    wcfg.instrPerThread = 50000;
    const Workload w = makeOcean(wcfg);
    Rng rng(6);
    const Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    const EpochLayout layout = EpochLayout::byGlobalSeq(
        trace, 2048 * wcfg.numThreads);
    AddrCheckConfig acfg;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit;

    std::uint64_t events = 0;
    for (auto _ : state) {
        ButterflyAddrCheck butterfly(layout, acfg);
        WindowSchedule().run(layout, butterfly);
        benchmark::DoNotOptimize(butterfly.errors().size());
        events += trace.instructionCount();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ButterflyAddrCheckThroughput)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_TwoPassVsParallelPasses(benchmark::State &state)
{
    // Wall-clock effect of running the lifeguard passes on real threads
    // (the paper's lock-free schedule, Section 4.3 "single writer").
    const bool parallel = state.range(0) != 0;
    WorkloadConfig wcfg;
    wcfg.numThreads = 8;
    wcfg.instrPerThread = 50000;
    const Workload w = makeBarnes(wcfg);
    Rng rng(7);
    const Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    const EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, 2048 * 8);
    AddrCheckConfig acfg;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit;

    // One persistent pool for the whole measurement (as Session does);
    // per-iteration cost is batch dispatch, not thread creation.
    WorkerPool pool(8);
    const WindowSchedule schedule(parallel, parallel ? &pool : nullptr);
    for (auto _ : state) {
        ButterflyAddrCheck butterfly(layout, acfg);
        schedule.run(layout, butterfly);
        benchmark::DoNotOptimize(butterfly.errors().size());
    }
    state.SetLabel(parallel ? "parallel-passes" : "sequential-passes");
}
BENCHMARK(BM_TwoPassVsParallelPasses)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace bfly

BENCHMARK_MAIN();
