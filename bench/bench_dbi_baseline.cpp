/**
 * @file
 * Software-only DBI baseline study (paper Sections 1-2 motivation).
 *
 * The paper's introduction observes that existing (software, same-core)
 * monitoring tools "slow down the monitored program by orders of
 * magnitude", which is why the prototype builds on hardware-assisted
 * logging. This study prices a DBI-style monitor — lifeguard checks
 * inlined between application instructions on the same cores — against
 * the two LBA-based modes, on every workload at 8 threads.
 *
 * (The DBI numbers are a *floor*: a real DBI parallel monitor would
 * additionally need inter-thread dependence tracking or serialization,
 * the very costs butterfly analysis is designed to avoid.)
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace bfly {
namespace {

void
printSummary()
{
    std::printf("\n=== software-only DBI vs LBA-based monitoring "
                "(8 threads, h=%zu) ===\n",
                bench::kLargeEpoch);
    std::printf("%-14s %10s %12s %12s %12s\n", "benchmark", "DBI",
                "timesliced", "butterfly", "no-monitor");
    for (const auto &[name, factory] : paperWorkloads()) {
        const SessionResult &r = bench::cachedSession(
            name, factory, 8, bench::kLargeEpoch);
        std::printf("%-14s %9.2fx %11.2fx %11.2fx %11.2fx\n",
                    name.c_str(), r.perf.dbiSoftware.normalized,
                    r.perf.timesliced.normalized,
                    r.perf.butterfly.normalized,
                    r.perf.parallelNoMonitor.normalized);
    }
    std::printf("(all normalized to sequential unmonitored execution; "
                "DBI inlines ~55 cycles\nper memory event on the "
                "application cores themselves)\n\n");
}

void
BM_DbiBaseline(benchmark::State &state, const std::string &name,
               WorkloadFactory factory)
{
    for (auto _ : state) {
        const SessionResult &r = bench::cachedSession(
            name, factory, 8, bench::kLargeEpoch);
        state.counters["dbi"] = r.perf.dbiSoftware.normalized;
        state.counters["butterfly"] = r.perf.butterfly.normalized;
    }
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;
    for (const auto &[name, factory] : paperWorkloads()) {
        benchmark::RegisterBenchmark(
            ("dbi_baseline/" + name).c_str(),
            [name = name, factory = factory](benchmark::State &s) {
                BM_DbiBaseline(s, name, factory);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printSummary();
    return 0;
}
