/**
 * @file
 * Ablation A1: the second pass is what makes butterfly analysis sound.
 *
 * Pass 1 checks each block against locally-available state (LSOS);
 * pass 2 adds the isolation checks against the wing summaries. This
 * ablation replays racy workloads with injected bugs and compares the
 * oracle against (a) the full two-pass lifeguard and (b) a pass-1-only
 * view (the same run with isolation findings discarded). The full
 * lifeguard must cover every oracle error (Theorem 6.1); the pass-1-only
 * view misses the races that only the wings can reveal.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "butterfly/window.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "memmodel/interleaver.hpp"
#include "workloads/bugs.hpp"

namespace bfly {
namespace {

struct AblationResult
{
    std::size_t oracleErrors = 0;
    std::size_t fnFull = 0;
    std::size_t fnPassOneOnly = 0;
};

AblationResult
runAblation(std::uint64_t seed)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 20000;
    wcfg.seed = seed;
    Workload w = makeRandomMix(wcfg);

    Rng rng(seed * 13 + 1);
    InterleaveConfig icfg;
    Trace trace = interleave(w.programs, icfg, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 256 * 4);

    AddrCheckConfig acfg;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit;

    ButterflyAddrCheck butterfly(layout, acfg);
    WindowSchedule().run(layout, butterfly);
    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);

    // Pass-1-only view: drop the isolation (pass 2) findings.
    ErrorLog pass1_only;
    for (const ErrorRecord &rec : butterfly.errors().records()) {
        if (rec.kind != ErrorKind::NonIsolatedOp)
            pass1_only.report(rec);
    }

    AblationResult result;
    result.oracleErrors = oracle.errors().size();
    result.fnFull = compareToOracle(butterfly.errors(), oracle.errors(),
                                    acfg.granularity)
                        .falseNegatives;
    result.fnPassOneOnly =
        compareToOracle(pass1_only, oracle.errors(), acfg.granularity)
            .falseNegatives;
    return result;
}

void
BM_AblationPasses(benchmark::State &state)
{
    const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        const AblationResult r = runAblation(seed);
        state.counters["oracle_errors"] =
            static_cast<double>(r.oracleErrors);
        state.counters["fn_two_pass"] = static_cast<double>(r.fnFull);
        state.counters["fn_pass1_only"] =
            static_cast<double>(r.fnPassOneOnly);
    }
}
BENCHMARK(BM_AblationPasses)->DenseRange(1, 6)->Iterations(1);

void
printSummary()
{
    std::printf("\n=== Ablation A1: value of the second pass ===\n");
    std::printf("%4s  %13s %12s %14s\n", "seed", "oracle-errors",
                "FN two-pass", "FN pass-1-only");
    std::size_t total_p1 = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const AblationResult r = runAblation(seed);
        std::printf("%4llu  %13zu %12zu %14zu\n",
                    static_cast<unsigned long long>(seed),
                    r.oracleErrors, r.fnFull, r.fnPassOneOnly);
        total_p1 += r.fnPassOneOnly;
    }
    std::printf("two-pass analysis: zero false negatives everywhere; "
                "pass 1 alone missed %zu errors\n\n",
                total_p1);
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printSummary();
    return 0;
}
