/**
 * @file
 * Figure 12: performance sensitivity to epoch size (h = 2048 vs 16384,
 * the paper's 8K vs 64K scaled) for butterfly monitoring.
 *
 * Expected shape: larger epochs amortize the per-epoch fixed costs
 * (barriers after each pass, SOS update) and are faster — except where
 * the extra false positives are expensive enough to offset the savings,
 * which the paper observed for OCEAN at two and four threads.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace bfly {
namespace {

void
BM_Fig12(benchmark::State &state, const std::string &name,
         WorkloadFactory factory, unsigned threads, std::size_t epoch)
{
    for (auto _ : state) {
        const SessionResult &r =
            bench::cachedSession(name, factory, threads, epoch);
        state.counters["butterfly"] = r.perf.butterfly.normalized;
        state.counters["epochs"] = static_cast<double>(r.epochs);
        state.counters["barrier_wait"] = static_cast<double>(
            r.perf.butterfly.timing.barrierWaitCycles);
    }
}

void
printFigure12()
{
    std::printf("\n=== Figure 12: butterfly performance vs epoch size "
                "===\n");
    std::printf("%-14s %3s  %14s %14s  %s\n", "benchmark", "T",
                "h=2048 (8K)", "h=16384 (64K)", "larger-epoch effect");
    for (const auto &[name, factory] : paperWorkloads()) {
        for (unsigned threads : bench::kThreadCounts) {
            const SessionResult &small = bench::cachedSession(
                name, factory, threads, bench::kSmallEpoch);
            const SessionResult &large = bench::cachedSession(
                name, factory, threads, bench::kLargeEpoch);
            const double s = small.perf.butterfly.normalized;
            const double l = large.perf.butterfly.normalized;
            std::printf("%-14s %3u  %14.2f %14.2f  %s\n", name.c_str(),
                        threads, s, l,
                        l < s ? "faster (amortized overheads)"
                              : "slower (false-positive cost)");
        }
    }
    std::printf("\n");
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;
    for (const auto &[name, factory] : paperWorkloads()) {
        for (unsigned threads : bench::kThreadCounts) {
            for (std::size_t epoch :
                 {bench::kSmallEpoch, bench::kLargeEpoch}) {
                benchmark::RegisterBenchmark(
                    ("fig12/" + name + "/threads:" +
                     std::to_string(threads) + "/h:" +
                     std::to_string(epoch))
                        .c_str(),
                    [name = name, factory = factory, threads,
                     epoch](benchmark::State &s) {
                        BM_Fig12(s, name, factory, threads, epoch);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printFigure12();
    return 0;
}
