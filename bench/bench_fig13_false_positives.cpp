/**
 * @file
 * Figure 13: precision sensitivity to epoch size — false positives as a
 * percentage of memory accesses (log scale in the paper), h = 2048 vs
 * 16384 (the paper's 8K vs 64K, scaled).
 *
 * Expected shape: false negatives are zero everywhere (checked); false
 * positives grow with epoch size; FFT/FMM/LU barely move while others
 * jump by an order of magnitude or more, with OCEAN the outlier whose
 * FP rate at the large epoch is highest (the same behaviour that costs
 * it performance in Figure 12).
 *
 * Absolute rates are higher than the paper's (<0.01%) because our runs
 * are ~1000x shorter relative to phase lengths; see EXPERIMENTS.md.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace bfly {
namespace {

void
BM_Fig13(benchmark::State &state, const std::string &name,
         WorkloadFactory factory, unsigned threads, std::size_t epoch)
{
    for (auto _ : state) {
        const SessionResult &r =
            bench::cachedSession(name, factory, threads, epoch);
        state.counters["fp_pct_of_accesses"] =
            100.0 * r.falsePositiveRate;
        state.counters["false_pos"] =
            static_cast<double>(r.accuracy.falsePositives);
        state.counters["false_neg"] =
            static_cast<double>(r.accuracy.falseNegatives);
        state.counters["mem_accesses"] =
            static_cast<double>(r.memoryAccesses);
    }
}

void
printFigure13()
{
    std::printf("\n=== Figure 13: false positives as %% of memory "
                "accesses ===\n");
    std::printf("%-14s %3s  %14s %14s %8s\n", "benchmark", "T",
                "h=2048 (8K)", "h=16384 (64K)", "FN");
    for (const auto &[name, factory] : paperWorkloads()) {
        for (unsigned threads : bench::kThreadCounts) {
            const SessionResult &small = bench::cachedSession(
                name, factory, threads, bench::kSmallEpoch);
            const SessionResult &large = bench::cachedSession(
                name, factory, threads, bench::kLargeEpoch);
            std::printf(
                "%-14s %3u  %13.5f%% %13.5f%% %8zu\n", name.c_str(),
                threads, 100.0 * small.falsePositiveRate,
                100.0 * large.falsePositiveRate,
                small.accuracy.falseNegatives +
                    large.accuracy.falseNegatives);
        }
    }
    std::printf("(false negatives are provably zero: the FN column must "
                "read 0)\n\n");
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;
    for (const auto &[name, factory] : paperWorkloads()) {
        for (unsigned threads : bench::kThreadCounts) {
            for (std::size_t epoch :
                 {bench::kSmallEpoch, bench::kLargeEpoch}) {
                benchmark::RegisterBenchmark(
                    ("fig13/" + name + "/threads:" +
                     std::to_string(threads) + "/h:" +
                     std::to_string(epoch))
                        .c_str(),
                    [name = name, factory = factory, threads,
                     epoch](benchmark::State &s) {
                        BM_Fig13(s, name, factory, threads, epoch);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    bfly::printFigure13();
    return 0;
}
