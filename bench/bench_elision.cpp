/**
 * @file
 * Static-elision throughput gate: OCEAN (the paper's ADDRCHECK
 * stress workload) end-to-end, baseline vs --elide, at 4 application
 * threads and h = 2048 (the paper's 8K, scaled).
 *
 * Unlike the figure benchmarks this one *gates*: the process exits
 * nonzero unless
 *   - elided-mode measured throughput (input events / wall second of
 *     the whole session, generation + analysis + oracle) is at least
 *     1.0x the baseline run,
 *   - at least 30% of input events were elided or summarized, and
 *   - elision introduced zero false negatives vs the sequential
 *     oracle.
 *
 * The gate deliberately uses measured wall clock, not the perf model's
 * normalized numbers: in elide mode the model is priced on the
 * monitored (post-elision) trace, so its normalization denominator
 * differs from the baseline run and the two normalized figures are not
 * comparable. Wall seconds over the same input workload are.
 */

#include <chrono>
#include <cstring>

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace bfly {
namespace {

/** One timed end-to-end session run (not cachedSession: the shared
 *  cache is keyed on (workload, threads, epoch) only and would conflate
 *  the two elide settings). */
struct TimedRun
{
    SessionResult result;
    double wallSeconds = 0.0;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(result.instructions) /
                         wallSeconds
                   : 0.0;
    }
};

const TimedRun &
elisionRun(bool elide)
{
    static TimedRun cache[2];
    static bool done[2] = {false, false};
    TimedRun &slot = cache[elide ? 1 : 0];
    if (!done[elide ? 1 : 0]) {
        SessionConfig cfg = bench::paperSession(
            makeOcean, 4, bench::kSmallEpoch);
        cfg.elide = elide;
        const auto t0 = std::chrono::steady_clock::now();
        slot.result = runSession(cfg);
        slot.wallSeconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        bench::JsonRecorder::get().record(
            "elision", elide ? "ocean_t4_elided" : "ocean_t4_baseline",
            slot.wallSeconds, slot.eventsPerSec());
        done[elide ? 1 : 0] = true;
    }
    return slot;
}

void
BM_Elision(benchmark::State &state, bool elide)
{
    for (auto _ : state) {
        const TimedRun &run = elisionRun(elide);
        state.counters["events_per_sec"] = run.eventsPerSec();
        state.counters["false_neg"] = static_cast<double>(
            run.result.accuracy.falseNegatives);
        if (elide) {
            state.counters["elided_frac"] =
                run.result.elision.elidedFraction();
            state.counters["bytes_full"] = static_cast<double>(
                run.result.encodedBytesFull);
            state.counters["bytes_monitored"] = static_cast<double>(
                run.result.encodedBytesMonitored);
        }
    }
}

/** Prints the gate table and returns the process exit status. */
int
printGate()
{
    const TimedRun &base = elisionRun(false);
    const TimedRun &elided = elisionRun(true);

    const double speedup =
        base.eventsPerSec() > 0.0
            ? elided.eventsPerSec() / base.eventsPerSec()
            : 0.0;
    const double frac = elided.result.elision.elidedFraction();
    const double bytesSaved =
        elided.result.encodedBytesFull > 0
            ? 1.0 - static_cast<double>(
                        elided.result.encodedBytesMonitored) /
                        static_cast<double>(
                            elided.result.encodedBytesFull)
            : 0.0;
    const std::size_t fn = elided.result.accuracy.falseNegatives;

    std::printf("\n=== Elision gate: OCEAN, 4 threads, h = %zu ===\n",
                bench::kSmallEpoch);
    std::printf("%-22s %14s %14s\n", "", "baseline", "elided");
    std::printf("%-22s %14.3f %14.3f\n", "wall seconds",
                base.wallSeconds, elided.wallSeconds);
    std::printf("%-22s %14.0f %14.0f\n", "input events/sec",
                base.eventsPerSec(), elided.eventsPerSec());
    std::printf("%-22s %14s %13.1f%%\n", "events elided", "-",
                100.0 * frac);
    std::printf("%-22s %14zu %14zu\n", "bytes on wire",
                elided.result.encodedBytesFull,
                elided.result.encodedBytesMonitored);
    std::printf("%-22s %14s %13.1f%%\n", "bytes saved", "-",
                100.0 * bytesSaved);
    std::printf("%-22s %14zu %14zu\n", "false negatives",
                base.result.accuracy.falseNegatives, fn);

    int status = 0;
    if (speedup < 1.0) {
        std::printf("GATE FAIL: elided throughput %.2fx baseline "
                    "(need >= 1.0x)\n",
                    speedup);
        status = 1;
    }
    if (frac < 0.30) {
        std::printf("GATE FAIL: %.1f%% events elided "
                    "(need >= 30%%)\n",
                    100.0 * frac);
        status = 1;
    }
    if (fn != 0) {
        std::printf("GATE FAIL: %zu false negatives vs sequential "
                    "oracle (need 0)\n",
                    fn);
        status = 1;
    }
    if (status == 0)
        std::printf("GATE PASS: %.2fx throughput, %.1f%% elided, "
                    "0 false negatives\n",
                    speedup, 100.0 * frac);
    std::printf("\n");
    return status;
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    using namespace bfly;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0) {
            bench::batchMode() = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    for (const bool elide : {false, true})
        benchmark::RegisterBenchmark(
            elide ? "elision/ocean/elided"
                  : "elision/ocean/baseline",
            [elide](benchmark::State &s) { BM_Elision(s, elide); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return bfly::printGate();
}
