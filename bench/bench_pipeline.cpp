/**
 * @file
 * Barrier-per-pass vs pipelined (dependency-task-graph) window schedule.
 *
 * Two measurements, one binary:
 *
 *   wall       real ButterflyAddrCheck runs over the same trace: the
 *              barrier schedule on a worker pool vs the pipelined
 *              schedule fed by the streaming epoch slicer. Error reports
 *              must be identical (the sequential-equivalence guarantee);
 *              peak resident epochs must stay within the stream window.
 *              Wall-clock speedup requires real cores — on a 1-CPU host
 *              both schedules serialize onto the same hardware thread
 *              and the ratio hovers near 1.
 *
 *   model      the cycle-accurate schedule models (sim/lba) on a
 *              synthetic skewed-epoch input: every epoch one rotating
 *              thread carries a block ~16x heavier than the rest — the
 *              adversarial shape for barriers, because every pass waits
 *              for the heavy straggler while the pipelined graph keeps
 *              the other lifeguard cores busy on neighbouring epochs.
 *              Reported per thread count; this is where the >=1.2x at 8
 *              threads shows up regardless of host core count.
 *
 * Writes BENCH_bench_pipeline.json (directory overridable with
 * BFLY_BENCH_JSON_DIR). `--quick` shrinks both groups for CI smoke.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "butterfly/window.hpp"
#include "common/rng.hpp"
#include "common/worker_pool.hpp"
#include "lifeguards/addrcheck.hpp"
#include "memmodel/interleaver.hpp"
#include "sim/lba.hpp"
#include "trace/epoch_slicer.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** (tid, index, addr, kind, size) rows, sorted — report identity. */
std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int, std::uint16_t>>
sortedRecords(const ErrorLog &log)
{
    std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int,
                           std::uint16_t>>
        out;
    out.reserve(log.size());
    for (const ErrorRecord &r : log.records())
        out.emplace_back(r.tid, r.index, r.addr, static_cast<int>(r.kind),
                         r.size);
    std::sort(out.begin(), out.end());
    return out;
}

// ---------------------------------------------------------------------
// Group 1: wall clock, real lifeguard.
// ---------------------------------------------------------------------

struct WallResult
{
    double barrierSecs = 0;
    double pipelinedSecs = 0;
    bool identicalReports = false;
    std::size_t errorCount = 0;
    std::size_t epochs = 0;
    std::size_t peakResidentEpochs = 0;
    std::size_t windowEpochs = 0;
    double speedup() const { return barrierSecs / pipelinedSecs; }
};

WallResult
benchWall(bool quick)
{
    const unsigned T = 4;
    WorkloadConfig wcfg;
    wcfg.numThreads = T;
    wcfg.instrPerThread = quick ? 4000 : 60000;
    wcfg.seed = 7;
    Workload w = makeRandomMix(wcfg);
    Rng rng(1234);
    const Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    const std::size_t global_h = 512 * T;
    const EpochLayout layout = EpochLayout::byGlobalSeq(trace, global_h);

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;

    WorkerPool pool(T);
    WallResult r;
    r.epochs = layout.numEpochs();
    const int reps = quick ? 1 : 3;

    std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int,
                           std::uint16_t>>
        barrier_reports, pipelined_reports;

    r.barrierSecs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        ButterflyAddrCheck check(layout, cfg);
        const double t0 = now();
        WindowSchedule(true, &pool).run(layout, check);
        r.barrierSecs = std::min(r.barrierSecs, now() - t0);
        barrier_reports = sortedRecords(check.errors());
    }

    r.pipelinedSecs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        ButterflyAddrCheck check(trace.numThreads(), cfg);
        EpochStream::Config scfg;
        scfg.globalH = global_h;
        EpochStream stream(trace, scfg);
        r.windowEpochs = stream.windowEpochs();
        const double t0 = now();
        const PipelineStats stats =
            WindowSchedule(true, &pool).runPipelined(stream, check);
        r.pipelinedSecs = std::min(r.pipelinedSecs, now() - t0);
        pipelined_reports = sortedRecords(check.errors());
        r.peakResidentEpochs = stats.peakResidentEpochs;
    }

    r.identicalReports = barrier_reports == pipelined_reports;
    r.errorCount = pipelined_reports.size();
    return r;
}

// ---------------------------------------------------------------------
// Group 2: schedule models on a skewed-epoch input.
// ---------------------------------------------------------------------

/**
 * Rotating-straggler input: in epoch l, thread l % T carries @p heavy
 * records, everyone else @p light. Barrier schedules pay the straggler
 * twice per epoch; the task graph overlaps it with neighbours' work.
 */
ButterflyTimingInput
skewedInput(std::size_t T, std::size_t L, std::size_t heavy,
            std::size_t light)
{
    ButterflyTimingInput in;
    in.costs.assign(T, std::vector<EpochCosts>(L));
    in.sosUpdateCost.assign(L, 200);
    in.barrierCost = 400;
    for (std::size_t t = 0; t < T; ++t) {
        for (std::size_t l = 0; l < L; ++l) {
            const std::size_t n = (t == l % T) ? heavy : light;
            EpochCosts &c = in.costs[t][l];
            c.appCost.assign(n, 2);
            c.pass1Cost.assign(n, 12);
            c.pass2Cost = static_cast<Cycles>(n) * 10;
        }
    }
    return in;
}

struct ModelResult
{
    std::size_t threads = 0;
    Cycles barrierCycles = 0;
    Cycles pipelinedCycles = 0;
    Cycles pipelinedStrictCycles = 0;
    Cycles barrierWaitCycles = 0;
    Cycles taskWaitCycles = 0;
    double speedup() const
    {
        return static_cast<double>(barrierCycles) /
               static_cast<double>(pipelinedCycles);
    }
};

ModelResult
benchModel(std::size_t T, bool quick)
{
    const std::size_t L = quick ? 24 : 64;
    const ButterflyTimingInput in =
        skewedInput(T, L, /*heavy=*/4096, /*light=*/256);

    ModelResult r;
    r.threads = T;
    const TimingResult barrier = simulateButterfly(in);
    const TimingResult pipelined =
        simulateButterflyPipelined(in, T, /*strict_finalize=*/false);
    const TimingResult strict =
        simulateButterflyPipelined(in, T, /*strict_finalize=*/true);
    r.barrierCycles = barrier.totalCycles;
    r.pipelinedCycles = pipelined.totalCycles;
    r.pipelinedStrictCycles = strict.totalCycles;
    r.barrierWaitCycles = barrier.barrierWaitCycles;
    r.taskWaitCycles = pipelined.taskWaitCycles;
    return r;
}

} // namespace
} // namespace bfly

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const bfly::WallResult wall = bfly::benchWall(quick);
    std::printf("%-26s %12s %12s %9s\n", "group", "barrier", "pipelined",
                "speedup");
    std::printf("%-26s %11.3fs %11.3fs %8.2fx  (reports %s, peak "
                "resident %zu/%zu epochs of %zu)\n",
                "wall_addrcheck_t4", wall.barrierSecs, wall.pipelinedSecs,
                wall.speedup(),
                wall.identicalReports ? "identical" : "DIFFER",
                wall.peakResidentEpochs, wall.windowEpochs, wall.epochs);

    std::vector<bfly::ModelResult> models;
    for (std::size_t T : {2u, 4u, 8u})
        models.push_back(bfly::benchModel(T, quick));
    for (const bfly::ModelResult &m : models) {
        std::printf("%-26s %11llucy %11llucy %8.2fx  (barrier wait "
                    "%llucy, task wait %llucy)\n",
                    ("model_skewed_t" + std::to_string(m.threads)).c_str(),
                    static_cast<unsigned long long>(m.barrierCycles),
                    static_cast<unsigned long long>(m.pipelinedCycles),
                    m.speedup(),
                    static_cast<unsigned long long>(m.barrierWaitCycles),
                    static_cast<unsigned long long>(m.taskWaitCycles));
    }

    if (!wall.identicalReports) {
        std::fprintf(stderr,
                     "FAIL: pipelined error report differs from barrier "
                     "schedule\n");
        return 1;
    }
    if (wall.peakResidentEpochs > wall.windowEpochs) {
        std::fprintf(stderr,
                     "FAIL: peak resident epochs %zu exceeds window %zu\n",
                     wall.peakResidentEpochs, wall.windowEpochs);
        return 1;
    }

    // Write-then-rename, like JsonRecorder: never leave a torn file.
    const std::string path = bfly::bench::benchJsonDir() +
                             "/BENCH_bench_pipeline.json";
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_pipeline\",\n"
                 "  \"quick\": %s,\n"
                 "  \"wall\": {\"config\": \"addrcheck_t4\", "
                 "\"barrier_seconds\": %.6f, "
                 "\"pipelined_seconds\": %.6f, \"speedup\": %.3f, "
                 "\"identical_reports\": %s, \"error_count\": %zu, "
                 "\"epochs\": %zu, \"peak_resident_epochs\": %zu, "
                 "\"window_epochs\": %zu},\n  \"model\": [\n",
                 quick ? "true" : "false", wall.barrierSecs,
                 wall.pipelinedSecs, wall.speedup(),
                 wall.identicalReports ? "true" : "false", wall.errorCount,
                 wall.epochs, wall.peakResidentEpochs, wall.windowEpochs);
    for (std::size_t i = 0; i < models.size(); ++i) {
        const bfly::ModelResult &m = models[i];
        std::fprintf(f,
                     "    {\"threads\": %zu, \"barrier_cycles\": %llu, "
                     "\"pipelined_cycles\": %llu, "
                     "\"pipelined_strict_cycles\": %llu, "
                     "\"barrier_wait_cycles\": %llu, "
                     "\"task_wait_cycles\": %llu, \"speedup\": %.3f}%s\n",
                     m.threads,
                     static_cast<unsigned long long>(m.barrierCycles),
                     static_cast<unsigned long long>(m.pipelinedCycles),
                     static_cast<unsigned long long>(
                         m.pipelinedStrictCycles),
                     static_cast<unsigned long long>(m.barrierWaitCycles),
                     static_cast<unsigned long long>(m.taskWaitCycles),
                     m.speedup(), i + 1 < models.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (std::fclose(f) != 0 || std::rename(tmp.c_str(), path.c_str())) {
        std::remove(tmp.c_str());
        std::fprintf(stderr, "cannot finalize %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
