/**
 * @file
 * IdempotentFilter unit tests: dedup/hit semantics, direct-mapped slot
 * collisions, metadata-change eviction, epoch-boundary flush, and the
 * per-epoch independence that makes the butterfly (and pipelined)
 * schedule free to finalize epochs without filter-state coupling.
 */

#include <gtest/gtest.h>

#include "src/harness/idempotent_filter.hpp"

using namespace bfly;

TEST(IdempotentFilter, MissThenHitDedupsRepeatedKeys)
{
    IdempotentFilter filter(64);
    EXPECT_FALSE(filter.hit(10));
    filter.insert(10);
    EXPECT_TRUE(filter.hit(10));
    EXPECT_TRUE(filter.hit(10)); // hits are idempotent, not consuming
    EXPECT_FALSE(filter.hit(11));
}

TEST(IdempotentFilter, DirectMappedCollisionEvictsPriorKey)
{
    IdempotentFilter filter(64);
    filter.insert(10);
    filter.insert(10 + 64); // same slot, different key
    EXPECT_TRUE(filter.hit(10 + 64));
    EXPECT_FALSE(filter.hit(10)); // displaced; must be re-checked
}

TEST(IdempotentFilter, EvictForgetsOnlyTheChangedKey)
{
    IdempotentFilter filter(64);
    filter.insert(10);
    filter.insert(11);
    filter.evict(10); // e.g. free() changed 10's metadata
    EXPECT_FALSE(filter.hit(10));
    EXPECT_TRUE(filter.hit(11));

    // Evicting a key that merely collides must not clobber the cached
    // verdict of the key actually resident in the slot.
    filter.evict(11 + 64);
    EXPECT_TRUE(filter.hit(11));
}

TEST(IdempotentFilter, FlushForgetsEverything)
{
    IdempotentFilter filter(8);
    for (Addr k = 0; k < 8; ++k)
        filter.insert(k);
    filter.flush();
    for (Addr k = 0; k < 8; ++k)
        EXPECT_FALSE(filter.hit(k));
}

TEST(IdempotentFilter, KNoAddrNeverHits)
{
    // Slots are initialized to kNoAddr; probing with the sentinel must
    // not read an empty slot as a cached verdict.
    IdempotentFilter filter(16);
    EXPECT_FALSE(filter.hit(kNoAddr));
}

/**
 * Butterfly mode flushes at every epoch boundary, so the set of filtered
 * events inside an epoch depends only on that epoch's own accesses —
 * never on which epochs ran before it. That independence is what lets
 * the pipelined scheduler finalize epochs in dependency order rather
 * than strict sequence without changing any filter verdict.
 */
TEST(IdempotentFilter, EpochFlushMakesFilterDecisionsOrderIndependent)
{
    const std::vector<std::vector<Addr>> epochs = {
        {1, 2, 1, 3, 2},
        {2, 2, 4, 4, 1},
        {5, 1, 5, 1, 5},
    };

    auto filtered_per_epoch =
        [&](const std::vector<std::size_t> &order) {
            IdempotentFilter filter(32);
            std::vector<std::vector<bool>> hits(epochs.size());
            for (std::size_t e : order) {
                filter.flush(); // epoch boundary
                for (Addr k : epochs[e]) {
                    hits[e].push_back(filter.hit(k));
                    filter.insert(k);
                }
            }
            return hits;
        };

    const auto in_order = filtered_per_epoch({0, 1, 2});
    const auto pipelined = filtered_per_epoch({2, 0, 1});
    EXPECT_EQ(in_order, pipelined);

    // Sanity: within an epoch the filter does dedup repeats.
    EXPECT_EQ(in_order[0],
              (std::vector<bool>{false, false, true, false, true}));
}

/** Without the flush (timesliced mode) verdicts *do* leak across epoch
 *  boundaries — the contrast the butterfly rule exists to prevent. */
TEST(IdempotentFilter, NoFlushLeaksVerdictsAcrossEpochs)
{
    IdempotentFilter filter(32);
    filter.insert(7); // "epoch 0" checked key 7
    // New epoch, no flush: the stale verdict survives.
    EXPECT_TRUE(filter.hit(7));
    filter.flush();
    EXPECT_FALSE(filter.hit(7));
}
