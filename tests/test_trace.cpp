/** @file Unit tests for src/trace: events, traces, epoch slicing, buffer. */

#include <gtest/gtest.h>

#include "tests/helpers.hpp"
#include "trace/log_buffer.hpp"

namespace bfly {
namespace {

TEST(Event, FactoriesAndPredicates)
{
    EXPECT_TRUE(Event::read(0x10).isMemoryAccess());
    EXPECT_TRUE(Event::write(0x10).isMemoryAccess());
    EXPECT_TRUE(Event::assign(1, 2).isMemoryAccess());
    EXPECT_FALSE(Event::alloc(0x10, 8).isMemoryAccess());
    EXPECT_FALSE(Event::heartbeat().isMemoryAccess());
    EXPECT_FALSE(Event::nop().isMemoryAccess());
    EXPECT_EQ(Event::assign2(1, 2, 3).nsrc, 2);
}

TEST(Event, ToStringMentionsKindAndAddr)
{
    const std::string s = Event::read(0xab, 4).toString();
    EXPECT_NE(s.find("read"), std::string::npos);
    EXPECT_NE(s.find("ab"), std::string::npos);
}

TEST(Trace, InstructionAndAccessCounts)
{
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::write(2),
         Event::nop()},
        {Event::alloc(0x10, 8), Event::read(0x10)},
    });
    EXPECT_EQ(trace.instructionCount(), 5u); // heartbeat excluded
    EXPECT_EQ(trace.memoryAccessCount(), 3u);
}

TEST(Trace, SerializedByGseqOrdersAcrossThreads)
{
    Trace trace = test::traceOf({{Event::read(1)}, {Event::write(2)}});
    trace.threads[0].events[0].gseq = 2;
    trace.threads[1].events[0].gseq = 1;
    const auto merged = trace.serializedByGseq();
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].first, 1u);
    EXPECT_EQ(merged[1].first, 0u);
}

TEST(Trace, RoundRobinAlternatesThreads)
{
    Trace trace = test::traceOf({
        {Event::read(1), Event::read(2)},
        {Event::read(3), Event::read(4)},
    });
    const auto merged = trace.serializedRoundRobin(1);
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_EQ(merged[0].second.addr, 1u);
    EXPECT_EQ(merged[1].second.addr, 3u);
    EXPECT_EQ(merged[2].second.addr, 2u);
    EXPECT_EQ(merged[3].second.addr, 4u);
}

TEST(EpochLayout, FromHeartbeats)
{
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::read(2),
         Event::read(3)},
        {Event::heartbeat(), Event::read(4)},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numEpochs(), 2u);
    EXPECT_EQ(layout.block(0, 0).size(), 1u);
    EXPECT_EQ(layout.block(1, 0).size(), 2u);
    EXPECT_EQ(layout.block(0, 1).size(), 0u);
    EXPECT_EQ(layout.block(1, 1).size(), 1u);
    EXPECT_EQ(layout.block(1, 1).events[0].addr, 4u);
}

TEST(EpochLayout, PadsThreadsToSameEpochCount)
{
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::read(2),
         Event::heartbeat(), Event::read(3)},
        {Event::read(4)},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numEpochs(), 3u);
    EXPECT_EQ(layout.block(1, 1).size(), 0u);
    EXPECT_EQ(layout.block(2, 1).size(), 0u);
}

TEST(EpochLayout, UniformSlicing)
{
    std::vector<Event> prog;
    for (int i = 0; i < 10; ++i)
        prog.push_back(Event::read(i));
    Trace trace = test::traceOf({prog});
    const EpochLayout layout = EpochLayout::uniform(trace, 4);
    EXPECT_EQ(layout.numEpochs(), 3u);
    EXPECT_EQ(layout.block(0, 0).size(), 4u);
    EXPECT_EQ(layout.block(1, 0).size(), 4u);
    EXPECT_EQ(layout.block(2, 0).size(), 2u);
}

TEST(EpochLayout, UniformDropsHeartbeatMarkers)
{
    Trace trace = test::traceOf(
        {{Event::read(1), Event::heartbeat(), Event::read(2)}});
    const EpochLayout layout = EpochLayout::uniform(trace, 10);
    EXPECT_EQ(layout.numEpochs(), 1u);
    EXPECT_EQ(layout.block(0, 0).size(), 2u);
}

TEST(EpochLayout, GlobalIndexIsStableIdentity)
{
    std::vector<Event> prog;
    for (int i = 0; i < 7; ++i)
        prog.push_back(Event::read(100 + i));
    Trace trace = test::traceOf({prog});
    const EpochLayout layout = EpochLayout::uniform(trace, 3);
    EXPECT_EQ(layout.globalIndex(0, 0, 0), 0u);
    EXPECT_EQ(layout.globalIndex(1, 0, 0), 3u);
    EXPECT_EQ(layout.globalIndex(2, 0, 0), 6u);
    EXPECT_EQ(layout.block(2, 0).events[0].addr, 106u);
}

TEST(EpochLayout, SkewedSlicingRespectsBounds)
{
    // Sequential gseq over two threads; boundaries move by at most the
    // skew, so every event's epoch differs from its nominal epoch by at
    // most one.
    std::vector<std::vector<Event>> programs(2);
    for (int i = 0; i < 400; ++i) {
        programs[0].push_back(Event::read(0x100, 8));
        programs[1].push_back(Event::read(0x200, 8));
    }
    Trace trace = test::traceOf(std::move(programs));
    std::uint64_t g = 1;
    for (auto &tt : trace.threads)
        for (auto &e : tt.events)
            e.gseq = 0; // interleave round-robin below
    for (int i = 0; i < 400; ++i) {
        trace.threads[0].events[i].gseq = g++;
        trace.threads[1].events[i].gseq = g++;
    }

    const std::size_t H = 100;
    const EpochLayout exact = EpochLayout::byGlobalSeq(trace, H);
    const EpochLayout skewed =
        EpochLayout::byGlobalSeqSkewed(trace, H, 40, 7);

    ASSERT_GE(skewed.numEpochs(), exact.numEpochs() - 1);
    for (ThreadId t = 0; t < 2; ++t) {
        for (EpochId l = 0; l < skewed.numEpochs(); ++l) {
            for (const Event &e : skewed.block(l, t).events) {
                const EpochId nominal = (e.gseq - 1) / H;
                EXPECT_LE(l, nominal + 1);
                EXPECT_GE(l + 1, nominal); // l >= nominal - 1
            }
        }
    }
}

TEST(EpochLayout, SkewedWithZeroSkewMatchesExact)
{
    std::vector<Event> prog;
    for (int i = 0; i < 50; ++i)
        prog.push_back(Event::read(0x100 + i, 8));
    Trace trace = test::traceOf({prog});
    std::uint64_t g = 1;
    for (auto &e : trace.threads[0].events)
        e.gseq = g++;
    const EpochLayout a = EpochLayout::byGlobalSeq(trace, 10);
    const EpochLayout b =
        EpochLayout::byGlobalSeqSkewed(trace, 10, 0, 3);
    ASSERT_EQ(a.numEpochs(), b.numEpochs());
    for (EpochId l = 0; l < a.numEpochs(); ++l)
        EXPECT_EQ(a.block(l, 0).size(), b.block(l, 0).size());
}

TEST(EpochLayout, SkewedSlicingIsDeterministicInSeed)
{
    std::vector<std::vector<Event>> programs(3);
    for (int i = 0; i < 200; ++i)
        for (auto &p : programs)
            p.push_back(Event::read(0x100 + i, 4));
    Trace trace = test::traceOf(std::move(programs));
    std::uint64_t g = 1;
    for (int i = 0; i < 200; ++i)
        for (auto &tt : trace.threads)
            tt.events[i].gseq = g++;

    const EpochLayout a = EpochLayout::byGlobalSeqSkewed(trace, 60, 20, 9);
    const EpochLayout b = EpochLayout::byGlobalSeqSkewed(trace, 60, 20, 9);
    ASSERT_EQ(a.numEpochs(), b.numEpochs());
    for (EpochId l = 0; l < a.numEpochs(); ++l) {
        for (ThreadId t = 0; t < 3; ++t) {
            const BlockView ba = a.block(l, t);
            const BlockView bb = b.block(l, t);
            ASSERT_EQ(ba.size(), bb.size());
            EXPECT_EQ(ba.first, bb.first);
            for (std::size_t i = 0; i < ba.size(); ++i)
                EXPECT_EQ(ba.events[i].gseq, bb.events[i].gseq);
        }
    }
}

TEST(EpochLayout, SkewedSlicingPartitionsEveryEvent)
{
    // Whatever the skew does to the boundaries, the blocks of one thread
    // must stay a contiguous, in-order, exhaustive partition of that
    // thread's filtered stream — the property the butterfly passes and
    // globalIndex identity both rely on.
    std::vector<std::vector<Event>> programs(2);
    for (int i = 0; i < 300; ++i)
        for (auto &p : programs)
            p.push_back(Event::read(0x200 + i, 4));
    Trace trace = test::traceOf(std::move(programs));
    std::uint64_t g = 1;
    for (int i = 0; i < 300; ++i)
        for (auto &tt : trace.threads)
            tt.events[i].gseq = g++;

    const EpochLayout skewed =
        EpochLayout::byGlobalSeqSkewed(trace, 80, 30, 21);
    for (ThreadId t = 0; t < 2; ++t) {
        std::size_t next = 0;
        std::uint64_t prev_gseq = 0;
        for (EpochId l = 0; l < skewed.numEpochs(); ++l) {
            const BlockView blk = skewed.block(l, t);
            EXPECT_EQ(blk.first, next) << "thread " << t << " epoch " << l;
            for (const Event &e : blk.events) {
                EXPECT_GT(e.gseq, prev_gseq);
                prev_gseq = e.gseq;
            }
            next += blk.size();
        }
        EXPECT_EQ(next, trace.threads[t].events.size());
    }
}

TEST(EpochLayout, HeartbeatsWithEmptyEpochs)
{
    // Back-to-back heartbeats produce an empty epoch for every thread; a
    // stalled thread contributes empty blocks while the other advances.
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::heartbeat(),
         Event::read(2)},
        {Event::heartbeat(), Event::heartbeat(), Event::read(3)},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numEpochs(), 3u);
    EXPECT_EQ(layout.block(0, 0).size(), 1u);
    EXPECT_EQ(layout.block(1, 0).size(), 0u); // empty middle epoch
    EXPECT_EQ(layout.block(2, 0).size(), 1u);
    EXPECT_EQ(layout.block(0, 1).size(), 0u);
    EXPECT_EQ(layout.block(1, 1).size(), 0u);
    EXPECT_EQ(layout.block(2, 1).size(), 1u);
    // first still tracks the per-thread filtered offset across empties.
    EXPECT_EQ(layout.block(2, 0).first, 1u);
    EXPECT_EQ(layout.block(2, 1).first, 0u);
}

TEST(EpochLayout, HeartbeatsSingleThreadTrace)
{
    // Degenerate single-thread monitoring: the window schedule still
    // needs well-formed epochs (wings are just the one thread's
    // neighbouring blocks).
    Trace trace = test::traceOf({{Event::read(1), Event::read(2),
                                  Event::heartbeat(), Event::read(3)}});
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numThreads(), 1u);
    EXPECT_EQ(layout.numEpochs(), 2u);
    EXPECT_EQ(layout.block(0, 0).size(), 2u);
    EXPECT_EQ(layout.block(1, 0).size(), 1u);
    EXPECT_EQ(layout.block(1, 0).first, 2u);
}

TEST(EpochLayout, HeartbeatsTrailingPartialEpoch)
{
    // Events after the last heartbeat form a final (partial) epoch, and
    // a thread that ends exactly on a heartbeat contributes an empty
    // trailing block rather than losing the epoch.
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::read(2),
         Event::read(3)},
        {Event::read(4), Event::heartbeat()},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numEpochs(), 2u);
    EXPECT_EQ(layout.block(1, 0).size(), 2u);
    EXPECT_EQ(layout.block(1, 1).size(), 0u);
    EXPECT_EQ(layout.block(1, 0).first, 1u);
}

TEST(EpochLayout, DuplicateHeartbeatsShiftDeterministically)
{
    // Heartbeat markers carry no sequence numbers — they are counted
    // positionally. A duplicated (back-to-back) marker therefore does
    // not corrupt the slicing; it inserts an empty epoch for that
    // thread and shifts its subsequent blocks one epoch later. No
    // event may be lost or reordered in the process.
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::heartbeat(),
         Event::heartbeat(), Event::read(2)},
        {Event::read(3), Event::heartbeat(), Event::read(4)},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numEpochs(), 4u);
    // Thread 0: the duplicated markers open two empty epochs.
    EXPECT_EQ(layout.block(0, 0).size(), 1u);
    EXPECT_EQ(layout.block(1, 0).size(), 0u);
    EXPECT_EQ(layout.block(2, 0).size(), 0u);
    EXPECT_EQ(layout.block(3, 0).size(), 1u);
    EXPECT_EQ(layout.block(3, 0).events[0].addr, 2u);
    // Thread 1 is unaffected and pads to the common epoch count.
    EXPECT_EQ(layout.block(1, 1).size(), 1u);
    EXPECT_EQ(layout.block(2, 1).size(), 0u);
    EXPECT_EQ(layout.block(3, 1).size(), 0u);
    // Every non-heartbeat event is in exactly one block.
    std::size_t total = 0;
    for (EpochId l = 0; l < layout.numEpochs(); ++l)
        for (ThreadId t = 0; t < layout.numThreads(); ++t)
            total += layout.block(l, t).size();
    EXPECT_EQ(total, trace.instructionCount());
}

TEST(EpochLayout, SkewedHeartbeatsStayPositional)
{
    // A thread whose clock runs fast emits its markers "early" relative
    // to its peers (out-of-order between threads). There is no global
    // marker order to violate: each thread's k-th marker closes its
    // k-th epoch, so the skewed thread simply lands its events in
    // earlier epochs while its peers keep theirs.
    Trace trace = test::traceOf({
        // Fast thread: all markers up front, events land late.
        {Event::heartbeat(), Event::heartbeat(), Event::read(1),
         Event::read(2)},
        // Slow thread: events first, markers last.
        {Event::read(3), Event::read(4), Event::heartbeat(),
         Event::heartbeat()},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    EXPECT_EQ(layout.numEpochs(), 3u);
    EXPECT_EQ(layout.block(0, 0).size(), 0u);
    EXPECT_EQ(layout.block(1, 0).size(), 0u);
    EXPECT_EQ(layout.block(2, 0).size(), 2u);
    EXPECT_EQ(layout.block(0, 1).size(), 2u);
    EXPECT_EQ(layout.block(1, 1).size(), 0u);
    EXPECT_EQ(layout.block(2, 1).size(), 0u);
}

TEST(EpochStream, HeartbeatModeMatchesLayoutOnSkewedMarkers)
{
    // The streaming slicer must agree block-for-block with the
    // materialized layout even when markers are duplicated in one
    // thread and skewed across threads — this is what keeps the
    // service's pipelined analysis bit-identical to the client's
    // reference when heartbeats misbehave.
    Trace trace = test::traceOf({
        {Event::read(1), Event::heartbeat(), Event::heartbeat(),
         Event::read(2), Event::heartbeat(), Event::read(3)},
        {Event::heartbeat(), Event::read(4), Event::read(5),
         Event::heartbeat(), Event::read(6)},
        {Event::read(7), Event::heartbeat()},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);

    EpochStream::Config cfg;
    cfg.fromHeartbeats = true;
    EpochStream stream(trace, cfg);
    ASSERT_EQ(stream.numEpochs(), layout.numEpochs());
    ASSERT_EQ(stream.numThreads(), layout.numThreads());

    const std::size_t L = layout.numEpochs();
    for (EpochId l = 0; l < L; ++l) {
        stream.acquire(l);
        for (ThreadId t = 0; t < layout.numThreads(); ++t) {
            const BlockView a = layout.block(l, t);
            const BlockView b = stream.block(l, t);
            ASSERT_EQ(a.size(), b.size()) << "l=" << l << " t=" << t;
            EXPECT_EQ(a.first, b.first) << "l=" << l << " t=" << t;
            for (std::size_t i = 0; i < a.size(); ++i)
                EXPECT_EQ(a.events[i].addr, b.events[i].addr);
        }
        if (l >= 3)
            stream.retire(l - 3);
    }
    while (stream.residentEpochs() > 0)
        stream.retire(L - stream.residentEpochs());
}

TEST(LogBuffer, CapacityFromBytes)
{
    LogBuffer buf(8 * 1024, 16);
    EXPECT_EQ(buf.capacity(), 512u);
}

TEST(LogBuffer, ProduceConsumeAndStalls)
{
    LogBuffer buf(32, 16); // 2 records
    EXPECT_TRUE(buf.produce());
    EXPECT_TRUE(buf.produce());
    EXPECT_FALSE(buf.produce()); // full
    EXPECT_EQ(buf.producerStalls(), 1u);
    EXPECT_TRUE(buf.consume());
    EXPECT_TRUE(buf.produce());
    EXPECT_TRUE(buf.consume());
    EXPECT_TRUE(buf.consume());
    EXPECT_FALSE(buf.consume()); // empty
    EXPECT_EQ(buf.consumerIdles(), 1u);
    EXPECT_EQ(buf.produced(), 3u);
    EXPECT_EQ(buf.consumed(), 3u);
}

} // namespace
} // namespace bfly
