/**
 * @file
 * Tests for the monitoring harness: the performance model's structural
 * properties (who gets faster with what) and end-to-end sessions.
 */

#include <gtest/gtest.h>

#include "harness/session.hpp"

namespace bfly {
namespace {

SessionConfig
baseConfig(WorkloadFactory factory, unsigned threads,
           std::size_t epoch = 512)
{
    SessionConfig cfg;
    cfg.factory = factory;
    cfg.workload.numThreads = threads;
    cfg.workload.instrPerThread = 20000;
    cfg.workload.phaseEvents = 2000;
    cfg.workload.warmupNops = 2000;
    cfg.epochSize = epoch;
    return cfg;
}

TEST(Session, RunsEndToEndWithSaneOutputs)
{
    const SessionResult r = runSession(baseConfig(makeFft, 4));
    EXPECT_EQ(r.workloadName, "fft");
    EXPECT_EQ(r.threads, 4u);
    EXPECT_GT(r.instructions, 40000u);
    EXPECT_GT(r.memoryAccesses, 0u);
    EXPECT_GT(r.epochs, 4u);
    EXPECT_EQ(r.accuracy.falseNegatives, 0u);
    EXPECT_GT(r.perf.sequentialBaseline, 0u);
    EXPECT_GT(r.perf.timesliced.normalized, 0.0);
    EXPECT_GT(r.perf.butterfly.normalized, 0.0);
    EXPECT_GT(r.perf.parallelNoMonitor.normalized, 0.0);
}

TEST(Session, ParallelNoMonitorBeatsSequential)
{
    const SessionResult r = runSession(baseConfig(makeFft, 4));
    EXPECT_LT(r.perf.parallelNoMonitor.normalized, 1.0);
}

TEST(Session, ButterflyScalesWithThreads)
{
    const SessionResult r2 = runSession(baseConfig(makeFft, 2));
    const SessionResult r8 = runSession(baseConfig(makeFft, 8));
    EXPECT_LT(r8.perf.butterfly.normalized,
              r2.perf.butterfly.normalized);
}

TEST(Session, TimeslicedDoesNotScaleWithThreads)
{
    const SessionResult r2 = runSession(baseConfig(makeFft, 2));
    const SessionResult r8 = runSession(baseConfig(makeFft, 8));
    // Timesliced monitoring serializes everything: within a generous
    // tolerance its normalized time must not improve with threads.
    EXPECT_GT(r8.perf.timesliced.normalized,
              0.8 * r2.perf.timesliced.normalized);
}

TEST(Session, LargerEpochsAmortizeButterflyOverheadForCleanWorkloads)
{
    const SessionResult small =
        runSession(baseConfig(makeFft, 4, 256));
    const SessionResult large =
        runSession(baseConfig(makeFft, 4, 2048));
    EXPECT_LT(large.perf.butterfly.normalized,
              small.perf.butterfly.normalized);
}

TEST(Session, ElideModeKeepsZeroFalseNegativesAndShrinksTheLog)
{
    SessionConfig cfg = baseConfig(makeOcean, 4);
    cfg.elide = true;
    const SessionResult r = runSession(cfg);
    // Zero-FN is the elision soundness contract; the oracle runs on
    // the *full* trace, so any event elision mistake shows up here.
    EXPECT_EQ(r.accuracy.falseNegatives, 0u);
    EXPECT_NE(r.planFingerprint, 0u);
    // OCEAN is the ADDRCHECK stress workload the paper reproduction
    // gates on: the bulk of its accesses are provably private.
    EXPECT_GE(r.elision.elidedFraction(), 0.30);
    EXPECT_EQ(r.elision.inputEvents,
              r.elision.retainedEvents + r.elision.elidedEvents);
    EXPECT_GT(r.elision.summaryEvents, 0u);
    EXPECT_LT(r.encodedBytesMonitored, r.encodedBytesFull);
}

TEST(Session, ElideModeOffLeavesElisionFieldsZero)
{
    const SessionResult r = runSession(baseConfig(makeFft, 2));
    EXPECT_EQ(r.planFingerprint, 0u);
    EXPECT_EQ(r.elision.elidedEvents, 0u);
    EXPECT_EQ(r.encodedBytesFull, 0u);
    EXPECT_EQ(r.encodedBytesMonitored, 0u);
}

TEST(Session, ParallelPassesProduceSameAccuracy)
{
    SessionConfig cfg = baseConfig(makeBarnes, 4);
    const SessionResult seq = runSession(cfg);
    cfg.parallelPasses = true;
    const SessionResult par = runSession(cfg);
    EXPECT_EQ(seq.butterflyErrorCount, par.butterflyErrorCount);
    EXPECT_EQ(seq.accuracy.falsePositives, par.accuracy.falsePositives);
    EXPECT_EQ(seq.accuracy.falseNegatives, 0u);
    EXPECT_EQ(par.accuracy.falseNegatives, 0u);
}

TEST(Session, TsoExecutionAlsoHasZeroFalseNegatives)
{
    SessionConfig cfg = baseConfig(makeOcean, 4);
    cfg.model = MemModel::TSO;
    const SessionResult r = runSession(cfg);
    EXPECT_EQ(r.accuracy.falseNegatives, 0u);
}

TEST(Session, FalsePositiveRateMatchesCounts)
{
    SessionConfig cfg = baseConfig(makeOcean, 4, 4096);
    const SessionResult r = runSession(cfg);
    EXPECT_NEAR(r.falsePositiveRate,
                static_cast<double>(r.accuracy.falsePositives) /
                    r.memoryAccesses,
                1e-12);
}

TEST(Session, AppStallsAppearWhenLifeguardIsBottleneck)
{
    // Butterfly monitoring with its per-event costs is slower than the
    // app; the bounded log buffer must back-pressure the app.
    const SessionResult r = runSession(baseConfig(makeFft, 2));
    EXPECT_GT(r.perf.butterfly.timing.appStallCycles, 0u);
}

TEST(PerfModel, FpCostSlowsButterflyDown)
{
    SessionConfig cfg = baseConfig(makeOcean, 4, 4096);
    cfg.costs.fpCost = 0;
    const SessionResult cheap = runSession(cfg);
    cfg.costs.fpCost = 50000;
    const SessionResult costly = runSession(cfg);
    ASSERT_GT(costly.accuracy.falsePositives, 0u);
    EXPECT_GT(costly.perf.butterfly.timing.totalCycles,
              cheap.perf.butterfly.timing.totalCycles);
}

TEST(PerfModel, BarrierCostPenalizesSmallEpochs)
{
    SessionConfig cfg = baseConfig(makeFft, 4, 256);
    cfg.costs.barrierCost = 0;
    const SessionResult free_barriers = runSession(cfg);
    cfg.costs.barrierCost = 5000;
    const SessionResult costly = runSession(cfg);
    EXPECT_GT(costly.perf.butterfly.timing.totalCycles,
              free_barriers.perf.butterfly.timing.totalCycles);
}

TEST(PerfModel, TinyLogBufferStallsTheApp)
{
    SessionConfig cfg = baseConfig(makeFft, 2);
    cfg.logBufferBytes = 64;
    const SessionResult tiny = runSession(cfg);
    cfg.logBufferBytes = 64 * 1024;
    const SessionResult big = runSession(cfg);
    EXPECT_GE(tiny.perf.butterfly.timing.appStallCycles,
              big.perf.butterfly.timing.appStallCycles);
}

} // namespace
} // namespace bfly
