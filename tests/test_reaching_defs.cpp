/**
 * @file
 * Tests for butterfly reaching definitions (paper Section 5.1), including
 * exhaustive verification of Lemma 5.1 (GEN_l / KILL_l correctness) and
 * Lemma 5.2 (the SOS invariant) against every valid ordering of
 * randomized small traces.
 */

#include <gtest/gtest.h>

#include "butterfly/reaching_defs.hpp"
#include "butterfly/window.hpp"
#include "tests/helpers.hpp"

namespace bfly {
namespace {

struct RunResult
{
    Trace trace;
    EpochLayout layout;
    ReachingDefinitions analysis;
};

/** Run the full butterfly schedule over an embedded-heartbeat trace. */
std::unique_ptr<RunResult>
runDefs(Trace trace)
{
    auto result = std::make_unique<RunResult>(RunResult{
        std::move(trace), EpochLayout::fromHeartbeats(Trace{}),
        ReachingDefinitions(0)});
    result->layout = EpochLayout::fromHeartbeats(result->trace);
    result->analysis =
        ReachingDefinitions(result->layout.numThreads());
    WindowSchedule().run(result->layout, result->analysis);
    return result;
}

TEST(ReachingDefs, SingleThreadSequentialSemantics)
{
    // One thread, two epochs: the SOS two epochs later holds exactly the
    // last definition of each location.
    auto r = runDefs(test::traceOf({{
        Event::write(0x10, 8), // def (0,0,0)
        Event::write(0x10, 8), // def (0,0,1) kills (0,0,0)
        Event::write(0x18, 8), // def (0,0,2)
        Event::heartbeat(),
        Event::write(0x18, 8), // def (1,0,0)
    }}));

    const DefSet &sos2 = r->analysis.sos(2);
    EXPECT_FALSE(sos2.contains(InstrId{0, 0, 0}.pack()));
    EXPECT_TRUE(sos2.contains(InstrId{0, 0, 1}.pack()));
    EXPECT_TRUE(sos2.contains(InstrId{0, 0, 2}.pack()));

    const DefSet &sos3 = r->analysis.sos(3);
    EXPECT_TRUE(sos3.contains(InstrId{0, 0, 1}.pack()));
    EXPECT_FALSE(sos3.contains(InstrId{0, 0, 2}.pack())); // killed by 1,0,0
    EXPECT_TRUE(sos3.contains(InstrId{1, 0, 0}.pack()));
}

TEST(ReachingDefs, GenIsGlobalAcrossWings)
{
    // Thread 1 defines x in epoch 0; thread 0's block in epoch 0 sees the
    // definition through GEN-SIDE-IN even though its own LSOS is empty.
    auto r = runDefs(test::traceOf({
        {Event::read(0x99)},       // thread 0: irrelevant event
        {Event::write(0x10, 8)},   // thread 1: defines x
    }));
    const auto &res = r->analysis.blockResults(0, 0);
    EXPECT_TRUE(res.genSideIn.contains(InstrId{0, 1, 0}.pack()));
    EXPECT_TRUE(res.in.contains(InstrId{0, 1, 0}.pack()));
}

TEST(ReachingDefs, KillIsLocalConcurrentRedefinitionBothReach)
{
    // Both threads define x concurrently in epoch 0: both definitions
    // may reach (no ordering information), so both are in OUT of both
    // blocks and both enter SOS_2 (GEN_l is a plain union).
    auto r = runDefs(test::traceOf({
        {Event::write(0x10, 8)},
        {Event::write(0x10, 8)},
    }));
    const DefId d0 = InstrId{0, 0, 0}.pack();
    const DefId d1 = InstrId{0, 1, 0}.pack();
    EXPECT_TRUE(r->analysis.sos(2).contains(d0));
    EXPECT_TRUE(r->analysis.sos(2).contains(d1));
    // Each block sees the other's def in IN (generating is global) but
    // OUT = GEN U (IN - KILL) drops it block-locally; the may-reach
    // union happens at the epoch level (GEN_l), as asserted above.
    EXPECT_TRUE(r->analysis.blockResults(0, 0).in.contains(d1));
    EXPECT_TRUE(r->analysis.blockResults(0, 1).in.contains(d0));
    EXPECT_FALSE(r->analysis.blockResults(0, 0).out.contains(d1));
    EXPECT_FALSE(r->analysis.blockResults(0, 1).out.contains(d0));
}

TEST(ReachingDefs, EpochKillRequiresAllThreadsAgree)
{
    // Def in epoch 0; thread 0 kills x in epoch 2 but thread 1
    // regenerates x in epoch 2: the old def dies (someone killed it and
    // thread 1's own new def survives instead), yet thread 1's def must
    // survive.
    auto r = runDefs(test::traceOf({
        {Event::write(0x10, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::write(0x10, 8)},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::write(0x10, 8)},
    }));
    const DefId d_old = InstrId{0, 0, 0}.pack();
    const DefId d_t0 = InstrId{2, 0, 0}.pack();
    const DefId d_t1 = InstrId{2, 1, 0}.pack();
    // SOS_4 summarizes epochs 0..2.
    const DefSet &sos4 = r->analysis.sos(4);
    EXPECT_FALSE(sos4.contains(d_old)); // killed by both threads
    EXPECT_TRUE(sos4.contains(d_t0));
    EXPECT_TRUE(sos4.contains(d_t1));
}

TEST(ReachingDefs, LsosResurrectionTerm)
{
    // SOS def killed by the head, but another thread regenerated the
    // location in epoch l-2 (which may interleave after the head): the
    // regenerated def reaches the body.
    //
    //   t0 epoch0: def x (enters SOS_2)
    //   t1 epoch1: def x (the l-2 regeneration, l=3)
    //   t0 epoch2: def x then... head kills old defs of x
    //   body = (3, 0)
    auto r = runDefs(test::traceOf({
        {Event::write(0x10, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::write(0x10, 8), Event::heartbeat(),
         Event::read(0x10)},
        {Event::nop(), Event::heartbeat(), Event::write(0x10, 8),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::nop()},
    }));
    const DefId d_t1_e1 = InstrId{1, 1, 0}.pack();
    const auto &body = r->analysis.blockResults(3, 0);
    // d_t1_e1 is in SOS_3; the head (2,0) kills x; but (1,1) generated it
    // and epoch 1... wait: the resurrection term needs GEN_{l-2,t'} =
    // GEN_{1,t1}: satisfied. So it must be in the LSOS.
    EXPECT_TRUE(r->analysis.sos(3).contains(d_t1_e1));
    EXPECT_TRUE(body.lsos.contains(d_t1_e1));
    // The head's own def reaches too.
    EXPECT_TRUE(body.lsos.contains(InstrId{2, 0, 0}.pack()));
}

TEST(ReachingDefs, InAtWalksTheBlockSequentially)
{
    auto r = runDefs(test::traceOf({{
        Event::write(0x10, 8),
        Event::write(0x10, 8),
    }}));
    const DefId d0 = InstrId{0, 0, 0}.pack();
    const DefId d1 = InstrId{0, 0, 1}.pack();
    EXPECT_FALSE(r->analysis.inAt(0, 0, 0).contains(d0));
    EXPECT_TRUE(r->analysis.inAt(0, 0, 1).contains(d0));
    const DefSet in2 = r->analysis.inAt(0, 0, 2);
    EXPECT_FALSE(in2.contains(d0)); // killed by d1
    EXPECT_TRUE(in2.contains(d1));
}

// --------------------------------------------------------------------
// Property tests: exhaustive verification against all valid orderings.
// --------------------------------------------------------------------

class ReachingDefsProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ReachingDefsProperty, Lemma51GenAndKillEpoch)
{
    Rng rng(GetParam());
    const Trace trace = test::randomSmallTrace(rng, 2, 3, 2, 3);
    auto r = runDefs(trace);
    const std::size_t L = r->layout.numEpochs();

    for (EpochId l = 0; l < L; ++l) {
        const ValidOrderings vo(r->layout, l);
        if (vo.size() == 0)
            continue;

        // Collect GEN(O_l) across every valid ordering.
        std::vector<DefSet> all_gens;
        vo.forEach([&](const std::vector<OrderedInstr> &order) {
            all_gens.push_back(test::genOfOrdering(order, defaultDefines));
            return true;
        });

        // Lemma 5.1 (GEN): every d in GEN_l is realized by some ordering.
        for (DefId d : r->analysis.genEpoch(l)) {
            bool witnessed = false;
            for (const DefSet &g : all_gens)
                witnessed = witnessed || g.contains(d);
            EXPECT_TRUE(witnessed)
                << "GEN_" << l << " def " << InstrId::unpack(d).toString()
                << " not realizable (seed " << GetParam() << ")";
        }

        // Lemma 5.1 (KILL): every def the analysis declares epoch-killed
        // is dead under *all* orderings.
        for (EpochId dl = 0; dl <= l; ++dl) {
            for (ThreadId dt = 0; dt < 2; ++dt) {
                const BlockView block = r->layout.block(dl, dt);
                for (InstrOffset i = 0; i < block.size(); ++i) {
                    const DefId d = InstrId{dl, dt, i}.pack();
                    if (!defaultDefines(block.events[i]))
                        continue;
                    if (!r->analysis.inKillEpoch(d, l))
                        continue;
                    for (const DefSet &g : all_gens) {
                        EXPECT_FALSE(g.contains(d))
                            << "KILL_" << l << " def "
                            << InstrId::unpack(d).toString()
                            << " reached under some ordering (seed "
                            << GetParam() << ")";
                    }
                }
            }
        }
    }
}

TEST_P(ReachingDefsProperty, Lemma52SosInvariant)
{
    Rng rng(GetParam() * 7919 + 13);
    const Trace trace = test::randomSmallTrace(rng, 2, 3, 2, 3);
    auto r = runDefs(trace);
    const std::size_t L = r->layout.numEpochs();

    // SOS_l holds d iff some valid ordering of epochs [0, l-2] ends with
    // d defined (checked for every epoch whose window fits the trace).
    for (EpochId l = 2; l < L + 2; ++l) {
        const EpochId last = l - 2;
        if (last >= L)
            break;
        const ValidOrderings vo(r->layout, last);

        DefSet realizable;
        vo.forEach([&](const std::vector<OrderedInstr> &order) {
            const DefSet g = test::genOfOrdering(order, defaultDefines);
            realizable.unionWith(g);
            return true;
        });

        EXPECT_EQ(r->analysis.sos(l).sorted(), realizable.sorted())
            << "SOS invariant violated at epoch " << l << " (seed "
            << GetParam() << ")";
    }
}

TEST_P(ReachingDefsProperty, InIsSoundForEveryPathToTheBlock)
{
    Rng rng(GetParam() * 104729 + 7);
    const Trace trace = test::randomSmallTrace(rng, 2, 3, 2, 2);
    auto r = runDefs(trace);
    const std::size_t L = r->layout.numEpochs();

    // For every block (l,t) and every valid ordering of epochs up to
    // l+1 (the wings), the definitions live just before the block's
    // first instruction must be contained in IN_{l,t}.
    for (EpochId l = 0; l < L; ++l) {
        const EpochId hi = std::min<EpochId>(l + 1, L - 1);
        const ValidOrderings vo(r->layout, hi);
        for (ThreadId t = 0; t < 2; ++t) {
            if (r->layout.block(l, t).empty())
                continue;
            const auto &in = r->analysis.blockResults(l, t).in;
            vo.forEach([&](const std::vector<OrderedInstr> &order) {
                std::vector<OrderedInstr> prefix;
                for (const OrderedInstr &oi : order) {
                    if (oi.l == l && oi.t == t && oi.i == 0)
                        break;
                    prefix.push_back(oi);
                }
                const DefSet live =
                    test::genOfOrdering(prefix, defaultDefines);
                for (DefId d : live) {
                    EXPECT_TRUE(in.contains(d))
                        << "IN_{" << l << "," << t << "} missing "
                        << InstrId::unpack(d).toString() << " (seed "
                        << GetParam() << ")";
                }
                return true;
            });
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachingDefsProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace bfly
