/**
 * @file
 * Differential fuzzing subsystem tests: generator determinism and
 * hygiene, clean conformance runs, mutation-tested fault detection,
 * delta-debugging minimization, repro serialization, and replay of the
 * checked-in tests/corpus/ regression set.
 */

#include <cstdlib>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/fuzz/corpus.hpp"
#include "src/fuzz/differential_runner.hpp"
#include "src/fuzz/minimizer.hpp"
#include "src/fuzz/trace_fuzzer.hpp"
#include "src/service/analyzer.hpp"

using namespace bfly;
using namespace bfly::fuzz;

namespace {

/** A hand-built case whose rogue accesses are guaranteed oracle errors:
 *  thread 1 reads/frees memory that is never allocated, while thread 0
 *  does @p padding benign allocated-slot reads (minimizer chaff). */
FuzzCase
rogueCase(std::size_t padding)
{
    constexpr Addr kBase = 0x10000;
    FuzzCase c;
    c.caseId = 424242;
    c.scenario = "hand-rogue";
    c.heapBase = kBase;
    c.heapLimit = kBase + 0x8000;
    c.interleaveSeed = 99;
    c.globalH = 32;
    c.programs.resize(2);

    c.programs[0].push_back(Event::alloc(kBase, 64));
    for (std::size_t i = 0; i < padding; ++i)
        c.programs[0].push_back(Event::read(kBase + 8 * (i % 8), 4));

    c.programs[1].push_back(Event::read(kBase + 0x4000, 4));
    c.programs[1].push_back(Event::write(kBase + 0x4100, 4));
    c.programs[1].push_back(Event::freeOf(kBase + 0x4200));
    return c;
}

} // namespace

TEST(TraceFuzzer, StreamIsDeterministic)
{
    FuzzerConfig cfg;
    cfg.seed = 77;
    TraceFuzzer a(cfg), b(cfg);
    for (int i = 0; i < 25; ++i) {
        const FuzzCase ca = a.next();
        const FuzzCase cb = b.next();
        EXPECT_EQ(encodeCase(ca), encodeCase(cb)) << "case " << i;
    }
}

TEST(TraceFuzzer, GenerateIsPureFunctionOfSeed)
{
    TraceFuzzer f(FuzzerConfig{});
    for (std::uint64_t s : {1ull, 17ull, 0xdeadbeefull}) {
        EXPECT_EQ(encodeCase(f.generate(s)), encodeCase(f.generate(s)));
    }
    EXPECT_NE(encodeCase(f.generate(1)), encodeCase(f.generate(2)));
}

TEST(TraceFuzzer, CasesAreWellFormed)
{
    FuzzerConfig cfg;
    cfg.seed = 5;
    TraceFuzzer fuzzer(cfg);
    for (int i = 0; i < 60; ++i) {
        const FuzzCase c = fuzzer.next();
        ASSERT_GE(c.programs.size(), 1u);
        ASSERT_GT(c.totalEvents(), 0u);
        ASSERT_GE(c.globalH, 1u);
        for (const auto &program : c.programs)
            for (const Event &e : program) {
                // Heartbeats/barriers would fight the fuzzer's explicit
                // epoching (byGlobalSeq) and the interleaver.
                EXPECT_NE(e.kind, EventKind::Heartbeat);
                EXPECT_NE(e.kind, EventKind::Barrier);
            }
        const Trace t = c.materialize();
        ASSERT_EQ(t.numThreads(), c.programs.size());
        for (std::size_t th = 0; th < c.programs.size(); ++th)
            EXPECT_EQ(t.threads[th].events.size(),
                      c.programs[th].size());
        // Deterministic replay: same case, same trace.
        const Trace t2 = c.materialize();
        for (std::size_t th = 0; th < t.numThreads(); ++th)
            for (std::size_t e = 0; e < t.threads[th].events.size(); ++e)
                EXPECT_EQ(t.threads[th].events[e].gseq,
                          t2.threads[th].events[e].gseq);
    }
}

TEST(TraceFuzzer, MutationPreservesWellFormedness)
{
    FuzzerConfig cfg;
    cfg.seed = 11;
    cfg.mutateProbability = 1.0; // force the mutation path
    TraceFuzzer fuzzer(cfg);
    for (int i = 0; i < 40; ++i) {
        const FuzzCase c = fuzzer.next();
        EXPECT_GT(c.totalEvents(), 0u);
        const Trace t = c.materialize();
        EXPECT_EQ(t.numThreads(), c.programs.size());
    }
}

TEST(DifferentialRunner, CleanOnFuzzedCases)
{
    FuzzerConfig cfg;
    cfg.seed = 1234;
    TraceFuzzer fuzzer(cfg);
    const DifferentialRunner runner;
    std::size_t oracle_errors = 0;
    for (int i = 0; i < 30; ++i) {
        const FuzzCase c = fuzzer.next();
        const CaseOutcome outcome = runner.run(c);
        oracle_errors += outcome.oracleErrors;
        ASSERT_TRUE(outcome.clean())
            << c.scenario << " case " << c.caseId << ": "
            << outcome.violations.front().toString();
    }
    // The adversarial generators must actually exercise the error paths.
    EXPECT_GT(oracle_errors, 0u);
}

TEST(DifferentialRunner, RogueCaseFlagsErrorsButStaysClean)
{
    const DifferentialRunner runner;
    const CaseOutcome outcome = runner.run(rogueCase(16));
    ASSERT_TRUE(outcome.clean());
    EXPECT_GE(outcome.oracleErrors, 3u); // read + write + free, at least
    EXPECT_GE(outcome.butterflyErrors, 3u);
}

TEST(DifferentialRunner, InjectedModeDependentBugBreaksEquivalence)
{
    RunnerConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.target = Lifeguard::AddrCheck;
    cfg.fault.dropKind = ErrorKind::UnallocatedAccess;
    cfg.fault.modeMask =
        1u << static_cast<unsigned>(RunMode::Parallel);
    const DifferentialRunner runner(cfg);

    const CaseOutcome outcome = runner.run(rogueCase(16));
    ASSERT_FALSE(outcome.clean());
    bool saw = false;
    for (const Violation &v : outcome.violations)
        saw = saw || (v.invariant == Invariant::ModeEquivalence &&
                      v.lifeguard == Lifeguard::AddrCheck &&
                      v.mode == RunMode::Parallel);
    EXPECT_TRUE(saw) << outcome.violations.front().toString();
}

TEST(DifferentialRunner, InjectedAllModesBugBecomesFalseNegative)
{
    RunnerConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.target = Lifeguard::AddrCheck;
    cfg.fault.dropKind = ErrorKind::UnallocatedAccess;
    cfg.fault.modeMask = kAllModesMask; // every mode: a true lifeguard bug
    const DifferentialRunner runner(cfg);

    const CaseOutcome outcome = runner.run(rogueCase(16));
    ASSERT_FALSE(outcome.clean());
    bool saw = false;
    for (const Violation &v : outcome.violations)
        saw = saw || (v.invariant == Invariant::OracleSubsumption &&
                      v.lifeguard == Lifeguard::AddrCheck);
    EXPECT_TRUE(saw);
}

TEST(DifferentialRunner, ElisionAxisIsCleanOnFuzzedCases)
{
    // The opt-in elision axis re-runs the sequential lifeguards on an
    // elided copy of every trace and requires the full-trace oracle to
    // stay subsumed. On the adversarial generators almost nothing is
    // provably private (shared slots, taint ops), so the proof here is
    // zero violations, not a high elision rate.
    FuzzerConfig cfg;
    cfg.seed = 777;
    TraceFuzzer fuzzer(cfg);
    RunnerConfig rcfg;
    rcfg.checkElision = true;
    const DifferentialRunner runner(rcfg);
    for (int i = 0; i < 30; ++i) {
        const FuzzCase c = fuzzer.next();
        const CaseOutcome outcome = runner.run(c);
        ASSERT_TRUE(outcome.clean())
            << c.scenario << " case " << c.caseId << ": "
            << outcome.violations.front().toString();
        EXPECT_LE(outcome.summaryEvents, outcome.elidedEvents);
    }
}

TEST(DifferentialRunner, ElisionAxisStaysCleanOnErrorHeavyCase)
{
    // A case with real oracle errors: eliding must not hide any of
    // them (the rogue accesses are shared/unallocated, so they are
    // never candidates).
    RunnerConfig rcfg;
    rcfg.checkElision = true;
    const DifferentialRunner runner(rcfg);
    const CaseOutcome outcome = runner.run(rogueCase(16));
    ASSERT_TRUE(outcome.clean());
    EXPECT_GE(outcome.oracleErrors, 3u);
}

TEST(DifferentialRunner, InjectedSequentialDropSurfacesElisionViolation)
{
    // Drop UnallocatedAccess records from the sequential ADDRCHECK run
    // in every mode: the elided re-run then misses oracle errors and
    // the ElisionSoundness invariant must fire.
    RunnerConfig rcfg;
    rcfg.checkElision = true;
    rcfg.fault.enabled = true;
    rcfg.fault.target = Lifeguard::AddrCheck;
    rcfg.fault.dropKind = ErrorKind::UnallocatedAccess;
    rcfg.fault.modeMask = kAllModesMask;
    const DifferentialRunner runner(rcfg);

    const CaseOutcome outcome = runner.run(rogueCase(16));
    ASSERT_FALSE(outcome.clean());
    bool saw = false;
    for (const Violation &v : outcome.violations)
        saw = saw || (v.invariant == Invariant::ElisionSoundness &&
                      v.lifeguard == Lifeguard::AddrCheck &&
                      v.mode == RunMode::Sequential);
    EXPECT_TRUE(saw) << outcome.violations.front().toString();
}

TEST(TraceMinimizer, ShrinksInjectedBugToSmallRepro)
{
    RunnerConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.target = Lifeguard::AddrCheck;
    cfg.fault.dropKind = ErrorKind::UnallocatedAccess;
    cfg.fault.modeMask = kAllModesMask;
    const DifferentialRunner runner(cfg);

    const FuzzCase failing = rogueCase(120); // ~123 events of chaff
    ASSERT_FALSE(runner.run(failing).clean());

    TraceMinimizer minimizer(runner);
    const TraceMinimizer::Result result = minimizer.minimize(failing);
    ASSERT_TRUE(result.reproduced);
    EXPECT_EQ(result.signature.invariant, Invariant::OracleSubsumption);
    EXPECT_EQ(result.signature.lifeguard, Lifeguard::AddrCheck);
    EXPECT_GT(result.fromEvents, 100u);
    EXPECT_LE(result.toEvents, 25u); // acceptance bar for the issue
    // The minimized case must fail for the same reason.
    const CaseOutcome after = runner.run(result.minimized);
    EXPECT_TRUE(result.signature.matches(after));
}

TEST(TraceMinimizer, CleanCaseIsReportedAsNotReproduced)
{
    const DifferentialRunner runner;
    TraceMinimizer minimizer(runner);
    const TraceMinimizer::Result result =
        minimizer.minimize(rogueCase(4));
    EXPECT_FALSE(result.reproduced);
    EXPECT_EQ(result.toEvents, result.fromEvents);
}

TEST(Corpus, EncodeDecodeRoundTripsBitExactly)
{
    FuzzerConfig cfg;
    cfg.seed = 31337;
    TraceFuzzer fuzzer(cfg);
    for (int i = 0; i < 50; ++i) {
        const FuzzCase c = fuzzer.next();
        const std::vector<std::uint8_t> bytes = encodeCase(c);
        const FuzzCase back = decodeCase(bytes);
        EXPECT_EQ(encodeCase(back), bytes);
        EXPECT_EQ(back.caseId, c.caseId);
        EXPECT_EQ(back.scenario, c.scenario);
        EXPECT_EQ(back.interleaveSeed, c.interleaveSeed);
        EXPECT_EQ(back.globalH, c.globalH);
        EXPECT_EQ(back.speedWeights, c.speedWeights);
        ASSERT_EQ(back.programs.size(), c.programs.size());
    }
}

TEST(Corpus, DecodeRejectsGarbage)
{
    EXPECT_THROW(decodeCase({}), std::runtime_error);
    EXPECT_THROW(decodeCase({'B', 'A', 'D', '!', 1}),
                 std::runtime_error);
    std::vector<std::uint8_t> truncated = encodeCase(rogueCase(2));
    truncated.resize(truncated.size() / 2);
    EXPECT_THROW(decodeCase(truncated), std::runtime_error);
    std::vector<std::uint8_t> trailing = encodeCase(rogueCase(2));
    trailing.push_back(0);
    EXPECT_THROW(decodeCase(trailing), std::runtime_error);
}

TEST(Corpus, SaveLoadRoundTripsThroughDisk)
{
    const FuzzCase c = rogueCase(8);
    const std::string path =
        (std::filesystem::temp_directory_path() / "bfly_repro_test.bfz")
            .string();
    ASSERT_TRUE(saveRepro(c, path));
    const FuzzCase back = loadRepro(path);
    EXPECT_EQ(encodeCase(back), encodeCase(c));
    std::filesystem::remove(path);
}

TEST(CorpusReplay, ModeMatrixIncludesBatched)
{
    // The checked-in corpus is only a Batched regression gate if the
    // runner's mode matrix actually executes Batched: a fault injected
    // into Batched alone must surface as a mode-equivalence violation
    // attributed to that mode.
    RunnerConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.target = Lifeguard::AddrCheck;
    cfg.fault.dropKind = ErrorKind::UnallocatedAccess;
    cfg.fault.modeMask = 1u << static_cast<unsigned>(RunMode::Batched);
    const DifferentialRunner runner(cfg);
    const CaseOutcome outcome = runner.run(rogueCase(16));
    ASSERT_FALSE(outcome.clean());
    bool saw = false;
    for (const Violation &v : outcome.violations)
        saw = saw || (v.invariant == Invariant::ModeEquivalence &&
                      v.mode == RunMode::Batched);
    EXPECT_TRUE(saw) << outcome.violations.front().toString();
}

#ifdef BFLY_CORPUS_DIR
TEST(CorpusReplay, CheckedInReprosStayClean)
{
    const std::vector<std::string> files = listCorpus(BFLY_CORPUS_DIR);
    ASSERT_FALSE(files.empty())
        << "no .bfz repros under " << BFLY_CORPUS_DIR;
    const DifferentialRunner runner;
    for (const std::string &path : files) {
        const FuzzCase c = loadRepro(path);
        const CaseOutcome outcome = runner.run(c);
        EXPECT_TRUE(outcome.clean())
            << path << ": " << outcome.violations.front().toString();
        EXPECT_GT(outcome.events, 0u) << path;
    }
}

TEST(CorpusReplay, BatchedKernelsMatchScalarOnEveryRepro)
{
    // Second Batched gate, independent of the runner's internals: every
    // checked-in repro, run through the service's reference analyzer,
    // must produce a bit-identical report with the columnar (batch)
    // pass-1 kernels and the scalar ones, for all six lifeguards. This
    // is the exact agreement MuxConfig::batchMode relies on.
    const std::vector<std::string> files = listCorpus(BFLY_CORPUS_DIR);
    ASSERT_FALSE(files.empty());
    for (const std::string &path : files) {
        const FuzzCase c = loadRepro(path);
        const Trace trace = c.materialize();
        const EpochLayout layout =
            EpochLayout::byGlobalSeq(trace, c.globalH);
        for (int lg = 0; lg < 6; ++lg) {
            service::SessionSpec spec;
            spec.lifeguard = static_cast<std::uint8_t>(lg);
            spec.memModel = c.model == MemModel::TSO ? 1 : 0;
            spec.numThreads =
                static_cast<std::uint32_t>(trace.numThreads());
            spec.granularity = lg == 1 || lg == 5 ? 4 : 8;
            spec.heapBase = c.heapBase;
            spec.heapLimit = c.heapLimit;
            const service::RemoteReport scalar =
                service::analyzeReference(spec, trace, layout, false);
            const service::RemoteReport batched =
                service::analyzeReference(spec, trace, layout, true);
            EXPECT_TRUE(batched.identical(scalar))
                << path << " lifeguard " << lg
                << ": columnar kernels diverged from scalar";
        }
    }
}
#endif
