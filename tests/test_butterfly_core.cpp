/**
 * @file
 * Unit tests for the butterfly core scaffolding: instruction ids and the
 * strictly-before relation (Section 6.2), butterfly position
 * classification, and the exact pass ordering of WindowSchedule
 * (Section 4.3's four steps).
 */

#include <algorithm>
#include <mutex>

#include <gtest/gtest.h>

#include "butterfly/ids.hpp"
#include "butterfly/window.hpp"
#include "tests/helpers.hpp"

namespace bfly {
namespace {

TEST(InstrId, PackUnpackRoundTrip)
{
    const InstrId ids[] = {
        {0, 0, 0},
        {5, 3, 17},
        {1000, 255, 0xffffffff},
        {(1u << 24) - 1, 7, 42},
    };
    for (const InstrId &id : ids) {
        const InstrId back = InstrId::unpack(id.pack());
        EXPECT_EQ(back.l, id.l);
        EXPECT_EQ(back.t, id.t);
        EXPECT_EQ(back.i, id.i);
    }
}

TEST(InstrId, PackOrdersWithinThread)
{
    EXPECT_LT((InstrId{1, 2, 3}.pack()), (InstrId{1, 2, 4}.pack()));
    EXPECT_LT((InstrId{1, 2, 3}.pack()), (InstrId{2, 2, 0}.pack()));
}

TEST(StrictlyBefore, NonAdjacentEpochsAlwaysOrdered)
{
    const InstrId a{0, 0, 5};
    const InstrId b{2, 1, 0};
    EXPECT_TRUE(strictlyBefore(a, b, true));
    EXPECT_TRUE(strictlyBefore(a, b, false)); // even relaxed
    EXPECT_FALSE(strictlyBefore(b, a, true));
}

TEST(StrictlyBefore, ProgramOrderOnlyUnderSC)
{
    const InstrId a{1, 0, 3};
    const InstrId b{1, 0, 7};
    EXPECT_TRUE(strictlyBefore(a, b, true));
    EXPECT_FALSE(strictlyBefore(a, b, false)); // relaxed: no such order
    EXPECT_FALSE(strictlyBefore(b, a, true));

    const InstrId later_epoch{2, 0, 0};
    EXPECT_TRUE(strictlyBefore(a, later_epoch, true));
    EXPECT_FALSE(strictlyBefore(a, later_epoch, false));
}

TEST(StrictlyBefore, AdjacentEpochsCrossThreadUnordered)
{
    const InstrId a{1, 0, 3};
    const InstrId b{2, 1, 0};
    EXPECT_FALSE(strictlyBefore(a, b, true));
    EXPECT_FALSE(strictlyBefore(b, a, true));
}

TEST(Classify, ButterflyAnatomy)
{
    // Butterfly with body (5, 2).
    EXPECT_EQ(classify(5, 2, 5, 2), WingPosition::Body);
    EXPECT_EQ(classify(5, 2, 4, 2), WingPosition::Head);
    EXPECT_EQ(classify(5, 2, 6, 2), WingPosition::Tail);
    EXPECT_EQ(classify(5, 2, 4, 0), WingPosition::Wings);
    EXPECT_EQ(classify(5, 2, 5, 0), WingPosition::Wings);
    EXPECT_EQ(classify(5, 2, 6, 0), WingPosition::Wings);
    EXPECT_EQ(classify(5, 2, 3, 0), WingPosition::BeforeWindow);
    EXPECT_EQ(classify(5, 2, 3, 2), WingPosition::BeforeWindow);
    EXPECT_EQ(classify(5, 2, 7, 0), WingPosition::AfterWindow);
}

/** Records every hook call to verify the Section 4.3 schedule. */
class RecordingDriver : public AnalysisDriver
{
  public:
    std::vector<std::string> calls;

    void
    pass1(const BlockView &block) override
    {
        calls.push_back("p1(" + std::to_string(block.epoch) + "," +
                        std::to_string(block.thread) + ")");
    }
    void
    pass2(const BlockView &block) override
    {
        calls.push_back("p2(" + std::to_string(block.epoch) + "," +
                        std::to_string(block.thread) + ")");
    }
    void
    finalizeEpoch(EpochId l) override
    {
        calls.push_back("fin(" + std::to_string(l) + ")");
    }
};

TEST(WindowSchedule, FourStepOrder)
{
    // 2 threads x 3 epochs, one event per block.
    std::vector<Event> prog = {Event::nop(), Event::heartbeat(),
                               Event::nop(), Event::heartbeat(),
                               Event::nop()};
    Trace trace = test::traceOf({prog, prog});
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);

    RecordingDriver driver;
    WindowSchedule().run(layout, driver);

    const std::vector<std::string> expected = {
        "p1(0,0)", "p1(0,1)",             // epoch 0 arrives
        "p1(1,0)", "p1(1,1)",             // epoch 1 arrives...
        "p2(0,0)", "p2(0,1)", "fin(0)",   // ...epoch 0's wings complete
        "p1(2,0)", "p1(2,1)",
        "p2(1,0)", "p2(1,1)", "fin(1)",
        "p2(2,0)", "p2(2,1)", "fin(2)",   // trace boundary
    };
    EXPECT_EQ(driver.calls, expected);
}

TEST(WindowSchedule, EmptyTraceIsANoOp)
{
    Trace trace = test::traceOf({{}});
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    RecordingDriver driver;
    WindowSchedule().run(layout, driver);
    // A single (empty) epoch still flows through both passes.
    EXPECT_EQ(driver.calls,
              (std::vector<std::string>{"p1(0,0)", "p2(0,0)", "fin(0)"}));
}

TEST(WindowSchedule, ParallelPassesPreserveBarrierOrdering)
{
    // With parallel passes the per-pass call order across threads is
    // arbitrary, but passes themselves must stay ordered: every p1 of
    // epoch l precedes every p2 of epoch l-1, which precedes fin(l-1).
    std::vector<Event> prog = {Event::nop(), Event::heartbeat(),
                               Event::nop()};
    Trace trace = test::traceOf({prog, prog, prog});
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);

    // RecordingDriver is not thread-safe; serialize with a mutex.
    class LockedDriver : public RecordingDriver
    {
      public:
        std::mutex m;
        void
        pass1(const BlockView &b) override
        {
            std::lock_guard<std::mutex> g(m);
            RecordingDriver::pass1(b);
        }
        void
        pass2(const BlockView &b) override
        {
            std::lock_guard<std::mutex> g(m);
            RecordingDriver::pass2(b);
        }
    };
    LockedDriver driver;
    WindowSchedule(true).run(layout, driver);

    ASSERT_EQ(driver.calls.size(), 3u * 2 + 3 * 2 + 2);
    auto index_of = [&](const std::string &s) {
        return std::find(driver.calls.begin(), driver.calls.end(), s) -
               driver.calls.begin();
    };
    for (int t = 0; t < 3; ++t) {
        EXPECT_LT(index_of("p1(1," + std::to_string(t) + ")"),
                  index_of("fin(0)"));
        EXPECT_LT(index_of("p2(0," + std::to_string(t) + ")"),
                  index_of("fin(0)"));
        EXPECT_LT(index_of("fin(0)"),
                  index_of("p2(1," + std::to_string(t) + ")"));
    }
}

} // namespace
} // namespace bfly
