/**
 * @file
 * Tests for ADDRLEAK, the pointer-leak lifeguard: allocation sites
 * taint the destination cell, copies launder the pointer, writes scrub
 * it, and Output of a may-tainted cell is flagged. Covers the window
 * may-fixpoint, SOS advance, and the zero-false-negative property
 * against the sequential oracle.
 */

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "common/rng.hpp"
#include "lifeguards/addrleak.hpp"
#include "tests/helpers.hpp"

namespace bfly {
namespace {

constexpr Addr kP = 0x1000;  ///< a pointer-holding cell
constexpr Addr kQ = 0x1040;  ///< a second cell
constexpr Addr kOff = 0x40;  ///< outside the monitored window

AddrLeakConfig
heapConfig()
{
    AddrLeakConfig cfg;
    cfg.heapBase = 0x1000;
    cfg.heapLimit = 0x2000;
    return cfg;
}

struct Run
{
    Trace trace;
    EpochLayout layout;
    std::unique_ptr<ButterflyAddrLeak> check;
};

Run
runAddrLeak(Trace trace, const AddrLeakConfig &cfg = heapConfig())
{
    Run run{std::move(trace), EpochLayout::fromHeartbeats(Trace{}), {}};
    run.layout = EpochLayout::fromHeartbeats(run.trace);
    run.check = std::make_unique<ButterflyAddrLeak>(run.layout, cfg);
    WindowSchedule().run(run.layout, *run.check);
    return run;
}

TEST(AddrLeak, OutputOfAllocatedPointerFlagged)
{
    auto run = runAddrLeak(test::traceOf({{
        Event::alloc(kP, 16),
        Event::output(kP),
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
    const ErrorRecord &r = run.check->errors().records()[0];
    EXPECT_EQ(r.kind, ErrorKind::AddrLeak);
    EXPECT_EQ(r.addr, kP);
    EXPECT_EQ(r.index, 1u);
}

TEST(AddrLeak, ScrubbedCellIsCleanToOutput)
{
    auto run = runAddrLeak(test::traceOf({{
        Event::alloc(kP, 16),
        Event::write(kP, 4),
        Event::output(kP),
    }}));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(AddrLeak, CopyLaundersThePointer)
{
    auto run = runAddrLeak(test::traceOf({{
        Event::alloc(kP, 16),
        Event::assign(kQ, kP),
        Event::write(kP, 4), // scrub the original...
        Event::output(kQ),   // ...the copy still leaks
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].addr, kQ);
}

TEST(AddrLeak, AssignFromCleanSourceScrubs)
{
    auto run = runAddrLeak(test::traceOf({{
        Event::alloc(kQ, 16),
        Event::assign(kQ, kOff), // overwritten with a non-pointer
        Event::output(kQ),
    }}));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(AddrLeak, UnmonitoredSinkNeverFlagged)
{
    auto run = runAddrLeak(test::traceOf({{
        Event::alloc(kP, 16),
        Event::output(kOff), // sink outside the monitored window
    }}));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(AddrLeak, ConcurrentAllocMayReachOutput)
{
    // The alloc and the output are in the same epoch on different
    // threads — unordered, so the butterfly must conservatively flag.
    auto run = runAddrLeak(test::traceOf({
        {Event::alloc(kP, 16)},
        {Event::output(kP)},
    }));
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].tid, 1u);
}

TEST(AddrLeak, TrulyOrderedScrubIsRespected)
{
    // The scrub epoch is two full epochs before the output: truly
    // ordered, so the may-window no longer sees the stale taint. The
    // scrub must also be in a *later* epoch than the alloc: within one
    // epoch the alloc stays visible (any-gen folding — a concurrent
    // reader could observe the cell between the alloc and the scrub,
    // and the coarser half of the FP(H) <= FP(4H) nesting must
    // subsume the finer).
    auto run = runAddrLeak(test::traceOf({
        {Event::alloc(kP, 16), Event::heartbeat(), Event::write(kP, 4),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::nop()},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::output(kP)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(AddrLeak, SosTracksLivePointerCells)
{
    auto run = runAddrLeak(test::traceOf({{
        Event::alloc(kP, 16),
        Event::alloc(kQ, 16),
        Event::heartbeat(),
        Event::write(kQ, 4),
        Event::heartbeat(),
        Event::nop(),
        Event::heartbeat(),
        Event::nop(),
    }}));
    const AddrLeakConfig cfg = heapConfig();
    EXPECT_TRUE(run.check->sosNow().contains(cfg.keyOf(kP)));
    EXPECT_FALSE(run.check->sosNow().contains(cfg.keyOf(kQ)));
}

/**
 * Zero-false-negative property on random alloc/copy/scrub/output
 * traces: every leak the sequential oracle reports over a random
 * interleaving is flagged by the butterfly run at the same sink.
 */
TEST(AddrLeak, NoFalseNegativesOnRandomTraces)
{
    const AddrLeakConfig cfg = heapConfig();
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(seed * 0x51a7bull + 3);
        const unsigned threads = 2 + rng.below(2);
        const unsigned epochs = 2 + rng.below(3);

        std::vector<std::vector<Event>> programs(threads);
        auto cell = [&] { return Addr{0x1000} + 8 * rng.below(4); };
        for (unsigned t = 0; t < threads; ++t) {
            for (unsigned l = 0; l < epochs; ++l) {
                const unsigned n = rng.below(6);
                for (unsigned i = 0; i < n; ++i) {
                    switch (rng.below(5)) {
                      case 0:
                        programs[t].push_back(Event::alloc(cell(), 16));
                        break;
                      case 1:
                        programs[t].push_back(Event::write(cell(), 4));
                        break;
                      case 2:
                        programs[t].push_back(
                            Event::assign(cell(), cell()));
                        break;
                      default:
                        programs[t].push_back(Event::output(cell()));
                        break;
                    }
                }
                if (l + 1 < epochs)
                    programs[t].push_back(Event::heartbeat());
            }
        }

        Trace trace = test::traceOf(programs);
        std::vector<std::size_t> cursor(threads, 0);
        std::uint64_t gseq = 1;
        for (;;) {
            std::vector<unsigned> live;
            for (unsigned t = 0; t < threads; ++t)
                if (cursor[t] < trace.threads[t].events.size())
                    live.push_back(t);
            if (live.empty())
                break;
            const unsigned t = live[rng.below(live.size())];
            trace.threads[t].events[cursor[t]++].gseq = gseq++;
        }

        const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
        ButterflyAddrLeak check(layout, cfg);
        WindowSchedule().run(layout, check);

        AddrLeakOracle oracle(cfg);
        oracle.runOnTrace(trace);

        const AccuracyReport acc = compareToOracle(
            check.errors(), oracle.errors(), cfg.granularity);
        EXPECT_EQ(acc.falseNegatives, 0u) << "seed " << seed;
    }
}

} // namespace
} // namespace bfly
