/**
 * @file
 * The pipelined (dependency-task-graph) window schedule: determinism
 * against the sequential schedule for every lifeguard, the streaming
 * epoch source's equivalence with the materialized layout, the bounded
 * residency guarantee, and the worker pool's task protocol that carries
 * it all.
 */

#include <algorithm>
#include <atomic>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "butterfly/reaching_defs.hpp"
#include "butterfly/window.hpp"
#include "common/rng.hpp"
#include "common/worker_pool.hpp"
#include "harness/session.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/defcheck.hpp"
#include "lifeguards/taintcheck.hpp"
#include "memmodel/interleaver.hpp"
#include "sim/lba.hpp"
#include "trace/log_buffer.hpp"
#include "workloads/bugs.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

// --------------------------------------------------------------------
// WorkerPool task protocol (what the graph scheduler runs on).
// --------------------------------------------------------------------

TEST(WorkerPoolTasks, RunsEverySubmittedTask)
{
    WorkerPool pool(3);
    const std::size_t n = 128;
    std::vector<std::atomic<int>> counts(n);
    struct Ctx
    {
        std::vector<std::atomic<int>> *counts;
    } ctx{&counts};
    for (std::size_t i = 0; i < n; ++i)
        pool.submitTask(
            [](void *c, std::size_t i) {
                (*static_cast<Ctx *>(c)->counts)[i].fetch_add(
                    1, std::memory_order_relaxed);
            },
            &ctx, i);
    pool.runTasks();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "task " << i;
}

TEST(WorkerPoolTasks, TasksMaySubmitTasks)
{
    // A binary fan-out submitted from inside task bodies: runTasks must
    // not return until the transitively spawned frontier drains.
    WorkerPool pool(2);
    struct Ctx
    {
        WorkerPool *pool;
        std::atomic<std::size_t> ran{0};
        static void
        step(void *c, std::size_t depth)
        {
            auto *ctx = static_cast<Ctx *>(c);
            ctx->ran.fetch_add(1, std::memory_order_relaxed);
            if (depth == 0)
                return;
            ctx->pool->submitTask(&Ctx::step, ctx, depth - 1);
            ctx->pool->submitTask(&Ctx::step, ctx, depth - 1);
        }
    } ctx{&pool};
    pool.submitTask(&Ctx::step, &ctx, 7);
    pool.runTasks();
    // A full binary tree of depth 7: 2^8 - 1 nodes.
    EXPECT_EQ(ctx.ran.load(), 255u);
}

TEST(WorkerPoolTasks, RunTasksWithEmptyQueueReturns)
{
    WorkerPool pool(2);
    pool.runTasks(); // must not hang
    SUCCEED();
}

TEST(WorkerPoolTasks, PoolReusableAcrossTaskRounds)
{
    WorkerPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 5; ++i)
            pool.submitTask(
                [](void *c, std::size_t) {
                    static_cast<std::atomic<int> *>(c)->fetch_add(
                        1, std::memory_order_relaxed);
                },
                &count, 0);
        pool.runTasks();
    }
    EXPECT_EQ(count.load(), 250);
}

TEST(WorkerPool, SizeReportsThreadCount)
{
    WorkerPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.size(), pool.workers());
}

TEST(WorkerPoolDeath, ZeroThreadConstructionIsRejected)
{
    EXPECT_DEATH(WorkerPool pool(0), "at least one thread");
}

// --------------------------------------------------------------------
// Helpers shared with the pool-determinism suite.
// --------------------------------------------------------------------

std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int, std::uint16_t>>
sortedRecords(const ErrorLog &log)
{
    std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int,
                           std::uint16_t>>
        out;
    out.reserve(log.size());
    for (const ErrorRecord &r : log.records())
        out.emplace_back(r.tid, r.index, r.addr, static_cast<int>(r.kind),
                         r.size);
    std::sort(out.begin(), out.end());
    return out;
}

Trace
mixTrace(std::uint64_t seed, Workload &w_out)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 2000;
    wcfg.seed = seed;
    w_out = makeRandomMix(wcfg);
    Rng rng(seed * 977 + 5);
    return interleave(w_out.programs, InterleaveConfig{}, rng);
}

// --------------------------------------------------------------------
// Pipelined == sequential, per lifeguard. The task graph may reorder
// anything the dependency edges allow; the analysis results may not
// change at all.
// --------------------------------------------------------------------

TEST(PipelineDeterminism, AddrCheckMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {11u, 22u, 33u}) {
        Workload w;
        const Trace trace = mixTrace(seed, w);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 512);

        AddrCheckConfig cfg;
        cfg.heapBase = w.heapBase;
        cfg.heapLimit = w.heapLimit;

        ButterflyAddrCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ButterflyAddrCheck pipe(layout, cfg);
        const PipelineStats stats =
            WindowSchedule(true, &pool).runPipelined(layout, pipe);

        EXPECT_EQ(sortedRecords(seq.errors()),
                  sortedRecords(pipe.errors()))
            << "seed " << seed;
        EXPECT_EQ(seq.eventsChecked(), pipe.eventsChecked());
        EXPECT_EQ(seq.sosNow().sorted(), pipe.sosNow().sorted());
        EXPECT_EQ(stats.epochsFinalized, layout.numEpochs());
    }
}

TEST(PipelineDeterminism, TaintCheckMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        WorkloadConfig wcfg;
        wcfg.numThreads = 3;
        wcfg.instrPerThread = 600;
        wcfg.seed = seed;
        Workload w = makeTaintMix(wcfg);
        Rng bug_rng(seed ^ 0xf00d);
        injectBugs(w, BugKind::TaintedJump, 3, bug_rng);

        Rng rng(seed * 131 + 17);
        const Trace trace =
            interleave(w.programs, InterleaveConfig{}, rng);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 240);

        TaintCheckConfig cfg;
        ButterflyTaintCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ButterflyTaintCheck pipe(layout, cfg);
        WindowSchedule(true, &pool).runPipelined(layout, pipe);

        EXPECT_EQ(sortedRecords(seq.errors()),
                  sortedRecords(pipe.errors()))
            << "seed " << seed;
        EXPECT_EQ(seq.checksResolved(), pipe.checksResolved());
        EXPECT_EQ(seq.sosNow().sorted(), pipe.sosNow().sorted());
    }
}

TEST(PipelineDeterminism, DefCheckMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {101u, 102u, 103u}) {
        Workload w;
        const Trace trace = mixTrace(seed, w);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 512);

        DefCheckConfig cfg;
        cfg.heapBase = w.heapBase;
        cfg.heapLimit = w.heapLimit;

        ButterflyDefCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ButterflyDefCheck pipe(layout, cfg);
        WindowSchedule(true, &pool).runPipelined(layout, pipe);

        EXPECT_EQ(sortedRecords(seq.errors()),
                  sortedRecords(pipe.errors()))
            << "seed " << seed;
    }
}

TEST(PipelineDeterminism, ReachingDefsMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {41u, 42u}) {
        Workload w;
        const Trace trace = mixTrace(seed, w);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 512);
        const std::size_t L = layout.numEpochs();

        ReachingDefinitions seq(layout.numThreads());
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ReachingDefinitions pipe(layout.numThreads());
        WindowSchedule(true, &pool).runPipelined(layout, pipe);

        for (EpochId l = 0; l < L; ++l) {
            EXPECT_EQ(seq.sos(l).sorted(), pipe.sos(l).sorted())
                << "seed " << seed << " epoch " << l;
            EXPECT_EQ(seq.genEpoch(l).sorted(), pipe.genEpoch(l).sorted())
                << "seed " << seed << " epoch " << l;
            for (ThreadId t = 0; t < layout.numThreads(); ++t) {
                EXPECT_EQ(seq.blockResults(l, t).in.sorted(),
                          pipe.blockResults(l, t).in.sorted());
                EXPECT_EQ(seq.blockResults(l, t).out.sorted(),
                          pipe.blockResults(l, t).out.sorted());
            }
        }
    }
}

TEST(PipelineDeterminism, TaskCountMatchesGraphShape)
{
    Workload w;
    const Trace trace = mixTrace(11, w);
    const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 512);
    const std::size_t L = layout.numEpochs();
    const std::size_t T = layout.numThreads();
    ASSERT_GE(L, 2u);

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;
    WorkerPool pool(T);
    ButterflyAddrCheck pipe(layout, cfg);
    const PipelineStats stats =
        WindowSchedule(true, &pool).runPipelined(layout, pipe);

    // A(0..L) + P1 + P2 + F + R.
    EXPECT_EQ(stats.tasksRun, (L + 1) + 2 * L * T + 2 * L);
    EXPECT_EQ(stats.epochsFinalized, L);
    EXPECT_EQ(stats.peakResidentEpochs, 0u); // materialized source
}

TEST(PipelineDeterminism, EmptyTraceIsANoOp)
{
    const Trace trace; // no threads at all
    const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 64);
    AddrCheckConfig cfg;
    ButterflyAddrCheck pipe(layout.numThreads(), cfg);
    const PipelineStats stats =
        WindowSchedule(false).runPipelined(layout, pipe);
    EXPECT_EQ(stats.tasksRun, 0u);
    EXPECT_TRUE(pipe.errors().records().empty());
}

// --------------------------------------------------------------------
// EpochStream: same blocks as the materialized layout, bounded
// residency, back-pressure accounting.
// --------------------------------------------------------------------

TEST(EpochStream, BlocksMatchMaterializedLayout)
{
    Workload w;
    const Trace trace = mixTrace(22, w);
    const std::size_t H = 512;
    const EpochLayout layout = EpochLayout::byGlobalSeq(trace, H);

    EpochStream stream(trace, EpochStream::Config{H, 4, nullptr});
    ASSERT_EQ(stream.numEpochs(), layout.numEpochs());
    ASSERT_EQ(stream.numThreads(), layout.numThreads());

    const std::size_t L = layout.numEpochs();
    for (EpochId l = 0; l < L; ++l) {
        stream.acquire(l);
        for (ThreadId t = 0; t < layout.numThreads(); ++t) {
            const BlockView a = layout.block(l, t);
            const BlockView b = stream.block(l, t);
            ASSERT_EQ(a.size(), b.size()) << "l=" << l << " t=" << t;
            EXPECT_EQ(a.first, b.first) << "l=" << l << " t=" << t;
            EXPECT_EQ(a.epoch, b.epoch);
            EXPECT_EQ(a.thread, b.thread);
            for (std::size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a.events[i].kind, b.events[i].kind);
                EXPECT_EQ(a.events[i].addr, b.events[i].addr);
                EXPECT_EQ(a.events[i].gseq, b.events[i].gseq);
            }
        }
        if (l >= 3)
            stream.retire(l - 3);
    }
    while (stream.residentEpochs() > 0)
        stream.retire(L - stream.residentEpochs());
    EXPECT_LE(stream.peakResidentEpochs(), stream.windowEpochs());
}

TEST(EpochStream, PipelinedStreamingMatchesSequentialLayout)
{
    for (std::uint64_t seed : {11u, 33u}) {
        Workload w;
        const Trace trace = mixTrace(seed, w);
        const std::size_t H = 512;
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, H);

        AddrCheckConfig cfg;
        cfg.heapBase = w.heapBase;
        cfg.heapLimit = w.heapLimit;

        ButterflyAddrCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        EpochStream stream(trace, EpochStream::Config{H, 4, nullptr});
        WorkerPool pool(stream.numThreads());
        ButterflyAddrCheck pipe(stream.numThreads(), cfg);
        const PipelineStats stats =
            WindowSchedule(true, &pool).runPipelined(stream, pipe);

        EXPECT_EQ(sortedRecords(seq.errors()),
                  sortedRecords(pipe.errors()))
            << "seed " << seed;
        EXPECT_EQ(seq.sosNow().sorted(), pipe.sosNow().sorted());

        // The whole point of streaming: bounded residency no matter how
        // long the trace is.
        EXPECT_GE(stats.peakResidentEpochs, 1u);
        EXPECT_LE(stats.peakResidentEpochs, stream.windowEpochs());
        EXPECT_EQ(stream.residentEpochs(), 0u)
            << "every epoch must be retired by graph completion";
    }
}

TEST(EpochStream, StrictDriverStreamsToo)
{
    // TAINTCHECK keeps the strict finalize order; the streaming source
    // must still retire everything and agree with sequential.
    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 600;
    wcfg.seed = 5;
    Workload w = makeTaintMix(wcfg);
    Rng bug_rng(5 ^ 0xf00d);
    injectBugs(w, BugKind::TaintedJump, 3, bug_rng);
    Rng rng(5 * 131 + 17);
    const Trace trace = interleave(w.programs, InterleaveConfig{}, rng);

    const std::size_t H = 240;
    const EpochLayout layout = EpochLayout::byGlobalSeq(trace, H);
    TaintCheckConfig cfg;
    ButterflyTaintCheck seq(layout, cfg);
    WindowSchedule(false).run(layout, seq);

    EpochStream stream(trace, EpochStream::Config{H, 4, nullptr});
    WorkerPool pool(stream.numThreads());
    ButterflyTaintCheck pipe(layout, cfg);
    const PipelineStats stats =
        WindowSchedule(true, &pool).runPipelined(stream, pipe);

    EXPECT_EQ(sortedRecords(seq.errors()), sortedRecords(pipe.errors()));
    EXPECT_LE(stats.peakResidentEpochs, stream.windowEpochs());
    EXPECT_EQ(stream.residentEpochs(), 0u);
}

TEST(EpochStream, BackPressureRecordsProducerStalls)
{
    Workload w;
    const Trace trace = mixTrace(33, w);
    // A buffer far smaller than one epoch: every admission overflows it,
    // so the model must record stalls the application core would take.
    LogBuffer buffer(/*capacity_bytes=*/64 * 16, /*record_bytes=*/16);
    EpochStream stream(trace, EpochStream::Config{512, 4, &buffer});

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;
    WorkerPool pool(stream.numThreads());
    ButterflyAddrCheck pipe(stream.numThreads(), cfg);
    const PipelineStats stats =
        WindowSchedule(true, &pool).runPipelined(stream, pipe);

    EXPECT_GT(stats.producerStalls, 0u);
    EXPECT_EQ(stats.producerStalls, buffer.producerStalls());
}

// --------------------------------------------------------------------
// Session-level pipeline mode and the timing models' new accounting.
// --------------------------------------------------------------------

TEST(SessionPipeline, PipelineModeMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        SessionConfig cfg;
        cfg.factory = makeRandomMix;
        cfg.workload.numThreads = 4;
        cfg.workload.instrPerThread = 3000;
        cfg.workload.seed = seed;
        cfg.epochSize = 256;

        cfg.pipelineMode = false;
        const SessionResult seq = runSession(cfg);
        cfg.pipelineMode = true;
        const SessionResult pipe = runSession(cfg);

        EXPECT_EQ(seq.butterflyErrorCount, pipe.butterflyErrorCount);
        EXPECT_EQ(seq.oracleErrorCount, pipe.oracleErrorCount);
        EXPECT_EQ(seq.accuracy.truePositives, pipe.accuracy.truePositives);
        EXPECT_EQ(seq.accuracy.falsePositives,
                  pipe.accuracy.falsePositives);
        EXPECT_EQ(seq.accuracy.falseNegatives,
                  pipe.accuracy.falseNegatives);
        EXPECT_EQ(seq.falsePositiveRate, pipe.falsePositiveRate);
        EXPECT_EQ(seq.perf.butterfly.normalized,
                  pipe.perf.butterfly.normalized);

        // Streaming mode must report a bounded high-water mark; the
        // barrier path reports none.
        EXPECT_EQ(seq.peakResidentEpochs, 0u);
        if (pipe.epochs > 0) {
            EXPECT_GE(pipe.peakResidentEpochs, 1u);
            EXPECT_LE(pipe.peakResidentEpochs, 4u);
        }
    }
}

/** Rotating-straggler timing input (thread l % T heavy in epoch l). */
ButterflyTimingInput
skewedTiming(std::size_t T, std::size_t L)
{
    ButterflyTimingInput in;
    in.costs.assign(T, std::vector<EpochCosts>(L));
    in.sosUpdateCost.assign(L, 50);
    in.barrierCost = 200;
    for (std::size_t t = 0; t < T; ++t) {
        for (std::size_t l = 0; l < L; ++l) {
            const std::size_t n = (t == l % T) ? 512 : 64;
            in.costs[t][l].appCost.assign(n, 1);
            in.costs[t][l].pass1Cost.assign(n, 10);
            in.costs[t][l].pass2Cost = static_cast<Cycles>(n) * 8;
        }
    }
    return in;
}

TEST(TimingModel, BarrierStallBreakdownSumsToBarrierWait)
{
    const ButterflyTimingInput in = skewedTiming(4, 12);
    const TimingResult r = simulateButterfly(in);
    ASSERT_EQ(r.barrierStallPerBlock.size(), 4u);
    Cycles sum = 0;
    for (const auto &per_thread : r.barrierStallPerBlock) {
        ASSERT_EQ(per_thread.size(), 12u);
        for (Cycles c : per_thread)
            sum += c;
    }
    EXPECT_EQ(sum, r.barrierWaitCycles);
    EXPECT_GT(sum, 0u); // skewed input must show barrier stalls
}

TEST(TimingModel, PipelinedBeatsBarrierOnSkewedInput)
{
    for (std::size_t T : {2u, 4u, 8u}) {
        const ButterflyTimingInput in = skewedTiming(T, 16);
        const TimingResult barrier = simulateButterfly(in);
        const TimingResult relaxed =
            simulateButterflyPipelined(in, T, /*strict_finalize=*/false);
        const TimingResult strict =
            simulateButterflyPipelined(in, T, /*strict_finalize=*/true);

        // No barriers to cross: dependency scheduling can only remove
        // wait time, never add work.
        EXPECT_LT(relaxed.totalCycles, barrier.totalCycles) << "T=" << T;
        EXPECT_LE(relaxed.totalCycles, strict.totalCycles) << "T=" << T;
        // The acceptance bar: >= 1.2x at 8 threads on skewed epochs.
        if (T == 8) {
            EXPECT_GE(static_cast<double>(barrier.totalCycles),
                      1.2 * static_cast<double>(relaxed.totalCycles));
        }
    }
}

TEST(TimingModel, SessionPerfReportIncludesPipelinedMode)
{
    SessionConfig cfg;
    cfg.factory = makeRandomMix;
    cfg.workload.numThreads = 4;
    cfg.workload.instrPerThread = 2000;
    cfg.epochSize = 128;
    const SessionResult r = runSession(cfg);

    EXPECT_GT(r.perf.butterflyPipelined.timing.totalCycles, 0u);
    EXPECT_GT(r.perf.butterflyPipelined.normalized, 0.0);
    // The pipelined schedule of the same costs can never be slower than
    // the barrier schedule.
    EXPECT_LE(r.perf.butterflyPipelined.timing.totalCycles,
              r.perf.butterfly.timing.totalCycles);
    // Per-block stall attribution reproduces the aggregate exactly.
    Cycles sum = 0;
    for (const auto &per_thread :
         r.perf.butterfly.timing.barrierStallPerBlock)
        for (Cycles c : per_thread)
            sum += c;
    EXPECT_EQ(sum, r.perf.butterfly.timing.barrierWaitCycles);
}

} // namespace
} // namespace bfly
