/**
 * @file
 * Tests for the compressed event-log codec: exact round-trips for every
 * event kind, compression behaviour on realistic traces, and resilience
 * against truncated input.
 */

#include <gtest/gtest.h>

#include "fuzz/trace_fuzzer.hpp"
#include "memmodel/interleaver.hpp"
#include "trace/log_codec.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

bool
sameForLifeguards(const Event &a, const Event &b)
{
    return a.kind == b.kind && a.addr == b.addr && a.size == b.size &&
           a.nsrc == b.nsrc &&
           (a.nsrc < 1 || a.src0 == b.src0) &&
           (a.nsrc < 2 || a.src1 == b.src1);
}

TEST(LogCodec, RoundTripsEveryKind)
{
    Event assign = Event::assign2(0x2000, 0x1000, 0x3000);
    assign.size = 8;
    const std::vector<Event> events = {
        Event::read(0x1000, 8),
        Event::write(0x1008, 4),
        Event::alloc(0x2000, 128),
        Event::freeOf(0x2000, 128),
        Event::taintSrc(0x3000, 16),
        Event::untaint(0x3000, 16),
        assign,
        Event::use(0x2000),
        Event::heartbeat(),
        Event::barrier(),
        Event::nop(),
    };
    const auto bytes = encodeEvents(events);
    const auto decoded = decodeEvents(bytes);
    ASSERT_EQ(decoded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_TRUE(sameForLifeguards(events[i], decoded[i]))
            << "event " << i << ": " << events[i].toString() << " vs "
            << decoded[i].toString();
    }
}

TEST(LogCodec, RoundTripsLargeAddressJumps)
{
    const std::vector<Event> events = {
        Event::read(0, 8),
        Event::read(0xffffffffffull, 8),
        Event::read(1, 8),
        Event::write(0x8000000000000000ull, 8),
    };
    const auto decoded = decodeEvents(encodeEvents(events));
    ASSERT_EQ(decoded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(decoded[i].addr, events[i].addr);
}

TEST(LogCodec, DefaultSizesEncodeInTwoBytes)
{
    // A sequential 8-byte read stream: opcode + tiny delta per event.
    LogEncoder enc;
    for (int i = 0; i < 1000; ++i)
        enc.encode(Event::read(0x1000 + 8 * i, 8));
    EXPECT_LE(enc.bytesPerEvent(), 2.01); // opcode + 1-byte delta (+ first-event base)
}

TEST(LogCodec, RealWorkloadCompressesBelowFixedRecordSize)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 10000;
    const Workload w = makeFft(wcfg);
    LogEncoder enc;
    for (const Event &e : w.programs[0])
        enc.encode(e);
    // The timing model assumes 16 bytes/record; the real codec does
    // much better on a workload with spatial locality.
    EXPECT_LT(enc.bytesPerEvent(), 16.0);
    EXPECT_GT(enc.eventCount(), 0u);

    const auto decoded = decodeEvents(enc.bytes());
    ASSERT_EQ(decoded.size(), w.programs[0].size());
    for (std::size_t i = 0; i < decoded.size(); ++i)
        EXPECT_TRUE(sameForLifeguards(w.programs[0][i], decoded[i]));
}

TEST(LogCodec, RoundTripsEveryPaperWorkloadExactly)
{
    for (const auto &[name, factory] : paperWorkloads()) {
        WorkloadConfig wcfg;
        wcfg.numThreads = 2;
        wcfg.instrPerThread = 2000;
        const Workload w = factory(wcfg);
        for (const auto &program : w.programs) {
            const auto decoded = decodeEvents(encodeEvents(program));
            ASSERT_EQ(decoded.size(), program.size()) << name;
            for (std::size_t i = 0; i < decoded.size(); ++i) {
                ASSERT_TRUE(sameForLifeguards(program[i], decoded[i]))
                    << name << " event " << i;
            }
        }
    }
}

TEST(LogCodec, TruncatedLogDies)
{
    auto bytes = encodeEvents({Event::read(0x123456, 8)});
    bytes.pop_back(); // chop the delta varint
    EXPECT_DEATH(
        {
            LogDecoder dec(bytes);
            while (!dec.done())
                dec.decode();
        },
        "truncated");
}

TEST(LogCodec, EmptyLogDecodesToNothing)
{
    EXPECT_TRUE(decodeEvents({}).empty());
}

TEST(LogCodec, TraceFileRoundTripPreservesEpochStructure)
{
    // Generate, execute, mark epoch boundaries, save, load: the loaded
    // trace must yield the same blocks via heartbeat slicing, and the
    // butterfly lifeguard must see identical events.
    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 3000;
    const Workload w = makeRandomMix(wcfg);
    Rng rng(5);
    const Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 300);

    const Trace marked = withHeartbeatMarkers(trace, layout);
    const std::string path = ::testing::TempDir() + "bfly_trace.log";
    ASSERT_TRUE(saveTrace(marked, path));

    const Trace loaded = loadTrace(path);
    const EpochLayout reloaded = EpochLayout::fromHeartbeats(loaded);
    ASSERT_EQ(reloaded.numEpochs(), layout.numEpochs());
    for (ThreadId t = 0; t < 3; ++t) {
        for (EpochId l = 0; l < layout.numEpochs(); ++l) {
            const BlockView a = layout.block(l, t);
            const BlockView b = reloaded.block(l, t);
            ASSERT_EQ(a.size(), b.size())
                << "block (" << l << "," << t << ")";
            for (std::size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a.events[i].kind, b.events[i].kind);
                EXPECT_EQ(a.events[i].addr, b.events[i].addr);
            }
        }
    }
    std::remove(path.c_str());
}

TEST(LogCodec, FuzzedProgramsReEncodeByteIdentically)
{
    // encode -> decode -> re-encode must be a fixed point: the codec's
    // delta/varint state machine cannot depend on anything outside the
    // byte stream. Driven by the adversarial fuzzer so the event mix is
    // far wider than the hand-written cases above.
    fuzz::FuzzerConfig cfg;
    cfg.seed = 8675309;
    fuzz::TraceFuzzer fuzzer(cfg);
    std::size_t programs = 0;
    for (int i = 0; i < 110; ++i) {
        const fuzz::FuzzCase c = fuzzer.next();
        for (const std::vector<Event> &program : c.programs) {
            const std::vector<std::uint8_t> bytes =
                encodeEvents(program);
            const std::vector<Event> decoded = decodeEvents(bytes);
            ASSERT_EQ(decoded.size(), program.size());
            for (std::size_t e = 0; e < program.size(); ++e)
                ASSERT_TRUE(sameForLifeguards(program[e], decoded[e]))
                    << "case " << c.caseId << " event " << e;
            EXPECT_EQ(encodeEvents(decoded), bytes)
                << "case " << c.caseId;
            ++programs;
        }
    }
    EXPECT_GE(programs, 100u);
}

TEST(LogCodec, FuzzedTracesSurviveDiskRoundTrip)
{
    fuzz::FuzzerConfig cfg;
    cfg.seed = 5551212;
    fuzz::TraceFuzzer fuzzer(cfg);
    const std::string path =
        ::testing::TempDir() + "bfly_fuzzed_roundtrip.log";
    for (int i = 0; i < 10; ++i) {
        const Trace trace = fuzzer.next().materialize();
        ASSERT_TRUE(saveTrace(trace, path));
        const Trace loaded = loadTrace(path);
        ASSERT_EQ(loaded.numThreads(), trace.numThreads());
        for (std::size_t t = 0; t < trace.numThreads(); ++t) {
            const auto &orig = trace.threads[t].events;
            const auto &back = loaded.threads[t].events;
            ASSERT_EQ(back.size(), orig.size());
            for (std::size_t e = 0; e < orig.size(); ++e)
                ASSERT_TRUE(sameForLifeguards(orig[e], back[e]));
        }
    }
    std::remove(path.c_str());
}

TEST(LogCodec, EveryTruncatedPrefixReportsNeedMoreNotCorrupt)
{
    // A prefix of a valid log is by construction never *structurally*
    // invalid — it just ends mid-event. tryDecode must report NeedMore
    // (never Corrupt, never assert) for every possible cut point, and
    // the events before the cut must decode exactly.
    fuzz::FuzzerConfig cfg;
    cfg.seed = 424242;
    fuzz::TraceFuzzer fuzzer(cfg);
    const fuzz::FuzzCase c = fuzzer.next();
    ASSERT_FALSE(c.programs.empty());
    const std::vector<Event> &program = c.programs[0];
    const std::vector<std::uint8_t> bytes = encodeEvents(program);

    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        LogDecoder dec({bytes.data(), cut});
        std::size_t decoded = 0;
        for (;;) {
            Event e;
            const DecodeStatus status = dec.tryDecode(e);
            if (status == DecodeStatus::Ok) {
                ASSERT_LT(decoded, program.size());
                ASSERT_TRUE(sameForLifeguards(program[decoded], e))
                    << "cut " << cut << " event " << decoded;
                ++decoded;
                continue;
            }
            ASSERT_EQ(status, DecodeStatus::NeedMore)
                << "prefix of length " << cut
                << " misreported as Corrupt";
            break;
        }
        ASSERT_LE(decoded, program.size());
    }
}

TEST(LogCodec, ChunkedDecoderByteByByteMatchesBulkDecode)
{
    // Feeding one byte at a time is the worst possible chunking (every
    // event splits mid-field); the chunked decoder must still produce
    // the exact bulk-decode event sequence with no Corrupt verdicts.
    fuzz::FuzzerConfig cfg;
    cfg.seed = 99;
    fuzz::TraceFuzzer fuzzer(cfg);
    const fuzz::FuzzCase c = fuzzer.next();
    ASSERT_FALSE(c.programs.empty());
    const std::vector<Event> &program = c.programs[0];
    const std::vector<std::uint8_t> bytes = encodeEvents(program);

    ChunkedLogDecoder chunked;
    std::vector<Event> got;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        chunked.feed({bytes.data() + i, 1});
        for (;;) {
            Event e;
            const DecodeStatus status = chunked.next(e);
            if (status != DecodeStatus::Ok) {
                ASSERT_EQ(status, DecodeStatus::NeedMore);
                break;
            }
            got.push_back(e);
        }
    }
    ASSERT_EQ(got.size(), program.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_TRUE(sameForLifeguards(program[i], got[i]));
    EXPECT_EQ(chunked.pendingBytes(), 0u);
    EXPECT_EQ(chunked.eventsDecoded(), program.size());
}

TEST(LogCodec, BitFlippedLogsNeverAssert)
{
    // Flip every bit of a real encoded log, one at a time, and decode
    // the result to exhaustion with the untrusted-input API. Any mix of
    // Ok / NeedMore / Corrupt is acceptable; crashing or asserting is
    // not — this is exactly what a hostile wire client can feed us.
    const std::vector<Event> program = {
        Event::read(0x1000, 8),      Event::write(0x1008, 4),
        Event::alloc(0x2000, 128),   Event::taintSrc(0x3000, 16),
        Event::assign2(0x2000, 0x1000, 0x3000),
        Event::heartbeat(),          Event::freeOf(0x2000, 128),
        Event::use(0x2000),          Event::barrier(),
        Event::read(0xfffff000, 2),
    };
    const std::vector<std::uint8_t> base = encodeEvents(program);

    for (std::size_t byte = 0; byte < base.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> mutated = base;
            mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);

            LogDecoder dec(mutated);
            std::size_t decoded = 0;
            for (;;) {
                Event e;
                const DecodeStatus status = dec.tryDecode(e);
                if (status == DecodeStatus::Ok) {
                    // Guard against infinite loops on zero-length events.
                    ASSERT_LE(++decoded, mutated.size());
                    continue;
                }
                break; // NeedMore or Corrupt both end the stream
            }

            // The chunked decoder must agree and hold Corrupt sticky.
            ChunkedLogDecoder chunked;
            chunked.feed(mutated);
            DecodeStatus last = DecodeStatus::Ok;
            for (;;) {
                Event e;
                last = chunked.next(e);
                if (last != DecodeStatus::Ok)
                    break;
            }
            if (last == DecodeStatus::Corrupt) {
                Event e;
                chunked.feed(base); // more bytes cannot un-corrupt it
                EXPECT_EQ(chunked.next(e), DecodeStatus::Corrupt)
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

// ---------------------------------------------------------------------
// SiteSummary frames (static elision). These mirror the hostile-input
// coverage above: a summary's payload is attacker-controlled varints,
// so every malformed shape must come back Corrupt (or NeedMore for a
// clean truncation), never assert, and never produce an event with an
// out-of-range site id or count.

namespace {

/** The summary opcode byte: kind nibble, no size flag, no sources. */
constexpr std::uint8_t kSummaryOpcode =
    static_cast<std::uint8_t>(EventKind::SiteSummary);

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::vector<std::uint8_t>
rawSummary(std::uint8_t opcode, std::uint64_t site, std::uint64_t count)
{
    std::vector<std::uint8_t> bytes{opcode};
    putVarint(bytes, site);
    putVarint(bytes, count);
    return bytes;
}

DecodeStatus
decodeOne(std::span<const std::uint8_t> bytes, Event &out)
{
    LogDecoder dec(bytes);
    return dec.tryDecode(out);
}

} // namespace

TEST(LogCodec, SiteSummaryRoundTripsExactly)
{
    const std::vector<Event> events = {
        Event::read(0x1000, 8),
        Event::siteSummary(7, 12345),
        Event::write(0x1008, 8),
        Event::siteSummary(0xFFFFFFFFu, (1ull << 48) - 1),
        Event::siteSummary(1, 1),
    };
    const auto decoded = decodeEvents(encodeEvents(events));
    ASSERT_EQ(decoded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(decoded[i].kind, events[i].kind) << "event " << i;
        if (events[i].kind == EventKind::SiteSummary) {
            EXPECT_EQ(decoded[i].site, events[i].site);
            EXPECT_EQ(decoded[i].summaryCount(),
                      events[i].summaryCount());
        }
    }
}

TEST(LogCodec, SiteSummaryTruncatedVarintsReportNeedMore)
{
    // Chop a valid summary at every byte: a truncation mid-varint is an
    // incomplete event, not a corrupt one, so streaming decoders can
    // wait for the rest of the frame.
    const std::vector<std::uint8_t> bytes =
        rawSummary(kSummaryOpcode, 0xFFFFFFFFu, (1ull << 48) - 1);
    ASSERT_GT(bytes.size(), 2u);
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        Event e;
        EXPECT_EQ(decodeOne({bytes.data(), cut}, e),
                  DecodeStatus::NeedMore)
            << "cut at " << cut;
    }
    Event e;
    EXPECT_EQ(decodeOne(bytes, e), DecodeStatus::Ok);
    EXPECT_EQ(e.site, 0xFFFFFFFFu);
    EXPECT_EQ(e.summaryCount(), (1ull << 48) - 1);
}

TEST(LogCodec, SiteSummarySiteIdBeyond32BitsIsCorrupt)
{
    Event e;
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode, 1ull << 32, 1), e),
              DecodeStatus::Corrupt);
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode, ~0ull, 1), e),
              DecodeStatus::Corrupt);
}

TEST(LogCodec, SiteSummaryZeroOrOverflowingCountIsCorrupt)
{
    Event e;
    // A summary standing for zero events is meaningless on a valid
    // stream; a count past 2^48-1 can overflow event accounting.
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode, 5, 0), e),
              DecodeStatus::Corrupt);
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode, 5, 1ull << 48), e),
              DecodeStatus::Corrupt);
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode, 5, ~0ull), e),
              DecodeStatus::Corrupt);
}

TEST(LogCodec, SiteSummaryReservedOpcodeBitsAreCorrupt)
{
    // The encoder never sets the size flag or a source count on a
    // summary; a decoder seeing either is looking at a forged opcode.
    Event e;
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode | 0x10, 5, 1), e),
              DecodeStatus::Corrupt); // size-follows flag
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode | (1u << 5), 5, 1), e),
              DecodeStatus::Corrupt); // nsrc = 1
    EXPECT_EQ(decodeOne(rawSummary(kSummaryOpcode | (2u << 5), 5, 1), e),
              DecodeStatus::Corrupt); // nsrc = 2
}

TEST(LogCodec, SiteSummaryEncoderRejectsOutOfRangeCounts)
{
    LogEncoder enc;
    EXPECT_DEATH(enc.encode(Event::siteSummary(1, 0)),
                 "site summary count out of range");
    EXPECT_DEATH(enc.encode(Event::siteSummary(1, 1ull << 48)),
                 "site summary count out of range");
}

TEST(LogCodec, SiteSummaryChunkedDecodeSurvivesByteSplits)
{
    // A summary split one byte per chunk across frames must reassemble
    // exactly (the wire path: LogChunk frames can cut anywhere).
    const std::vector<Event> events = {
        Event::read(0x4000, 8),
        Event::siteSummary(321, 1000000),
        Event::write(0x4008, 8),
    };
    const auto bytes = encodeEvents(events);
    ChunkedLogDecoder dec;
    std::vector<Event> decoded;
    for (const std::uint8_t b : bytes) {
        dec.feed({&b, 1});
        for (;;) {
            Event e;
            if (dec.next(e) != DecodeStatus::Ok)
                break;
            decoded.push_back(e);
        }
    }
    ASSERT_EQ(decoded.size(), events.size());
    EXPECT_EQ(decoded[1].kind, EventKind::SiteSummary);
    EXPECT_EQ(decoded[1].site, 321u);
    EXPECT_EQ(decoded[1].summaryCount(), 1000000u);
}

TEST(LogCodec, LoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "bfly_garbage.log";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "not a butterfly trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace bfly
