/**
 * @file
 * Tests for the monitoring service: wire protocol round-trips and
 * hostile-input handling, session-mux admission control (queue-full and
 * global-budget shedding, hard-cap rejection), loopback conformance of
 * remote reports against in-process reference runs (all six
 * lifeguards), the pinned per-event byte charge, crash-restart replay
 * of the .bfz spool, back-pressure end-to-end, per-session telemetry
 * isolation, the slow-client partial-report path, and the adaptive
 * admission ladder: EpochHint codec hostility, forced h-change
 * conformance over the wire, and Overload shedding with tick-driven
 * recovery.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fuzz/trace_fuzzer.hpp"
#include "service/client.hpp"
#include "staticpass/classify.hpp"
#include "service/server.hpp"
#include "service/session_mux.hpp"
#include "service/wire.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/log_codec.hpp"

namespace bfly::service {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------ helpers

/** Synthetic heartbeat-marked trace: @p threads threads x @p epochs
 *  epochs of @p per_epoch events each, touching a private heap window.
 *  Odd reads target never-allocated addresses, so ADDRCHECK produces a
 *  record roughly every other event. */
Trace
makeMarkedTrace(unsigned threads, unsigned epochs, unsigned per_epoch,
                Addr heap_base)
{
    Trace trace;
    trace.threads.resize(threads);
    for (unsigned t = 0; t < threads; ++t) {
        trace.threads[t].tid = t;
        std::vector<Event> &events = trace.threads[t].events;
        const Addr base = heap_base + t * 0x1000;
        events.push_back(Event::alloc(base, 256));
        for (unsigned l = 0; l < epochs; ++l) {
            if (l > 0)
                events.push_back(Event::heartbeat());
            for (unsigned i = 0; i < per_epoch; ++i) {
                const Addr addr = base + 8 * (i % 32);
                if (i % 2 == 0)
                    events.push_back(Event::write(addr, 8));
                else // never allocated: one record per read
                    events.push_back(Event::read(addr + 0x800, 8));
            }
        }
    }
    return trace;
}

SessionSpec
addrcheckSpec(const Trace &trace, Addr heap_base)
{
    SessionSpec spec;
    spec.lifeguard = static_cast<std::uint8_t>(Lifeguard::AddrCheck);
    spec.numThreads = static_cast<std::uint32_t>(trace.numThreads());
    spec.granularity = 8;
    spec.heapBase = heap_base;
    spec.heapLimit = heap_base + 0x100000;
    return spec;
}

/** Reference run over the same heartbeat blocks the service will see. */
RemoteReport
referenceFor(const SessionSpec &spec, const Trace &marked)
{
    return analyzeReference(spec, marked,
                            EpochLayout::fromHeartbeats(marked));
}

/** Per-thread encoded logs split into (tid, bytes) chunk items. */
std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
chunkItems(const Trace &marked, std::size_t chunk_bytes)
{
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> items;
    for (std::uint32_t t = 0; t < marked.numThreads(); ++t) {
        const auto bytes = encodeEvents(marked.threads[t].events);
        for (std::size_t off = 0; off < bytes.size();
             off += chunk_bytes) {
            const std::size_t n =
                std::min(chunk_bytes, bytes.size() - off);
            items.emplace_back(
                t, std::vector<std::uint8_t>(bytes.begin() + off,
                                             bytes.begin() + off + n));
        }
    }
    return items;
}

struct MuxRun
{
    bool completed = false;
    SessionResult result;
    std::uint64_t busyCount = 0;
    std::vector<BusyReason> busyReasons;
};

/** Drive one session through a bare SessionMux with a go-back-N retry
 *  loop, then wait for its completion to be published. */
MuxRun
runThroughMux(SessionMux &mux, const SessionSpec &spec,
              const Trace &marked, std::size_t chunk_bytes)
{
    MuxRun run;
    const auto items = chunkItems(marked, chunk_bytes);
    const std::uint64_t id = mux.open(spec);

    std::uint64_t i = 0;
    while (i <= items.size()) {
        BusyInfo busy;
        RejectInfo reject;
        const Admission verdict =
            i == items.size()
                ? mux.submitTraceEnd(id, i, busy, reject)
                : mux.submitChunk(id, {i, items[i].first},
                                  items[i].second, busy, reject);
        switch (verdict) {
          case Admission::Accepted:
          case Admission::Ignored:
            ++i;
            break;
          case Admission::Busy:
            ++run.busyCount;
            run.busyReasons.push_back(busy.reason);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(busy.retryMs));
            i = busy.seq;
            break;
          case Admission::Rejected:
            run.completed = true;
            run.result.failed = true;
            run.result.reject = reject;
            return run;
        }
    }

    const auto deadline = std::chrono::steady_clock::now() + 30s;
    while (std::chrono::steady_clock::now() < deadline) {
        for (SessionResult &result : mux.drainCompleted()) {
            if (result.sessionId == id) {
                run.completed = true;
                run.result = std::move(result);
                return run;
            }
        }
        std::this_thread::sleep_for(1ms);
    }
    return run;
}

std::string
tempSocketPath(const char *tag)
{
    return ::testing::TempDir() + "bfly_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

// ----------------------------------------------------------------- wire

TEST(Wire, PayloadsRoundTrip)
{
    SessionSpec spec;
    spec.lifeguard = 2;
    spec.memModel = 1;
    spec.numThreads = 7;
    spec.granularity = 4;
    spec.heapBase = 0x10000;
    spec.heapLimit = 0x90000;
    spec.globalH = 96;
    spec.windowEpochs = 6;
    spec.planFingerprint = 0x5157a71c00e11de5ull; // v4
    SessionSpec spec2;
    ASSERT_EQ(decodeSessionOpen(encodeSessionOpen(spec), spec2),
              DecodeStatus::Ok);
    EXPECT_EQ(spec2.lifeguard, spec.lifeguard);
    EXPECT_EQ(spec2.memModel, spec.memModel);
    EXPECT_EQ(spec2.numThreads, spec.numThreads);
    EXPECT_EQ(spec2.granularity, spec.granularity);
    EXPECT_EQ(spec2.heapBase, spec.heapBase);
    EXPECT_EQ(spec2.heapLimit, spec.heapLimit);
    EXPECT_EQ(spec2.globalH, spec.globalH);
    EXPECT_EQ(spec2.windowEpochs, spec.windowEpochs);
    EXPECT_EQ(spec2.planFingerprint, spec.planFingerprint);

    const std::vector<std::uint8_t> log = {1, 2, 3, 4, 5};
    ChunkHeader header{42, 3}, header2;
    std::span<const std::uint8_t> view;
    const auto chunk = encodeChunk(header, log);
    ASSERT_EQ(decodeChunk(chunk, header2, view), DecodeStatus::Ok);
    EXPECT_EQ(header2.seq, header.seq);
    EXPECT_EQ(header2.tid, header.tid);
    ASSERT_EQ(view.size(), log.size());
    EXPECT_TRUE(std::equal(view.begin(), view.end(), log.begin()));

    BusyInfo busy{BusyReason::GlobalBudget, 17, 8}, busy2;
    ASSERT_EQ(decodeBusy(encodeBusy(busy), busy2), DecodeStatus::Ok);
    EXPECT_EQ(busy2.reason, busy.reason);
    EXPECT_EQ(busy2.seq, busy.seq);
    EXPECT_EQ(busy2.retryMs, busy.retryMs);

    RejectInfo reject{RejectCode::CorruptLog, "bad bytes"}, reject2;
    ASSERT_EQ(decodeReject(encodeReject(reject), reject2),
              DecodeStatus::Ok);
    EXPECT_EQ(reject2.code, reject.code);
    EXPECT_EQ(reject2.message, reject.message);

    const std::vector<ErrorRecord> records = {
        {0, 12, 0x1000, ErrorKind::UnallocatedAccess, 8},
        {3, 99, 0xdeadbeef, ErrorKind::UninitializedRead, 4},
    };
    std::vector<ErrorRecord> records2;
    ASSERT_EQ(decodeErrorReport(encodeErrorReport(records), records2),
              DecodeStatus::Ok);
    ASSERT_EQ(records2.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records2[i].tid, records[i].tid);
        EXPECT_EQ(records2[i].index, records[i].index);
        EXPECT_EQ(records2[i].addr, records[i].addr);
        EXPECT_EQ(records2[i].size, records[i].size);
        EXPECT_EQ(records2[i].kind, records[i].kind);
    }

    const std::vector<Addr> sos = {0x1000, 0x2000, 0xffffffffffull};
    std::vector<Addr> sos2;
    ASSERT_EQ(decodeSos(encodeSos(sos), sos2), DecodeStatus::Ok);
    EXPECT_EQ(sos2, sos);

    SummaryInfo summary;
    summary.status = SummaryStatus::Partial;
    summary.epochs = 11;
    summary.events = 12345;
    summary.recordsTotal = 678;
    summary.sosTotal = 9;
    summary.busyCount = 3;
    summary.peakResidentEpochs = 4;
    summary.fingerprint = 0xabcdef0123456789ull;
    summary.planFingerprint = 0x5157a71c00e11de5ull; // v4 echo
    summary.summaryEvents = 4242;                    // v4
    SummaryInfo summary2;
    ASSERT_EQ(decodeSummary(encodeSummary(summary), summary2),
              DecodeStatus::Ok);
    EXPECT_EQ(summary2.status, summary.status);
    EXPECT_EQ(summary2.epochs, summary.epochs);
    EXPECT_EQ(summary2.events, summary.events);
    EXPECT_EQ(summary2.recordsTotal, summary.recordsTotal);
    EXPECT_EQ(summary2.sosTotal, summary.sosTotal);
    EXPECT_EQ(summary2.busyCount, summary.busyCount);
    EXPECT_EQ(summary2.peakResidentEpochs, summary.peakResidentEpochs);
    EXPECT_EQ(summary2.fingerprint, summary.fingerprint);
    EXPECT_EQ(summary2.planFingerprint, summary.planFingerprint);
    EXPECT_EQ(summary2.summaryEvents, summary.summaryEvents);

    std::uint64_t seq = 0;
    ASSERT_EQ(decodeTraceEnd(encodeTraceEnd(31337), seq),
              DecodeStatus::Ok);
    EXPECT_EQ(seq, 31337u);

    SessionAcceptInfo accept{77, 256 * 1024, 4}, accept2;
    ASSERT_EQ(decodeSessionAccept(encodeSessionAccept(accept), accept2),
              DecodeStatus::Ok);
    EXPECT_EQ(accept2.sessionId, accept.sessionId);
    EXPECT_EQ(accept2.queueBytesHint, accept.queueBytesHint);
    EXPECT_EQ(accept2.shardCount, accept.shardCount);
}

TEST(Wire, FrameParserReassemblesByteByByte)
{
    std::vector<std::uint8_t> stream;
    appendFrame(stream, FrameType::SessionOpen,
                encodeSessionOpen(SessionSpec{}));
    appendFrame(stream, FrameType::Heartbeat, {});
    appendFrame(stream, FrameType::TraceEnd, encodeTraceEnd(5));

    FrameParser parser;
    std::vector<Frame> frames;
    for (std::uint8_t byte : stream) {
        parser.feed({&byte, 1});
        Frame frame;
        while (parser.next(frame) == DecodeStatus::Ok)
            frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, FrameType::SessionOpen);
    EXPECT_EQ(frames[1].type, FrameType::Heartbeat);
    EXPECT_TRUE(frames[1].payload.empty());
    EXPECT_EQ(frames[2].type, FrameType::TraceEnd);
    EXPECT_EQ(parser.pendingBytes(), 0u);
}

TEST(Wire, FrameParserRejectsHostileHeaders)
{
    { // unknown frame type: sticky Corrupt
        FrameParser parser;
        const std::uint8_t bad[] = {0xFF, 1, 0, 0, 0, 7};
        parser.feed(bad);
        Frame frame;
        EXPECT_EQ(parser.next(frame), DecodeStatus::Corrupt);
        std::vector<std::uint8_t> good;
        appendFrame(good, FrameType::Heartbeat, {});
        parser.feed(good);
        EXPECT_EQ(parser.next(frame), DecodeStatus::Corrupt);
    }
    { // oversized length: Corrupt before any allocation of that size
        FrameParser parser;
        std::uint8_t bad[5];
        bad[0] = static_cast<std::uint8_t>(FrameType::LogChunk);
        const std::uint32_t huge = 0x7fffffff;
        std::memcpy(bad + 1, &huge, 4);
        parser.feed(bad);
        Frame frame;
        EXPECT_EQ(parser.next(frame), DecodeStatus::Corrupt);
    }
}

TEST(Wire, DecodersRejectTruncationAndTrailingGarbage)
{
    const auto payload = encodeSessionOpen(SessionSpec{});
    SessionSpec out;
    for (std::size_t cut = 0; cut < payload.size(); ++cut)
        EXPECT_NE(decodeSessionOpen({payload.data(), cut}, out),
                  DecodeStatus::Ok)
            << "truncated at " << cut;
    auto padded = payload;
    padded.push_back(0);
    EXPECT_EQ(decodeSessionOpen(padded, out), DecodeStatus::Corrupt);

    auto versioned = payload;
    versioned[0] = kWireVersion + 1; // version is the first byte
    EXPECT_EQ(decodeSessionOpen(versioned, out), DecodeStatus::Corrupt);

    // v3 frames lack the v4 planFingerprint tail; both ends must move
    // together, so the old version byte is rejected outright.
    versioned[0] = 3;
    EXPECT_EQ(decodeSessionOpen(versioned, out), DecodeStatus::Corrupt);
}

TEST(Wire, SummaryRejectsTruncationAndTrailingGarbage)
{
    // The Summary frame grew the v4 tail (plan fingerprint echo +
    // summary-event count); every proper prefix — including cuts inside
    // the new fields — must fail cleanly, as must trailing bytes.
    SummaryInfo info;
    info.status = SummaryStatus::Complete;
    info.epochs = 3;
    info.events = 999;
    info.fingerprint = 0x1111222233334444ull;
    info.planFingerprint = 0x5555666677778888ull;
    info.summaryEvents = 1234;
    const auto payload = encodeSummary(info);
    SummaryInfo out;
    for (std::size_t cut = 0; cut < payload.size(); ++cut)
        EXPECT_NE(decodeSummary({payload.data(), cut}, out),
                  DecodeStatus::Ok)
            << "truncated at " << cut;
    auto padded = payload;
    padded.push_back(0);
    EXPECT_EQ(decodeSummary(padded, out), DecodeStatus::Corrupt);
    ASSERT_EQ(decodeSummary(payload, out), DecodeStatus::Ok);
    EXPECT_EQ(out.planFingerprint, info.planFingerprint);
    EXPECT_EQ(out.summaryEvents, info.summaryEvents);
}

// ------------------------------------------------------------------- mux

TEST(SessionMuxTest, ShedsWhenSessionQueueIsFull)
{
    WorkerPool pool(2);
    MuxConfig config;
    config.sessionQueueBytes = 64;
    config.debugPumpDelayMs = 5; // slow consumer: shedding is guaranteed
    config.busyRetryMs = 1;
    SessionMux mux(pool, config, [] {});

    const Addr heap = 0x100000;
    const Trace marked = makeMarkedTrace(2, 6, 40, heap);
    const SessionSpec spec = addrcheckSpec(marked, heap);
    const RemoteReport reference = referenceFor(spec, marked);

    const MuxRun run = runThroughMux(mux, spec, marked, 48);
    ASSERT_TRUE(run.completed);
    ASSERT_FALSE(run.result.failed) << run.result.reject.message;
    EXPECT_GE(run.busyCount, 1u) << "queue never filled: test is vacuous";
    for (BusyReason reason : run.busyReasons)
        EXPECT_EQ(reason, BusyReason::SessionQueueFull);
    EXPECT_TRUE(run.result.report.identical(reference))
        << "shedding changed the analysis result";
    EXPECT_EQ(mux.globalBytes(), 0u) << "budget leaked";
    EXPECT_EQ(mux.activeSessions(), 0u);
}

TEST(SessionMuxTest, GlobalBudgetShedsOnlyWhenOthersHoldBytes)
{
    WorkerPool pool(2);
    MuxConfig config;
    config.sessionQueueBytes = 1 << 20;
    config.globalBudgetBytes = 4096;
    config.debugPumpDelayMs = 200; // park tenant A's bytes in the queue
    SessionMux mux(pool, config, [] {});

    const std::vector<std::uint8_t> big(3500, 0x00); // Nop opcodes
    const std::vector<std::uint8_t> small(1000, 0x00);

    SessionSpec spec;
    spec.lifeguard = static_cast<std::uint8_t>(Lifeguard::AddrCheck);
    spec.numThreads = 1;
    const std::uint64_t a = mux.open(spec);
    const std::uint64_t b = mux.open(spec);

    BusyInfo busy;
    RejectInfo reject;
    ASSERT_EQ(mux.submitChunk(a, {0, 0}, big, busy, reject),
              Admission::Accepted);

    // Tenant B is squeezed by A's queued bytes: transient Busy.
    ASSERT_EQ(mux.submitChunk(b, {0, 0}, small, busy, reject),
              Admission::Busy);
    EXPECT_EQ(busy.reason, BusyReason::GlobalBudget);
    EXPECT_EQ(busy.seq, 0u);

    // Tenant A alone would exceed the budget: permanent reject.
    ASSERT_EQ(mux.submitChunk(a, {1, 0}, small, busy, reject),
              Admission::Rejected);
    EXPECT_EQ(reject.code, RejectCode::TooLarge);

    mux.abort(b);
    // A failed, B aborted: the budget must drain to zero once the pump
    // notices (A's queued bytes were already released by the reject).
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (mux.globalBytes() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    EXPECT_EQ(mux.globalBytes(), 0u);
}

TEST(SessionMuxTest, PressuredShardStealsBudgetDonatedByIdleShard)
{
    // Two shards splitting an 8 KiB budget through a shared pool. The
    // hot shard outgrows its 4 KiB slice, sheds Busy while the pool is
    // empty, then succeeds once the idle shard's tick donates — and the
    // conservation invariant sum(slices) + spare == total holds at
    // every step.
    WorkerPool pool(2);
    MuxConfig config;
    config.sessionQueueBytes = 1 << 20;
    config.globalBudgetBytes = 8192;
    config.debugPumpDelayMs = 200; // park the bytes in the queue
    BudgetPool shared;
    SessionMux hot(pool, config, [] {}, 4096, &shared);
    SessionMux idle(pool, config, [] {}, 4096, &shared);

    auto totalBudget = [&] {
        return hot.budgetBytes() + idle.budgetBytes() +
               shared.spare.load();
    };
    EXPECT_EQ(totalBudget(), 8192u);

    SessionSpec spec;
    spec.lifeguard = static_cast<std::uint8_t>(Lifeguard::AddrCheck);
    spec.numThreads = 1;
    const std::uint64_t id = hot.open(spec);
    const std::vector<std::uint8_t> chunk(2800, 0x00); // Nop opcodes

    BusyInfo busy;
    RejectInfo reject;
    ASSERT_EQ(hot.submitChunk(id, {0, 0}, chunk, busy, reject),
              Admission::Accepted);

    // Over the slice, pool empty, but siblings hold the rest of the
    // global budget: transient Busy, not a TooLarge reject.
    ASSERT_EQ(hot.submitChunk(id, {1, 0}, chunk, busy, reject),
              Admission::Busy);
    EXPECT_EQ(busy.reason, BusyReason::GlobalBudget);
    EXPECT_EQ(hot.budgetSteals(), 0u);

    // The idle shard's reactor tick donates down to half its slice.
    idle.donateIdleBudget();
    EXPECT_EQ(idle.budgetBytes(), 2048u);
    EXPECT_EQ(idle.budgetDonatedBytes(), 2048u);
    EXPECT_EQ(shared.spare.load(), 2048u);
    EXPECT_EQ(totalBudget(), 8192u);

    // The go-back-N retry now steals the spare bytes and is admitted.
    ASSERT_EQ(hot.submitChunk(id, {1, 0}, chunk, busy, reject),
              Admission::Accepted);
    EXPECT_EQ(hot.budgetSteals(), 1u);
    EXPECT_EQ(hot.budgetStolenBytes(), 2048u);
    EXPECT_EQ(hot.budgetBytes(), 4096u + 2048u);
    EXPECT_EQ(shared.spare.load(), 0u);
    EXPECT_EQ(totalBudget(), 8192u);

    // A busy shard never donates, even when asked.
    hot.donateIdleBudget();
    EXPECT_EQ(hot.budgetBytes(), 4096u + 2048u);

    hot.abort(id);
}

TEST(SessionMuxTest, RejectsChunkBeyondSessionCap)
{
    WorkerPool pool(1);
    MuxConfig config;
    config.maxSessionBytes = 256;
    SessionMux mux(pool, config, [] {});

    SessionSpec spec;
    spec.numThreads = 1;
    const std::uint64_t id = mux.open(spec);
    const std::vector<std::uint8_t> oversized(300, 0x00);
    BusyInfo busy;
    RejectInfo reject;
    ASSERT_EQ(mux.submitChunk(id, {0, 0}, oversized, busy, reject),
              Admission::Rejected);
    EXPECT_EQ(reject.code, RejectCode::TooLarge);
    EXPECT_EQ(mux.activeSessions(), 0u);
    EXPECT_EQ(mux.globalBytes(), 0u);
}

TEST(SessionMuxTest, RejectsOutOfRangeTidAndIgnoresOutOfSequence)
{
    WorkerPool pool(1);
    SessionMux mux(pool, MuxConfig{}, [] {});
    SessionSpec spec;
    spec.numThreads = 2;
    const std::uint64_t id = mux.open(spec);
    const std::vector<std::uint8_t> bytes(8, 0x00);
    BusyInfo busy;
    RejectInfo reject;
    EXPECT_EQ(mux.submitChunk(id, {5, 0}, bytes, busy, reject),
              Admission::Ignored); // seq 5 != expected 0
    EXPECT_EQ(mux.submitChunk(id, {0, 7}, bytes, busy, reject),
              Admission::Rejected); // tid 7 >= numThreads 2
    EXPECT_EQ(reject.code, RejectCode::Protocol);
}

TEST(SessionMuxTest, ChargesDecodedEventsAtPinnedEventSize)
{
    // Satellite: the admission math (maxSessionBytes, globalBudgetBytes)
    // assumes every decoded event costs exactly sizeof(Event) == 40
    // bytes; the static_assert in session_mux.cpp pins the layout. Feed
    // a known trace without TraceEnd and check the steady-state charge.
    WorkerPool pool(2);
    SessionMux mux(pool, MuxConfig{}, [] {});

    const Addr heap = 0x400000;
    const Trace marked = makeMarkedTrace(1, 2, 16, heap);
    std::uint64_t total_events = 0;
    for (const ThreadTrace &t : marked.threads)
        total_events += t.events.size();
    ASSERT_GT(total_events, 0u);

    const std::uint64_t id = mux.open(addrcheckSpec(marked, heap));
    const auto items = chunkItems(marked, 64);
    BusyInfo busy;
    RejectInfo reject;
    for (std::uint64_t i = 0; i < items.size(); ++i)
        ASSERT_EQ(mux.submitChunk(id, {i, items[i].first},
                                  items[i].second, busy, reject),
                  Admission::Accepted);

    // Once the pump drains, the queued-bytes charge has been fully
    // converted into the decoded-event charge: 40 bytes per event, for
    // heartbeats and allocs just like loads and stores.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (mux.globalBytes() != total_events * sizeof(Event) &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    EXPECT_EQ(mux.globalBytes(), total_events * 40u);

    // Completing the session releases the whole charge.
    ASSERT_EQ(mux.submitTraceEnd(id, items.size(), busy, reject),
              Admission::Accepted);
    bool completed = false;
    while (!completed && std::chrono::steady_clock::now() < deadline) {
        for (SessionResult &result : mux.drainCompleted())
            if (result.sessionId == id) {
                completed = true;
                EXPECT_FALSE(result.failed);
            }
        std::this_thread::sleep_for(1ms);
    }
    ASSERT_TRUE(completed);
    EXPECT_EQ(mux.globalBytes(), 0u) << "budget leaked on completion";
}

TEST(SessionMuxTest, BatchModeAgreesWithScalarAccountingAndReport)
{
    // Agreement test for the per-batch byte charging: the decoded-event
    // charge is one decodedEventBytes() call per chunk, so a batched
    // mux (columnar pass-1 kernels) and a scalar mux must agree on
    // both the report fingerprint and every byte-accounting observable.
    ASSERT_EQ(SessionMux::decodedEventBytes(7), 7u * sizeof(Event));

    const Addr heap = 0x400000;
    const Trace marked = makeMarkedTrace(2, 4, 48, heap);
    const SessionSpec spec = addrcheckSpec(marked, heap);

    WorkerPool pool(2);
    MuxConfig scalar_cfg;
    SessionMux scalar_mux(pool, scalar_cfg, [] {});
    MuxConfig batch_cfg;
    batch_cfg.batchMode = true;
    SessionMux batch_mux(pool, batch_cfg, [] {});

    const MuxRun scalar_run =
        runThroughMux(scalar_mux, spec, marked, 64);
    const MuxRun batch_run = runThroughMux(batch_mux, spec, marked, 64);
    ASSERT_TRUE(scalar_run.completed && !scalar_run.result.failed);
    ASSERT_TRUE(batch_run.completed && !batch_run.result.failed);

    EXPECT_TRUE(batch_run.result.report.identical(scalar_run.result
                                                      .report))
        << "batch mode changed the report";
    EXPECT_EQ(scalar_mux.globalBytes(), 0u) << "scalar budget leaked";
    EXPECT_EQ(batch_mux.globalBytes(), 0u) << "batched budget leaked";
}

// ---------------------------------------------------------------- loopback

TEST(MonitorService, LoopbackConformanceAcrossLifeguards)
{
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("conf");
    scfg.workers = 4;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    fuzz::FuzzerConfig fcfg;
    fcfg.seed = 20260805;
    fuzz::TraceFuzzer fuzzer(fcfg);
    for (int i = 0; i < 24; ++i) {
        const fuzz::FuzzCase fuzz_case = fuzzer.next();
        const Trace trace = fuzz_case.materialize();
        const EpochLayout layout =
            EpochLayout::byGlobalSeq(trace, fuzz_case.globalH);

        SessionSpec spec;
        spec.lifeguard = static_cast<std::uint8_t>(i % 6);
        spec.memModel = fuzz_case.model == MemModel::TSO ? 1 : 0;
        spec.numThreads =
            static_cast<std::uint32_t>(trace.numThreads());
        spec.granularity =
            spec.lifeguard == 1 || spec.lifeguard == 5 ? 4 : 8;
        spec.heapBase = fuzz_case.heapBase;
        spec.heapLimit = fuzz_case.heapLimit;

        const RemoteReport local = analyzeReference(spec, trace, layout);
        const Trace marked = withHeartbeatMarkers(trace, layout);

        MonitorClient client;
        ASSERT_TRUE(client.connectUnix(scfg.unixPath));
        const RunResult remote = client.run(spec, marked);
        ASSERT_TRUE(remote.ok)
            << "case " << fuzz_case.caseId << ": " << remote.error;
        EXPECT_TRUE(remote.report.identical(local))
            << "case " << fuzz_case.caseId << " ("
            << fuzz_case.scenario << ", lifeguard "
            << unsigned(spec.lifeguard) << ") diverged";
    }
    server.stop();
    EXPECT_EQ(server.sessionsFailed(), 0u);
    EXPECT_EQ(server.sessionsCompleted(), 24u);
}

TEST(MonitorService, ElidedSessionEchoesPlanFingerprintAndCounts)
{
    // v4 end to end: a client that ran the static elision pre-pass
    // declares its plan fingerprint in SessionOpen and streams a log
    // containing SiteSummary events. The server must analyze the
    // summarized log identically to the local reference, echo the
    // fingerprint in the Summary frame, and account the summaries it
    // decoded.
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("elide");
    scfg.workers = 2;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    // Two threads, each with a private alloc-covered block: every
    // read/write is provably invisible to the lifeguards and elides.
    Trace trace;
    trace.threads.resize(2);
    std::uint64_t g = 0;
    auto push = [&](std::size_t t, Event e) {
        e.gseq = ++g;
        trace.threads[t].tid = static_cast<ThreadId>(t);
        trace.threads[t].events.push_back(e);
    };
    for (std::size_t t = 0; t < 2; ++t) {
        const Addr base = 0x10000 + 0x10000 * t;
        push(t, Event::alloc(base, 64));
        for (int i = 0; i < 8; ++i)
            push(t, Event::write(base + 8 * i, 8));
        for (int i = 0; i < 8; ++i)
            push(t, Event::read(base + 8 * i, 8));
    }

    staticpass::SiteTable sites;
    const staticpass::ElisionPlan plan =
        staticpass::buildElisionPlan(trace, sites);
    staticpass::ElisionStats stats;
    const Trace elided = staticpass::applyElisionPlan(trace, plan,
                                                      &stats);
    ASSERT_EQ(stats.elidedEvents, 32u); // all 16 R + 16 W per program
    ASSERT_GT(stats.summaryEvents, 0u);
    ASSERT_NE(plan.fingerprint(), 0u);

    const EpochLayout layout = EpochLayout::byGlobalSeq(elided, 16);
    SessionSpec spec;
    spec.lifeguard = 0; // ADDRCHECK
    spec.numThreads = 2;
    spec.granularity = 8;
    spec.heapBase = 0x10000;
    spec.heapLimit = 0x30000;
    spec.planFingerprint = plan.fingerprint();

    const RemoteReport local = analyzeReference(spec, elided, layout);
    const Trace marked = withHeartbeatMarkers(elided, layout);

    MonitorClient client;
    ASSERT_TRUE(client.connectUnix(scfg.unixPath));
    const RunResult remote = client.run(spec, marked);
    ASSERT_TRUE(remote.ok) << remote.error;
    EXPECT_TRUE(remote.report.identical(local));
    EXPECT_GT(remote.logBytesSent, 0u);
    EXPECT_EQ(remote.summary.planFingerprint, plan.fingerprint());
    EXPECT_EQ(remote.summary.summaryEvents, stats.summaryEvents);

    server.stop();
    EXPECT_EQ(server.sessionsCompleted(), 1u);
    EXPECT_EQ(server.elisionSessions(), 1u);
    EXPECT_EQ(server.summaryEventsSeen(), stats.summaryEvents);
}

TEST(MonitorService, ConcurrentSessionsConform)
{
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("conc");
    scfg.workers = 4;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    constexpr int kThreads = 8;
    constexpr int kTracesPerThread = 3;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};

    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
        threads.emplace_back([&, w] {
            fuzz::FuzzerConfig fcfg;
            fcfg.seed = 7000 + w;
            fuzz::TraceFuzzer fuzzer(fcfg);
            for (int i = 0; i < kTracesPerThread; ++i) {
                const fuzz::FuzzCase fuzz_case = fuzzer.next();
                const Trace trace = fuzz_case.materialize();
                const EpochLayout layout =
                    EpochLayout::byGlobalSeq(trace, fuzz_case.globalH);
                SessionSpec spec;
                spec.lifeguard =
                    static_cast<std::uint8_t>((w + i) % 6);
                spec.memModel =
                    fuzz_case.model == MemModel::TSO ? 1 : 0;
                spec.numThreads =
                    static_cast<std::uint32_t>(trace.numThreads());
                spec.granularity =
                    spec.lifeguard == 1 || spec.lifeguard == 5 ? 4 : 8;
                spec.heapBase = fuzz_case.heapBase;
                spec.heapLimit = fuzz_case.heapLimit;
                const RemoteReport local =
                    analyzeReference(spec, trace, layout);
                const Trace marked =
                    withHeartbeatMarkers(trace, layout);
                MonitorClient client;
                if (!client.connectUnix(scfg.unixPath)) {
                    failures.fetch_add(1);
                    continue;
                }
                const RunResult remote = client.run(spec, marked);
                if (!remote.ok)
                    failures.fetch_add(1);
                else if (!remote.report.identical(local))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    server.stop();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(server.sessionsCompleted(),
              static_cast<std::uint64_t>(kThreads * kTracesPerThread));
}

TEST(MonitorService, ShardOfSessionCoversAllShardsOverAdjacentIds)
{
    // Connections get consecutive session ids, so the placement hash
    // must spread *adjacent* ids: over 64 of them and 4 shards, every
    // shard is hit. Also pins determinism and the single-shard case.
    constexpr std::size_t kShards = 4;
    std::vector<int> hits(kShards, 0);
    for (std::uint64_t id = 1; id <= 64; ++id) {
        const std::size_t s = MonitorServer::shardOfSession(id, kShards);
        ASSERT_LT(s, kShards);
        EXPECT_EQ(s, MonitorServer::shardOfSession(id, kShards));
        ++hits[s];
    }
    for (std::size_t s = 0; s < kShards; ++s)
        EXPECT_GT(hits[s], 0) << "shard " << s << " never hit";
    EXPECT_EQ(MonitorServer::shardOfSession(12345, 1), 0u);
}

TEST(MonitorService, MultiReactorDistributesSessionsAndSumsStats)
{
    // Three reactors behind one Unix listener: sessions spread over
    // more than one shard, every client learns the shard count from
    // SessionAccept, reports stay bit-identical to the reference, and
    // the per-shard counters sum to the aggregate accessors.
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("shards");
    scfg.workers = 4;
    scfg.shards = 3;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());
    EXPECT_EQ(server.shards(), 3u);

    const Addr heap = 0x100000;
    const Trace marked = makeMarkedTrace(2, 4, 30, heap);
    const SessionSpec spec = addrcheckSpec(marked, heap);
    const RemoteReport reference = referenceFor(spec, marked);

    constexpr int kSessions = 24;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kSessions; ++i) {
        threads.emplace_back([&] {
            MonitorClient client;
            if (!client.connectUnix(scfg.unixPath)) {
                bad.fetch_add(1);
                return;
            }
            const RunResult remote = client.run(spec, marked);
            if (!remote.ok || !remote.report.identical(reference) ||
                remote.serverShards != 3)
                bad.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    const std::vector<ShardStats> stats = server.shardStats();
    ASSERT_EQ(stats.size(), 3u);
    std::uint64_t sum_completed = 0, sum_assigned = 0, sum_busy = 0;
    std::size_t shards_used = 0;
    for (const ShardStats &s : stats) {
        sum_completed += s.completed;
        sum_assigned += s.sessionsAssigned;
        sum_busy += s.busySent;
        if (s.sessionsAssigned > 0)
            ++shards_used;
    }
    EXPECT_EQ(sum_completed, static_cast<std::uint64_t>(kSessions));
    EXPECT_EQ(sum_completed, server.sessionsCompleted());
    EXPECT_EQ(sum_assigned, static_cast<std::uint64_t>(kSessions));
    EXPECT_EQ(sum_busy, server.busySent());
    EXPECT_GE(shards_used, 2u)
        << "placement hash parked every session on one shard";
    server.stop();
    EXPECT_EQ(server.sessionsFailed(), 0u);
}

namespace {

/** Crash-restart durability: each marked trace is spooled to a .bfz
 *  log file before it is sent. After the server "crashes" (stop, all
 *  in-memory state discarded) a fresh server on the same path must
 *  reproduce a bit-identical report — same records, SOS, and summary
 *  fingerprint — from the reloaded spool, across all six lifeguards.
 *  Runs at @p shards reactors: the replay must land on whatever shard
 *  the new server picks and still fingerprint identically. */
void
runCrashRestartSpoolReplay(std::size_t shards, const char *tag)
{
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath(tag);
    scfg.workers = 2;
    scfg.shards = shards;

    fuzz::FuzzerConfig fcfg;
    fcfg.seed = 20260808;
    fuzz::TraceFuzzer fuzzer(fcfg);

    struct Spooled
    {
        std::string path;
        SessionSpec spec;
        RemoteReport report;
        std::uint64_t fingerprint = 0;
    };
    std::vector<Spooled> spool;

    {
        MonitorServer server(scfg);
        ASSERT_TRUE(server.start());
        for (int i = 0; i < 12; ++i) {
            const fuzz::FuzzCase fuzz_case = fuzzer.next();
            const Trace trace = fuzz_case.materialize();
            const EpochLayout layout =
                EpochLayout::byGlobalSeq(trace, fuzz_case.globalH);

            Spooled s;
            s.spec.lifeguard = static_cast<std::uint8_t>(i % 6);
            s.spec.memModel = fuzz_case.model == MemModel::TSO ? 1 : 0;
            s.spec.numThreads =
                static_cast<std::uint32_t>(trace.numThreads());
            s.spec.granularity =
                s.spec.lifeguard == 1 || s.spec.lifeguard == 5 ? 4 : 8;
            s.spec.heapBase = fuzz_case.heapBase;
            s.spec.heapLimit = fuzz_case.heapLimit;

            const Trace marked = withHeartbeatMarkers(trace, layout);
            s.path = ::testing::TempDir() + "bfly_spool_" + tag + "_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(i) + ".bfz";
            ASSERT_TRUE(saveTrace(marked, s.path));

            MonitorClient client;
            ASSERT_TRUE(client.connectUnix(scfg.unixPath));
            const RunResult remote = client.run(s.spec, marked);
            ASSERT_TRUE(remote.ok)
                << "case " << fuzz_case.caseId << ": " << remote.error;
            s.report = remote.report;
            s.fingerprint = remote.summary.fingerprint;
            spool.push_back(std::move(s));
        }
        server.stop(); // the crash: every in-memory session is gone
    }

    // The spool survives the crash. The codec drops gseq (a stored log
    // has no global order), but the heartbeat markers carry the epoch
    // structure, so the replay slices identically by construction.
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());
    for (const Spooled &s : spool) {
        const Trace replay = loadTrace(s.path);
        MonitorClient client;
        ASSERT_TRUE(client.connectUnix(scfg.unixPath));
        const RunResult remote = client.run(s.spec, replay);
        ASSERT_TRUE(remote.ok) << s.path << ": " << remote.error;
        EXPECT_EQ(remote.summary.fingerprint, s.fingerprint) << s.path;
        EXPECT_TRUE(remote.report.identical(s.report))
            << s.path << " replay diverged after restart";
        std::remove(s.path.c_str());
    }
    server.stop();
    EXPECT_EQ(server.sessionsFailed(), 0u);
}

} // namespace

TEST(MonitorService, CrashRestartSpoolReplayKeepsFingerprint)
{
    runCrashRestartSpoolReplay(1, "crash");
}

TEST(MonitorService, CrashRestartSpoolReplayKeepsFingerprintSharded)
{
    runCrashRestartSpoolReplay(2, "crash2");
}

TEST(MonitorService, ShedsUnderBackPressureAndStillConforms)
{
    // Satellite: EpochStream back-pressure under service load. A slow
    // pump plus a tiny ingest queue forces Busy sheds; the client's
    // go-back-N rewind must deliver a byte-identical report anyway.
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("bp");
    scfg.workers = 2;
    scfg.mux.sessionQueueBytes = 512;
    scfg.mux.debugPumpDelayMs = 2;
    scfg.mux.busyRetryMs = 1;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    const Addr heap = 0x200000;
    const Trace marked = makeMarkedTrace(2, 8, 60, heap);
    const SessionSpec spec = addrcheckSpec(marked, heap);
    const RemoteReport reference = referenceFor(spec, marked);

    ClientConfig ccfg;
    ccfg.chunkBytes = 256; // many small chunks overrun the 512B queue
    MonitorClient client(ccfg);
    ASSERT_TRUE(client.connectUnix(scfg.unixPath));
    const RunResult remote = client.run(spec, marked);
    ASSERT_TRUE(remote.ok) << remote.error;
    EXPECT_GE(remote.busyRetries, 1u)
        << "server never shed: back-pressure untested";
    EXPECT_EQ(remote.summary.busyCount, remote.busyRetries);
    EXPECT_TRUE(remote.report.identical(reference))
        << "go-back-N replay diverged from the reference";
    server.stop();
    EXPECT_GE(server.busySent(), 1u);
    EXPECT_EQ(server.globalBytes(), 0u) << "budget leaked";
}

TEST(MonitorService, SessionTelemetryIsIsolatedPerSession)
{
    telemetry::setEnabled(true);
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("tel");
    scfg.workers = 2;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    const Addr heap = 0x300000;
    const Trace big = makeMarkedTrace(2, 8, 50, heap);
    const Trace small = makeMarkedTrace(1, 2, 10, heap);

    auto runOne = [&](const Trace &marked) {
        const SessionSpec spec = addrcheckSpec(marked, heap);
        MonitorClient client;
        ASSERT_TRUE(client.connectUnix(scfg.unixPath));
        const RunResult remote = client.run(spec, marked);
        ASSERT_TRUE(remote.ok) << remote.error;
    };
    auto totalEvents = [](const Trace &marked) {
        std::uint64_t n = 0;
        for (const ThreadTrace &t : marked.threads)
            n += t.events.size();
        return n;
    };

    runOne(big);
    runOne(small);
    // The last completed session's registry holds *only* that session's
    // counts — a shared registry would show big+small accumulated.
    const telemetry::RegistrySnapshot snapshot =
        server.lastSessionMetrics();
    EXPECT_EQ(snapshot.value("bfly.service.session.events"),
              totalEvents(small));
    EXPECT_LT(snapshot.value("bfly.service.session.events"),
              totalEvents(big));
    EXPECT_GT(snapshot.value("bfly.service.session.chunks"), 0u);
    server.stop();
}

TEST(MonitorService, SlowClientGetsTruncatedReportWithPartialStatus)
{
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("partial");
    scfg.workers = 2;
    scfg.maxOutboundBytes = 4096; // one big ErrorReport cannot fit
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    // ~1500 records encode to well over the outbound cap.
    const Addr heap = 0x400000;
    const Trace marked = makeMarkedTrace(1, 6, 500, heap);
    const SessionSpec spec = addrcheckSpec(marked, heap);
    const RemoteReport reference = referenceFor(spec, marked);
    ASSERT_GT(reference.records.size(), 1000u);

    MonitorClient client;
    ASSERT_TRUE(client.connectUnix(scfg.unixPath));
    const RunResult remote = client.run(spec, marked);
    ASSERT_TRUE(remote.ok) << remote.error;
    EXPECT_EQ(remote.summary.status, SummaryStatus::Partial);
    EXPECT_EQ(remote.summary.recordsTotal, reference.records.size())
        << "Summary must report the true total even when truncated";
    EXPECT_LT(remote.report.records.size(), reference.records.size());
    EXPECT_EQ(remote.summary.fingerprint, reference.fingerprint)
        << "the fingerprint still witnesses the full report";
    server.stop();
    EXPECT_EQ(server.partialReports(), 1u);
}

// ---------------------------------------------------------------- adaptive

TEST(Wire, EpochHintRoundTripChainsAcrossFrames)
{
    EpochHintInfo first;
    first.effectiveH = 8;
    first.spans = {1, 2, 4, 8, 1};
    EpochHintInfo out;
    ASSERT_EQ(decodeEpochHint(encodeEpochHint(first), out),
              DecodeStatus::Ok);
    EXPECT_EQ(out.effectiveH, 8u);
    EXPECT_EQ(out.spans, first.spans);

    // A session's spans may be split over several frames; the decoder
    // appends, so chaining is just calling it again with the same out.
    EpochHintInfo second;
    second.effectiveH = 8;
    second.spans = {2, 2};
    ASSERT_EQ(decodeEpochHint(encodeEpochHint(second), out),
              DecodeStatus::Ok);
    const std::vector<std::uint32_t> chained = {1, 2, 4, 8, 1, 2, 2};
    EXPECT_EQ(out.spans, chained);
}

TEST(Wire, EpochHintRejectsHostileSpans)
{
    EpochHintInfo out;

    // A span of zero source epochs is meaningless (spans partition the
    // marker epochs): hand-rolled varints {effectiveH=1, count=1, k=0}.
    const std::uint8_t zero_span[] = {0x01, 0x01, 0x00};
    EXPECT_EQ(decodeEpochHint(zero_span, out), DecodeStatus::Corrupt);

    // A single span claiming an absurd merge width.
    EpochHintInfo absurd;
    absurd.spans = {(1u << 20) + 1};
    EXPECT_EQ(decodeEpochHint(encodeEpochHint(absurd), out),
              DecodeStatus::Corrupt);

    // A count beyond the per-frame bound, before any spans follow.
    const std::uint8_t huge_count[] = {0x01, 0x81, 0x80, 0x04};
    EXPECT_EQ(decodeEpochHint(huge_count, out), DecodeStatus::Corrupt);

    // Truncation anywhere must not decode cleanly.
    EpochHintInfo valid;
    valid.effectiveH = 4;
    valid.spans = {1, 4, 2};
    const auto payload = encodeEpochHint(valid);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        EpochHintInfo partial;
        EXPECT_NE(decodeEpochHint({payload.data(), cut}, partial),
                  DecodeStatus::Ok)
            << "truncated at " << cut;
    }

    // Overload joined the reject codes with the graduated ladder.
    RejectInfo overload{RejectCode::Overload, "shard shedding load"};
    RejectInfo overload2;
    ASSERT_EQ(decodeReject(encodeReject(overload), overload2),
              DecodeStatus::Ok);
    EXPECT_EQ(overload2.code, RejectCode::Overload);
    EXPECT_EQ(overload2.message, overload.message);
}

TEST(SessionMuxTest, AdaptiveLadderShedsNewSessionsAndRecovers)
{
    WorkerPool pool(2);
    MuxConfig config;
    config.adaptive = true;
    config.sessionQueueBytes = 256;
    config.debugPumpDelayMs = 200; // park queued bytes: samples stay hot
    config.busyRetryMs = 0;
    config.controller.upThreshold = 0.5;
    config.controller.downThreshold = 0.4;
    config.controller.escalateAfter = 1; // every hot sample climbs
    config.controller.recoverAfter = 1;  // every cool sample descends
    SessionMux mux(pool, config, [] {});

    SessionSpec spec;
    spec.lifeguard = static_cast<std::uint8_t>(Lifeguard::AddrCheck);
    spec.numThreads = 1;
    const std::uint64_t id = mux.open(spec);
    EXPECT_FALSE(mux.shedNewSessions());

    // Each in-sequence submission is one ladder sample; with the queue
    // parked over the hot threshold the shard climbs one rung per
    // attempt (Busy verdicts resubmit the same seq, as go-back-N does).
    const std::vector<std::uint8_t> chunk(200, 0x00); // Nop opcodes
    BusyInfo busy;
    RejectInfo reject;
    std::uint64_t seq = 0;
    for (int i = 0; i < 32 && !mux.shedNewSessions(); ++i) {
        const Admission verdict =
            mux.submitChunk(id, {seq, 0}, chunk, busy, reject);
        ASSERT_NE(verdict, Admission::Rejected) << reject.message;
        if (verdict == Admission::Accepted)
            ++seq;
    }
    EXPECT_TRUE(mux.shedNewSessions());
    EXPECT_EQ(mux.shardLevel(), DegradeLevel::Shed);

    // The abusive tenant goes away and its bytes are reclaimed. No
    // admission samples can arrive anymore — without the reactor tick
    // the shard would refuse sessions forever.
    mux.abort(id);
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    while (mux.globalBytes() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    ASSERT_EQ(mux.globalBytes(), 0u);

    while ((mux.shedNewSessions() ||
            mux.shardLevel() != DegradeLevel::Normal) &&
           std::chrono::steady_clock::now() < deadline) {
        mux.tickShardController(); // rate-limited to one sample / 100ms
        std::this_thread::sleep_for(5ms);
    }
    EXPECT_FALSE(mux.shedNewSessions());
    EXPECT_EQ(mux.shardLevel(), DegradeLevel::Normal)
        << "idle ticks never walked the ladder back down";
}

TEST(MonitorService, AdaptiveServerConformsAcrossForcedHChanges)
{
    // Tentpole conformance, loopback edition: a force-cycled adaptive
    // server changes the realized epoch width several times per session
    // and advertises the slicing in EpochHint frames; rebuilding that
    // layout locally must reproduce the report bit for bit.
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("adaptive");
    scfg.workers = 4;
    scfg.mux.adaptive = true;
    scfg.mux.adaptiveForceCycle = true; // widths 1→2→4→8 per group
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    const Addr heap = 0x500000;
    const Trace marked = makeMarkedTrace(2, 24, 20, heap);
    const SessionSpec spec = addrcheckSpec(marked, heap);
    const std::size_t source_epochs =
        EpochLayout::fromHeartbeats(marked).numEpochs();

    for (int i = 0; i < 6; ++i) {
        MonitorClient client;
        ASSERT_TRUE(client.connectUnix(scfg.unixPath));
        const RunResult remote = client.run(spec, marked);
        ASSERT_TRUE(remote.ok) << remote.error;

        ASSERT_FALSE(remote.epochSpans.empty())
            << "adaptive server sent no EpochHint";
        std::size_t covered = 0;
        for (const std::uint32_t k : remote.epochSpans)
            covered += k;
        ASSERT_EQ(covered, source_epochs)
            << "advertised spans do not partition the marker epochs";
        EXPECT_GE(remote.hChanges(), 3u);
        EXPECT_EQ(remote.effectiveH, 8u);
        EXPECT_EQ(remote.report.epochs, remote.epochSpans.size());

        const RemoteReport reference = analyzeReference(
            spec, marked,
            EpochLayout::coalescedFromHeartbeats(marked,
                                                 remote.epochSpans));
        EXPECT_TRUE(remote.report.identical(reference))
            << "session " << i << " diverged across h-changes";
    }
    server.stop();
    EXPECT_EQ(server.sessionsFailed(), 0u);
    EXPECT_EQ(server.sessionsCompleted(), 6u);
    EXPECT_GE(server.hintEchoes(), 1u)
        << "no client echo ever reached the server";
}

TEST(MonitorService, SaturatedAdaptiveShardTurnsAwayNewSessions)
{
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("shed");
    scfg.workers = 2;
    scfg.mux.adaptive = true;
    scfg.mux.sessionQueueBytes = 256;
    scfg.mux.debugPumpDelayMs = 100;
    scfg.mux.busyRetryMs = 1;
    scfg.mux.controller.upThreshold = 0.5;
    scfg.mux.controller.escalateAfter = 1;
    scfg.mux.controller.recoverAfter = 1 << 20; // pin Shed for the test
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    // Sacrificial tenant: a small queue plus a slow pump makes every
    // go-back-N retry a hot ladder sample, so the shard escalates to
    // Shed while the client burns its (tiny) Busy retry allowance.
    const Addr heap = 0x600000;
    const Trace big = makeMarkedTrace(2, 8, 60, heap);
    ClientConfig ccfg;
    ccfg.chunkBytes = 200;
    ccfg.maxBusyRetries = 40;
    {
        MonitorClient hog(ccfg);
        ASSERT_TRUE(hog.connectUnix(scfg.unixPath));
        const RunResult res = hog.run(addrcheckSpec(big, heap), big);
        EXPECT_FALSE(res.ok) << "hog was supposed to give up on Busy";
    }

    // A fresh tenant is refused at the door with Overload, and the
    // client surfaces retry-later semantics, not a protocol failure.
    const Trace small = makeMarkedTrace(1, 2, 10, heap);
    MonitorClient late;
    ASSERT_TRUE(late.connectUnix(scfg.unixPath));
    const RunResult refused = late.run(addrcheckSpec(small, heap), small);
    EXPECT_FALSE(refused.ok);
    EXPECT_TRUE(refused.overloaded) << refused.error;

    const std::vector<ShardStats> stats = server.shardStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].degradeLevel, DegradeLevel::Shed);
    server.stop();
    EXPECT_GE(server.sessionsShed(), 1u);
    EXPECT_GE(server.busySent(), 1u);
}

TEST(MonitorService, GarbageBytesAreRejectedWithProtocolError)
{
    ServerConfig scfg;
    scfg.unixPath = tempSocketPath("garbage");
    scfg.workers = 1;
    MonitorServer server(scfg);
    ASSERT_TRUE(server.start());

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, scfg.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
              static_cast<ssize_t>(sizeof(garbage)));

    FrameParser parser;
    Frame frame;
    DecodeStatus status = DecodeStatus::NeedMore;
    std::uint8_t buf[4096];
    for (int spins = 0; spins < 1000 && status != DecodeStatus::Ok;
         ++spins) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        parser.feed({buf, static_cast<std::size_t>(n)});
        status = parser.next(frame);
    }
    ::close(fd);
    ASSERT_EQ(status, DecodeStatus::Ok);
    EXPECT_EQ(frame.type, FrameType::Reject);
    RejectInfo reject;
    ASSERT_EQ(decodeReject(frame.payload, reject), DecodeStatus::Ok);
    EXPECT_EQ(reject.code, RejectCode::Protocol);
    server.stop();
}

} // namespace
} // namespace bfly::service
