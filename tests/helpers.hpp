/**
 * @file
 * Shared test utilities: tiny trace construction, sequential reference
 * evaluators for reaching definitions / reaching expressions over a given
 * total ordering, and random small-trace generators for property tests.
 */

#ifndef BUTTERFLY_TESTS_HELPERS_HPP
#define BUTTERFLY_TESTS_HELPERS_HPP

#include <map>
#include <vector>

#include "butterfly/ids.hpp"
#include "butterfly/reaching_defs.hpp"
#include "butterfly/reaching_exprs.hpp"
#include "common/rng.hpp"
#include "memmodel/valid_orderings.hpp"
#include "trace/epoch_slicer.hpp"
#include "trace/trace.hpp"

namespace bfly::test {

/**
 * Build a trace from per-thread event programs with explicit heartbeat
 * markers already embedded (kind Heartbeat separates epochs).
 */
inline Trace
traceOf(std::vector<std::vector<Event>> programs)
{
    Trace trace;
    trace.threads.resize(programs.size());
    for (std::size_t t = 0; t < programs.size(); ++t) {
        trace.threads[t].tid = static_cast<ThreadId>(t);
        trace.threads[t].events = std::move(programs[t]);
    }
    return trace;
}

/** Sequential reaching definitions over one total ordering: the set of
 *  definitions live at the end (last definition per location wins). */
inline DefSet
genOfOrdering(const std::vector<OrderedInstr> &order,
              const DefineExtractor &defines)
{
    std::map<Addr, DefId> last;
    for (const OrderedInstr &oi : order) {
        if (auto loc = defines(oi.e))
            last[*loc] = InstrId{oi.l, oi.t, oi.i}.pack();
    }
    DefSet out;
    for (const auto &[addr, d] : last)
        out.insert(d);
    return out;
}

/** Sequential reaching expressions over one total ordering: expressions
 *  available at the end (last effect per expression is a gen). */
inline ExprSet
availOfOrdering(const std::vector<OrderedInstr> &order,
                const ExprExtractor &effects)
{
    ExprSet avail;
    for (const OrderedInstr &oi : order) {
        const ExprEffect eff = effects(oi.e);
        for (ExprId e : eff.kills)
            avail.erase(e);
        for (ExprId e : eff.gens)
            avail.insert(e);
    }
    return avail;
}

/**
 * Random small trace for exhaustive property tests: @p threads threads,
 * @p epochs epochs, 0..max_per_block write events per block over a tiny
 * variable pool. Heartbeats embedded.
 */
inline Trace
randomSmallTrace(Rng &rng, unsigned threads, unsigned epochs,
                 unsigned max_per_block, unsigned vars)
{
    std::vector<std::vector<Event>> programs(threads);
    for (unsigned t = 0; t < threads; ++t) {
        for (unsigned l = 0; l < epochs; ++l) {
            const unsigned n =
                static_cast<unsigned>(rng.below(max_per_block + 1));
            for (unsigned i = 0; i < n; ++i)
                programs[t].push_back(
                    Event::write(0x100 + 8 * rng.below(vars), 8));
            if (l + 1 < epochs)
                programs[t].push_back(Event::heartbeat());
        }
    }
    return traceOf(std::move(programs));
}

/**
 * Random small trace of Alloc/Free events over a tiny key pool, for
 * reaching-expressions property tests (alloc generates the expression
 * "key available", free kills it).
 */
inline Trace
randomAllocTrace(Rng &rng, unsigned threads, unsigned epochs,
                 unsigned max_per_block, unsigned vars)
{
    std::vector<std::vector<Event>> programs(threads);
    for (unsigned t = 0; t < threads; ++t) {
        for (unsigned l = 0; l < epochs; ++l) {
            const unsigned n =
                static_cast<unsigned>(rng.below(max_per_block + 1));
            for (unsigned i = 0; i < n; ++i) {
                const Addr a = 0x100 + 8 * rng.below(vars);
                if (rng.chance(0.5))
                    programs[t].push_back(Event::alloc(a, 8));
                else
                    programs[t].push_back(Event::freeOf(a, 8));
            }
            if (l + 1 < epochs)
                programs[t].push_back(Event::heartbeat());
        }
    }
    return traceOf(std::move(programs));
}

/** Alloc gens "addr available"; free kills it. */
inline ExprEffect
allocEffects(const Event &e)
{
    switch (e.kind) {
      case EventKind::Alloc:
        return ExprEffect{{e.addr}, {}};
      case EventKind::Free:
        return ExprEffect{{}, {e.addr}};
      default:
        return ExprEffect{};
    }
}

} // namespace bfly::test

#endif // BUTTERFLY_TESTS_HELPERS_HPP
