/**
 * @file
 * Tests for butterfly reaching expressions (paper Section 5.2), the
 * must-analysis dual of reaching definitions, including exhaustive
 * verification of the dual of Lemma 5.1 against all valid orderings:
 * GEN_l members are available under *every* ordering, KILL_l members are
 * killable under *some* ordering, and IN is a subset of the expressions
 * available along every path to the block.
 */

#include <gtest/gtest.h>

#include "butterfly/reaching_exprs.hpp"
#include "butterfly/window.hpp"
#include "tests/helpers.hpp"

namespace bfly {
namespace {

struct RunResult
{
    Trace trace;
    EpochLayout layout;
    ReachingExpressions analysis;
};

std::unique_ptr<RunResult>
runExprs(Trace trace)
{
    auto result = std::make_unique<RunResult>(RunResult{
        std::move(trace), EpochLayout::fromHeartbeats(Trace{}),
        ReachingExpressions(0, test::allocEffects)});
    result->layout = EpochLayout::fromHeartbeats(result->trace);
    result->analysis = ReachingExpressions(result->layout.numThreads(),
                                           test::allocEffects);
    WindowSchedule().run(result->layout, result->analysis);
    return result;
}

TEST(ReachingExprs, SequentialGenKillWithinBlock)
{
    auto r = runExprs(test::traceOf({{
        Event::alloc(0x10, 8),
        Event::freeOf(0x10, 8),
        Event::alloc(0x18, 8),
    }}));
    const auto &res = r->analysis.blockResults(0, 0);
    EXPECT_FALSE(res.gen.contains(0x10));
    EXPECT_TRUE(res.kill.contains(0x10));
    EXPECT_TRUE(res.gen.contains(0x18));
    // KILL-SIDE-OUT records the transient kill regardless of position.
    EXPECT_TRUE(res.killSideOut.contains(0x10));
}

TEST(ReachingExprs, KillIsGlobalAcrossWings)
{
    // Thread 1 kills x anywhere in its block; thread 0's IN loses x even
    // though thread 0's own LSOS would keep it (x in SOS via epoch 0).
    auto r = runExprs(test::traceOf({
        {Event::alloc(0x10, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::read(0x10)},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::freeOf(0x10, 8),
         Event::alloc(0x10, 8)},
    }));
    // x is in SOS_2 (allocated in epoch 0, nobody killed it then).
    EXPECT_TRUE(r->analysis.sos(2).contains(0x10));
    const auto &body = r->analysis.blockResults(2, 0);
    // The wing (2,1) exposes its transient kill; IN must drop x.
    EXPECT_TRUE(body.killSideIn.contains(0x10));
    EXPECT_TRUE(body.lsos.contains(0x10));
    EXPECT_FALSE(body.in.contains(0x10));
}

TEST(ReachingExprs, GenIsLocalNoSideIn)
{
    // Thread 1 allocates x in epoch 0. Thread 0 cannot treat x as
    // available (must-analysis: no block knows every path generated it).
    auto r = runExprs(test::traceOf({
        {Event::read(0x99)},
        {Event::alloc(0x10, 8)},
    }));
    const auto &res = r->analysis.blockResults(0, 0);
    EXPECT_FALSE(res.in.contains(0x10));
}

TEST(ReachingExprs, LsosHeadGenSurvivesUnlessEpochL2Kills)
{
    // Head (epoch 1, t0) allocates x; thread 1 freed x in epoch 0
    // (= l-2 for body epoch 2): the head's gen may have been followed by
    // the epoch-0 kill? No — the kill may land *after* the head's gen,
    // so the head gen cannot be trusted: x must NOT be in the LSOS.
    auto r = runExprs(test::traceOf({
        {Event::nop(), Event::heartbeat(), Event::alloc(0x10, 8),
         Event::heartbeat(), Event::read(0x10)},
        {Event::freeOf(0x10, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop()},
    }));
    const auto &body = r->analysis.blockResults(2, 0);
    EXPECT_FALSE(body.lsos.contains(0x10));

    // Control: without the epoch-0 free, the head gen is trusted.
    auto r2 = runExprs(test::traceOf({
        {Event::nop(), Event::heartbeat(), Event::alloc(0x10, 8),
         Event::heartbeat(), Event::read(0x10)},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop()},
    }));
    EXPECT_TRUE(r2->analysis.blockResults(2, 0).lsos.contains(0x10));
}

TEST(ReachingExprs, EpochGenRequiresOtherThreadsQuiet)
{
    // Thread 0 allocates x in epoch 0; thread 1 frees x in epoch 0:
    // there is an ordering where the free lands last, so x must not be
    // in GEN_0 nor in SOS_2.
    auto r = runExprs(test::traceOf({
        {Event::alloc(0x10, 8)},
        {Event::freeOf(0x10, 8)},
    }));
    EXPECT_FALSE(r->analysis.genEpoch(0).contains(0x10));
    EXPECT_FALSE(r->analysis.sos(2).contains(0x10));
}

// --------------------------------------------------------------------
// Property tests against exhaustive valid-ordering enumeration.
// --------------------------------------------------------------------

class ReachingExprsProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ReachingExprsProperty, DualLemma51)
{
    Rng rng(GetParam() * 31 + 5);
    const Trace trace = test::randomAllocTrace(rng, 2, 3, 2, 3);
    auto r = runExprs(trace);
    const std::size_t L = r->layout.numEpochs();

    for (EpochId l = 0; l < L; ++l) {
        const ValidOrderings vo(r->layout, l);
        if (vo.size() == 0)
            continue;
        std::vector<ExprSet> all_avail;
        vo.forEach([&](const std::vector<OrderedInstr> &order) {
            all_avail.push_back(
                test::availOfOrdering(order, test::allocEffects));
            return true;
        });

        // GEN_l: available at the end of *every* valid ordering.
        for (ExprId e : r->analysis.genEpoch(l)) {
            for (const ExprSet &avail : all_avail) {
                EXPECT_TRUE(avail.contains(e))
                    << "GEN_" << l << " expr " << e
                    << " unavailable in some ordering (seed "
                    << GetParam() << ")";
            }
        }
        // KILL_l: killed at the end of *some* valid ordering.
        for (ExprId e : r->analysis.killEpoch(l)) {
            bool witnessed = false;
            for (const ExprSet &avail : all_avail)
                witnessed = witnessed || !avail.contains(e);
            EXPECT_TRUE(witnessed)
                << "KILL_" << l << " expr " << e
                << " available in every ordering (seed " << GetParam()
                << ")";
        }
    }
}

TEST_P(ReachingExprsProperty, SosIsSoundForMustAnalysis)
{
    Rng rng(GetParam() * 1013 + 3);
    const Trace trace = test::randomAllocTrace(rng, 2, 3, 2, 3);
    auto r = runExprs(trace);
    const std::size_t L = r->layout.numEpochs();

    // Soundness: e in SOS_l implies e is available at the end of every
    // valid ordering of epochs [0, l-2] (no false "available" facts; the
    // must-analysis may only under-approximate).
    for (EpochId l = 2; l < L + 2; ++l) {
        const EpochId last = l - 2;
        if (last >= L)
            break;
        const ValidOrderings vo(r->layout, last);
        for (ExprId e : r->analysis.sos(l)) {
            vo.forEach([&](const std::vector<OrderedInstr> &order) {
                const ExprSet avail =
                    test::availOfOrdering(order, test::allocEffects);
                EXPECT_TRUE(avail.contains(e))
                    << "SOS_" << l << " expr " << e
                    << " not available in some ordering (seed "
                    << GetParam() << ")";
                return true;
            });
        }
    }
}

TEST_P(ReachingExprsProperty, InIsSubsetOfEveryPathAvailability)
{
    Rng rng(GetParam() * 65537 + 11);
    const Trace trace = test::randomAllocTrace(rng, 2, 3, 2, 2);
    auto r = runExprs(trace);
    const std::size_t L = r->layout.numEpochs();

    for (EpochId l = 0; l < L; ++l) {
        const EpochId hi = std::min<EpochId>(l + 1, L - 1);
        const ValidOrderings vo(r->layout, hi);
        for (ThreadId t = 0; t < 2; ++t) {
            if (r->layout.block(l, t).empty())
                continue;
            const auto &in = r->analysis.blockResults(l, t).in;
            vo.forEach([&](const std::vector<OrderedInstr> &order) {
                std::vector<OrderedInstr> prefix;
                for (const OrderedInstr &oi : order) {
                    if (oi.l == l && oi.t == t && oi.i == 0)
                        break;
                    prefix.push_back(oi);
                }
                const ExprSet avail =
                    test::availOfOrdering(prefix, test::allocEffects);
                for (ExprId e : in) {
                    EXPECT_TRUE(avail.contains(e))
                        << "IN_{" << l << "," << t
                        << "} claims unavailable expr " << e << " (seed "
                        << GetParam() << ")";
                }
                return true;
            });
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachingExprsProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace bfly
