/** @file Unit tests for src/sim: caches, CMP hierarchy, LBA timing. */

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/cmp.hpp"
#include "sim/core_model.hpp"
#include "sim/lba.hpp"

namespace bfly {
namespace {

TEST(Cache, HitAfterMiss)
{
    Cache cache(CacheConfig{1024, 2, 64, 1});
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x13f)); // same 64B line
    EXPECT_FALSE(cache.access(0x140)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 64B lines, 2 sets (256B total): lines 0,2,4 map to set 0.
    Cache cache(CacheConfig{256, 2, 64, 1});
    cache.access(0 * 64);
    cache.access(2 * 64);
    cache.access(0 * 64);      // refresh line 0
    cache.access(4 * 64);      // evicts line 2 (LRU)
    EXPECT_TRUE(cache.probe(0 * 64));
    EXPECT_FALSE(cache.probe(2 * 64));
    EXPECT_TRUE(cache.probe(4 * 64));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(CacheConfig{1024, 2, 64, 1});
    cache.access(0x100);
    EXPECT_TRUE(cache.probe(0x100));
    cache.invalidate(0x100);
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_EQ(cache.invalidations(), 1u);
    cache.invalidate(0x100); // no-op
    EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(Cache, FlushClearsEverything)
{
    Cache cache(CacheConfig{1024, 2, 64, 1});
    cache.access(0x100);
    cache.access(0x500);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_FALSE(cache.probe(0x500));
}

TEST(CmpConfig, Table1L2Scaling)
{
    EXPECT_EQ(CmpConfig::forCores(4).l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(CmpConfig::forCores(8).l2.sizeBytes, 4u * 1024 * 1024);
    EXPECT_EQ(CmpConfig::forCores(16).l2.sizeBytes, 8u * 1024 * 1024);
}

TEST(Cmp, Table1LatenciesPerLevel)
{
    // Table 1: L1 2 cycles, L2 +6, memory +90.
    Cmp cmp(CmpConfig::forCores(4));
    EXPECT_EQ(cmp.access(0, 0x1000, false), 2u + 6 + 90); // cold miss
    EXPECT_EQ(cmp.access(0, 0x1000, false), 2u);          // L1 hit
    // Another core misses L1 but hits the shared L2.
    EXPECT_EQ(cmp.access(1, 0x1000, false), 2u + 6);
}

TEST(Cmp, WriteInvalidatesOtherCores)
{
    Cmp cmp(CmpConfig::forCores(4));
    cmp.access(0, 0x2000, false);
    cmp.access(1, 0x2000, false);
    cmp.access(1, 0x2000, true); // write: invalidates core 0's copy
    // Core 0 now misses L1 (hits L2).
    EXPECT_EQ(cmp.access(0, 0x2000, false), 2u + 6);
    EXPECT_EQ(cmp.stats().get("coherence.invalidations"), 1u);
}

TEST(CoreModel, EventCosts)
{
    CoreModel core;
    EXPECT_EQ(core.cost(Event::nop(), 0), 1u);
    EXPECT_EQ(core.cost(Event::read(0x10), 8), 8u);
    EXPECT_EQ(core.cost(Event::heartbeat(), 0), 0u);
    EXPECT_EQ(core.cost(Event::alloc(0x10, 8), 2),
              core.allocatorOverhead + 2);
}

TEST(SimulateSpsc, ConsumerBoundPipeline)
{
    // Producer 1 cycle/record, consumer 10: end time ~ n*10.
    std::vector<Cycles> prod(100, 1), cons(100, 10);
    const TimingResult r = simulateSpsc(prod, cons, 4);
    EXPECT_EQ(r.totalCycles, 1u + 100 * 10);
    // Producer runs 4 ahead then stalls on the full buffer.
    EXPECT_GT(r.appStallCycles, 0u);
}

TEST(SimulateSpsc, ProducerBoundPipeline)
{
    std::vector<Cycles> prod(100, 10), cons(100, 1);
    const TimingResult r = simulateSpsc(prod, cons, 4);
    EXPECT_EQ(r.totalCycles, 100u * 10 + 1); // last consume after last prod
    EXPECT_EQ(r.appStallCycles, 0u);
}

TEST(SimulateSpsc, TinyBufferSerializes)
{
    std::vector<Cycles> prod(10, 5), cons(10, 5);
    const TimingResult r1 = simulateSpsc(prod, cons, 1);
    const TimingResult big = simulateSpsc(prod, cons, 64);
    EXPECT_GE(r1.totalCycles, big.totalCycles);
}

TEST(SimulateButterfly, BarrierCostsAccumulatePerEpoch)
{
    // 2 threads, 3 epochs, no events: total = per-epoch fixed costs only.
    ButterflyTimingInput in;
    in.costs.assign(2, std::vector<EpochCosts>(3));
    in.barrierCost = 100;
    in.sosUpdateCost = {10, 10, 10};
    const TimingResult r = simulateButterfly(in);
    // Epoch pipeline: 4 pass-1 barriers (incl. drain step) + 3 pass-2
    // barriers + 3 SOS updates.
    EXPECT_EQ(r.totalCycles, 4u * 100 + 3 * 100 + 3 * 10);
}

TEST(SimulateButterfly, SlowestThreadGatesTheBarrier)
{
    ButterflyTimingInput in;
    in.costs.assign(2, std::vector<EpochCosts>(1));
    in.barrierCost = 0;
    in.costs[0][0].appCost = {1, 1};
    in.costs[0][0].pass1Cost = {5, 5};
    in.costs[1][0].appCost = {1};
    in.costs[1][0].pass1Cost = {100};
    const TimingResult r = simulateButterfly(in);
    EXPECT_GE(r.totalCycles, 101u);
    EXPECT_GT(r.barrierWaitCycles, 0u); // thread 0 waited for thread 1
}

TEST(SimulateButterfly, Pass2CostDelaysCompletion)
{
    ButterflyTimingInput base;
    base.costs.assign(1, std::vector<EpochCosts>(2));
    base.barrierCost = 0;
    base.costs[0][0].appCost = {1};
    base.costs[0][0].pass1Cost = {1};
    ButterflyTimingInput heavy = base;
    heavy.costs[0][0].pass2Cost = 1000;
    EXPECT_GT(simulateButterfly(heavy).totalCycles,
              simulateButterfly(base).totalCycles);
}

TEST(SimulateButterfly, BufferBackPressureStallsApp)
{
    // Slow lifeguard + tiny buffer: the app must stall.
    ButterflyTimingInput in;
    in.costs.assign(1, std::vector<EpochCosts>(1));
    in.bufferCapacity = 2;
    in.costs[0][0].appCost.assign(50, 1);
    in.costs[0][0].pass1Cost.assign(50, 20);
    const TimingResult r = simulateButterfly(in);
    EXPECT_GT(r.appStallCycles, 0u);
    EXPECT_GT(r.appCycles, 50u); // far more than unmonitored 50 cycles
}

TEST(SimulateUnmonitored, MaxOfThreads)
{
    const TimingResult r = simulateUnmonitored({100, 250, 30});
    EXPECT_EQ(r.totalCycles, 250u);
}

} // namespace
} // namespace bfly
