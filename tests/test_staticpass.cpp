/**
 * @file
 * Unit tests for the static elision subsystem (src/staticpass/): the
 * SiteTable, deterministic pseudo-site stamping, the flow-insensitive
 * site classifier (lattice rungs, candidacy, demotion fixpoint) and
 * plan application (run flushing, exact accounting, fingerprints).
 */

#include <gtest/gtest.h>

#include "staticpass/classify.hpp"
#include "staticpass/elision_plan.hpp"
#include "staticpass/site_table.hpp"
#include "tests/helpers.hpp"

using namespace bfly;
using namespace bfly::staticpass;

namespace {

/** Stamp a site id onto a factory-built event. */
Event
at(Event e, SiteId site)
{
    e.site = site;
    return e;
}

} // namespace

// ---------------------------------------------------------------------
// SiteTable

TEST(SiteTable, InternsDenseStableIdsFromOne)
{
    SiteTable t;
    EXPECT_EQ(t.size(), 0u);
    const SiteId a = t.intern("ocean/relax");
    const SiteId b = t.intern("ocean/border");
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(t.intern("ocean/relax"), a); // idempotent
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.name(a), "ocean/relax");
    EXPECT_EQ(t.name(b), "ocean/border");
}

TEST(SiteTable, LookupMissesReturnNoSite)
{
    SiteTable t;
    t.intern("x");
    EXPECT_EQ(t.lookup("x"), 1u);
    EXPECT_EQ(t.lookup("never-interned"), kNoSite);
}

TEST(SiteTable, NameOfUnknownIdsIsQuestionMark)
{
    SiteTable t;
    t.intern("only");
    EXPECT_EQ(t.name(kNoSite), "?");
    EXPECT_EQ(t.name(2), "?"); // out of range
    EXPECT_EQ(t.name(0xFFFFFFFFu), "?");
}

// ---------------------------------------------------------------------
// Pseudo-site stamping

TEST(PseudoSites, StampingIsDeterministicInTraceContent)
{
    auto build = [] {
        return test::traceOf({
            {Event::read(0x1000, 8), Event::write(0x1040, 8),
             Event::nop(), Event::heartbeat(), Event::barrier()},
            {Event::read(0x1000, 8)},
        });
    };
    Trace a = build(), b = build();
    SiteTable ta, tb;
    const std::size_t na = assignPseudoSites(a, ta);
    const std::size_t nb = assignPseudoSites(b, tb);
    EXPECT_EQ(na, nb);
    EXPECT_EQ(ta.size(), tb.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t)
        for (std::size_t i = 0; i < a.threads[t].events.size(); ++i)
            EXPECT_EQ(a.threads[t].events[i].site,
                      b.threads[t].events[i].site);
}

TEST(PseudoSites, KeysOnThreadKindAndRegion)
{
    // 0x1000 and 0x1008 share a 64-byte region; 0x1040 does not.
    Trace trace = test::traceOf({
        {Event::read(0x1000, 8), Event::read(0x1008, 8),
         Event::read(0x1040, 8), Event::write(0x1000, 8)},
        {Event::read(0x1000, 8)},
    });
    SiteTable table;
    EXPECT_EQ(assignPseudoSites(trace, table), 5u);
    const auto &t0 = trace.threads[0].events;
    EXPECT_EQ(t0[0].site, t0[1].site);  // same (tid, kind, region)
    EXPECT_NE(t0[0].site, t0[2].site);  // different region
    EXPECT_NE(t0[0].site, t0[3].site);  // different kind
    EXPECT_NE(t0[0].site, trace.threads[1].events[0].site); // tid
    EXPECT_EQ(table.name(t0[0].site), "t0/read/0x40");
}

TEST(PseudoSites, NopsGetPerThreadSitesMarkersStayUnattributed)
{
    Trace trace = test::traceOf({
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::barrier()},
    });
    SiteTable table;
    EXPECT_EQ(assignPseudoSites(trace, table), 2u);
    const auto &ev = trace.threads[0].events;
    EXPECT_NE(ev[0].site, kNoSite);
    EXPECT_EQ(ev[0].site, ev[2].site); // one nop site per thread
    EXPECT_EQ(ev[1].site, kNoSite);    // heartbeat
    EXPECT_EQ(ev[3].site, kNoSite);    // barrier
    EXPECT_EQ(table.name(ev[0].site), "t0/nop/0x0");
}

TEST(PseudoSites, AlreadyStampedEventsAreLeftAlone)
{
    Trace trace = test::traceOf({{at(Event::read(0x1000, 8), 77)}});
    SiteTable table;
    EXPECT_EQ(assignPseudoSites(trace, table), 0u);
    EXPECT_EQ(trace.threads[0].events[0].site, 77u);
    EXPECT_EQ(table.size(), 0u);
}

// ---------------------------------------------------------------------
// Classification lattice

TEST(Classify, PrivateAllocCoveredSiteIsAlwaysPrivate)
{
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        at(Event::alloc(0x1000, 64), s),
        at(Event::write(0x1000, 8), s),
        at(Event::read(0x1000, 8), s),
        at(Event::freeOf(0x1000, 64), s),
    }};
    ClassifyStats stats;
    const ElisionPlan plan = classifySites(programs, table, {}, &stats);
    EXPECT_EQ(plan.classOf(s), SiteClass::AlwaysPrivate);
    EXPECT_TRUE(plan.elides(s));
    EXPECT_EQ(stats.byClass[3], 1u);
    EXPECT_EQ(stats.candidateEvents, 2u); // the R/W pair, not alloc/free
}

TEST(Classify, ReadOfUndefinedMemoryIsNotPrivate)
{
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        at(Event::alloc(0x1000, 64), s),
        at(Event::read(0x1000, 8), s), // fresh memory: no def cover
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_FALSE(plan.elides(s));
    // Nothing is freed or tainted, so the middle rung still holds.
    EXPECT_EQ(plan.classOf(s), SiteClass::ProvablyUntainted);
}

TEST(Classify, ReadOfUnallocatedMemoryIsNotPrivate)
{
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        at(Event::write(0x1000, 8), s), // no alloc cover
        at(Event::read(0x1000, 8), s),
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_FALSE(plan.elides(s));
}

TEST(Classify, CrossThreadSharingDemotesBothSites)
{
    SiteTable table;
    const SiteId a = table.intern("a"), b = table.intern("b");
    const std::vector<std::vector<Event>> programs = {
        {at(Event::alloc(0x1000, 8), a), at(Event::write(0x1000, 8), a),
         at(Event::read(0x1000, 8), a)},
        {at(Event::read(0x1000, 8), b)},
    };
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_FALSE(plan.elides(a));
    EXPECT_FALSE(plan.elides(b));
}

TEST(Classify, FreeElsewhereInProgramOrderStillPrivate)
{
    // The same-thread Free after the accesses is benign for candidacy:
    // program order separates it from every covered access.
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        at(Event::alloc(0x2000, 32), s),
        at(Event::write(0x2000, 8), s),
        at(Event::read(0x2000, 8), s),
        at(Event::freeOf(0x2000, 32), s),
        // Reuse after free: a *new* alloc re-covers the bytes.
        at(Event::alloc(0x2000, 32), s),
        at(Event::write(0x2000, 8), s),
        at(Event::read(0x2000, 8), s),
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_TRUE(plan.elides(s));
}

TEST(Classify, UseAfterFreeWindowIsNotPrivate)
{
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        at(Event::alloc(0x2000, 32), s),
        at(Event::write(0x2000, 8), s),
        at(Event::freeOf(0x2000, 32), s),
        at(Event::read(0x2000, 8), s), // dangling: alloc mask cleared
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_FALSE(plan.elides(s));
}

TEST(Classify, TaintTouchedCellsLandOnTheNeverFreedRung)
{
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        at(Event::alloc(0x2000, 8), s),
        at(Event::write(0x2000, 8), s),
        at(Event::read(0x2000, 8), s),
        Event::taintSrc(0x2000, 8), // unattributed; dirties the cell
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_FALSE(plan.elides(s));
    EXPECT_EQ(plan.classOf(s), SiteClass::NeverFreed);
}

TEST(Classify, TaintFlowsThroughAssignsToDemoteDestinations)
{
    SiteTable table;
    const SiteId s = table.intern("k");
    const std::vector<std::vector<Event>> programs = {{
        Event::taintSrc(0x9000, 8),
        Event::assign(0x2000, 0x9000), // 0x2000 now in the closure
        at(Event::alloc(0x2000, 8), s),
        at(Event::write(0x2000, 8), s),
    }};
    const ElisionPlan plan = classifySites(programs, table);
    // The assign dirties the cell, so candidacy fails; the closure
    // additionally denies the ProvablyUntainted rung.
    EXPECT_EQ(plan.classOf(s), SiteClass::NeverFreed);
}

TEST(Classify, UnattributedSiteIsAlwaysMustMonitor)
{
    SiteTable table;
    const std::vector<std::vector<Event>> programs = {{
        Event::alloc(0x1000, 8),
        Event::write(0x1000, 8),
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_EQ(plan.classOf(kNoSite), SiteClass::MustMonitor);
    EXPECT_FALSE(plan.elides(kNoSite));
}

// ---------------------------------------------------------------------
// Demotion fixpoint

TEST(Classify, RetainedReadDemotesTheWritingSite)
{
    SiteTable table;
    const SiteId s = table.intern("writer");
    const std::vector<std::vector<Event>> programs = {{
        Event::alloc(0x1000, 16),
        at(Event::write(0x1000, 8), s),
        Event::read(0x1000, 8), // unattributed, therefore retained
    }};
    ClassifyStats stats;
    const ElisionPlan plan = classifySites(programs, table, {}, &stats);
    // Eliding the write would make the retained read look undefined.
    EXPECT_FALSE(plan.elides(s));
    EXPECT_GE(stats.fixpointRounds, 2u);
}

TEST(Classify, DemotionCascadesThroughSiteChains)
{
    SiteTable table;
    const SiteId a = table.intern("a"), b = table.intern("b");
    const std::vector<std::vector<Event>> programs = {{
        Event::alloc(0x1000, 64),
        at(Event::write(0x1000, 8), a),
        at(Event::write(0x1008, 8), b),
        at(Event::read(0x1008, 8), a),
        Event::read(0x1000, 8), // retained: demotes a, then a's read
                                // retains 0x1008, demoting b
    }};
    ClassifyStats stats;
    const ElisionPlan plan = classifySites(programs, table, {}, &stats);
    EXPECT_FALSE(plan.elides(a));
    EXPECT_FALSE(plan.elides(b));
    EXPECT_GE(stats.fixpointRounds, 3u);
}

TEST(Classify, IndependentPrivateSiteSurvivesTheFixpoint)
{
    SiteTable table;
    const SiteId hot = table.intern("hot"), cold = table.intern("cold");
    const std::vector<std::vector<Event>> programs = {{
        Event::alloc(0x1000, 16),
        Event::alloc(0x8000, 16),
        at(Event::write(0x1000, 8), hot),
        Event::read(0x1000, 8), // demotes hot only
        at(Event::write(0x8000, 8), cold),
        at(Event::read(0x8000, 8), cold),
    }};
    const ElisionPlan plan = classifySites(programs, table);
    EXPECT_FALSE(plan.elides(hot));
    EXPECT_TRUE(plan.elides(cold));
}

// ---------------------------------------------------------------------
// Plan application

TEST(ElisionPlanApply, RunsFlushAtRetainedEventsAndMarkers)
{
    ElisionPlan plan;
    plan.classes = {SiteClass::MustMonitor, SiteClass::AlwaysPrivate,
                    SiteClass::MustMonitor};
    std::vector<Event> events = {
        at(Event::read(0x10, 8), 1),  at(Event::write(0x18, 8), 1),
        at(Event::nop(), 1),          Event::heartbeat(),
        at(Event::read(0x10, 8), 1),  at(Event::read(0x20, 8), 2),
        at(Event::write(0x18, 8), 1),
    };
    for (std::size_t i = 0; i < events.size(); ++i)
        events[i].gseq = 100 + i;

    ElisionStats stats;
    const std::vector<Event> out =
        applyElisionPlan(events, plan, &stats);

    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].kind, EventKind::SiteSummary);
    EXPECT_EQ(out[0].site, 1u);
    EXPECT_EQ(out[0].summaryCount(), 3u);
    EXPECT_EQ(out[0].gseq, 102u); // max gseq of the covered run
    EXPECT_EQ(out[1].kind, EventKind::Heartbeat);
    EXPECT_EQ(out[2].kind, EventKind::SiteSummary);
    EXPECT_EQ(out[2].summaryCount(), 1u);
    EXPECT_EQ(out[3].kind, EventKind::Read); // the retained site-2 read
    EXPECT_EQ(out[3].site, 2u);
    EXPECT_EQ(out[4].kind, EventKind::SiteSummary); // trailing flush
    EXPECT_EQ(out[4].summaryCount(), 1u);

    EXPECT_EQ(stats.inputEvents, 6u); // heartbeat not counted
    EXPECT_EQ(stats.elidedEvents, 5u);
    EXPECT_EQ(stats.retainedEvents, 1u);
    EXPECT_EQ(stats.summaryEvents, 3u);
}

TEST(ElisionPlanApply, OneSummaryPerDistinctSitePerRun)
{
    ElisionPlan plan;
    plan.classes = {SiteClass::MustMonitor, SiteClass::AlwaysPrivate,
                    SiteClass::AlwaysPrivate};
    const std::vector<Event> events = {
        at(Event::read(0x10, 8), 1), at(Event::read(0x40, 8), 2),
        at(Event::read(0x18, 8), 1), at(Event::read(0x48, 8), 2),
    };
    ElisionStats stats;
    const std::vector<Event> out =
        applyElisionPlan(events, plan, &stats);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].site, 1u); // first-seen order
    EXPECT_EQ(out[0].summaryCount(), 2u);
    EXPECT_EQ(out[1].site, 2u);
    EXPECT_EQ(out[1].summaryCount(), 2u);
    EXPECT_EQ(stats.summaryEvents, 2u);
}

TEST(ElisionPlanApply, SummaryCountsAccountForEveryElidedEvent)
{
    // Property over the whole trace: sum(summary counts) == elided.
    ElisionPlan plan;
    plan.classes = {SiteClass::MustMonitor, SiteClass::AlwaysPrivate};
    std::vector<Event> events;
    for (int i = 0; i < 100; ++i) {
        events.push_back(at(Event::write(0x1000 + 8 * i, 8), 1));
        if (i % 7 == 0)
            events.push_back(Event::read(0x9000, 8)); // retained
        if (i % 13 == 0)
            events.push_back(Event::heartbeat());
    }
    ElisionStats stats;
    const std::vector<Event> out =
        applyElisionPlan(events, plan, &stats);
    std::uint64_t summed = 0, summaries = 0;
    for (const Event &e : out)
        if (e.kind == EventKind::SiteSummary) {
            summed += e.summaryCount();
            ++summaries;
        }
    EXPECT_EQ(summed, stats.elidedEvents);
    EXPECT_EQ(summaries, stats.summaryEvents);
    EXPECT_EQ(stats.inputEvents,
              stats.elidedEvents + stats.retainedEvents);
    EXPECT_EQ(stats.elidedEvents, 100u);
}

TEST(ElisionPlanApply, OnlyReadWriteNopKindsAreEverElided)
{
    // Even at an AlwaysPrivate site, allocs/frees/locks are retained.
    ElisionPlan plan;
    plan.classes = {SiteClass::MustMonitor, SiteClass::AlwaysPrivate};
    const std::vector<Event> events = {
        at(Event::alloc(0x1000, 16), 1), at(Event::write(0x1000, 8), 1),
        at(Event::freeOf(0x1000, 16), 1), at(Event::lock(0x50), 1),
    };
    ElisionStats stats;
    const std::vector<Event> out =
        applyElisionPlan(events, plan, &stats);
    ASSERT_EQ(out.size(), 4u); // alloc, summary(write), free, lock
    EXPECT_EQ(out[0].kind, EventKind::Alloc);
    EXPECT_EQ(out[1].kind, EventKind::SiteSummary);
    EXPECT_EQ(out[2].kind, EventKind::Free);
    EXPECT_EQ(out[3].kind, EventKind::Lock);
    EXPECT_EQ(stats.elidedEvents, 1u);
}

TEST(ElisionPlanApply, EmptyPlanIsIdentity)
{
    const std::vector<Event> events = {
        at(Event::read(0x10, 8), 1), Event::heartbeat(),
        at(Event::write(0x18, 8), 2),
    };
    ElisionStats stats;
    const std::vector<Event> out =
        applyElisionPlan(events, ElisionPlan{}, &stats);
    ASSERT_EQ(out.size(), events.size());
    EXPECT_EQ(stats.elidedEvents, 0u);
    EXPECT_EQ(stats.summaryEvents, 0u);
    EXPECT_EQ(stats.retainedEvents, 2u);
}

// ---------------------------------------------------------------------
// Fingerprints

TEST(ElisionPlanFingerprint, EmptyPlanIsZero)
{
    EXPECT_EQ(ElisionPlan{}.fingerprint(), 0u);
    ElisionPlan only_nosite;
    only_nosite.classes = {SiteClass::MustMonitor};
    EXPECT_EQ(only_nosite.fingerprint(), 0u);
}

TEST(ElisionPlanFingerprint, StableAndSensitiveToEveryClass)
{
    ElisionPlan a;
    a.classes = {SiteClass::MustMonitor, SiteClass::AlwaysPrivate,
                 SiteClass::NeverFreed};
    ElisionPlan b = a;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), 0u);
    b.classes[2] = SiteClass::ProvablyUntainted;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ElisionPlanFingerprint, MatchesAcrossIndependentDerivations)
{
    // The property the wire handshake relies on: both ends derive the
    // plan independently from the same trace and must agree.
    auto derive = [] {
        Trace trace = test::traceOf({
            {Event::alloc(0x1000, 64), Event::write(0x1000, 8),
             Event::read(0x1000, 8), Event::nop()},
            {Event::read(0x7000, 8)},
        });
        SiteTable table;
        return buildElisionPlan(trace, table).fingerprint();
    };
    EXPECT_EQ(derive(), derive());
}

// ---------------------------------------------------------------------
// End to end: elision on a stamped trace never hides an oracle error

TEST(ElisionEndToEnd, SummariesLandInTheSameEpochAsTheirRun)
{
    Trace trace = test::traceOf({
        {Event::alloc(0x1000, 64), Event::write(0x1000, 8),
         Event::read(0x1000, 8), Event::heartbeat(),
         Event::write(0x1008, 8)},
    });
    std::uint64_t g = 0;
    for (auto &e : trace.threads[0].events)
        e.gseq = ++g;
    SiteTable table;
    const ElisionPlan plan = buildElisionPlan(trace, table);
    ElisionStats stats;
    const Trace elided = applyElisionPlan(trace, plan, &stats);
    ASSERT_GT(stats.elidedEvents, 0u);
    // Every summary's gseq must not exceed the marker that follows it,
    // so EpochLayout::byGlobalSeq buckets it with the run's epoch.
    const auto &ev = elided.threads[0].events;
    for (std::size_t i = 0; i + 1 < ev.size(); ++i)
        if (ev[i].kind == EventKind::SiteSummary)
            EXPECT_LE(ev[i].gseq, ev[i + 1].gseq != 0
                                      ? ev[i + 1].gseq
                                      : ev[i].gseq);
}

