/**
 * @file
 * Tests for the adaptive epoch controller and the EpochStream re-slice
 * seam: every rung of the degradation ladder (table-driven), hysteresis
 * asymmetry and no-oscillation guarantees under steady and noisy load,
 * and the construction-time coalescing invariants — realized spans
 * partition the source epochs, streamed blocks are bit-identical to
 * EpochLayout::coalescedFromHeartbeats over the same spans (including
 * duplicate and out-of-order heartbeats straddling a re-slice
 * boundary), and a full analyzeStreaming run under a forced h-cycle
 * reproduces the coalesced reference report exactly.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "common/worker_pool.hpp"
#include "service/analyzer.hpp"
#include "service/epoch_controller.hpp"
#include "trace/epoch_slicer.hpp"
#include "trace/trace.hpp"

namespace bfly::service {
namespace {

ControllerSample
pressure(double p)
{
    ControllerSample s;
    s.queueFraction = p;
    return s;
}

// ---------------------------------------------------------- ladder rungs

TEST(EpochController, LadderClimbsOneRungPerHotStreak)
{
    // Default hysteresis: two consecutive hot samples per climb.
    EpochController ctl;
    const DegradeLevel rungs[] = {
        DegradeLevel::Grow2, DegradeLevel::Grow4, DegradeLevel::Grow8,
        DegradeLevel::Partial, DegradeLevel::Busy, DegradeLevel::Shed,
    };
    EXPECT_EQ(ctl.level(), DegradeLevel::Normal);
    for (const DegradeLevel expect : rungs) {
        ctl.observe(pressure(0.9));
        ctl.observe(pressure(0.9));
        EXPECT_EQ(ctl.level(), expect);
    }
    // Saturates at Shed.
    ctl.observe(pressure(1.0));
    ctl.observe(pressure(1.0));
    EXPECT_EQ(ctl.level(), DegradeLevel::Shed);
    EXPECT_EQ(ctl.escalations(), 6u);
}

TEST(EpochController, RecoveryDescendsOneRungPerCoolStreak)
{
    EpochController ctl;
    for (int i = 0; i < 12; ++i)
        ctl.observe(pressure(0.9)); // drive to Shed
    ASSERT_EQ(ctl.level(), DegradeLevel::Shed);

    const DegradeLevel rungs[] = {
        DegradeLevel::Busy, DegradeLevel::Partial, DegradeLevel::Grow8,
        DegradeLevel::Grow4, DegradeLevel::Grow2, DegradeLevel::Normal,
    };
    for (const DegradeLevel expect : rungs) {
        for (int i = 0; i < 4; ++i)
            ctl.observe(pressure(0.1));
        EXPECT_EQ(ctl.level(), expect);
    }
    // Floors at Normal.
    for (int i = 0; i < 8; ++i)
        ctl.observe(pressure(0.0));
    EXPECT_EQ(ctl.level(), DegradeLevel::Normal);
    EXPECT_EQ(ctl.recoveries(), 6u);
}

/** Table-driven transitions: each case replays a sample sequence from
 *  Normal and checks the rung it lands on. */
TEST(EpochController, TransitionTable)
{
    struct Case
    {
        const char *name;
        std::vector<double> samples;
        DegradeLevel expect;
    };
    const Case cases[] = {
        {"one hot sample is not a streak", {0.9}, DegradeLevel::Normal},
        {"two hot samples climb once", {0.9, 0.8}, DegradeLevel::Grow2},
        {"dead band breaks a hot streak",
         {0.9, 0.6, 0.9},
         DegradeLevel::Normal},
        {"cool sample breaks a hot streak",
         {0.9, 0.1, 0.9},
         DegradeLevel::Normal},
        {"climb then three cool samples hold the rung",
         {0.9, 0.9, 0.1, 0.1, 0.1},
         DegradeLevel::Grow2},
        {"climb then four cool samples recover",
         {0.9, 0.9, 0.1, 0.1, 0.1, 0.1},
         DegradeLevel::Normal},
        {"dead band breaks a cool streak",
         {0.9, 0.9, 0.1, 0.1, 0.6, 0.1, 0.1, 0.1},
         DegradeLevel::Grow2},
        {"threshold values are inclusive",
         {0.75, 0.75},
         DegradeLevel::Grow2},
        {"four rungs of sustained pressure",
         {0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9},
         DegradeLevel::Partial},
    };
    for (const Case &c : cases) {
        EpochController ctl;
        for (const double p : c.samples)
            ctl.observe(pressure(p));
        EXPECT_EQ(ctl.level(), c.expect) << c.name;
    }
}

TEST(EpochController, PressureIsMaxOfAllFractions)
{
    // Any one saturated input escalates, whichever field carries it.
    for (int field = 0; field < 3; ++field) {
        EpochController ctl;
        ControllerSample s;
        (field == 0   ? s.queueFraction
         : field == 1 ? s.budgetFraction
                      : s.partialRate) = 0.95;
        ctl.observe(s);
        ctl.observe(s);
        EXPECT_EQ(ctl.level(), DegradeLevel::Grow2) << field;
    }
}

// ------------------------------------------------------- no oscillation

TEST(EpochController, SteadyMidBandPressureNeverMoves)
{
    // The dead band between the thresholds must absorb steady load: no
    // escalation, no recovery, no level flapping.
    EpochController ctl;
    for (int i = 0; i < 1000; ++i) {
        ctl.observe(pressure(0.6));
        ASSERT_EQ(ctl.level(), DegradeLevel::Normal);
    }
    EXPECT_EQ(ctl.escalations(), 0u);
    EXPECT_EQ(ctl.recoveries(), 0u);
}

TEST(EpochController, AlternatingNoiseNeverEscalates)
{
    // A hot sample followed by a cool one, forever: neither streak can
    // reach its threshold, so the ladder must not move at all.
    EpochController ctl;
    for (int i = 0; i < 1000; ++i) {
        ctl.observe(pressure(i % 2 ? 0.95 : 0.05));
        ASSERT_EQ(ctl.level(), DegradeLevel::Normal);
    }
    EXPECT_EQ(ctl.escalations(), 0u);
    EXPECT_EQ(ctl.recoveries(), 0u);
}

TEST(EpochController, HysteresisIsAsymmetric)
{
    // Escalating is deliberately faster than recovering: a rung climbed
    // after two hot samples needs four cool ones to descend, so a
    // 50/50 hot/cool duty cycle in *streaks* ratchets up, not down.
    ControllerConfig cfg;
    EXPECT_LT(cfg.escalateAfter, cfg.recoverAfter);

    EpochController ctl(cfg);
    for (int cycle = 0; cycle < 3; ++cycle) {
        ctl.observe(pressure(0.9));
        ctl.observe(pressure(0.9));
        ctl.observe(pressure(0.1));
        ctl.observe(pressure(0.1));
    }
    EXPECT_EQ(ctl.level(), DegradeLevel::Grow8);
    EXPECT_EQ(ctl.recoveries(), 0u);
}

TEST(EpochController, CoalesceFactorFollowsTheLadder)
{
    EpochController ctl;
    EXPECT_EQ(ctl.coalesceFactor(), 1u); // Normal
    auto climb = [&] {
        ctl.observe(pressure(0.9));
        ctl.observe(pressure(0.9));
        return ctl.coalesceFactor();
    };
    EXPECT_EQ(climb(), 2u); // Grow2
    EXPECT_EQ(climb(), 4u); // Grow4
    EXPECT_EQ(climb(), 8u); // Grow8
    EXPECT_EQ(climb(), 8u); // Partial: saturated
    EXPECT_EQ(climb(), 8u); // Busy
    EXPECT_EQ(climb(), 8u); // Shed
}

TEST(EpochController, DegradeLevelNamesAreStable)
{
    EXPECT_STREQ(degradeLevelName(DegradeLevel::Normal), "normal");
    EXPECT_STREQ(degradeLevelName(DegradeLevel::Shed), "shed");
}

// ------------------------------------------------ EpochStream re-slice

/** Marked trace whose threads carry *different* marker counts —
 *  duplicate (adjacent) heartbeats in one thread, a leading heartbeat
 *  in another — the skewed-delivery shapes a re-slice must survive.
 *  Thread t's block in source epoch l holds writes to distinct
 *  addresses, so any mis-sliced boundary changes some block's content. */
Trace
makeSkewedMarkedTrace(unsigned source_epochs)
{
    Trace trace;
    trace.threads.resize(3);
    for (unsigned t = 0; t < 3; ++t)
        trace.threads[t].tid = t;

    const Addr heap = 0x1000000;
    for (unsigned t = 0; t < 3; ++t) {
        std::vector<Event> &ev = trace.threads[t].events;
        ev.push_back(Event::alloc(heap + t * 0x1000, 0x1000));
        if (t == 2)
            ev.push_back(Event::heartbeat()); // empty first block
        for (unsigned l = 0; l < source_epochs; ++l) {
            if (l > 0) {
                ev.push_back(Event::heartbeat());
                if (t == 1 && l % 3 == 0)
                    ev.push_back(Event::heartbeat()); // duplicate: empty
            }
            for (unsigned i = 0; i < 2 + (l % 3); ++i)
                ev.push_back(
                    Event::write(heap + t * 0x1000 + 8 * (l * 8 + i), 8));
        }
    }
    return trace;
}

TEST(EpochStreamReslice, SpansPartitionTheSourceEpochs)
{
    const Trace trace = makeSkewedMarkedTrace(17);
    EpochStream::Config cfg;
    cfg.fromHeartbeats = true;
    cfg.windowEpochs = 64;
    cfg.reslice = [](EpochId, std::span<const std::size_t>) {
        return std::size_t{3};
    };
    EpochStream stream(trace, cfg);

    // Threads disagree on marker counts; the slicer pads to the max.
    // 17 nominal epochs + thread 1's duplicates + thread 2's leading
    // marker land somewhere >= 17; whatever the count, the spans must
    // cover it exactly once and numEpochs() must be the group count.
    EXPECT_GE(stream.sourceEpochs(), 17u);
    const std::vector<std::uint32_t> &spans = stream.realizedSpans();
    EXPECT_EQ(stream.numEpochs(), spans.size());
    std::size_t covered = 0;
    for (const std::uint32_t k : spans) {
        EXPECT_GE(k, 1u);
        covered += k;
    }
    EXPECT_EQ(covered, stream.sourceEpochs());
}

TEST(EpochStreamReslice, PolicyReturnIsClampedToValidRange)
{
    const Trace trace = makeSkewedMarkedTrace(9);
    for (const std::size_t raw : {std::size_t{0}, std::size_t{1000}}) {
        EpochStream::Config cfg;
        cfg.fromHeartbeats = true;
        cfg.windowEpochs = 64;
        cfg.reslice = [raw](EpochId, std::span<const std::size_t>) {
            return raw;
        };
        EpochStream stream(trace, cfg);
        const auto &spans = stream.realizedSpans();
        ASSERT_FALSE(spans.empty());
        std::size_t covered = 0;
        for (const std::uint32_t k : spans) {
            EXPECT_GE(k, 1u);
            covered += k;
        }
        EXPECT_EQ(covered, stream.sourceEpochs());
        if (raw == 1000) {
            EXPECT_EQ(spans.size(), 1u); // clamped to all-remaining
        }
    }
}

/** Streamed blocks across a re-slice must be bit-identical to the
 *  coalesced reference layout — same events, same stable first-index —
 *  including the groups whose interior boundaries carry duplicate and
 *  skewed heartbeats. */
TEST(EpochStreamReslice, BlocksMatchCoalescedLayoutUnderSkew)
{
    const Trace trace = makeSkewedMarkedTrace(17);
    EpochStream::Config cfg;
    cfg.fromHeartbeats = true;
    cfg.windowEpochs = 64;
    std::size_t call = 0;
    cfg.reslice = [&call](EpochId, std::span<const std::size_t>) {
        static constexpr std::size_t kCycle[4] = {1, 2, 4, 8};
        return kCycle[call++ % 4];
    };
    EpochStream stream(trace, cfg);

    const EpochLayout layout = EpochLayout::coalescedFromHeartbeats(
        trace, stream.realizedSpans());
    ASSERT_EQ(layout.numEpochs(), stream.numEpochs());
    ASSERT_EQ(layout.numThreads(), stream.numThreads());

    for (EpochId l = 0; l < stream.numEpochs(); ++l)
        stream.acquire(l);
    for (EpochId l = 0; l < stream.numEpochs(); ++l) {
        for (ThreadId t = 0; t < stream.numThreads(); ++t) {
            const BlockView a = stream.block(l, t);
            const BlockView b = layout.block(l, t);
            ASSERT_EQ(a.size(), b.size()) << "epoch " << l << " tid " << t;
            ASSERT_EQ(a.first, b.first) << "epoch " << l << " tid " << t;
            for (std::size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a.events[i].kind, b.events[i].kind);
                EXPECT_EQ(a.events[i].addr, b.events[i].addr);
            }
        }
    }
    for (EpochId l = 0; l < stream.numEpochs(); ++l)
        stream.retire(l);
}

TEST(EpochStreamReslice, NullPolicyLeavesTheSourceSlicingUntouched)
{
    const Trace trace = makeSkewedMarkedTrace(11);
    EpochStream::Config plain;
    plain.fromHeartbeats = true;
    EpochStream stream(trace, plain);
    EXPECT_EQ(stream.numEpochs(), stream.sourceEpochs());
    EXPECT_TRUE(stream.realizedSpans().empty());
}

// ------------------------------------- end-to-end analyzer bit-identity

/** A forced width cycle through a full pipelined analysis must produce
 *  the exact report of an in-process reference run over the coalesced
 *  layout — the tentpole's conformance invariant, without the wire. */
TEST(EpochStreamReslice, AnalyzeStreamingMatchesCoalescedReference)
{
    const Trace trace = makeSkewedMarkedTrace(21);
    SessionSpec spec;
    spec.lifeguard = 0; // ADDRCHECK
    spec.numThreads = static_cast<std::uint32_t>(trace.numThreads());
    spec.granularity = 8;
    spec.heapBase = 0x1000000;
    spec.heapLimit = 0x1000000 + 0x100000;
    spec.windowEpochs = 4;

    for (const bool batch : {false, true}) {
        WorkerPool pool(2);
        auto group = std::make_shared<std::size_t>(0);
        EpochStream::ReslicePolicy cycle =
            [group](EpochId, std::span<const std::size_t>) {
                static constexpr std::size_t kCycle[4] = {1, 2, 4, 8};
                return kCycle[(*group)++ % 4];
            };
        std::vector<std::uint32_t> spans;
        const RemoteReport remote =
            analyzeStreaming(spec, trace, pool, batch, cycle, &spans);

        ASSERT_FALSE(spans.empty());
        std::uint64_t changes = 0;
        for (std::size_t i = 1; i < spans.size(); ++i)
            if (spans[i] != spans[i - 1])
                ++changes;
        EXPECT_GE(changes, 3u) << "cycle policy must force h-changes";

        const RemoteReport reference = analyzeReference(
            spec, trace,
            EpochLayout::coalescedFromHeartbeats(trace, spans));
        EXPECT_TRUE(remote.identical(reference)) << "batch=" << batch;
        EXPECT_EQ(remote.epochs, spans.size());
    }
}

} // namespace
} // namespace bfly::service
