/**
 * @file
 * Tests for butterfly ADDRCHECK (paper Section 6.1): the Figure 9
 * scenarios, LSOS/isolation behaviour, and the Theorem 6.1 zero-false-
 * negative property against SC and TSO executions of randomized workloads
 * with injected bugs. Also checks the paper's accuracy trade-off: false
 * positives are monotone-ish in epoch size and vanish for isolated
 * activity.
 */

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "memmodel/interleaver.hpp"
#include "tests/helpers.hpp"
#include "workloads/bugs.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

AddrCheckConfig
wideConfig()
{
    AddrCheckConfig cfg;
    cfg.granularity = 8;
    cfg.heapBase = 0;
    cfg.heapLimit = kNoAddr;
    return cfg;
}

struct Run
{
    Trace trace;
    EpochLayout layout;
    std::unique_ptr<ButterflyAddrCheck> check;
};

Run
runAddrCheck(Trace trace, const AddrCheckConfig &cfg)
{
    Run run{std::move(trace), EpochLayout::fromHeartbeats(Trace{}), {}};
    run.layout = EpochLayout::fromHeartbeats(run.trace);
    run.check = std::make_unique<ButterflyAddrCheck>(run.layout, cfg);
    WindowSchedule().run(run.layout, *run.check);
    return run;
}

TEST(AddrCheck, CleanSequentialLifecycleNoErrors)
{
    auto run = runAddrCheck(test::traceOf({{
        Event::alloc(0x100, 32),
        Event::write(0x100, 8),
        Event::read(0x118, 8),
        Event::freeOf(0x100, 32),
    }}),
    wideConfig());
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(AddrCheck, AccessBeforeAllocationFlagged)
{
    auto run = runAddrCheck(test::traceOf({{
        Event::read(0x100, 8),
        Event::alloc(0x100, 32),
    }}),
    wideConfig());
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].kind,
              ErrorKind::UnallocatedAccess);
}

TEST(AddrCheck, UseAfterFreeFlagged)
{
    auto run = runAddrCheck(test::traceOf({{
        Event::alloc(0x100, 32),
        Event::freeOf(0x100, 32),
        Event::read(0x100, 8),
    }}),
    wideConfig());
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].kind,
              ErrorKind::UnallocatedAccess);
}

TEST(AddrCheck, DoubleAllocAndDoubleFreeFlagged)
{
    auto run = runAddrCheck(test::traceOf({{
        Event::alloc(0x100, 32),
        Event::alloc(0x100, 32),
        Event::freeOf(0x100, 32),
        Event::freeOf(0x100, 32),
    }}),
    wideConfig());
    ASSERT_EQ(run.check->errors().size(), 2u);
    EXPECT_EQ(run.check->errors().records()[0].kind,
              ErrorKind::DoubleAlloc);
    EXPECT_EQ(run.check->errors().records()[1].kind,
              ErrorKind::UnallocatedFree);
}

TEST(AddrCheck, Figure9ConcurrentAllocAndAccessFlagged)
{
    // Thread 1 allocates a in epoch j while thread 2 accesses a in the
    // adjacent epoch j+1: potentially concurrent, must be flagged even
    // though the actual order may have been safe.
    auto run = runAddrCheck(test::traceOf({
        {Event::alloc(0x100, 8), Event::heartbeat(), Event::nop()},
        {Event::nop(), Event::heartbeat(), Event::read(0x100, 8)},
    }),
    wideConfig());
    EXPECT_FALSE(run.check->errors().empty());
    bool thread2_flagged = false;
    for (const auto &rec : run.check->errors().records())
        thread2_flagged = thread2_flagged || rec.tid == 1;
    EXPECT_TRUE(thread2_flagged);
}

TEST(AddrCheck, Figure9IsolatedAllocationSafe)
{
    // Thread 3 allocates b with no other thread touching it, and
    // accesses it itself in the next epoch: safe, no error (the paper's
    // "isolated" case).
    auto run = runAddrCheck(test::traceOf({
        {Event::alloc(0x200, 8), Event::heartbeat(),
         Event::read(0x200, 8)},
        {Event::nop(), Event::heartbeat(), Event::nop()},
        {Event::read(0x500, 8), Event::heartbeat(), Event::nop()},
    }),
    [] {
        AddrCheckConfig cfg = wideConfig();
        cfg.heapBase = 0x200;
        cfg.heapLimit = 0x300; // 0x500 access is unmonitored
        return cfg;
    }());
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(AddrCheck, AllocationVisibleInSosTwoEpochsLater)
{
    // Alloc in epoch 0 by t0; access by t1 in epoch 2: epoch separation
    // guarantees the order, no flag.
    auto run = runAddrCheck(test::traceOf({
        {Event::alloc(0x100, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop()},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::read(0x100, 8)},
    }),
    wideConfig());
    EXPECT_TRUE(run.check->errors().empty());
    EXPECT_TRUE(run.check->sosNow().contains(0x100 / 8));
}

TEST(AddrCheck, AdjacentEpochAccessIsFalsePositive)
{
    // Same as above but the access is in epoch 1: flagged (the paper's
    // fundamental FP trade-off), and the oracle confirms it is an FP.
    Trace trace = test::traceOf({
        {Event::alloc(0x100, 8), Event::heartbeat(), Event::nop()},
        {Event::nop(), Event::heartbeat(), Event::read(0x100, 8)},
    });
    trace.threads[0].events[0].gseq = 1; // alloc actually first
    trace.threads[1].events[2].gseq = 5;
    auto run = runAddrCheck(trace, wideConfig());
    AddrCheckOracle oracle(wideConfig());
    oracle.runOnTrace(run.trace);
    EXPECT_TRUE(oracle.errors().empty());
    const auto acc =
        compareToOracle(run.check->errors(), oracle.errors(), 8);
    EXPECT_GT(acc.falsePositives, 0u);
    EXPECT_EQ(acc.falseNegatives, 0u);
}

TEST(AddrCheckOracle, ReplaysActualInterleavingOrder)
{
    // Thread 0 allocates (gseq 1) before thread 1 reads (gseq 2): clean.
    Trace trace = test::traceOf({
        {Event::alloc(0x100, 8)},
        {Event::read(0x100, 8)},
    });
    trace.threads[0].events[0].gseq = 1;
    trace.threads[1].events[0].gseq = 2;
    AddrCheckOracle clean(wideConfig());
    clean.runOnTrace(trace);
    EXPECT_TRUE(clean.errors().empty());

    // Reverse the actual order: the read becomes a real error.
    trace.threads[0].events[0].gseq = 2;
    trace.threads[1].events[0].gseq = 1;
    AddrCheckOracle dirty(wideConfig());
    dirty.runOnTrace(trace);
    EXPECT_EQ(dirty.errors().size(), 1u);
}

TEST(AddrCheck, ParallelPassesMatchSequential)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 2000;
    wcfg.seed = 99;
    Workload w = makeRandomMix(wcfg);
    Rng rng(4242);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 128 * 4);

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;

    ButterflyAddrCheck seq(layout, cfg);
    WindowSchedule(false).run(layout, seq);
    ButterflyAddrCheck par(layout, cfg);
    WindowSchedule(true).run(layout, par);

    EXPECT_EQ(seq.errors().size(), par.errors().size());
    EXPECT_EQ(seq.eventsChecked(), par.eventsChecked());
    EXPECT_EQ(seq.sosNow().sorted(), par.sosNow().sorted());
}

TEST(AddrCheck, BatchedKernelBitIdenticalToScalar)
{
    // The columnar (SoA) pass-1 kernel is an execution strategy, not a
    // semantics change: error records (including their order — the log
    // keeps the first report per event), counters, and the final SOS
    // must match the scalar walk exactly, on buggy traces under both
    // memory models.
    const BugKind kinds[] = {BugKind::UseAfterFree,
                             BugKind::UnallocatedAccess,
                             BugKind::DoubleFree};
    const MemModel models[] = {MemModel::SequentiallyConsistent,
                               MemModel::TSO};
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        for (MemModel model : models) {
            WorkloadConfig wcfg;
            wcfg.numThreads = 3;
            wcfg.instrPerThread = 1500;
            wcfg.seed = seed;
            Workload w = makeRandomMix(wcfg);
            Rng bug_rng(seed ^ 0xbeef);
            injectBugs(w, kinds[seed % 3], 4, bug_rng);

            Rng rng(seed * 31 + 7);
            InterleaveConfig icfg;
            icfg.model = model;
            Trace trace = interleave(w.programs, icfg, rng);
            EpochLayout layout =
                EpochLayout::byGlobalSeq(trace, 100 * wcfg.numThreads);

            AddrCheckConfig cfg;
            cfg.heapBase = w.heapBase;
            cfg.heapLimit = w.heapLimit + 0x100000;

            ButterflyAddrCheck scalar(layout, cfg);
            WindowSchedule(false).run(layout, scalar);
            ButterflyAddrCheck batched(layout, cfg);
            batched.setBatchMode(true);
            WindowSchedule(false).run(layout, batched);

            const auto &sr = scalar.errors().records();
            const auto &br = batched.errors().records();
            ASSERT_EQ(sr.size(), br.size()) << "seed " << seed;
            for (std::size_t i = 0; i < sr.size(); ++i) {
                EXPECT_EQ(sr[i].tid, br[i].tid) << "record " << i;
                EXPECT_EQ(sr[i].index, br[i].index) << "record " << i;
                EXPECT_EQ(sr[i].addr, br[i].addr) << "record " << i;
                EXPECT_EQ(sr[i].kind, br[i].kind) << "record " << i;
                EXPECT_EQ(sr[i].size, br[i].size) << "record " << i;
            }
            EXPECT_EQ(scalar.eventsChecked(), batched.eventsChecked());
            EXPECT_EQ(scalar.isolationViolations(),
                      batched.isolationViolations());
            EXPECT_EQ(scalar.sosNow().sorted(),
                      batched.sosNow().sorted());
        }
    }
}

TEST(AddrCheck, BatchedKernelComposesWithParallelPasses)
{
    // batchMode changes only what happens inside pass 1, so it must
    // compose with the parallel scheduling dimension unchanged.
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 2000;
    wcfg.seed = 99;
    Workload w = makeRandomMix(wcfg);
    Rng rng(4242);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 128 * 4);

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;

    ButterflyAddrCheck seq(layout, cfg);
    WindowSchedule(false).run(layout, seq);
    ButterflyAddrCheck par_batched(layout, cfg);
    par_batched.setBatchMode(true);
    WindowSchedule(true).run(layout, par_batched);

    EXPECT_EQ(seq.errors().size(), par_batched.errors().size());
    EXPECT_EQ(seq.eventsChecked(), par_batched.eventsChecked());
    EXPECT_EQ(seq.sosNow().sorted(), par_batched.sosNow().sorted());
}

// --------------------------------------------------------------------
// Theorem 6.1: zero false negatives, SC and TSO, with injected bugs.
// --------------------------------------------------------------------

struct FnCase
{
    std::uint64_t seed;
    MemModel model;
    BugKind bug;
};

class AddrCheckZeroFn : public ::testing::TestWithParam<FnCase>
{};

TEST_P(AddrCheckZeroFn, OracleErrorsAreAlwaysCovered)
{
    const FnCase param = GetParam();

    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 1500;
    wcfg.seed = param.seed;
    Workload w = makeRandomMix(wcfg);

    Rng bug_rng(param.seed ^ 0xbeef);
    const auto bugs = injectBugs(w, param.bug, 4, bug_rng);
    ASSERT_EQ(bugs.size(), 4u);

    Rng rng(param.seed * 31 + 7);
    InterleaveConfig icfg;
    icfg.model = param.model;
    Trace trace = interleave(w.programs, icfg, rng);
    EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, 100 * wcfg.numThreads);

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit + 0x100000;

    ButterflyAddrCheck butterfly(layout, cfg);
    WindowSchedule().run(layout, butterfly);

    AddrCheckOracle oracle(cfg);
    oracle.runOnTrace(trace);

    // The injected bugs are intra-thread, so the oracle must see them.
    EXPECT_GE(oracle.errors().size(), 4u);

    const auto acc =
        compareToOracle(butterfly.errors(), oracle.errors(),
                        cfg.granularity);
    EXPECT_EQ(acc.falseNegatives, 0u)
        << "butterfly missed an oracle error (seed " << param.seed
        << ")";
}

std::vector<FnCase>
fnCases()
{
    std::vector<FnCase> cases;
    const BugKind kinds[] = {BugKind::UseAfterFree,
                             BugKind::UnallocatedAccess,
                             BugKind::DoubleFree};
    const MemModel models[] = {MemModel::SequentiallyConsistent,
                               MemModel::TSO};
    for (std::uint64_t seed = 0; seed < 6; ++seed)
        for (MemModel m : models)
            for (BugKind k : kinds)
                cases.push_back({seed, m, k});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AddrCheckZeroFn,
                         ::testing::ValuesIn(fnCases()));

// Zero FN must also hold for *clean* workloads (no spurious "misses").
class AddrCheckCleanZeroFn
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(AddrCheckCleanZeroFn, EveryPaperWorkloadUnderBothModels)
{
    for (const auto &[name, factory] : paperWorkloads()) {
        WorkloadConfig wcfg;
        wcfg.numThreads = 3;
        wcfg.instrPerThread = 1200;
        wcfg.seed = GetParam();
        Workload w = factory(wcfg);

        InterleaveConfig icfg;
        icfg.model = GetParam() % 2 ? MemModel::TSO
                                    : MemModel::SequentiallyConsistent;
        Rng rng(GetParam() * 17 + 3);
        Trace trace = interleave(w.programs, icfg, rng);
        EpochLayout layout =
            EpochLayout::byGlobalSeq(trace, 150 * wcfg.numThreads);

        AddrCheckConfig cfg;
        cfg.heapBase = w.heapBase;
        cfg.heapLimit = w.heapLimit;

        ButterflyAddrCheck butterfly(layout, cfg);
        WindowSchedule().run(layout, butterfly);
        AddrCheckOracle oracle(cfg);
        oracle.runOnTrace(trace);

        // Barrier-synchronized workloads are race-free: oracle is clean.
        EXPECT_EQ(oracle.errors().size(), 0u)
            << name << " oracle flagged a clean workload";
        const auto acc = compareToOracle(butterfly.errors(),
                                         oracle.errors(),
                                         cfg.granularity);
        EXPECT_EQ(acc.falseNegatives, 0u) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddrCheckCleanZeroFn,
                         ::testing::Range<std::uint64_t>(0, 4));

TEST(AddrCheck, LargerEpochsNeverReduceToZeroWhatSmallFlags)
{
    // Accuracy knob (Fig. 13 direction): tiny epochs produce fewer or
    // equal false positives than huge epochs on an allocation-heavy
    // workload.
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 4000;
    wcfg.seed = 5;
    Workload w = makeOcean(wcfg);
    Rng rng(11);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);

    AddrCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;

    auto fp_at = [&](std::size_t h) {
        EpochLayout layout = EpochLayout::byGlobalSeq(trace, h * 4);
        ButterflyAddrCheck butterfly(layout, cfg);
        WindowSchedule().run(layout, butterfly);
        AddrCheckOracle oracle(cfg);
        oracle.runOnTrace(trace);
        return compareToOracle(butterfly.errors(), oracle.errors(),
                               cfg.granularity)
            .falsePositives;
    };

    const auto fp_small = fp_at(64);
    const auto fp_large = fp_at(2048);
    EXPECT_LE(fp_small, fp_large);
}

} // namespace
} // namespace bfly
