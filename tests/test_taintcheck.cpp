/**
 * @file
 * Tests for butterfly TAINTCHECK (paper Section 6.2): transfer-function
 * construction, the Check algorithm under both termination conditions,
 * the two-phase resolution of Lemma 6.3, the Figure 10 SOS-update
 * subtlety, and Theorem 6.2's zero-false-negative property against SC
 * and TSO executions with injected tainted-jump bugs.
 */

#include <map>

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "memmodel/valid_orderings.hpp"
#include "lifeguards/taintcheck.hpp"
#include "memmodel/interleaver.hpp"
#include "tests/helpers.hpp"
#include "workloads/bugs.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

TaintCheckConfig
cfg8()
{
    TaintCheckConfig cfg;
    cfg.granularity = 8;
    return cfg;
}

struct Run
{
    Trace trace;
    EpochLayout layout;
    std::unique_ptr<ButterflyTaintCheck> check;
};

Run
runTaint(Trace trace,
         TaintTermination term = TaintTermination::SequentialConsistency)
{
    Run run{std::move(trace), EpochLayout::fromHeartbeats(Trace{}), {}};
    run.layout = EpochLayout::fromHeartbeats(run.trace);
    run.check =
        std::make_unique<ButterflyTaintCheck>(run.layout, cfg8(), term);
    WindowSchedule().run(run.layout, *run.check);
    return run;
}

Event
assign8(Addr dst, Addr src)
{
    Event e = Event::assign(dst, src);
    e.size = 8;
    return e;
}

TEST(TaintCheck, SequentialPropagationAndUse)
{
    auto run = runTaint(test::traceOf({{
        Event::taintSrc(0x100, 8),
        assign8(0x108, 0x100), // 0x108 inherits taint
        Event::use(0x108),     // error
        Event::untaint(0x108, 8),
        Event::use(0x108),     // clean
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].kind,
              ErrorKind::TaintedUse);
    EXPECT_EQ(run.check->errors().records()[0].index, 2u);
}

TEST(TaintCheck, PlainWriteStoresTrustedData)
{
    auto run = runTaint(test::traceOf({{
        Event::taintSrc(0x100, 8),
        Event::write(0x100, 8), // trusted overwrite
        Event::use(0x100),
    }}));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(TaintCheck, BinopTaintsIfEitherSourceTainted)
{
    auto run = runTaint(test::traceOf({{
        Event::taintSrc(0x100, 8),
        Event::untaint(0x108, 8),
        Event::assign2(0x110, 0x108, 0x100),
        Event::use(0x110),
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
}

TEST(TaintCheck, WingTaintIsConservativelyInherited)
{
    // Thread 1 taints x in the same epoch as thread 0's read of x into
    // y: the ordering is unknown, so y must be considered tainted.
    auto run = runTaint(test::traceOf({
        {assign8(0x200, 0x100), Event::use(0x200)},
        {Event::taintSrc(0x100, 8)},
    }));
    EXPECT_EQ(run.check->errors().size(), 1u);
}

TEST(TaintCheck, DistantPastTaintArrivesViaSos)
{
    // Taint in epoch 0 by t1; use in epoch 3 by t0: flows through the
    // SOS (no wing overlap).
    auto run = runTaint(test::traceOf({
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         assign8(0x200, 0x100), Event::use(0x200)},
        {Event::taintSrc(0x100, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::nop()},
    }));
    EXPECT_EQ(run.check->errors().size(), 1u);
    EXPECT_TRUE(run.check->sosNow().contains(0x100 / 8));
}

TEST(TaintCheck, UntaintTwoEpochsAheadClearsSos)
{
    // Taint then untaint in sequence on one thread, nothing else
    // concurrent: far-future use is clean.
    auto run = runTaint(test::traceOf({
        {Event::taintSrc(0x100, 8), Event::heartbeat(),
         Event::untaint(0x100, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::use(0x100)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
    EXPECT_FALSE(run.check->sosNow().contains(0x100 / 8));
}

TEST(TaintCheck, Figure10SosCommitIsNotLate)
{
    // Figure 10: a is tainted in epoch j+1 via an interleaving with
    // epoch j (t1 taints b in j+1; t0's "a := b" is in epoch j... here
    // modelled directly): d := a in epoch j+2 must see a tainted.
    //   t0: epoch0: a := b          (b tainted by t1's epoch-0 source)
    //   t1: epoch0: taint b
    //   t0: epoch2: d := a; use d
    auto run = runTaint(test::traceOf({
        {assign8(0x108, 0x100), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), assign8(0x118, 0x108), Event::use(0x118)},
        {Event::taintSrc(0x100, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop()},
    }));
    EXPECT_EQ(run.check->errors().size(), 1u);
}

TEST(TaintCheck, SequentialConsistencyRejectsImpossiblePath)
{
    // Figure 2's impossible zig-zag, compressed: thread 1 executes
    //   (1) b := a   then   (2) taint c
    // thread 0 executes (i) a := c in the same epoch. Under SC, b can
    // only be tainted if (2) -> (i) -> (1), which contradicts thread 1's
    // own program order. The SC termination condition must keep b clean,
    // the relaxed condition must flag it.
    const auto make_trace = [] {
        return test::traceOf({
            {assign8(0x100, 0x110)},                       // (i) a := c
            {assign8(0x108, 0x100), Event::taintSrc(0x110, 8),
             Event::use(0x108)},                           // (1);(2);use b
        });
    };
    auto sc = runTaint(make_trace(),
                       TaintTermination::SequentialConsistency);
    EXPECT_TRUE(sc.check->errors().empty());

    auto relaxed = runTaint(make_trace(), TaintTermination::Relaxed);
    EXPECT_EQ(relaxed.check->errors().size(), 1u);
}

TEST(TaintCheck, RelaxedTerminationHandlesCopyCycles)
{
    // x := y and y := x in the wings of a block that reads x: the cycle
    // must not hang the checker, and with no taint source anywhere the
    // result is clean.
    auto run = runTaint(test::traceOf({
        {assign8(0x300, 0x100), Event::use(0x300)},
        {assign8(0x100, 0x108), assign8(0x108, 0x100)},
    }),
    TaintTermination::Relaxed);
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(TaintCheck, TwoPhaseResolutionTaintsAcrossThreeEpochs)
{
    // Lemma 6.3 case (3): y is tainted via epochs l-1..l, and x inherits
    // from y via a transfer function in epoch l+1 visible to the body.
    //   t1 epoch0: taint s
    //   t0 epoch1: y := s        (phase-one taint for body epoch 1)
    //   t1 epoch2: x := y
    //   t0 epoch2: use x   -- wait: use x needs x's taint via wings
    auto run = runTaint(test::traceOf({
        {Event::nop(), Event::heartbeat(), assign8(0x108, 0x100),
         Event::heartbeat(), Event::nop()},
        {Event::taintSrc(0x100, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), assign8(0x110, 0x108), Event::use(0x110)},
    }));
    EXPECT_EQ(run.check->errors().size(), 1u);
}

TEST(TaintCheckOracle, ExactReplayFlagsOnlyRealTaint)
{
    Trace trace = test::traceOf({
        {Event::taintSrc(0x100, 8), Event::use(0x100),
         Event::untaint(0x100, 8), Event::use(0x100)},
    });
    std::uint64_t g = 1;
    for (Event &e : trace.threads[0].events)
        e.gseq = g++;
    TaintCheckOracle oracle(cfg8());
    oracle.runOnTrace(trace);
    ASSERT_EQ(oracle.errors().size(), 1u);
    EXPECT_EQ(oracle.errors().records()[0].index, 1u);
}

// --------------------------------------------------------------------
// Theorem 6.2: zero false negatives on randomized taint workloads.
// --------------------------------------------------------------------

struct TaintFnCase
{
    std::uint64_t seed;
    MemModel model;
    TaintTermination termination;
};

class TaintZeroFn : public ::testing::TestWithParam<TaintFnCase>
{};

TEST_P(TaintZeroFn, OracleTaintedUsesAreAlwaysFlagged)
{
    const TaintFnCase param = GetParam();

    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 600;
    wcfg.seed = param.seed;
    Workload w = makeTaintMix(wcfg);

    Rng bug_rng(param.seed ^ 0xf00d);
    injectBugs(w, BugKind::TaintedJump, 3, bug_rng);

    Rng rng(param.seed * 131 + 17);
    InterleaveConfig icfg;
    icfg.model = param.model;
    Trace trace = interleave(w.programs, icfg, rng);
    EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, 80 * wcfg.numThreads);

    ButterflyTaintCheck butterfly(layout, cfg8(), param.termination);
    WindowSchedule().run(layout, butterfly);

    TaintCheckOracle oracle(cfg8());
    oracle.runOnTrace(trace);
    EXPECT_GE(oracle.errors().size(), 3u); // injected bugs always fire

    // TaintedUse errors attach to the Use event itself on both sides:
    // exact event containment must hold (Theorem 6.2).
    for (const auto &rec : oracle.errors().records()) {
        EXPECT_TRUE(butterfly.errors().flagged(rec.tid, rec.index))
            << "missed tainted use at thread " << rec.tid << " instr "
            << rec.index << " (seed " << param.seed << ")";
    }
}

std::vector<TaintFnCase>
taintCases()
{
    std::vector<TaintFnCase> cases;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        cases.push_back({seed, MemModel::SequentiallyConsistent,
                         TaintTermination::SequentialConsistency});
        cases.push_back({seed, MemModel::TSO,
                         TaintTermination::Relaxed});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TaintZeroFn,
                         ::testing::ValuesIn(taintCases()));

TEST(TaintCheck, BatchedKernelBitIdenticalToScalar)
{
    // The columnar pass-1 kernel rebuilds the same rule vector in the
    // same order and the same per-key index lists (ascending — pass 2's
    // resolution budget makes traversal order observable). Reports,
    // counters, and SOS must match the scalar walk bit for bit under
    // both termination conditions.
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        for (TaintTermination term :
             {TaintTermination::SequentialConsistency,
              TaintTermination::Relaxed}) {
            WorkloadConfig wcfg;
            wcfg.numThreads = 3;
            wcfg.instrPerThread = 600;
            wcfg.seed = seed;
            Workload w = makeTaintMix(wcfg);
            Rng bug_rng(seed ^ 0xf00d);
            injectBugs(w, BugKind::TaintedJump, 3, bug_rng);

            Rng rng(seed * 131 + 17);
            InterleaveConfig icfg;
            icfg.model = term == TaintTermination::Relaxed
                             ? MemModel::TSO
                             : MemModel::SequentiallyConsistent;
            Trace trace = interleave(w.programs, icfg, rng);
            EpochLayout layout =
                EpochLayout::byGlobalSeq(trace, 80 * wcfg.numThreads);

            ButterflyTaintCheck scalar(layout, cfg8(), term);
            WindowSchedule(false).run(layout, scalar);
            ButterflyTaintCheck batched(layout, cfg8(), term);
            batched.setBatchMode(true);
            WindowSchedule(false).run(layout, batched);

            const auto &sr = scalar.errors().records();
            const auto &br = batched.errors().records();
            ASSERT_EQ(sr.size(), br.size()) << "seed " << seed;
            for (std::size_t i = 0; i < sr.size(); ++i) {
                EXPECT_EQ(sr[i].tid, br[i].tid) << "record " << i;
                EXPECT_EQ(sr[i].index, br[i].index) << "record " << i;
                EXPECT_EQ(sr[i].addr, br[i].addr) << "record " << i;
                EXPECT_EQ(sr[i].kind, br[i].kind) << "record " << i;
            }
            EXPECT_EQ(scalar.checksResolved(),
                      batched.checksResolved());
            EXPECT_EQ(scalar.sosNow().sorted(),
                      batched.sosNow().sorted());
        }
    }
}

// --------------------------------------------------------------------
// Regressions: wing-visibility subtleties found by exhaustive search.
// Each encodes an interleaving where taint is only observable to a
// concurrent reader, never in any block's final state.
// --------------------------------------------------------------------

TEST(TaintCheck, WingReadsPreHeadValueTheHeadUntainted)
{
    // t1's head (epoch 3) untaints b, but t0's epoch-4 rule a := b is
    // unordered against that head and may read the older tainted b (in
    // the SOS); t1's epoch-4 use of a must be flagged.
    auto run = runTaint(test::traceOf({
        {Event::nop(), Event::heartbeat(), assign8(0x108, 0x100),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::nop(), Event::heartbeat(), assign8(0x100, 0x108)},
        {Event::taintSrc(0x108, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::untaint(0x108, 8), Event::heartbeat(),
         Event::use(0x100)},
    }));
    bool flagged = false;
    for (const auto &rec : run.check->errors().records())
        flagged |= rec.kind == ErrorKind::TaintedUse && rec.tid == 1 &&
                   rec.addr == 0x100;
    EXPECT_TRUE(flagged);
}

TEST(TaintCheck, WingReadsMidBlockTaintTheBlockItselfCleaned)
{
    // t0 taints then untaints b within one block; t1's adjacent-epoch
    // copy a := b can read the in-between tainted value, and t0's later
    // use of b (fed by b := a) must be flagged.
    auto run = runTaint(test::traceOf({
        {Event::taintSrc(0x108, 8), Event::untaint(0x108, 8),
         Event::heartbeat(), assign8(0x108, 0x100), Event::heartbeat(),
         Event::use(0x108)},
        {Event::nop(), Event::heartbeat(), assign8(0x100, 0x108),
         Event::heartbeat(), Event::nop()},
    }));
    bool flagged = false;
    for (const auto &rec : run.check->errors().records())
        flagged |= rec.kind == ErrorKind::TaintedUse && rec.tid == 0;
    EXPECT_TRUE(flagged);
}

TEST(TaintCheck, CompletedWingConclusionsReachTheBody)
{
    // The taint of b is only derivable with epoch 0's transfer
    // functions, which body (2, t0) can no longer see — but wing block
    // (1, t1) derived it during its own pass 2 and its conclusion must
    // flow to the body (else the b := a copy looks clean).
    //   t0 ep0: taint a; untaint a       (mid-block taint of a)
    //   t1 ep1: b := a                   (may read the mid-block taint)
    //   t0 ep2: use b
    auto run = runTaint(test::traceOf({
        {Event::taintSrc(0x100, 8), Event::untaint(0x100, 8),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::use(0x108)},
        {Event::nop(), Event::heartbeat(), assign8(0x108, 0x100),
         Event::heartbeat(), Event::nop()},
    }));
    bool flagged = false;
    for (const auto &rec : run.check->errors().records())
        flagged |= rec.kind == ErrorKind::TaintedUse && rec.tid == 0;
    EXPECT_TRUE(flagged);
}

// --------------------------------------------------------------------
// Exhaustive soundness: Theorem 6.2 checked against *every* valid
// ordering of tiny windows, not just one sampled execution.
// --------------------------------------------------------------------

class TaintExhaustive : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TaintExhaustive, AnyOrderingThatTaintsAUseIsFlagged)
{
    Rng rng(GetParam() * 2654435761ull + 11);
    const Addr vars[3] = {0x100, 0x108, 0x110};
    const unsigned epochs = 3 + GetParam() % 3; // 3..5 epochs
    const TaintTermination term =
        GetParam() % 2 ? TaintTermination::Relaxed
                       : TaintTermination::SequentialConsistency;

    // Tiny random taint program: 2 threads, 0-2 events per block.
    std::vector<std::vector<Event>> programs(2);
    for (unsigned t = 0; t < 2; ++t) {
        for (unsigned l = 0; l < epochs; ++l) {
            const unsigned n = static_cast<unsigned>(rng.below(3));
            for (unsigned i = 0; i < n; ++i) {
                const Addr x = vars[rng.below(3)];
                const double dice = rng.uniform();
                if (dice < 0.25) {
                    programs[t].push_back(Event::taintSrc(x, 8));
                } else if (dice < 0.45) {
                    programs[t].push_back(Event::untaint(x, 8));
                } else if (dice < 0.8) {
                    Event e = Event::assign(x, vars[rng.below(3)]);
                    e.size = 8;
                    programs[t].push_back(e);
                } else {
                    programs[t].push_back(Event::use(x));
                }
            }
            if (l + 1 < epochs)
                programs[t].push_back(Event::heartbeat());
        }
    }
    const Trace trace = test::traceOf(std::move(programs));
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);

    ButterflyTaintCheck butterfly(layout, cfg8(), term);
    WindowSchedule().run(layout, butterfly);

    // Replay every valid ordering; for each Use, record whether some
    // ordering taints it.
    const ValidOrderings vo(layout, layout.numEpochs() - 1);
    std::map<std::pair<ThreadId, std::uint64_t>, bool> ever_tainted;
    vo.forEach([&](const std::vector<OrderedInstr> &order) {
        std::map<Addr, bool> taint;
        for (const OrderedInstr &oi : order) {
            const Event &e = oi.e;
            switch (e.kind) {
              case EventKind::TaintSrc:
                taint[e.addr / 8] = true;
                break;
              case EventKind::Untaint:
              case EventKind::Write:
                taint[e.addr / 8] = false;
                break;
              case EventKind::Assign: {
                bool tainted = false;
                const Addr srcs[2] = {e.src0, e.src1};
                for (unsigned n = 0; n < e.nsrc; ++n)
                    tainted = tainted || taint[srcs[n] / 8];
                taint[e.addr / 8] = tainted;
                break;
              }
              case EventKind::Use: {
                const auto key = std::make_pair(
                    oi.t, static_cast<std::uint64_t>(
                              layout.globalIndex(oi.l, oi.t, oi.i)));
                ever_tainted[key] =
                    ever_tainted[key] || taint[e.addr / 8];
                break;
              }
              default:
                break;
            }
        }
        return true;
    });

    for (const auto &[key, tainted] : ever_tainted) {
        if (tainted) {
            EXPECT_TRUE(butterfly.errors().flagged(key.first,
                                                   key.second))
                << "use at thread " << key.first << " instr "
                << key.second << " taintable under some valid ordering "
                << "but not flagged (seed " << GetParam() << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaintExhaustive,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(TaintCheck, RelaxedFlagsSupersetOfSequentiallyConsistent)
{
    // The relaxed termination condition explores more interleavings, so
    // it can only flag more uses, never fewer.
    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 600;
    wcfg.seed = 77;
    Workload w = makeTaintMix(wcfg);
    Rng rng(123);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 240);

    ButterflyTaintCheck sc(layout, cfg8(),
                           TaintTermination::SequentialConsistency);
    WindowSchedule().run(layout, sc);
    ButterflyTaintCheck relaxed(layout, cfg8(),
                                TaintTermination::Relaxed);
    WindowSchedule().run(layout, relaxed);

    for (const auto &rec : sc.errors().records()) {
        EXPECT_TRUE(relaxed.errors().flagged(rec.tid, rec.index))
            << "relaxed termination missed an SC-flagged use";
    }
    EXPECT_GE(relaxed.errors().size(), sc.errors().size());
}

} // namespace
} // namespace bfly
