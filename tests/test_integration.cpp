/**
 * @file
 * Cross-module integration tests: the full pipeline (workload ->
 * interleave -> heartbeat slicing -> butterfly lifeguard vs oracle)
 * under combinations of memory model, epoch size, thread count and
 * granularity, asserting the paper's end-to-end guarantees everywhere.
 */

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "lifeguards/taintcheck.hpp"
#include "memmodel/interleaver.hpp"
#include "workloads/bugs.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

struct PipelineCase
{
    std::uint64_t seed;
    unsigned threads;
    std::size_t epoch; // per-thread epoch size
    MemModel model;
    unsigned granularity;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase>
{};

TEST_P(PipelineSweep, AddrCheckGuaranteesHoldEverywhere)
{
    const PipelineCase p = GetParam();

    WorkloadConfig wcfg;
    wcfg.numThreads = p.threads;
    wcfg.instrPerThread = 2500;
    wcfg.seed = p.seed;
    Workload w = makeRandomMix(wcfg);
    Rng bug_rng(p.seed + 1);
    injectBugs(w, BugKind::UseAfterFree, 2, bug_rng);
    injectBugs(w, BugKind::DoubleFree, 2, bug_rng);

    InterleaveConfig icfg;
    icfg.model = p.model;
    Rng rng(p.seed * 37 + 5);
    Trace trace = interleave(w.programs, icfg, rng);
    EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, p.epoch * p.threads);

    AddrCheckConfig acfg;
    acfg.granularity = p.granularity;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit;

    ButterflyAddrCheck butterfly(layout, acfg);
    WindowSchedule().run(layout, butterfly);
    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);

    EXPECT_GE(oracle.errors().size(), 4u); // the injected bugs
    const auto acc = compareToOracle(butterfly.errors(),
                                     oracle.errors(), p.granularity);
    EXPECT_EQ(acc.falseNegatives, 0u)
        << "seed=" << p.seed << " threads=" << p.threads
        << " epoch=" << p.epoch;
}

std::vector<PipelineCase>
pipelineCases()
{
    std::vector<PipelineCase> cases;
    std::uint64_t seed = 100;
    for (unsigned threads : {2u, 3u, 5u}) {
        for (std::size_t epoch : {32ul, 200ul, 5000ul}) {
            for (MemModel model : {MemModel::SequentiallyConsistent,
                                   MemModel::TSO}) {
                cases.push_back(
                    {seed++, threads, epoch, model,
                     threads % 2 ? 8u : 4u});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineSweep,
                         ::testing::ValuesIn(pipelineCases()));

TEST(Integration, FalsePositivesGrowWithEpochSizeOnOcean)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 60000;
    wcfg.phaseEvents = 4000;
    wcfg.warmupNops = 8000;
    wcfg.seed = 9;
    Workload w = makeOcean(wcfg);
    Rng rng(21);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);

    AddrCheckConfig acfg;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit;

    auto fp_at = [&](std::size_t h) {
        EpochLayout layout = EpochLayout::byGlobalSeq(trace, h * 4);
        ButterflyAddrCheck butterfly(layout, acfg);
        WindowSchedule().run(layout, butterfly);
        AddrCheckOracle oracle(acfg);
        oracle.runOnTrace(trace);
        return compareToOracle(butterfly.errors(), oracle.errors(), 8)
            .falsePositives;
    };

    const auto fp_small = fp_at(1000);
    const auto fp_large = fp_at(8000);
    EXPECT_LT(fp_small, fp_large);
    EXPECT_GT(fp_large, 0u); // OCEAN's churn must be visible at 64K-scale
}

TEST(Integration, TaintAndAddrCheckShareOneTrace)
{
    // Run both lifeguards over the same mixed trace: each must uphold
    // its zero-FN contract independently.
    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 1200;
    wcfg.seed = 4;
    Workload w = makeTaintMix(wcfg);
    Rng bug_rng(77);
    injectBugs(w, BugKind::TaintedJump, 2, bug_rng);
    injectBugs(w, BugKind::UseAfterFree, 2, bug_rng);

    Rng rng(5);
    Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 300);

    AddrCheckConfig acfg;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit;
    ButterflyAddrCheck addr(layout, acfg);
    WindowSchedule().run(layout, addr);
    AddrCheckOracle addr_oracle(acfg);
    addr_oracle.runOnTrace(trace);
    EXPECT_EQ(compareToOracle(addr.errors(), addr_oracle.errors(), 8)
                  .falseNegatives,
              0u);

    TaintCheckConfig tcfg;
    tcfg.granularity = 8;
    ButterflyTaintCheck taint(layout, tcfg);
    WindowSchedule().run(layout, taint);
    TaintCheckOracle taint_oracle(tcfg);
    taint_oracle.runOnTrace(trace);
    for (const auto &rec : taint_oracle.errors().records())
        EXPECT_TRUE(taint.errors().flagged(rec.tid, rec.index));
}

class SkewedHeartbeats : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SkewedHeartbeats, ZeroFalseNegativesSurviveDeliverySkew)
{
    // The paper's delivery model: heartbeats arrive with bounded skew,
    // shifting every thread's epoch boundaries independently. The
    // guarantees must hold for any skew the epoch size absorbs.
    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 2500;
    wcfg.seed = GetParam();
    Workload w = makeRandomMix(wcfg);
    Rng bug_rng(GetParam() + 17);
    injectBugs(w, BugKind::UseAfterFree, 3, bug_rng);

    InterleaveConfig icfg;
    icfg.model = GetParam() % 2 ? MemModel::TSO
                                : MemModel::SequentiallyConsistent;
    Rng rng(GetParam() * 13 + 1);
    Trace trace = interleave(w.programs, icfg, rng);

    const std::size_t H = 150 * wcfg.numThreads;
    EpochLayout layout = EpochLayout::byGlobalSeqSkewed(
        trace, H, H / 3, GetParam() * 7 + 5);

    AddrCheckConfig acfg;
    acfg.heapBase = w.heapBase;
    acfg.heapLimit = w.heapLimit + 0x100000;

    ButterflyAddrCheck butterfly(layout, acfg);
    WindowSchedule().run(layout, butterfly);
    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);

    EXPECT_GE(oracle.errors().size(), 3u);
    EXPECT_EQ(compareToOracle(butterfly.errors(), oracle.errors(),
                              acfg.granularity)
                  .falseNegatives,
              0u)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewedHeartbeats,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Integration, EmptyBlocksFromStalledThreadsAreHandled)
{
    // One thread does all the work while another sleeps at a barrier:
    // global-progress slicing yields empty blocks for the sleeper, and
    // the analysis must run through them without issue.
    std::vector<std::vector<Event>> programs(2);
    programs[0].push_back(Event::alloc(0x1000, 64));
    for (int i = 0; i < 3000; ++i)
        programs[0].push_back(Event::write(0x1000 + 8 * (i % 8), 8));
    programs[0].push_back(Event::barrier());
    programs[1].push_back(Event::barrier());
    for (int i = 0; i < 100; ++i)
        programs[1].push_back(Event::read(0x1000, 8));
    programs[0].push_back(Event::freeOf(0x1000, 64));

    Rng rng(11);
    Trace trace = interleave(programs, InterleaveConfig{}, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 200);
    EXPECT_GT(layout.numEpochs(), 5u);

    AddrCheckConfig acfg;
    ButterflyAddrCheck butterfly(layout, acfg);
    WindowSchedule().run(layout, butterfly);
    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);
    EXPECT_EQ(compareToOracle(butterfly.errors(), oracle.errors(), 8)
                  .falseNegatives,
              0u);
}

} // namespace
} // namespace bfly
