/** @file Unit tests for src/memmodel: interleavers and valid orderings. */

#include <algorithm>
#include <gtest/gtest.h>

#include "memmodel/interleaver.hpp"
#include "memmodel/valid_orderings.hpp"
#include "tests/helpers.hpp"

namespace bfly {
namespace {

std::vector<std::uint64_t>
gseqOfThread(const Trace &trace, std::size_t t)
{
    std::vector<std::uint64_t> out;
    for (const Event &e : trace.threads[t].events) {
        if (e.kind != EventKind::Heartbeat)
            out.push_back(e.gseq);
    }
    return out;
}

TEST(InterleaverSC, AllEventsStampedAndProgramOrderPreserved)
{
    std::vector<std::vector<Event>> programs(3);
    for (int t = 0; t < 3; ++t)
        for (int i = 0; i < 20; ++i)
            programs[t].push_back(Event::write(0x100 + 8 * i, 8));

    Rng rng(1);
    const Trace trace = interleave(programs, InterleaveConfig{}, rng);

    std::vector<std::uint64_t> all;
    for (std::size_t t = 0; t < 3; ++t) {
        const auto g = gseqOfThread(trace, t);
        EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
        all.insert(all.end(), g.begin(), g.end());
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), 60u);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i + 1); // a permutation of 1..60
}

TEST(InterleaverSC, DifferentSeedsDifferentInterleavings)
{
    std::vector<std::vector<Event>> programs(2);
    for (int t = 0; t < 2; ++t)
        for (int i = 0; i < 30; ++i)
            programs[t].push_back(Event::read(0x100));
    Rng r1(1), r2(2);
    const Trace a = interleave(programs, InterleaveConfig{}, r1);
    const Trace b = interleave(programs, InterleaveConfig{}, r2);
    EXPECT_NE(gseqOfThread(a, 0), gseqOfThread(b, 0));
}

TEST(InterleaverTSO, StoresCanPassLoadsButStoresStayFIFO)
{
    // One thread alternating stores and loads, run many seeds: at least
    // one seed should show a load visible before an older store, and
    // stores must always drain in program order.
    std::vector<std::vector<Event>> programs(2);
    for (int i = 0; i < 16; ++i) {
        programs[0].push_back(Event::write(0x100 + 8 * i, 8));
        programs[0].push_back(Event::read(0x200 + 8 * i, 8));
        programs[1].push_back(Event::nop());
    }

    InterleaveConfig cfg;
    cfg.model = MemModel::TSO;
    bool saw_reorder = false;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const Trace trace = interleave(programs, cfg, rng);
        const auto &events = trace.threads[0].events;
        std::uint64_t last_store_gseq = 0;
        for (std::size_t i = 0; i < events.size(); ++i) {
            if (events[i].kind == EventKind::Write) {
                EXPECT_GT(events[i].gseq, last_store_gseq); // FIFO
                last_store_gseq = events[i].gseq;
            }
            if (events[i].kind == EventKind::Read && i > 0 &&
                events[i - 1].kind == EventKind::Write &&
                events[i].gseq < events[i - 1].gseq) {
                saw_reorder = true; // load passed the older store
            }
        }
    }
    EXPECT_TRUE(saw_reorder);
}

TEST(InterleaverBarrier, NothingCrossesTheBarrier)
{
    std::vector<std::vector<Event>> programs(2);
    for (int t = 0; t < 2; ++t) {
        for (int i = 0; i < 10; ++i)
            programs[t].push_back(Event::write(0x100 + t, 8));
        programs[t].push_back(Event::barrier());
        for (int i = 0; i < 10; ++i)
            programs[t].push_back(Event::read(0x100 + (1 - t), 8));
    }
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        InterleaveConfig cfg;
        cfg.model = seed % 2 ? MemModel::TSO
                             : MemModel::SequentiallyConsistent;
        const Trace trace = interleave(programs, cfg, rng);
        std::uint64_t max_before = 0, min_after = ~0ull;
        for (const auto &tt : trace.threads) {
            bool after = false;
            for (const Event &e : tt.events) {
                if (e.kind == EventKind::Barrier) {
                    after = true;
                    continue;
                }
                if (after)
                    min_after = std::min(min_after, e.gseq);
                else
                    max_before = std::max(max_before, e.gseq);
            }
        }
        EXPECT_LT(max_before, min_after);
    }
}

TEST(ValidOrderings, CountsSingleEpochInterleavings)
{
    // 2 threads x 1 epoch x 2 instructions: all interleavings of two
    // 2-instruction chains = C(4,2) = 6.
    Trace trace = test::traceOf({
        {Event::write(0x10, 8), Event::write(0x18, 8)},
        {Event::write(0x20, 8), Event::write(0x28, 8)},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    const ValidOrderings vo(layout, 0);
    EXPECT_EQ(vo.count(), 6u);
}

TEST(ValidOrderings, EpochSeparationConstrainsOrderings)
{
    // 1 instruction per block, 2 threads, 3 epochs. Without constraints
    // there would be C(6,3)=20 interleavings; epoch l before l+2 rules
    // out those placing an epoch-2 instruction before an epoch-0 one.
    std::vector<Event> prog = {Event::write(0x10, 8), Event::heartbeat(),
                               Event::write(0x18, 8), Event::heartbeat(),
                               Event::write(0x20, 8)};
    Trace trace = test::traceOf({prog, prog});
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    const ValidOrderings vo(layout, 2);
    const std::uint64_t n = vo.count();
    EXPECT_LT(n, 20u);
    EXPECT_GT(n, 0u);

    // Every enumerated ordering passes the validity predicate.
    vo.forEach([&](const std::vector<OrderedInstr> &order) {
        EXPECT_TRUE(ValidOrderings::isValid(order));
        EXPECT_EQ(order.size(), 6u);
        return true;
    });
}

TEST(ValidOrderings, SampleIsValid)
{
    Rng trace_rng(7);
    const Trace trace = test::randomSmallTrace(trace_rng, 3, 3, 2, 3);
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    const ValidOrderings vo(layout, 2);
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        const auto order = vo.sample(rng);
        EXPECT_EQ(order.size(), vo.size());
        EXPECT_TRUE(ValidOrderings::isValid(order));
    }
}

TEST(ValidOrderings, IsValidRejectsBadOrders)
{
    // Program order violation within a thread.
    std::vector<OrderedInstr> bad1 = {
        {0, 0, 1, Event::nop()},
        {0, 0, 0, Event::nop()},
    };
    EXPECT_FALSE(ValidOrderings::isValid(bad1));

    // Epoch separation violation: epoch 2 instruction before epoch 0.
    std::vector<OrderedInstr> bad2 = {
        {2, 0, 0, Event::nop()},
        {0, 1, 0, Event::nop()},
    };
    EXPECT_FALSE(ValidOrderings::isValid(bad2));

    // Adjacent epochs may interleave.
    std::vector<OrderedInstr> good = {
        {1, 0, 0, Event::nop()},
        {0, 1, 0, Event::nop()},
        {1, 1, 0, Event::nop()},
    };
    EXPECT_TRUE(ValidOrderings::isValid(good));
}

TEST(ValidOrderings, EnumerationMatchesValidityFilter)
{
    // Exhaustive cross-check on a tiny case: enumerate all permutations
    // respecting per-thread order via the enumerator, and compare the
    // count with brute-force filtering of all interleavings.
    Trace trace = test::traceOf({
        {Event::write(0x10, 8), Event::heartbeat(), Event::write(0x18, 8)},
        {Event::write(0x20, 8), Event::heartbeat(), Event::write(0x28, 8)},
    });
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    const ValidOrderings vo(layout, 1);

    std::uint64_t brute = 0;
    // All ways to merge two chains of length 2+2 with epochs (0,0,1,1):
    // enumerate orderings via the enumerator of a *single* big epoch and
    // filter with isValid after re-tagging... simpler: trust count > 0
    // and every enumerated order valid, plus cardinality sanity: at most
    // C(4,2)=6 merges, some excluded by epoch separation? With only two
    // epochs (adjacent), nothing is excluded: expect exactly 6.
    brute = vo.count();
    EXPECT_EQ(brute, 6u);
}

} // namespace
} // namespace bfly
