/**
 * @file
 * Tests for DEFINEDCHECK, the uninitialized-read lifeguard built on the
 * generic reaching-expressions analysis: sequential semantics, wing
 * conservatism, and the zero-false-negative property against SC and TSO
 * executions.
 */

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "lifeguards/defcheck.hpp"
#include "memmodel/interleaver.hpp"
#include "tests/helpers.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

DefCheckConfig
wideConfig()
{
    DefCheckConfig cfg;
    cfg.heapBase = 0;
    cfg.heapLimit = kNoAddr;
    return cfg;
}

struct Run
{
    Trace trace;
    EpochLayout layout;
    std::unique_ptr<ButterflyDefCheck> check;
};

Run
runDefCheck(Trace trace, const DefCheckConfig &cfg = wideConfig())
{
    Run run{std::move(trace), EpochLayout::fromHeartbeats(Trace{}), {}};
    run.layout = EpochLayout::fromHeartbeats(run.trace);
    run.check = std::make_unique<ButterflyDefCheck>(run.layout, cfg);
    WindowSchedule().run(run.layout, *run.check);
    return run;
}

TEST(DefCheck, ReadOfFreshAllocationFlagged)
{
    auto run = runDefCheck(test::traceOf({{
        Event::alloc(0x100, 16),
        Event::read(0x100, 8), // garbage
        Event::write(0x100, 8),
        Event::read(0x100, 8), // now defined
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].kind,
              ErrorKind::UninitializedRead);
    EXPECT_EQ(run.check->errors().records()[0].index, 1u);
}

TEST(DefCheck, ReallocationClobbersDefinedness)
{
    auto run = runDefCheck(test::traceOf({{
        Event::alloc(0x100, 16),
        Event::write(0x100, 8),
        Event::freeOf(0x100, 16),
        Event::alloc(0x100, 16),
        Event::read(0x100, 8), // fresh garbage again
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
    EXPECT_EQ(run.check->errors().records()[0].index, 4u);
}

TEST(DefCheck, AssignSourcesAreChecked)
{
    Event a = Event::assign(0x108, 0x100);
    a.size = 8;
    auto run = runDefCheck(test::traceOf({{
        Event::alloc(0x100, 16),
        a, // reads undefined 0x100
    }}));
    ASSERT_EQ(run.check->errors().size(), 1u);
}

TEST(DefCheck, ConcurrentReallocationIsConservative)
{
    // Thread 0 wrote x long ago; thread 1 frees+reallocs x concurrently
    // with thread 0's read: some interleavings hand thread 0 garbage,
    // so the read must be flagged (a wing kill in reaching-expressions
    // terms).
    auto run = runDefCheck(test::traceOf({
        {Event::alloc(0x100, 8), Event::write(0x100, 8),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::read(0x100, 8)},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::freeOf(0x100, 8),
         Event::alloc(0x100, 8)},
    }));
    bool read_flagged = false;
    for (const auto &rec : run.check->errors().records())
        read_flagged |= rec.tid == 0 && rec.index == 3;
    EXPECT_TRUE(read_flagged);
}

TEST(DefCheck, DistantWriteReachesViaSos)
{
    auto run = runDefCheck(test::traceOf({
        {Event::alloc(0x100, 8), Event::write(0x100, 8),
         Event::heartbeat(), Event::nop(), Event::heartbeat(),
         Event::nop()},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::read(0x100, 8)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
}

class DefCheckZeroFn : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DefCheckZeroFn, OracleErrorsAreAlwaysCovered)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 3;
    wcfg.instrPerThread = 1500;
    wcfg.seed = GetParam();
    const Workload w = makeRandomMix(wcfg);

    InterleaveConfig icfg;
    icfg.model = GetParam() % 2 ? MemModel::TSO
                                : MemModel::SequentiallyConsistent;
    Rng rng(GetParam() * 41 + 3);
    Trace trace = interleave(w.programs, icfg, rng);
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 120 * 3);

    DefCheckConfig cfg;
    cfg.heapBase = w.heapBase;
    cfg.heapLimit = w.heapLimit;

    ButterflyDefCheck butterfly(layout, cfg);
    WindowSchedule().run(layout, butterfly);
    DefCheckOracle oracle(cfg);
    oracle.runOnTrace(trace);

    // Random mix reads freshly-allocated blocks before writing them
    // sometimes, so the oracle finds real uninitialized reads.
    const auto acc = compareToOracle(butterfly.errors(),
                                     oracle.errors(), cfg.granularity);
    EXPECT_EQ(acc.falseNegatives, 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefCheckZeroFn,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(DefCheck, BuiltOnTheGenericAnalysis)
{
    // The underlying ReachingExpressions state is exposed: after a
    // write two epochs back, the definedness expression is in the SOS.
    auto run = runDefCheck(test::traceOf({{
        Event::alloc(0x100, 8),
        Event::write(0x100, 8),
        Event::heartbeat(),
        Event::nop(),
        Event::heartbeat(),
        Event::nop(),
    }}));
    EXPECT_TRUE(run.check->analysis().sos(2).contains(0x100 / 8));
}

} // namespace
} // namespace bfly
