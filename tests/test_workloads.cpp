/**
 * @file
 * Tests for the workload generators: determinism, budget adherence,
 * balanced barriers, heap discipline, sharing structure, and bug
 * injection.
 */

#include <gtest/gtest.h>

#include "memmodel/interleaver.hpp"
#include "workloads/bugs.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

WorkloadConfig
smallConfig(std::uint64_t seed = 7)
{
    WorkloadConfig cfg;
    cfg.numThreads = 4;
    cfg.instrPerThread = 3000;
    cfg.seed = seed;
    return cfg;
}

class PaperWorkloads
    : public ::testing::TestWithParam<
          std::pair<std::string, WorkloadFactory>>
{};

TEST_P(PaperWorkloads, Deterministic)
{
    const auto &[name, factory] = GetParam();
    const Workload a = factory(smallConfig());
    const Workload b = factory(smallConfig());
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (std::size_t t = 0; t < a.programs.size(); ++t) {
        ASSERT_EQ(a.programs[t].size(), b.programs[t].size()) << name;
        for (std::size_t i = 0; i < a.programs[t].size(); ++i) {
            EXPECT_EQ(a.programs[t][i].addr, b.programs[t][i].addr);
            EXPECT_EQ(a.programs[t][i].kind, b.programs[t][i].kind);
        }
    }
}

TEST_P(PaperWorkloads, MeetsBudgetWithoutExplosion)
{
    const auto &[name, factory] = GetParam();
    const Workload w = factory(smallConfig());
    for (const auto &prog : w.programs) {
        EXPECT_GE(prog.size(), smallConfig().instrPerThread) << name;
        // One phase of overshoot is acceptable; unbounded growth is not.
        EXPECT_LE(prog.size(), 8 * smallConfig().instrPerThread) << name;
    }
}

TEST_P(PaperWorkloads, BarriersBalancedAcrossThreads)
{
    const auto &[name, factory] = GetParam();
    const Workload w = factory(smallConfig());
    std::size_t expected = 0;
    for (std::size_t t = 0; t < w.programs.size(); ++t) {
        std::size_t count = 0;
        for (const Event &e : w.programs[t]) {
            if (e.kind == EventKind::Barrier)
                ++count;
        }
        if (t == 0)
            expected = count;
        EXPECT_EQ(count, expected) << name << " thread " << t;
    }
    EXPECT_GT(expected, 0u) << name;
}

TEST_P(PaperWorkloads, EventsStayInsideHeapWindow)
{
    const auto &[name, factory] = GetParam();
    const Workload w = factory(smallConfig());
    for (const auto &prog : w.programs) {
        for (const Event &e : prog) {
            if (e.addr == kNoAddr || !e.isMemoryAccess())
                continue;
            EXPECT_GE(e.addr, w.heapBase) << name;
            EXPECT_LT(e.addr, w.heapLimit) << name;
        }
    }
}

TEST_P(PaperWorkloads, FreesCarrySizes)
{
    const auto &[name, factory] = GetParam();
    const Workload w = factory(smallConfig());
    std::size_t allocs = 0, frees = 0;
    for (const auto &prog : w.programs) {
        for (const Event &e : prog) {
            if (e.kind == EventKind::Alloc) {
                ++allocs;
                EXPECT_GT(e.size, 0) << name;
            }
            if (e.kind == EventKind::Free) {
                ++frees;
                EXPECT_GT(e.size, 0) << name;
            }
        }
    }
    EXPECT_GT(allocs, 0u) << name;
    EXPECT_EQ(allocs, frees) << name << " leaks allocations";
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PaperWorkloads, ::testing::ValuesIn(paperWorkloads()),
    [](const auto &info) { return info.param.first; });

TEST(Workloads, SharingStructureDiffers)
{
    // blackscholes is private-data-parallel: after its setup phase no
    // address is written by one thread and read by another. ocean, by
    // contrast, must have cross-thread readers.
    auto cross_thread_reads = [](const Workload &w) {
        std::map<Addr, ThreadId> writer;
        for (std::size_t t = 0; t < w.programs.size(); ++t) {
            for (const Event &e : w.programs[t]) {
                if (e.kind == EventKind::Write ||
                    e.kind == EventKind::Alloc) {
                    writer[e.addr] = static_cast<ThreadId>(t);
                }
            }
        }
        std::size_t cross = 0;
        for (std::size_t t = 0; t < w.programs.size(); ++t) {
            for (const Event &e : w.programs[t]) {
                if (e.kind != EventKind::Read)
                    continue;
                auto it = writer.find(e.addr);
                if (it != writer.end() && it->second != t)
                    ++cross;
            }
        }
        return cross;
    };

    const Workload ocean = makeOcean(smallConfig());
    EXPECT_GT(cross_thread_reads(ocean), 0u);
}

TEST(Workloads, RandomMixAllocatesAndFrees)
{
    const Workload w = makeRandomMix(smallConfig());
    std::size_t allocs = 0;
    for (const auto &prog : w.programs)
        for (const Event &e : prog)
            allocs += e.kind == EventKind::Alloc;
    EXPECT_GT(allocs, 10u);
}

TEST(Workloads, TaintMixEmitsAllTaintEventKinds)
{
    const Workload w = makeTaintMix(smallConfig());
    bool has_src = false, has_untaint = false, has_assign = false,
         has_use = false;
    for (const auto &prog : w.programs) {
        for (const Event &e : prog) {
            has_src |= e.kind == EventKind::TaintSrc;
            has_untaint |= e.kind == EventKind::Untaint;
            has_assign |= e.kind == EventKind::Assign;
            has_use |= e.kind == EventKind::Use;
        }
    }
    EXPECT_TRUE(has_src && has_untaint && has_assign && has_use);
}

TEST(BugInjection, PlantsTheRequestedCount)
{
    Workload w = makeRandomMix(smallConfig());
    Rng rng(3);
    const auto bugs = injectBugs(w, BugKind::UseAfterFree, 5, rng);
    EXPECT_EQ(bugs.size(), 5u);
    // Injected addresses live outside the original heap and inside the
    // widened monitored window.
    for (const auto &bug : bugs) {
        EXPECT_GE(bug.addr, 0x10000000u);
        EXPECT_LT(bug.addr, w.heapLimit);
    }
}

TEST(BugInjection, WarmupSpacersAreEmitted)
{
    WorkloadConfig cfg = smallConfig();
    cfg.warmupNops = 500;
    const Workload w = makeFft(cfg);
    std::size_t nops = 0;
    for (const Event &e : w.programs[0])
        nops += e.kind == EventKind::Nop;
    EXPECT_GE(nops, 1000u); // startup + cooldown spacer
}

} // namespace
} // namespace bfly
