/** @file Unit tests for src/common: sets, shadow memory, heap, RNG, stats. */

#include <algorithm>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/addr_set.hpp"
#include "common/heap.hpp"
#include "common/rng.hpp"
#include "common/shadow_memory.hpp"
#include "common/stats.hpp"

namespace bfly {
namespace {

TEST(FlatSet, BasicOperations)
{
    AddrSet s{1, 2, 3};
    EXPECT_TRUE(s.contains(1));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(s.size(), 3u);
    s.insert(4);
    EXPECT_TRUE(s.contains(4));
    s.erase(1);
    EXPECT_FALSE(s.contains(1));
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(FlatSet, UnionIntersectDifference)
{
    const AddrSet a{1, 2, 3};
    const AddrSet b{2, 3, 4};
    EXPECT_EQ(setUnion(a, b).sorted(), (std::vector<Addr>{1, 2, 3, 4}));
    EXPECT_EQ(setIntersect(a, b).sorted(), (std::vector<Addr>{2, 3}));
    EXPECT_EQ(setDifference(a, b).sorted(), (std::vector<Addr>{1}));
    EXPECT_EQ(setDifference(b, a).sorted(), (std::vector<Addr>{4}));
}

TEST(FlatSet, Intersects)
{
    const AddrSet a{1, 2};
    const AddrSet b{2, 9};
    const AddrSet c{5, 6};
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
    EXPECT_FALSE(AddrSet{}.intersects(a));
}

TEST(FlatSet, SubtractPicksCheaperDirection)
{
    AddrSet big;
    for (Addr k = 0; k < 100; ++k)
        big.insert(k);
    AddrSet small{1, 50, 99, 200};
    big.subtract(small);
    EXPECT_EQ(big.size(), 97u);
    small.subtract(big);
    EXPECT_EQ(small.sorted(), (std::vector<Addr>{1, 50, 99, 200}));
}

TEST(FlatSet, GrowsPastInlineBuffer)
{
    AddrSet s;
    for (Addr k = 0; k < 100; ++k) {
        s.insert(k * 3);
        ASSERT_EQ(s.size(), static_cast<std::size_t>(k) + 1);
    }
    for (Addr k = 0; k < 100; ++k) {
        EXPECT_TRUE(s.contains(k * 3));
        EXPECT_FALSE(s.contains(k * 3 + 1));
    }
    std::size_t seen = 0;
    for (Addr k : s) {
        EXPECT_EQ(k % 3, 0u);
        ++seen;
    }
    EXPECT_EQ(seen, 100u);
}

TEST(FlatSet, SentinelValueIsStorable)
{
    // All-ones marks empty slots internally; it must still be a normal
    // element from the outside (kNoAddr is a legitimate key value).
    AddrSet s;
    s.insert(kNoAddr);
    EXPECT_TRUE(s.contains(kNoAddr));
    EXPECT_EQ(s.size(), 1u);
    for (Addr k = 0; k < 50; ++k)
        s.insert(k); // force migration to the table with kNoAddr present
    EXPECT_TRUE(s.contains(kNoAddr));
    EXPECT_EQ(s.size(), 51u);
    EXPECT_EQ(s.sorted().back(), kNoAddr);
    s.erase(kNoAddr);
    EXPECT_FALSE(s.contains(kNoAddr));
    EXPECT_EQ(s.size(), 50u);
}

TEST(FlatSet, CopyAndMoveSemantics)
{
    AddrSet a;
    for (Addr k = 0; k < 40; ++k)
        a.insert(k * 7);
    AddrSet b = a;
    b.insert(1);
    EXPECT_EQ(a.size(), 40u);
    EXPECT_EQ(b.size(), 41u);
    AddrSet c = std::move(b);
    EXPECT_EQ(c.size(), 41u);
    EXPECT_TRUE(c.contains(1));
    a = c;
    EXPECT_TRUE(a == c);
    AddrSet small{1, 2};
    AddrSet moved = std::move(small);
    EXPECT_EQ(moved.sorted(), (std::vector<Addr>{1, 2}));
}

/** Model-based property test: FlatSet vs std::unordered_set under a
 *  randomized op sequence covering both storage regimes. */
TEST(FlatSet, MatchesUnorderedSetModel)
{
    Rng rng(0xbf1f);
    for (int trial = 0; trial < 20; ++trial) {
        AddrSet sut;
        std::unordered_set<Addr> model;
        // Key universe small enough to hit duplicate inserts, erases of
        // present keys, and the inline->table migration both ways.
        const Addr universe = 1 + rng.below(60);
        for (int step = 0; step < 400; ++step) {
            Addr k = rng.below(universe);
            if (rng.chance(0.02))
                k = kNoAddr; // exercise the sentinel path
            switch (rng.below(3)) {
              case 0:
                sut.insert(k);
                model.insert(k);
                break;
              case 1:
                sut.erase(k);
                model.erase(k);
                break;
              default:
                ASSERT_EQ(sut.contains(k), model.count(k) != 0)
                    << "trial " << trial << " step " << step;
                break;
            }
            ASSERT_EQ(sut.size(), model.size())
                << "trial " << trial << " step " << step;
        }
        std::vector<Addr> expected(model.begin(), model.end());
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(sut.sorted(), expected) << "trial " << trial;
    }
}

/** Model-based property test for the set algebra used by the dataflow
 *  equations: union / intersect / subtract / intersects / equality. */
TEST(FlatSet, AlgebraMatchesUnorderedSetModel)
{
    Rng rng(0xa15e);
    auto random_pair = [&](std::size_t max_n, AddrSet &s,
                           std::unordered_set<Addr> &m) {
        const std::size_t n = rng.below(max_n + 1);
        const Addr universe = 1 + rng.below(4 * (max_n + 1));
        for (std::size_t i = 0; i < n; ++i) {
            Addr k = rng.below(universe);
            if (rng.chance(0.05))
                k = kNoAddr - rng.below(3); // near-sentinel keys
            s.insert(k);
            m.insert(k);
        }
    };
    auto sorted_model = [](const std::unordered_set<Addr> &m) {
        std::vector<Addr> v(m.begin(), m.end());
        std::sort(v.begin(), v.end());
        return v;
    };

    for (int trial = 0; trial < 30; ++trial) {
        // Mix the regimes: some trials stay inline, some go to tables.
        const std::size_t max_n = trial % 3 == 0 ? 6 : 200;
        AddrSet a, b;
        std::unordered_set<Addr> ma, mb;
        random_pair(max_n, a, ma);
        random_pair(max_n, b, mb);

        AddrSet u = a;
        u.unionWith(b);
        std::unordered_set<Addr> mu = ma;
        mu.insert(mb.begin(), mb.end());
        EXPECT_EQ(u.sorted(), sorted_model(mu)) << "trial " << trial;

        AddrSet i = a;
        i.intersectWith(b);
        std::unordered_set<Addr> mi;
        for (Addr k : ma)
            if (mb.count(k))
                mi.insert(k);
        EXPECT_EQ(i.sorted(), sorted_model(mi)) << "trial " << trial;

        AddrSet d = a;
        d.subtract(b);
        std::unordered_set<Addr> md;
        for (Addr k : ma)
            if (!mb.count(k))
                md.insert(k);
        EXPECT_EQ(d.sorted(), sorted_model(md)) << "trial " << trial;

        EXPECT_EQ(a.intersects(b), !mi.empty()) << "trial " << trial;
        EXPECT_EQ(a == b, sorted_model(ma) == sorted_model(mb))
            << "trial " << trial;
        EXPECT_TRUE(i == setIntersect(b, a)) << "trial " << trial;
    }
}

TEST(FlatSet, InsertBulkMatchesPerElementInsert)
{
    // Property test across both storage regimes and input shapes: a
    // bulk insert must leave the set in exactly the state a
    // per-element insert loop would, for sorted, unsorted, and
    // duplicate-heavy inputs.
    Rng rng(0xb01d);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t pre = rng.below(12);   // some trials inline
        const std::size_t n = rng.below(trial % 4 == 0 ? 6 : 300);
        const Addr universe = 1 + rng.below(100);

        AddrSet bulk, scalar;
        for (std::size_t i = 0; i < pre; ++i) {
            const Addr k = rng.below(universe);
            bulk.insert(k);
            scalar.insert(k);
        }
        std::vector<Addr> keys;
        for (std::size_t i = 0; i < n; ++i) {
            Addr k = rng.below(universe);
            if (rng.chance(0.03))
                k = kNoAddr; // sentinel must survive the bulk path
            keys.push_back(k);
        }
        if (trial % 2 == 0)
            std::sort(keys.begin(), keys.end()); // run-length dedupe path

        bulk.insertBulk(keys);
        for (Addr k : keys)
            scalar.insert(k);
        ASSERT_EQ(bulk.size(), scalar.size()) << "trial " << trial;
        EXPECT_EQ(bulk.sorted(), scalar.sorted()) << "trial " << trial;
    }
}

TEST(FlatSet, InsertBulkIntoInlineBufferStaysInline)
{
    // A bulk insert that fits the 8-key inline buffer must not force a
    // table migration, and duplicates must not inflate the size.
    AddrSet s;
    const std::vector<Addr> keys{3, 3, 1, 4, 1, 5};
    s.insertBulk(keys);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.sorted(), (std::vector<Addr>{1, 3, 4, 5}));
    s.insertBulk(std::vector<Addr>{5, 6, 7, 8});
    EXPECT_EQ(s.size(), 7u);
}

TEST(FlatSet, ContainsBulkCountsLikePerElementLoop)
{
    // containsBulk must equal the sum of per-element contains() —
    // duplicates in the query each count, present or not.
    Rng rng(0xcb17);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = rng.below(trial % 3 == 0 ? 8 : 200);
        const Addr universe = 1 + rng.below(80);
        AddrSet s;
        for (std::size_t i = 0; i < n; ++i)
            s.insert(rng.below(universe));
        if (rng.chance(0.2))
            s.insert(kNoAddr);

        std::vector<Addr> query;
        const std::size_t q = rng.below(150);
        for (std::size_t i = 0; i < q; ++i) {
            Addr k = rng.below(universe + 20); // some misses
            if (rng.chance(0.05))
                k = kNoAddr;
            query.push_back(k);
        }
        if (trial % 2 == 0)
            std::sort(query.begin(), query.end()); // probe-reuse path

        std::size_t expected = 0;
        for (Addr k : query)
            expected += s.contains(k) ? 1 : 0;
        EXPECT_EQ(s.containsBulk(query), expected) << "trial " << trial;
    }
}

TEST(FlatSet, InsertBulkAfterBackwardShiftErase)
{
    // Backward-shift erase compacts probe chains; a subsequent bulk
    // insert must still find the right slots (no stranded or duplicate
    // entries), including re-inserting the erased keys themselves.
    AddrSet sut;
    std::unordered_set<Addr> model;
    Rng rng(0xe7a5);
    std::vector<Addr> keys;
    for (int i = 0; i < 300; ++i)
        keys.push_back(rng.next() % 512); // collision-heavy universe
    sut.insertBulk(keys);
    for (Addr k : keys)
        model.insert(k);
    for (std::size_t i = 0; i < keys.size(); i += 3) {
        sut.erase(keys[i]);
        model.erase(keys[i]);
    }
    sut.insertBulk(keys); // everything back in
    for (Addr k : keys)
        model.insert(k);
    std::vector<Addr> expected(model.begin(), model.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sut.sorted(), expected);
}

TEST(FlatSet, BackwardShiftEraseKeepsProbeChainsIntact)
{
    // Adversarial pattern for linear probing: long runs of keys, erased
    // from the middle, must not strand later keys in the run.
    AddrSet s;
    std::vector<Addr> keys;
    Rng rng(99);
    for (int i = 0; i < 500; ++i)
        keys.push_back(rng.next());
    for (Addr k : keys)
        s.insert(k);
    for (std::size_t i = 0; i < keys.size(); i += 2)
        s.erase(keys[i]);
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(s.contains(keys[i]), i % 2 == 1) << "key index " << i;
}

TEST(ShadowMemory, DefaultValueWithoutAllocation)
{
    ShadowMemory<std::uint8_t> shadow(7);
    EXPECT_EQ(shadow.get(0x1234), 7);
    EXPECT_EQ(shadow.allocatedPages(), 0u);
}

TEST(ShadowMemory, SetGetAcrossPages)
{
    ShadowMemory<std::uint32_t> shadow(0);
    shadow.set(5, 42);
    shadow.set((1 << 12) + 5, 43); // second page
    EXPECT_EQ(shadow.get(5), 42u);
    EXPECT_EQ(shadow.get((1 << 12) + 5), 43u);
    EXPECT_EQ(shadow.get(6), 0u);
    EXPECT_EQ(shadow.allocatedPages(), 2u);
}

TEST(ShadowMemory, RangeOperations)
{
    ShadowMemory<std::uint8_t> shadow(0);
    shadow.setRange(100, 50, 1);
    EXPECT_TRUE(shadow.rangeEquals(100, 50, 1));
    EXPECT_FALSE(shadow.rangeEquals(99, 2, 1));
    shadow.clear();
    EXPECT_EQ(shadow.get(120), 0);
}

TEST(ShadowMemory, RangeOpsCrossPageBoundaries)
{
    ShadowMemory<std::uint8_t> shadow(0);
    const Addr base = (1 << 12) - 100; // straddles pages 0 and 1
    shadow.setRange(base, 200, 9);
    EXPECT_TRUE(shadow.rangeEquals(base, 200, 9));
    EXPECT_EQ(shadow.get(base), 9);
    EXPECT_EQ(shadow.get(base + 199), 9);
    EXPECT_EQ(shadow.get(base - 1), 0);
    EXPECT_EQ(shadow.get(base + 200), 0);
    EXPECT_EQ(shadow.allocatedPages(), 2u);

    // A span longer than a full page.
    shadow.setRange(0x10000, 3 * 4096 + 5, 3);
    EXPECT_TRUE(shadow.rangeEquals(0x10000, 3 * 4096 + 5, 3));
    EXPECT_FALSE(shadow.rangeEquals(0x10000, 3 * 4096 + 6, 3));
}

TEST(ShadowMemory, RangeEqualsOnUntouchedPagesComparesDefault)
{
    ShadowMemory<std::uint8_t> shadow(7);
    // Nothing allocated: every entry reads the default.
    EXPECT_TRUE(shadow.rangeEquals(0x5000, 10000, 7));
    EXPECT_FALSE(shadow.rangeEquals(0x5000, 10000, 8));
    EXPECT_EQ(shadow.allocatedPages(), 0u);
    // A touched page in the middle of an untouched span.
    shadow.set(0x7000, 1);
    EXPECT_FALSE(shadow.rangeEquals(0x5000, 0x3000, 7));
    shadow.set(0x7000, 7);
    EXPECT_TRUE(shadow.rangeEquals(0x5000, 0x3000, 7));
}

TEST(ShadowMemory, ForEachInRangeVisitsEveryEntryInOrder)
{
    ShadowMemory<std::uint16_t> shadow(5);
    shadow.set(4095, 10); // last entry of page 0
    shadow.set(4096, 11); // first entry of page 1
    std::vector<std::uint16_t> seen;
    shadow.forEachInRange(4094, 4, [&](std::uint16_t v) {
        seen.push_back(v);
    });
    EXPECT_EQ(seen, (std::vector<std::uint16_t>{5, 10, 11, 5}));
    EXPECT_EQ(shadow.allocatedPages(), 2u); // read-only: no allocation

    std::size_t count = 0;
    std::uint64_t sum = 0;
    shadow.forEachInRange(0x100000, 2 * 4096 + 7, [&](std::uint16_t v) {
        ++count;
        sum += v;
    });
    EXPECT_EQ(count, 2u * 4096 + 7);
    EXPECT_EQ(sum, (2u * 4096 + 7) * 5);
    EXPECT_EQ(shadow.allocatedPages(), 2u);
}

TEST(ShadowMemory, LastPageCacheStaysCoherent)
{
    ShadowMemory<std::uint8_t> shadow(0);
    // Miss-then-allocate on the same page: the cached "absent" result
    // must be invalidated by the allocation.
    EXPECT_EQ(shadow.get(0x2000), 0);
    shadow.set(0x2000, 4);
    EXPECT_EQ(shadow.get(0x2000), 4);
    EXPECT_EQ(shadow.get(0x2001), 0);
    // Alternating pages exercise cache replacement.
    shadow.set(0x5000, 1);
    shadow.set(0x6000, 2);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(shadow.get(0x5000), 1);
        EXPECT_EQ(shadow.get(0x6000), 2);
    }
    // clear() must also drop the cache.
    shadow.clear();
    EXPECT_EQ(shadow.get(0x5000), 0);
    shadow.set(0x5000, 9);
    EXPECT_EQ(shadow.get(0x5000), 9);
}

TEST(ShadowMemory, ForEachCoalescedRunSplitsAtGaps)
{
    auto runs_of = [](std::vector<Addr> sorted) {
        std::vector<std::pair<Addr, std::size_t>> runs;
        forEachCoalescedRun(sorted, [&](Addr base, std::size_t len) {
            runs.emplace_back(base, len);
        });
        return runs;
    };
    using Runs = std::vector<std::pair<Addr, std::size_t>>;
    EXPECT_EQ(runs_of({}), Runs{});
    EXPECT_EQ(runs_of({7}), (Runs{{7, 1}}));
    EXPECT_EQ(runs_of({1, 2, 3, 7, 8, 20}),
              (Runs{{1, 3}, {7, 2}, {20, 1}}));
    // Duplicates collapse into their run rather than splitting it.
    EXPECT_EQ(runs_of({4, 4, 5, 5, 5, 6, 9}), (Runs{{4, 3}, {9, 1}}));
}

TEST(ShadowMemory, SetSortedMatchesPerElementSet)
{
    // Property test: setSorted over a random sorted key list must leave
    // the map identical to per-element set(), including runs that
    // straddle the 4096-entry page boundary.
    Rng rng(0x5e75);
    for (int trial = 0; trial < 20; ++trial) {
        ShadowMemory<std::uint8_t> bulk(0), scalar(0);
        std::vector<Addr> keys;
        const std::size_t n = rng.below(400);
        // Cluster keys around a page boundary to force straddles.
        const Addr base = 4096 - 64 + rng.below(16);
        for (std::size_t i = 0; i < n; ++i)
            keys.push_back(base + rng.below(160));
        std::sort(keys.begin(), keys.end());

        bulk.setSorted(keys, 9);
        for (Addr k : keys)
            scalar.set(k, 9);
        for (Addr a = base - 8; a < base + 180; ++a)
            ASSERT_EQ(bulk.get(a), scalar.get(a))
                << "trial " << trial << " addr " << a;
        EXPECT_EQ(bulk.allocatedPages(), scalar.allocatedPages())
            << "trial " << trial;
    }
}

TEST(ShadowMemory, CountEqualSortedMatchesPerElementGets)
{
    ShadowMemory<std::uint8_t> shadow(0);
    shadow.setRange(4090, 12, 3); // straddles pages 0 and 1
    shadow.set(5000, 3);

    const std::vector<Addr> query{4088, 4089, 4090, 4091, 4100,
                                  4101, 4102, 5000, 5000, 6000};
    std::size_t expected = 0;
    for (Addr a : query)
        expected += shadow.get(a) == 3 ? 1 : 0;
    EXPECT_EQ(expected, 6u); // 4090, 4091, 4100, 4101, and 5000 twice
    EXPECT_EQ(shadow.countEqualSorted(query, 3), expected);
    EXPECT_EQ(shadow.countEqualSorted(query, 0),
              query.size() - expected);
}

TEST(ShadowMemory, SortedOpsKeepLastPageCacheCoherent)
{
    // A one-entry last-page cache sits under get(); the coalesced bulk
    // writes must not let it serve stale values.
    ShadowMemory<std::uint8_t> shadow(0);
    EXPECT_EQ(shadow.get(0x3000), 0); // cache the "absent page" result
    const std::vector<Addr> run{0x3000, 0x3001, 0x3002};
    shadow.setSorted(run, 5);
    EXPECT_EQ(shadow.get(0x3000), 5);
    EXPECT_EQ(shadow.countEqualSorted(run, 5), 3u);
    // Single-element runs go through set(), longer ones via setRange;
    // interleave both on the same page.
    shadow.setSorted(std::vector<Addr>{0x3005}, 7);
    EXPECT_EQ(shadow.get(0x3005), 7);
    EXPECT_EQ(shadow.get(0x3001), 5);
}

TEST(SimHeap, AllocateAndFree)
{
    SimHeap heap(0x1000, 1024);
    const Addr a = heap.malloc(100);
    ASSERT_NE(a, kNoAddr);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_TRUE(heap.isAllocated(a));
    EXPECT_TRUE(heap.isAllocated(a + 99));
    EXPECT_FALSE(heap.isAllocated(a + 104)); // rounded to 104
    EXPECT_EQ(heap.free(a), 104u);
    EXPECT_FALSE(heap.isAllocated(a));
}

TEST(SimHeap, DoubleFreeReturnsZero)
{
    SimHeap heap(0, 1024);
    const Addr a = heap.malloc(16);
    EXPECT_GT(heap.free(a), 0u);
    EXPECT_EQ(heap.free(a), 0u);
    EXPECT_EQ(heap.free(0x500), 0u); // wild free
}

TEST(SimHeap, CoalescingAllowsBigReallocation)
{
    SimHeap heap(0, 1024);
    const Addr a = heap.malloc(256);
    const Addr b = heap.malloc(256);
    const Addr c = heap.malloc(256);
    ASSERT_NE(c, kNoAddr);
    heap.free(b);
    heap.free(a);
    heap.free(c);
    // All three coalesce back into one block covering the whole heap.
    EXPECT_NE(heap.malloc(1024), kNoAddr);
}

TEST(SimHeap, FirstFitReusesFreedBlocks)
{
    SimHeap heap(0, 1024);
    const Addr a = heap.malloc(64);
    heap.malloc(64);
    heap.free(a);
    EXPECT_EQ(heap.malloc(32), a); // hole reused first-fit
}

TEST(SimHeap, OutOfMemoryReturnsSentinel)
{
    SimHeap heap(0, 128);
    EXPECT_NE(heap.malloc(100), kNoAddr);
    EXPECT_EQ(heap.malloc(100), kNoAddr);
}

TEST(SimHeap, BytesInUseTracksAllocations)
{
    SimHeap heap(0, 4096);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    const Addr a = heap.malloc(100);
    EXPECT_EQ(heap.bytesInUse(), 104u);
    heap.free(a);
    EXPECT_EQ(heap.bytesInUse(), 0u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(12345), b(12345), c(54321);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(10), 10u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000, 0.5, 0.05);
}

TEST(StatSet, AddGetMergeDump)
{
    StatSet s;
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    StatSet other;
    other.add("x", 10);
    other.add("y", 1);
    s.merge(other);
    EXPECT_EQ(s.get("x"), 15u);
    EXPECT_EQ(s.get("y"), 1u);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h;
    h.sample(1);
    h.sample(2);
    h.sample(3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.mean(), 2.0, 1e-9);
}

} // namespace
} // namespace bfly
