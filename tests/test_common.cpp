/** @file Unit tests for src/common: sets, shadow memory, heap, RNG, stats. */

#include <gtest/gtest.h>

#include "common/addr_set.hpp"
#include "common/heap.hpp"
#include "common/rng.hpp"
#include "common/shadow_memory.hpp"
#include "common/stats.hpp"

namespace bfly {
namespace {

TEST(FlatSet, BasicOperations)
{
    AddrSet s{1, 2, 3};
    EXPECT_TRUE(s.contains(1));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(s.size(), 3u);
    s.insert(4);
    EXPECT_TRUE(s.contains(4));
    s.erase(1);
    EXPECT_FALSE(s.contains(1));
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(FlatSet, UnionIntersectDifference)
{
    const AddrSet a{1, 2, 3};
    const AddrSet b{2, 3, 4};
    EXPECT_EQ(setUnion(a, b).sorted(), (std::vector<Addr>{1, 2, 3, 4}));
    EXPECT_EQ(setIntersect(a, b).sorted(), (std::vector<Addr>{2, 3}));
    EXPECT_EQ(setDifference(a, b).sorted(), (std::vector<Addr>{1}));
    EXPECT_EQ(setDifference(b, a).sorted(), (std::vector<Addr>{4}));
}

TEST(FlatSet, Intersects)
{
    const AddrSet a{1, 2};
    const AddrSet b{2, 9};
    const AddrSet c{5, 6};
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
    EXPECT_FALSE(AddrSet{}.intersects(a));
}

TEST(FlatSet, SubtractPicksCheaperDirection)
{
    AddrSet big;
    for (Addr k = 0; k < 100; ++k)
        big.insert(k);
    AddrSet small{1, 50, 99, 200};
    big.subtract(small);
    EXPECT_EQ(big.size(), 97u);
    small.subtract(big);
    EXPECT_EQ(small.sorted(), (std::vector<Addr>{1, 50, 99, 200}));
}

TEST(ShadowMemory, DefaultValueWithoutAllocation)
{
    ShadowMemory<std::uint8_t> shadow(7);
    EXPECT_EQ(shadow.get(0x1234), 7);
    EXPECT_EQ(shadow.allocatedPages(), 0u);
}

TEST(ShadowMemory, SetGetAcrossPages)
{
    ShadowMemory<std::uint32_t> shadow(0);
    shadow.set(5, 42);
    shadow.set((1 << 12) + 5, 43); // second page
    EXPECT_EQ(shadow.get(5), 42u);
    EXPECT_EQ(shadow.get((1 << 12) + 5), 43u);
    EXPECT_EQ(shadow.get(6), 0u);
    EXPECT_EQ(shadow.allocatedPages(), 2u);
}

TEST(ShadowMemory, RangeOperations)
{
    ShadowMemory<std::uint8_t> shadow(0);
    shadow.setRange(100, 50, 1);
    EXPECT_TRUE(shadow.rangeEquals(100, 50, 1));
    EXPECT_FALSE(shadow.rangeEquals(99, 2, 1));
    shadow.clear();
    EXPECT_EQ(shadow.get(120), 0);
}

TEST(SimHeap, AllocateAndFree)
{
    SimHeap heap(0x1000, 1024);
    const Addr a = heap.malloc(100);
    ASSERT_NE(a, kNoAddr);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_TRUE(heap.isAllocated(a));
    EXPECT_TRUE(heap.isAllocated(a + 99));
    EXPECT_FALSE(heap.isAllocated(a + 104)); // rounded to 104
    EXPECT_EQ(heap.free(a), 104u);
    EXPECT_FALSE(heap.isAllocated(a));
}

TEST(SimHeap, DoubleFreeReturnsZero)
{
    SimHeap heap(0, 1024);
    const Addr a = heap.malloc(16);
    EXPECT_GT(heap.free(a), 0u);
    EXPECT_EQ(heap.free(a), 0u);
    EXPECT_EQ(heap.free(0x500), 0u); // wild free
}

TEST(SimHeap, CoalescingAllowsBigReallocation)
{
    SimHeap heap(0, 1024);
    const Addr a = heap.malloc(256);
    const Addr b = heap.malloc(256);
    const Addr c = heap.malloc(256);
    ASSERT_NE(c, kNoAddr);
    heap.free(b);
    heap.free(a);
    heap.free(c);
    // All three coalesce back into one block covering the whole heap.
    EXPECT_NE(heap.malloc(1024), kNoAddr);
}

TEST(SimHeap, FirstFitReusesFreedBlocks)
{
    SimHeap heap(0, 1024);
    const Addr a = heap.malloc(64);
    heap.malloc(64);
    heap.free(a);
    EXPECT_EQ(heap.malloc(32), a); // hole reused first-fit
}

TEST(SimHeap, OutOfMemoryReturnsSentinel)
{
    SimHeap heap(0, 128);
    EXPECT_NE(heap.malloc(100), kNoAddr);
    EXPECT_EQ(heap.malloc(100), kNoAddr);
}

TEST(SimHeap, BytesInUseTracksAllocations)
{
    SimHeap heap(0, 4096);
    EXPECT_EQ(heap.bytesInUse(), 0u);
    const Addr a = heap.malloc(100);
    EXPECT_EQ(heap.bytesInUse(), 104u);
    heap.free(a);
    EXPECT_EQ(heap.bytesInUse(), 0u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(12345), b(12345), c(54321);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(10), 10u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000, 0.5, 0.05);
}

TEST(StatSet, AddGetMergeDump)
{
    StatSet s;
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    StatSet other;
    other.add("x", 10);
    other.add("y", 1);
    s.merge(other);
    EXPECT_EQ(s.get("x"), 15u);
    EXPECT_EQ(s.get("y"), 1u);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h;
    h.sample(1);
    h.sample(2);
    h.sample(3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.mean(), 2.0, 1e-9);
}

} // namespace
} // namespace bfly
