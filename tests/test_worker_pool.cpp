/**
 * @file
 * WorkerPool unit tests plus the parallel-pass determinism regression
 * suite: for every lifeguard, running the butterfly schedule over the
 * persistent pool must produce results identical to the sequential
 * schedule — the paper's "no synchronization on metadata" claim as an
 * executable check.
 */

#include <algorithm>
#include <atomic>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "common/rng.hpp"
#include "common/worker_pool.hpp"
#include "harness/session.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/defcheck.hpp"
#include "lifeguards/taintcheck.hpp"
#include "memmodel/interleaver.hpp"
#include "workloads/bugs.hpp"
#include "workloads/workload.hpp"

namespace bfly {
namespace {

// --------------------------------------------------------------------
// Pool mechanics.
// --------------------------------------------------------------------

TEST(WorkerPool, RunsEveryItemExactlyOnce)
{
    WorkerPool pool(4);
    const std::size_t n = 97;
    std::vector<std::atomic<int>> counts(n);
    pool.run(n, [&](std::size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "item " << i;
}

TEST(WorkerPool, BatchLargerThanWorkerCount)
{
    WorkerPool pool(2);
    const std::size_t n = 1000;
    std::atomic<std::uint64_t> sum{0};
    pool.run(n, [&](std::size_t i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(WorkerPool, ZeroCountIsANoOp)
{
    WorkerPool pool(3);
    bool ran = false;
    pool.run(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(WorkerPool, SingleWorkerPool)
{
    WorkerPool pool(1);
    std::atomic<int> count{0};
    pool.run(17, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 17);
}

TEST(WorkerPool, ReusedAcrossManyBatches)
{
    // Exercises the monotonic-ticket slack logic: a straggler finishing
    // its losing fetch-add from batch k must not consume an item of
    // batch k+1.
    WorkerPool pool(4);
    Rng rng(7);
    for (int round = 0; round < 500; ++round) {
        const std::size_t n = 1 + rng.below(13);
        std::vector<std::atomic<int>> counts(n);
        pool.run(n, [&](std::size_t i) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(counts[i].load(), 1)
                << "round " << round << " item " << i;
    }
}

TEST(WorkerPool, DefaultSizePicksHardwareConcurrency)
{
    WorkerPool pool;
    EXPECT_GE(pool.workers(), 1u);
}

// --------------------------------------------------------------------
// Determinism: pool-parallel passes == sequential passes, per lifeguard.
// --------------------------------------------------------------------

/** Error records as comparable tuples, sorted (parallel commit order of
 *  *distinct* events is nondeterministic; the set of them is not). */
std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int, std::uint16_t>>
sortedRecords(const ErrorLog &log)
{
    std::vector<std::tuple<ThreadId, std::uint64_t, Addr, int,
                           std::uint16_t>>
        out;
    out.reserve(log.size());
    for (const ErrorRecord &r : log.records())
        out.emplace_back(r.tid, r.index, r.addr, static_cast<int>(r.kind),
                         r.size);
    std::sort(out.begin(), out.end());
    return out;
}

Trace
mixTrace(std::uint64_t seed, Workload &w_out)
{
    WorkloadConfig wcfg;
    wcfg.numThreads = 4;
    wcfg.instrPerThread = 2000;
    wcfg.seed = seed;
    w_out = makeRandomMix(wcfg);
    Rng rng(seed * 977 + 5);
    return interleave(w_out.programs, InterleaveConfig{}, rng);
}

TEST(PoolDeterminism, AddrCheckMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {11u, 22u, 33u}) {
        Workload w;
        const Trace trace = mixTrace(seed, w);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 512);

        AddrCheckConfig cfg;
        cfg.heapBase = w.heapBase;
        cfg.heapLimit = w.heapLimit;

        ButterflyAddrCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ButterflyAddrCheck par(layout, cfg);
        WindowSchedule(true, &pool).run(layout, par);

        EXPECT_EQ(sortedRecords(seq.errors()), sortedRecords(par.errors()))
            << "seed " << seed;
        EXPECT_EQ(seq.eventsChecked(), par.eventsChecked());
        EXPECT_EQ(seq.sosNow().sorted(), par.sosNow().sorted());
    }
}

TEST(PoolDeterminism, TaintCheckMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        WorkloadConfig wcfg;
        wcfg.numThreads = 3;
        wcfg.instrPerThread = 600;
        wcfg.seed = seed;
        Workload w = makeTaintMix(wcfg);
        Rng bug_rng(seed ^ 0xf00d);
        injectBugs(w, BugKind::TaintedJump, 3, bug_rng);

        Rng rng(seed * 131 + 17);
        const Trace trace = interleave(w.programs, InterleaveConfig{}, rng);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 240);

        TaintCheckConfig cfg;
        ButterflyTaintCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ButterflyTaintCheck par(layout, cfg);
        WindowSchedule(true, &pool).run(layout, par);

        EXPECT_EQ(sortedRecords(seq.errors()), sortedRecords(par.errors()))
            << "seed " << seed;
        EXPECT_EQ(seq.checksResolved(), par.checksResolved());
        EXPECT_EQ(seq.sosNow().sorted(), par.sosNow().sorted());
    }
}

TEST(PoolDeterminism, DefCheckMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {101u, 102u, 103u}) {
        Workload w;
        const Trace trace = mixTrace(seed, w);
        const EpochLayout layout = EpochLayout::byGlobalSeq(trace, 512);

        DefCheckConfig cfg;
        cfg.heapBase = w.heapBase;
        cfg.heapLimit = w.heapLimit;

        ButterflyDefCheck seq(layout, cfg);
        WindowSchedule(false).run(layout, seq);

        WorkerPool pool(layout.numThreads());
        ButterflyDefCheck par(layout, cfg);
        WindowSchedule(true, &pool).run(layout, par);

        EXPECT_EQ(sortedRecords(seq.errors()), sortedRecords(par.errors()))
            << "seed " << seed;
    }
}

TEST(PoolDeterminism, SessionResultsIdenticalAcrossSeeds)
{
    // The full harness: SessionResult aggregates must be bit-identical
    // between the sequential schedule and the pool-parallel one.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        SessionConfig cfg;
        cfg.factory = makeRandomMix;
        cfg.workload.numThreads = 4;
        cfg.workload.instrPerThread = 3000;
        cfg.workload.seed = seed;
        cfg.epochSize = 256;

        cfg.parallelPasses = false;
        const SessionResult seq = runSession(cfg);
        cfg.parallelPasses = true;
        const SessionResult par = runSession(cfg);

        EXPECT_EQ(seq.butterflyErrorCount, par.butterflyErrorCount);
        EXPECT_EQ(seq.oracleErrorCount, par.oracleErrorCount);
        EXPECT_EQ(seq.accuracy.truePositives, par.accuracy.truePositives);
        EXPECT_EQ(seq.accuracy.falsePositives,
                  par.accuracy.falsePositives);
        EXPECT_EQ(seq.accuracy.falseNegatives,
                  par.accuracy.falseNegatives);
        EXPECT_EQ(seq.falsePositiveRate, par.falsePositiveRate);
        EXPECT_EQ(seq.perf.sequentialBaseline, par.perf.sequentialBaseline);
        EXPECT_EQ(seq.perf.butterfly.normalized,
                  par.perf.butterfly.normalized);
        EXPECT_EQ(seq.perf.timesliced.normalized,
                  par.perf.timesliced.normalized);
    }
}

} // namespace
} // namespace bfly
