/**
 * @file
 * Telemetry subsystem tests: registry concurrency, histogram bucket
 * boundaries, span nesting, ring wrap, and the exported JSON formats
 * (validated with a tiny built-in JSON syntax checker — no external
 * JSON dependency).
 *
 * Also the ISSUE's acceptance check: a telemetry-enabled runSession
 * must publish `bfly.session.*` metrics consistent with the returned
 * SessionResult, and the Chrome-trace export must be structurally
 * valid with monotonically consistent timestamps.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/session.hpp"
#include "telemetry/exporter.hpp"
#include "trace/log_buffer.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {
namespace {

using telemetry::MetricsRegistry;
using telemetry::RegistrySnapshot;
using telemetry::ResolvedEvent;
using telemetry::SpanTracer;

/** Fresh, enabled telemetry for every test; disabled again on exit. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setEnabled(true);
        telemetry::resetAll();
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
};

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON syntax validator. Accepts exactly the
// JSON grammar (objects, arrays, strings, numbers, true/false/null);
// rejects trailing garbage. Enough to guarantee chrome://tracing and
// any JSON tool will parse our exports.
// ---------------------------------------------------------------------

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: must be escaped
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i)
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    pos_ += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, ConcurrentCounterIncrements)
{
    auto &reg = telemetry::registry();
    const telemetry::MetricId id = reg.counter("bfly.test.concurrent");
    ASSERT_NE(id, telemetry::kNoMetric);

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t)
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                reg.add(id);
        });
    for (std::thread &th : pool)
        th.join();

    EXPECT_EQ(reg.value(id), kThreads * kPerThread);
    EXPECT_EQ(reg.snapshot().value("bfly.test.concurrent"),
              kThreads * kPerThread);
}

TEST_F(TelemetryTest, RegistrationIsIdempotentAndStable)
{
    auto &reg = telemetry::registry();
    const telemetry::MetricId a = reg.counter("bfly.test.same");
    const telemetry::MetricId b = reg.counter("bfly.test.same");
    EXPECT_EQ(a, b);
    // First kind wins: re-registering under another kind returns the
    // original id rather than a second metric.
    EXPECT_EQ(reg.gauge("bfly.test.same"), a);
}

TEST_F(TelemetryTest, GaugeLastWriteWins)
{
    auto &reg = telemetry::registry();
    const telemetry::MetricId id = reg.gauge("bfly.test.gauge");
    reg.set(id, 41);
    reg.set(id, 17);
    EXPECT_EQ(reg.value(id), 17u);
    reg.add(id, 3);
    EXPECT_EQ(reg.value(id), 20u);
}

TEST_F(TelemetryTest, HistogramBucketBoundaries)
{
    auto &reg = telemetry::registry();
    const telemetry::MetricId id = reg.histogram("bfly.test.hist");
    // Bucket b covers [2^b, 2^(b+1)); values <= 1 land in bucket 0.
    reg.observe(id, 1);
    reg.observe(id, 2);
    reg.observe(id, 3);
    reg.observe(id, 4);
    reg.observe(id, 8);

    const RegistrySnapshot snap = reg.snapshot();
    const auto *h = snap.histogram("bfly.test.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 5u);
    EXPECT_EQ(h->sum, 18u);
    EXPECT_EQ(h->min, 1u);
    EXPECT_EQ(h->max, 8u);
    EXPECT_DOUBLE_EQ(h->mean(), 18.0 / 5.0);
    EXPECT_EQ(h->buckets[0], 1u); // {1}
    EXPECT_EQ(h->buckets[1], 2u); // {2, 3}
    EXPECT_EQ(h->buckets[2], 1u); // {4}
    EXPECT_EQ(h->buckets[3], 1u); // {8}
    for (unsigned b = 4; b < telemetry::HistogramSnapshot::kBuckets; ++b)
        EXPECT_EQ(h->buckets[b], 0u) << "bucket " << b;
}

TEST_F(TelemetryTest, ClearZeroesValuesButKeepsIds)
{
    auto &reg = telemetry::registry();
    const telemetry::MetricId id = reg.counter("bfly.test.cleared");
    reg.add(id, 99);
    reg.clear();
    EXPECT_EQ(reg.value(id), 0u);
    reg.add(id, 2); // id still routes to the same (zeroed) cell
    EXPECT_EQ(reg.value(id), 2u);
    EXPECT_EQ(reg.counter("bfly.test.cleared"), id);
}

// ---------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, SpanNestingAndOrdering)
{
    auto &tr = telemetry::tracer();
    {
        telemetry::TraceSpan outer("test.outer");
        {
            telemetry::TraceSpan mid("test.mid", "depth", 1);
            telemetry::TraceSpan inner("test.inner");
        }
    }

    const std::vector<ResolvedEvent> events = tr.collect();
    ASSERT_EQ(events.size(), 3u);

    const ResolvedEvent *outer = nullptr, *mid = nullptr, *inner = nullptr;
    for (const ResolvedEvent &e : events) {
        if (e.name == "test.outer")
            outer = &e;
        else if (e.name == "test.mid")
            mid = &e;
        else if (e.name == "test.inner")
            inner = &e;
    }
    ASSERT_TRUE(outer && mid && inner);

    // Events are sorted by (pid, ts); all three sit on the wall clock.
    EXPECT_EQ(outer->pid, SpanTracer::kWallPid);
    EXPECT_LE(events[0].ts, events[1].ts);
    EXPECT_LE(events[1].ts, events[2].ts);

    // Strict nesting: inner within mid within outer.
    EXPECT_LE(outer->ts, mid->ts);
    EXPECT_LE(mid->ts, inner->ts);
    EXPECT_LE(inner->ts + inner->dur, mid->ts + mid->dur);
    EXPECT_LE(mid->ts + mid->dur, outer->ts + outer->dur);

    EXPECT_TRUE(mid->hasArg);
    EXPECT_EQ(mid->argName, "depth");
    EXPECT_EQ(mid->argValue, 1u);
    EXPECT_FALSE(outer->hasArg);
}

TEST_F(TelemetryTest, RingBufferWrapKeepsNewestAndCountsDrops)
{
    SpanTracer local(16); // smallest ring, to force wrap
    EXPECT_EQ(local.ringCapacity(), 16u);
    const std::uint32_t name = local.internName("test.wrap");

    constexpr std::uint64_t kPushed = 40;
    for (std::uint64_t i = 0; i < kPushed; ++i)
        local.complete(name, /*ts=*/i, /*dur=*/1, SpanTracer::kWallPid,
                       /*tid=*/3);

    const std::vector<ResolvedEvent> events = local.collect();
    ASSERT_EQ(events.size(), 16u);
    EXPECT_EQ(local.dropped(), kPushed - 16);
    // The survivors are the newest events, still in order.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].ts, kPushed - 16 + i);
        EXPECT_EQ(events[i].name, "test.wrap");
        EXPECT_EQ(events[i].tid, 3u);
    }

    local.clear();
    EXPECT_TRUE(local.collect().empty());
    EXPECT_EQ(local.dropped(), 0u);
}

TEST_F(TelemetryTest, RoundsRingCapacityToPowerOfTwo)
{
    SpanTracer local(100);
    EXPECT_EQ(local.ringCapacity(), 128u);
}

TEST_F(TelemetryTest, DisabledTelemetryRecordsNothing)
{
    telemetry::setEnabled(false);
    auto &tr = telemetry::tracer();
    {
        telemetry::TraceSpan span("test.disabled");
        tr.instant(tr.internName("test.instant"), SpanTracer::kWallPid, 0);
    }
    EXPECT_TRUE(tr.collect().empty());
    EXPECT_EQ(tr.dropped(), 0u);

    // Re-enabling makes the same call sites record again.
    telemetry::setEnabled(true);
    {
        telemetry::TraceSpan span("test.enabled");
    }
    EXPECT_EQ(tr.collect().size(), 1u);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, MetricsJsonIsValidAndNested)
{
    auto &reg = telemetry::registry();
    reg.add(reg.counter("bfly.test.nest.alpha"), 5);
    reg.set(reg.gauge("bfly.test.nest.beta"), 7);
    reg.observe(reg.histogram("bfly.test.nest.hist"), 12);
    // A name that is both a leaf and a prefix of deeper names.
    reg.add(reg.counter("bfly.test.nest"), 1);

    std::ostringstream os;
    telemetry::writeMetricsJson(os);
    const std::string json = os.str();

    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"schema\": \"bfly.telemetry.v1\""),
              std::string::npos);
    // Dot-nesting: "nest" appears as an object key under "test", with
    // the leaf/prefix conflict resolved via the "#value" suffix.
    EXPECT_NE(json.find("\"nest#value\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"alpha\": 5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"beta\": 7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

TEST_F(TelemetryTest, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(telemetry::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(telemetry::jsonEscape(std::string_view("\x01", 1)),
              "\\u0001");
}

TEST_F(TelemetryTest, ChromeTraceExportIsValidAndConsistent)
{
    auto &tr = telemetry::tracer();
    {
        telemetry::TraceSpan outer("test.export.outer");
        telemetry::TraceSpan inner("test.export.inner", "k", 9);
    }
    tr.instant(tr.internName("test.export.mark"), SpanTracer::kSimPid, 2,
               tr.internName("epoch"), 4);
    tr.complete(tr.internName("test.export.sim"), /*ts=*/100, /*dur=*/50,
                SpanTracer::kSimPid, 1);

    std::ostringstream os;
    telemetry::writeChromeTrace(os);
    const std::string json = os.str();

    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"wall-clock\""), std::string::npos);
    EXPECT_NE(json.find("\"simulated-pipeline\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\": 0"), std::string::npos);
    // Sim-domain events keep raw cycle timestamps.
    EXPECT_NE(json.find("\"ts\": 100, \"dur\": 50"), std::string::npos)
        << json;
    // Instant events carry a scope.
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"epoch\": 4}"), std::string::npos);

    // Monotonic consistency: collect() (the exporter's source) is
    // sorted by (pid, ts) and every complete event has ts+dur >= ts.
    const std::vector<ResolvedEvent> events = tr.collect();
    for (std::size_t i = 1; i < events.size(); ++i) {
        if (events[i - 1].pid == events[i].pid)
            EXPECT_LE(events[i - 1].ts, events[i].ts);
        else
            EXPECT_LT(events[i - 1].pid, events[i].pid);
    }
    for (const ResolvedEvent &e : events)
        EXPECT_GE(e.ts + e.dur, e.ts);
}

// ---------------------------------------------------------------------
// End-to-end: telemetry-enabled monitoring session (acceptance check)
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, SessionMetricsMatchSessionResult)
{
    SessionConfig cfg;
    cfg.factory = makeRandomMix;
    cfg.workload.numThreads = 2;
    cfg.workload.instrPerThread = 4000;
    cfg.workload.phaseEvents = 900;
    cfg.workload.warmupNops = 1000;
    cfg.epochSize = 512;

    const SessionResult r = runSession(cfg);

    const RegistrySnapshot snap = telemetry::registry().snapshot();
    EXPECT_EQ(snap.value("bfly.session.runs"), 1u);
    EXPECT_EQ(snap.value("bfly.session.instructions"), r.instructions);
    EXPECT_EQ(snap.value("bfly.session.memory_accesses"),
              r.memoryAccesses);
    EXPECT_EQ(snap.value("bfly.session.epochs"), r.epochs);
    EXPECT_EQ(snap.value("bfly.session.threads"), 2u);
    EXPECT_EQ(snap.value("bfly.session.butterfly_errors"),
              r.butterflyErrorCount);
    EXPECT_EQ(snap.value("bfly.session.oracle_errors"),
              r.oracleErrorCount);
    EXPECT_EQ(snap.value("bfly.session.false_positives"),
              r.accuracy.falsePositives);
    EXPECT_EQ(snap.value("bfly.session.false_negatives"),
              r.accuracy.falseNegatives);

    // The window scheduler saw every epoch exactly once.
    EXPECT_EQ(snap.value("bfly.window.epochs_finalized"), r.epochs);
    EXPECT_GE(snap.value("bfly.window.pass1_blocks"), r.epochs);
    EXPECT_GE(snap.value("bfly.addrcheck.events_checked"),
              r.memoryAccesses);

    // Trace side: one session root span, one window.epoch step span per
    // epoch, and simulated-pipeline spans for every epoch's pass 1.
    std::size_t session_spans = 0, epoch_spans = 0, sim_pass1 = 0;
    const std::vector<ResolvedEvent> events =
        telemetry::tracer().collect();
    for (const ResolvedEvent &e : events) {
        if (e.name == "session")
            ++session_spans;
        else if (e.name == "window.epoch")
            ++epoch_spans;
        else if (e.name == "sim.pass1")
            ++sim_pass1;
    }
    EXPECT_EQ(session_spans, 1u);
    EXPECT_EQ(epoch_spans, r.epochs);
    EXPECT_EQ(sim_pass1, 2u * r.epochs); // one per (thread, epoch)
    EXPECT_EQ(telemetry::tracer().dropped(), 0u);

    // And the full export round-trips as valid JSON.
    std::ostringstream metrics_os, trace_os;
    telemetry::writeMetricsJson(metrics_os);
    telemetry::writeChromeTrace(trace_os);
    EXPECT_TRUE(JsonValidator(metrics_os.str()).valid());
    EXPECT_TRUE(JsonValidator(trace_os.str()).valid());
}

TEST_F(TelemetryTest, LogBufferPublishesStallsAndHeartbeats)
{
    LogBuffer buf(32, 16); // 2 records
    EXPECT_TRUE(buf.produce());
    EXPECT_TRUE(buf.produce());
    EXPECT_FALSE(buf.produce()); // full -> stall
    buf.heartbeat();             // occupancy 2 at the epoch marker
    EXPECT_TRUE(buf.consume());
    EXPECT_TRUE(buf.consume());
    EXPECT_FALSE(buf.consume()); // empty -> idle
    EXPECT_EQ(buf.heartbeats(), 1u);

    const RegistrySnapshot snap = telemetry::registry().snapshot();
    EXPECT_EQ(snap.value("bfly.logbuffer.produced"), 2u);
    EXPECT_EQ(snap.value("bfly.logbuffer.consumed"), 2u);
    EXPECT_EQ(snap.value("bfly.logbuffer.producer_stalls"), 1u);
    EXPECT_EQ(snap.value("bfly.logbuffer.consumer_idles"), 1u);
    EXPECT_EQ(snap.value("bfly.logbuffer.heartbeats"), 1u);
    const auto *occ = snap.histogram("bfly.logbuffer.occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->count, 1u);
    EXPECT_EQ(occ->max, 2u);

    // The stall and heartbeat leave instant events with the occupancy.
    std::size_t stalls = 0, beats = 0;
    for (const ResolvedEvent &e : telemetry::tracer().collect()) {
        if (e.name == "logbuffer.stall") {
            ++stalls;
            EXPECT_EQ(e.ph, 'i');
            EXPECT_EQ(e.argName, "occupancy");
            EXPECT_EQ(e.argValue, 2u);
        } else if (e.name == "logbuffer.heartbeat") {
            ++beats;
            EXPECT_EQ(e.argValue, 2u);
        }
    }
    EXPECT_EQ(stalls, 1u);
    EXPECT_EQ(beats, 1u);
}

// ---------------------------------------------------------------------
// StatSet compatibility shim (now backed by interned IDs)
// ---------------------------------------------------------------------

TEST_F(TelemetryTest, StatSetShimPreservesSemantics)
{
    StatSet a;
    a.add("x", 2);
    a.add("x", 3);
    a.set("y", 7);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 7u);
    EXPECT_EQ(a.get("missing"), 0u);

    StatSet b;
    b.add("x", 10);
    b.add("z", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("z"), 1u);

    const auto all = a.all();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all.at("x"), 15u);
    EXPECT_EQ(all.at("y"), 7u);
    EXPECT_EQ(all.at("z"), 1u);
}

} // namespace
} // namespace bfly
