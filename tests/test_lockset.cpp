/**
 * @file
 * Tests for LOCKSET, the Eraser-style data-race lifeguard: candidate
 * lockset intersection, the initialization (exclusive-phase) exemption,
 * lock state carried across epoch boundaries, wing conservatism, and
 * the zero-false-negative property against the sequential oracle.
 */

#include <gtest/gtest.h>

#include "butterfly/window.hpp"
#include "common/rng.hpp"
#include "lifeguards/lockset.hpp"
#include "tests/helpers.hpp"

namespace bfly {
namespace {

constexpr Addr kVar = 0x1000;  ///< a monitored shared variable
constexpr Addr kVar2 = 0x1040; ///< a second, unrelated variable
constexpr Addr kLockA = 0x20000;
constexpr Addr kLockB = 0x20008;

struct Run
{
    Trace trace;
    EpochLayout layout;
    std::unique_ptr<ButterflyLockSet> check;
};

Run
runLockSet(Trace trace, const LockSetConfig &cfg = {})
{
    Run run{std::move(trace), EpochLayout::fromHeartbeats(Trace{}), {}};
    run.layout = EpochLayout::fromHeartbeats(run.trace);
    run.check = std::make_unique<ButterflyLockSet>(run.layout, cfg);
    WindowSchedule().run(run.layout, *run.check);
    return run;
}

/** Keys of the reported races (records carry key-canonical addresses). */
std::vector<Addr>
racedKeys(const Run &run, const LockSetConfig &cfg = {})
{
    std::vector<Addr> keys;
    for (const ErrorRecord &r : run.check->errors().records()) {
        EXPECT_EQ(r.kind, ErrorKind::DataRace);
        keys.push_back(r.addr / cfg.granularity);
    }
    return keys;
}

TEST(LockSet, WellLockedSharingIsClean)
{
    auto run = runLockSet(test::traceOf({
        {Event::lock(kLockA), Event::write(kVar, 8),
         Event::unlock(kLockA)},
        {Event::lock(kLockA), Event::write(kVar, 8),
         Event::unlock(kLockA)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(LockSet, UnsynchronizedSharedWriteFlaggedOnce)
{
    auto run = runLockSet(test::traceOf({
        {Event::write(kVar, 8), Event::write(kVar, 8)},
        {Event::write(kVar, 8)},
    }));
    const auto keys = racedKeys(run);
    ASSERT_EQ(keys.size(), 1u); // one report per variable, not per access
    EXPECT_EQ(keys[0], kVar / 8);
}

TEST(LockSet, ExclusivePhaseIsExempt)
{
    // A single thread may initialize without holding any lock.
    auto run = runLockSet(test::traceOf({
        {Event::write(kVar, 8), Event::write(kVar, 8),
         Event::write(kVar2, 8)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(LockSet, DisjointLocksRace)
{
    // Both sides are locked — but under different locks, so the
    // candidate intersection empties and the race is real.
    auto run = runLockSet(test::traceOf({
        {Event::lock(kLockA), Event::write(kVar, 8),
         Event::unlock(kLockA)},
        {Event::lock(kLockB), Event::write(kVar, 8),
         Event::unlock(kLockB)},
    }));
    EXPECT_EQ(racedKeys(run), std::vector<Addr>{kVar / 8});
}

TEST(LockSet, ReadOnlySharingNeedsNoLocks)
{
    // The init write is two epochs before the readers arrive, so it is
    // truly ordered (still exclusive); the later sharing is read-only.
    // Within one epoch the write and the reads would be unordered and a
    // conservative may-race report would be legitimate.
    auto run = runLockSet(test::traceOf({
        {Event::write(kVar, 8), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::nop()},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::read(kVar, 8),
         Event::read(kVar, 8)},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::read(kVar, 8)},
    }));
    // Candidate lockset empties, but no write after sharing started.
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(LockSet, AccessAfterUnlockRaces)
{
    auto run = runLockSet(test::traceOf({
        {Event::lock(kLockA), Event::write(kVar, 8),
         Event::unlock(kLockA), Event::write(kVar, 8)},
        {Event::lock(kLockA), Event::write(kVar, 8),
         Event::unlock(kLockA)},
    }));
    EXPECT_EQ(racedKeys(run), std::vector<Addr>{kVar / 8});
}

TEST(LockSet, LockHeldAcrossEpochBoundary)
{
    // The lock is acquired in epoch 0 and the protected access happens
    // in epoch 2: the entry lock state must flow through finalize.
    auto run = runLockSet(test::traceOf({
        {Event::lock(kLockA), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::write(kVar, 8),
         Event::unlock(kLockA)},
        {Event::nop(), Event::heartbeat(), Event::nop(),
         Event::heartbeat(), Event::lock(kLockA), Event::write(kVar, 8),
         Event::unlock(kLockA)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
}

TEST(LockSet, MonitoredWindowFiltersVariables)
{
    LockSetConfig cfg;
    cfg.heapBase = 0x1000;
    cfg.heapLimit = 0x2000;
    auto run = runLockSet(test::traceOf({
                              {Event::write(0x100, 8),
                               Event::write(kVar, 8)},
                              {Event::write(0x100, 8),
                               Event::write(kVar, 8)},
                          }),
                          cfg);
    // 0x100 is outside the monitored window; only kVar races.
    EXPECT_EQ(racedKeys(run, cfg), std::vector<Addr>{kVar / 8});
}

TEST(LockSet, NestedLocksIntersect)
{
    // t0 holds {A,B}; t1 holds {B}: intersection {B} stays nonempty.
    auto run = runLockSet(test::traceOf({
        {Event::lock(kLockA), Event::lock(kLockB), Event::write(kVar, 8),
         Event::unlock(kLockB), Event::unlock(kLockA)},
        {Event::lock(kLockB), Event::write(kVar, 8),
         Event::unlock(kLockB)},
    }));
    EXPECT_TRUE(run.check->errors().empty());
}

/**
 * Zero-false-negative property: on small random lock-sprinkled traces,
 * every race the sequential oracle reports (over a random, per-thread
 * order-preserving interleaving) is also flagged by the butterfly run.
 * FNs are compared at variable-key granularity — the butterfly run may
 * attribute the race to a different access of the same variable.
 */
TEST(LockSet, NoFalseNegativesOnRandomTraces)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(seed * 0x9e3779b9 + 7);
        const unsigned threads = 2 + rng.below(2);
        const unsigned epochs = 2 + rng.below(3);

        std::vector<std::vector<Event>> programs(threads);
        for (unsigned t = 0; t < threads; ++t) {
            for (unsigned l = 0; l < epochs; ++l) {
                const unsigned n = rng.below(6);
                for (unsigned i = 0; i < n; ++i) {
                    const Addr var = kVar + 8 * rng.below(3);
                    switch (rng.below(5)) {
                      case 0:
                        programs[t].push_back(Event::lock(
                            kLockA + 8 * rng.below(2)));
                        break;
                      case 1:
                        programs[t].push_back(Event::unlock(
                            kLockA + 8 * rng.below(2)));
                        break;
                      case 2:
                        programs[t].push_back(Event::read(var, 8));
                        break;
                      default:
                        programs[t].push_back(Event::write(var, 8));
                        break;
                    }
                }
                if (l + 1 < epochs)
                    programs[t].push_back(Event::heartbeat());
            }
        }

        Trace trace = test::traceOf(programs);
        // Random interleaving consistent with program order: merge the
        // threads by repeatedly advancing a random nonempty cursor.
        std::vector<std::size_t> cursor(threads, 0);
        std::uint64_t gseq = 1;
        for (;;) {
            std::vector<unsigned> live;
            for (unsigned t = 0; t < threads; ++t)
                if (cursor[t] < trace.threads[t].events.size())
                    live.push_back(t);
            if (live.empty())
                break;
            const unsigned t = live[rng.below(live.size())];
            trace.threads[t].events[cursor[t]++].gseq = gseq++;
        }

        const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
        ButterflyLockSet check(layout, {});
        WindowSchedule().run(layout, check);

        LockSetOracle oracle({});
        oracle.runOnTrace(trace);

        for (const ErrorRecord &want : oracle.errors().records()) {
            bool covered = false;
            for (const ErrorRecord &got : check.errors().records())
                covered |= got.addr == want.addr;
            EXPECT_TRUE(covered)
                << "seed " << seed << ": oracle race on key addr "
                << want.addr << " missed by butterfly";
        }
    }
}

} // namespace
} // namespace bfly
