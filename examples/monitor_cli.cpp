/**
 * @file
 * monitor_cli: drive the whole monitoring stack from the command line.
 *
 *   monitor_cli [--workload NAME] [--threads N] [--epoch H]
 *               [--instr N] [--model sc|tso] [--seed S] [--verbose]
 *               [--telemetry OUT.json] [--trace OUT.trace.json]
 *
 * Runs the chosen workload under the chosen memory model, monitors it
 * with butterfly ADDRCHECK, prices all three monitoring modes with the
 * timing model, and prints a session report. `--workload list` prints
 * the available workloads.
 *
 * `--lifeguard lockset|addrleak` switches to the race / address-leak
 * lifeguards instead: fuzzer-generated traces (--instr cases, --seed)
 * are monitored by the butterfly checker and replayed through the exact
 * sequential oracle, and the aggregate accuracy (flags, true/false
 * positives, false negatives) is printed. Exit is nonzero on any false
 * negative — the butterfly guarantee is "no error missed".
 *
 * `--batch` selects the lifeguard's batched (columnar SoA) pass-1
 * kernels. Reports are bit-identical to the default scalar kernels;
 * only the per-block execution strategy changes.
 *
 * `--elide` runs the static elision pre-pass (src/staticpass/) first:
 * sites proven AlwaysPrivate log SiteSummary counts instead of their
 * Read/Write events. The oracle still replays the full trace, so the
 * printed accuracy section doubles as the zero-false-negative check,
 * and the elision section reports the plan fingerprint, site classes,
 * events elided and log bytes saved.
 *
 * `--telemetry` writes the metrics-registry snapshot as nested JSON;
 * `--trace` writes a Chrome trace-event file of the session (load it in
 * chrome://tracing or https://ui.perfetto.dev — pid 0 is wall-clock,
 * pid 1 the simulated butterfly pipeline in cycles). Either flag turns
 * telemetry recording on for the run.
 *
 * Examples:
 *   ./build/examples/monitor_cli --workload ocean --threads 8
 *   ./build/examples/monitor_cli --workload barnes --epoch 16384 --model tso
 *   ./build/examples/monitor_cli --workload fft --trace fft.trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "butterfly/window.hpp"
#include "fuzz/trace_fuzzer.hpp"
#include "harness/session.hpp"
#include "lifeguards/addrleak.hpp"
#include "lifeguards/lockset.hpp"
#include "telemetry/exporter.hpp"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload NAME] [--threads N] [--epoch H]\n"
        "          [--instr N] [--model sc|tso] [--seed S] [--verbose]\n"
        "          [--lifeguard addrcheck|lockset|addrleak] [--batch]\n"
        "          [--elide] [--telemetry OUT.json] [--trace OUT.trace.json]\n"
        "       %s --workload list\n",
        argv0, argv0);
    std::exit(2);
}

/**
 * Fuzzer-driven accuracy session for the LOCKSET / ADDRLEAK lifeguards:
 * monitor @p cases generated traces with the butterfly checker, replay
 * each through the exact sequential oracle, and aggregate
 * compareToOracle. The butterfly run may over-report (bounded FPs) but
 * must never miss an oracle error.
 */
int
runFuzzedLifeguard(const std::string &lifeguard, std::size_t cases,
                   std::uint64_t seed)
{
    using namespace bfly;

    fuzz::FuzzerConfig fcfg;
    fcfg.seed = seed;
    fuzz::TraceFuzzer fuzzer(fcfg);

    std::size_t events = 0, oracle_errors = 0, flags = 0;
    std::size_t tp = 0, fp = 0, fn = 0;
    for (std::size_t i = 0; i < cases; ++i) {
        const fuzz::FuzzCase c = fuzzer.generate(seed * 1000003 + i);
        const Trace trace = c.materialize();
        const EpochLayout layout =
            EpochLayout::byGlobalSeq(trace, c.globalH);
        events += trace.instructionCount();

        AccuracyReport acc;
        std::size_t oracle_n = 0, flagged_n = 0;
        if (lifeguard == "lockset") {
            LockSetConfig cfg;
            cfg.heapBase = c.heapBase;
            cfg.heapLimit = c.heapLimit;
            ButterflyLockSet driver(layout.numThreads(), cfg);
            WindowSchedule(false).run(layout, driver);
            LockSetOracle oracle(cfg);
            oracle.runOnTrace(trace);
            acc = compareToOracle(driver.errors(), oracle.errors(),
                                  cfg.granularity);
            oracle_n = oracle.errors().records().size();
            flagged_n = driver.errors().records().size();
        } else {
            AddrLeakConfig cfg;
            cfg.heapBase = c.heapBase;
            cfg.heapLimit = c.heapLimit;
            ButterflyAddrLeak driver(layout.numThreads(), cfg);
            WindowSchedule(false).run(layout, driver);
            AddrLeakOracle oracle(cfg);
            oracle.runOnTrace(trace);
            acc = compareToOracle(driver.errors(), oracle.errors(),
                                  cfg.granularity);
            oracle_n = oracle.errors().records().size();
            flagged_n = driver.errors().records().size();
        }

        oracle_errors += oracle_n;
        flags += flagged_n;
        tp += acc.truePositives;
        fp += acc.falsePositives;
        fn += acc.falseNegatives;
    }

    std::printf("monitoring %zu fuzzed traces with butterfly %s\n", cases,
                lifeguard == "lockset" ? "LOCKSET" : "ADDRLEAK");
    std::printf("\n-- accuracy (butterfly vs sequential oracle) ------\n");
    std::printf("events            %zu\n", events);
    std::printf("oracle errors     %zu\n", oracle_errors);
    std::printf("butterfly flags   %zu\n", flags);
    std::printf("true positives    %zu\n", tp);
    std::printf("false positives   %zu\n", fp);
    std::printf("false negatives   %zu  (provably zero)\n", fn);
    return fn == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfly;

    std::string workload = "ocean";
    unsigned threads = 4;
    std::size_t epoch = 8192;
    std::size_t instr = 200000;
    MemModel model = MemModel::SequentiallyConsistent;
    std::uint64_t seed = 42;
    bool verbose = false;
    bool batch = false;
    bool elide = false;
    std::string lifeguard = "addrcheck";
    std::string telemetry_out;
    std::string trace_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--epoch") {
            epoch = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--instr") {
            instr = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--model") {
            const std::string m = next();
            if (m == "sc")
                model = MemModel::SequentiallyConsistent;
            else if (m == "tso")
                model = MemModel::TSO;
            else
                usage(argv[0]);
        } else if (arg == "--lifeguard") {
            lifeguard = next();
            if (lifeguard != "addrcheck" && lifeguard != "lockset" &&
                lifeguard != "addrleak")
                usage(argv[0]);
        } else if (arg == "--telemetry") {
            telemetry_out = next();
        } else if (arg == "--trace") {
            trace_out = next();
        } else if (arg == "--batch") {
            batch = true;
        } else if (arg == "--elide") {
            elide = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            usage(argv[0]);
        }
    }

    if (lifeguard != "addrcheck") {
        // Fuzzer-driven accuracy session; --instr caps the case count
        // (its workload meaning, instructions/thread, does not apply).
        const std::size_t cases =
            instr == 200000 ? 20 : std::max<std::size_t>(instr, 1);
        return runFuzzedLifeguard(lifeguard, cases, seed);
    }

    if (workload == "list") {
        for (const auto &[name, factory] : paperWorkloads())
            std::printf("%s\n", name.c_str());
        std::printf("random-mix\ntaint-mix\n");
        return 0;
    }

    WorkloadFactory factory = nullptr;
    for (const auto &[name, fn] : paperWorkloads()) {
        if (name == workload)
            factory = fn;
    }
    if (workload == "random-mix")
        factory = makeRandomMix;
    if (workload == "taint-mix")
        factory = makeTaintMix;
    if (!factory) {
        std::fprintf(stderr, "unknown workload '%s' (try --workload "
                             "list)\n",
                     workload.c_str());
        return 2;
    }

    SessionConfig cfg;
    cfg.factory = factory;
    cfg.workload.numThreads = threads;
    cfg.workload.instrPerThread = instr;
    cfg.workload.phaseEvents = 9000;
    cfg.workload.warmupNops = 3 * epoch;
    cfg.workload.seed = seed;
    cfg.epochSize = epoch;
    cfg.model = model;
    cfg.interleaveSeed = seed * 7919 + 1;
    cfg.batchMode = batch;
    cfg.elide = elide;

    std::printf("monitoring %s: %u threads, h=%zu, %s, ~%zu "
                "events/thread\n",
                workload.c_str(), threads, epoch,
                model == MemModel::TSO ? "TSO" : "SC", instr);

    const bool want_telemetry = !telemetry_out.empty() || !trace_out.empty();
    if (want_telemetry) {
        telemetry::setEnabled(true);
        telemetry::resetAll();
    }

    const SessionResult r = runSession(cfg);

    if (!telemetry_out.empty()) {
        if (telemetry::dumpMetricsJson(telemetry_out))
            std::printf("wrote metrics JSON to %s\n", telemetry_out.c_str());
        else
            std::fprintf(stderr, "failed to write %s\n",
                         telemetry_out.c_str());
    }
    if (!trace_out.empty()) {
        if (telemetry::dumpChromeTrace(trace_out))
            std::printf("wrote Chrome trace to %s (open in "
                        "chrome://tracing or ui.perfetto.dev)\n",
                        trace_out.c_str());
        else
            std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
    }

    std::printf("\n-- trace ----------------------------------------\n");
    std::printf("instructions      %zu\n", r.instructions);
    std::printf("memory accesses   %zu\n", r.memoryAccesses);
    std::printf("epochs            %zu\n", r.epochs);

    if (elide) {
        std::printf("\n-- static elision --------------------------------\n");
        std::printf("plan fingerprint  %016llx\n",
                    static_cast<unsigned long long>(r.planFingerprint));
        std::printf("sites             %zu (%zu always-private, %zu "
                    "provably-untainted, %zu never-freed, %zu "
                    "must-monitor)\n",
                    r.siteClasses.sites, r.siteClasses.byClass[3],
                    r.siteClasses.byClass[2], r.siteClasses.byClass[1],
                    r.siteClasses.byClass[0]);
        std::printf("events elided     %llu of %llu (%.1f%%), %llu "
                    "summaries\n",
                    static_cast<unsigned long long>(r.elision.elidedEvents),
                    static_cast<unsigned long long>(r.elision.inputEvents),
                    100.0 * r.elision.elidedFraction(),
                    static_cast<unsigned long long>(
                        r.elision.summaryEvents));
        std::printf("log bytes         %zu -> %zu (%.1f%% saved)\n",
                    r.encodedBytesFull, r.encodedBytesMonitored,
                    r.encodedBytesFull
                        ? 100.0 *
                              (1.0 - static_cast<double>(
                                         r.encodedBytesMonitored) /
                                         r.encodedBytesFull)
                        : 0.0);
    }

    std::printf("\n-- accuracy (butterfly ADDRCHECK vs oracle) ------\n");
    std::printf("oracle errors     %zu\n", r.oracleErrorCount);
    std::printf("butterfly flags   %zu\n", r.butterflyErrorCount);
    std::printf("true positives    %zu\n", r.accuracy.truePositives);
    std::printf("false positives   %zu  (%.5f%% of accesses)\n",
                r.accuracy.falsePositives, 100.0 * r.falsePositiveRate);
    std::printf("false negatives   %zu  (provably zero)\n",
                r.accuracy.falseNegatives);

    std::printf("\n-- performance (normalized to sequential "
                "unmonitored) --\n");
    std::printf("timesliced        %.2fx\n",
                r.perf.timesliced.normalized);
    std::printf("butterfly         %.2fx\n",
                r.perf.butterfly.normalized);
    std::printf("parallel no-mon   %.2fx\n",
                r.perf.parallelNoMonitor.normalized);

    if (verbose) {
        std::printf("\n-- detail ----------------------------------\n");
        std::printf("sequential baseline  %llu cycles\n",
                    static_cast<unsigned long long>(
                        r.perf.sequentialBaseline));
        std::printf("butterfly app stalls %llu cycles\n",
                    static_cast<unsigned long long>(
                        r.perf.butterfly.timing.appStallCycles));
        std::printf("barrier wait         %llu cycles\n",
                    static_cast<unsigned long long>(
                        r.perf.butterfly.timing.barrierWaitCycles));
        for (const auto &[name, value] : r.perf.cacheStats.all())
            std::printf("%-20s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    return r.accuracy.falseNegatives == 0 ? 0 : 1;
}
