/**
 * @file
 * Epoch tuning: the paper's central knob, end to end.
 *
 * Runs the OCEAN-like workload (the epoch-size-sensitive one) at four
 * epoch sizes and prints the two quantities Section 7.2 trades off:
 * normalized execution time (per-epoch overheads amortize with larger
 * epochs) and the false-positive rate (more unordered concurrency per
 * window means more conservative flags). Somewhere in between sits an
 * epoch size with both high performance and high accuracy.
 *
 * Build & run:  ./build/examples/epoch_tuning   (takes ~a minute)
 */

#include <cstdio>

#include "harness/session.hpp"

int
main()
{
    using namespace bfly;

    std::printf("tuning the epoch size h on the ocean workload "
                "(4 threads)...\n\n");
    std::printf("%10s %8s %12s %16s %14s\n", "h (instr)", "epochs",
                "butterfly", "FP %% of accesses", "false negatives");

    for (const std::size_t h : {512ul, 2048ul, 8192ul, 32768ul}) {
        SessionConfig cfg;
        cfg.factory = makeOcean;
        cfg.workload.numThreads = 4;
        cfg.workload.instrPerThread = 200000;
        cfg.workload.phaseEvents = 9000;
        cfg.workload.warmupNops = 40000;
        cfg.epochSize = h;

        const SessionResult r = runSession(cfg);
        std::printf("%10zu %8zu %12.2f %15.5f%% %14zu\n", h, r.epochs,
                    r.perf.butterfly.normalized,
                    100.0 * r.falsePositiveRate,
                    r.accuracy.falseNegatives);
    }

    std::printf("\nsmaller epochs: more barriers and SOS updates per "
                "instruction (slower),\nbut less unordered concurrency "
                "per window (fewer false positives).\nfalse negatives "
                "are zero at every setting — the knob only trades\n"
                "performance against precision, never against "
                "soundness.\n");
    return 0;
}
