/**
 * @file
 * Epoch tuning: the paper's central knob, end to end.
 *
 * Runs the OCEAN-like workload (the epoch-size-sensitive one) at four
 * epoch sizes and prints the two quantities Section 7.2 trades off:
 * normalized execution time (per-epoch overheads amortize with larger
 * epochs) and the false-positive rate (more unordered concurrency per
 * window means more conservative flags). Somewhere in between sits an
 * epoch size with both high performance and high accuracy.
 *
 * After the sweep, one extra session runs with telemetry enabled to
 * show the epoch timeline behind those numbers: per-epoch pass-1 /
 * pass-2 / barrier cycles from the simulated-pipeline trace, plus an
 * `epoch_tuning.trace.json` Chrome trace to load in ui.perfetto.dev.
 *
 * Build & run:  ./build/examples/epoch_tuning   (takes ~a minute)
 */

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <map>

#include "harness/session.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/trace_span.hpp"

int
main()
{
    using namespace bfly;

    std::printf("tuning the epoch size h on the ocean workload "
                "(4 threads)...\n\n");
    std::printf("%10s %8s %12s %16s %14s\n", "h (instr)", "epochs",
                "butterfly", "FP %% of accesses", "false negatives");

    for (const std::size_t h : {512ul, 2048ul, 8192ul, 32768ul}) {
        SessionConfig cfg;
        cfg.factory = makeOcean;
        cfg.workload.numThreads = 4;
        cfg.workload.instrPerThread = 200000;
        cfg.workload.phaseEvents = 9000;
        cfg.workload.warmupNops = 40000;
        cfg.epochSize = h;

        const SessionResult r = runSession(cfg);
        std::printf("%10zu %8zu %12.2f %15.5f%% %14zu\n", h, r.epochs,
                    r.perf.butterfly.normalized,
                    100.0 * r.falsePositiveRate,
                    r.accuracy.falseNegatives);
    }

    std::printf("\nsmaller epochs: more barriers and SOS updates per "
                "instruction (slower),\nbut less unordered concurrency "
                "per window (fewer false positives).\nfalse negatives "
                "are zero at every setting — the knob only trades\n"
                "performance against precision, never against "
                "soundness.\n");

    // -- epoch timeline demo -------------------------------------------
    // Re-run the middle setting with telemetry on and fold the
    // simulated-pipeline spans (pid 1, cycle domain) into a per-epoch
    // cost breakdown — the timeline Figure 2 of the paper sketches.
    std::printf("\nepoch timeline at h=8192 (simulated cycles, "
                "telemetry-derived):\n\n");
    telemetry::setEnabled(true);
    telemetry::resetAll();
    {
        SessionConfig cfg;
        cfg.factory = makeOcean;
        cfg.workload.numThreads = 4;
        cfg.workload.instrPerThread = 200000;
        cfg.workload.phaseEvents = 9000;
        cfg.workload.warmupNops = 40000;
        cfg.epochSize = 8192;
        (void)runSession(cfg);
    }

    struct EpochCost {
        std::uint64_t pass1 = 0, pass2 = 0, barrier = 0, sos = 0;
    };
    std::map<std::uint64_t, EpochCost> timeline;
    for (const auto &ev : telemetry::tracer().collect()) {
        if (ev.pid != telemetry::SpanTracer::kSimPid || !ev.hasArg)
            continue;
        EpochCost &c = timeline[ev.argValue];
        if (ev.name == "sim.pass1")
            c.pass1 = std::max<std::uint64_t>(c.pass1, ev.dur);
        else if (ev.name == "sim.pass2")
            c.pass2 = std::max<std::uint64_t>(c.pass2, ev.dur);
        else if (ev.name == "sim.barrier")
            c.barrier += ev.dur;
        else if (ev.name == "sim.sos_update")
            c.sos += ev.dur;
    }

    std::printf("%8s %14s %14s %12s %12s\n", "epoch", "pass1 (max)",
                "pass2 (max)", "barriers", "sos");
    std::size_t printed = 0;
    for (const auto &[epoch, c] : timeline) {
        if (printed++ == 8) {
            std::printf("%8s ... (%zu epochs total)\n", "",
                        timeline.size());
            break;
        }
        std::printf("%8llu %14llu %14llu %12llu %12llu\n",
                    static_cast<unsigned long long>(epoch),
                    static_cast<unsigned long long>(c.pass1),
                    static_cast<unsigned long long>(c.pass2),
                    static_cast<unsigned long long>(c.barrier),
                    static_cast<unsigned long long>(c.sos));
    }

    if (telemetry::dumpChromeTrace("epoch_tuning.trace.json"))
        std::printf("\nwrote epoch_tuning.trace.json — load it in "
                    "chrome://tracing or ui.perfetto.dev to see the\n"
                    "pass-1/pass-2/barrier pipeline per lifeguard "
                    "thread.\n");
    return 0;
}
