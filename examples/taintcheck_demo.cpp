/**
 * @file
 * TAINTCHECK demo: inheritance through the wings and the two
 * termination conditions of the Check algorithm (paper Section 6.2).
 *
 * Scenario 1 replays the paper's Figure 2 impossible path: under the
 * sequential-consistency termination condition the per-thread counters
 * refuse the zig-zag ordering and `b` stays clean; under the relaxed
 * condition (required for weaker memory models, where a thread's later
 * stores can become visible first) the same code must be flagged.
 *
 * Scenario 2 shows taint crossing three epochs through the two-phase
 * resolution (Lemma 6.3), and scenario 3 the SOS carrying taint into
 * the distant future (Figure 10's subtlety).
 *
 * Build & run:  ./build/examples/taintcheck_demo
 */

#include <cstdio>

#include "butterfly/window.hpp"
#include "lifeguards/taintcheck.hpp"
#include "tests/helpers.hpp"

namespace {

bfly::Event
assign8(bfly::Addr dst, bfly::Addr src)
{
    bfly::Event e = bfly::Event::assign(dst, src);
    e.size = 8;
    return e;
}

std::size_t
countFindings(const bfly::Trace &trace, bfly::TaintTermination term)
{
    using namespace bfly;
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    TaintCheckConfig cfg;
    cfg.granularity = 8;
    ButterflyTaintCheck lifeguard(layout, cfg, term);
    WindowSchedule().run(layout, lifeguard);
    for (const auto &rec : lifeguard.errors().records())
        std::printf("    %s\n", rec.toString().c_str());
    return lifeguard.errors().size();
}

} // namespace

int
main()
{
    using namespace bfly;
    using test::traceOf;

    const Addr va = 0x100, vb = 0x108, vc = 0x110; // a, b, c
    const Addr vx = 0x118, vy = 0x120, vs = 0x128;

    // --- Scenario 1: Figure 2's impossible path ----------------------
    // thread 0:  (i)  a := c
    // thread 1:  (1)  b := a   (2) taint c   then uses b
    // Tainting b needs (2) -> (i) -> (1), which violates thread 1's own
    // program order under sequential consistency.
    auto fig2 = [&] {
        return traceOf({
            {assign8(va, vc)},
            {assign8(vb, va), Event::taintSrc(vc, 8), Event::use(vb)},
        });
    };
    std::printf("=== Fig. 2 impossible path ===\n");
    std::printf("  SC termination condition:\n");
    const std::size_t sc = countFindings(
        fig2(), TaintTermination::SequentialConsistency);
    std::printf("    -> %zu findings (the zig-zag is rejected)\n", sc);
    std::printf("  relaxed termination condition:\n");
    const std::size_t relaxed =
        countFindings(fig2(), TaintTermination::Relaxed);
    std::printf("    -> %zu findings (a relaxed machine could realize "
                "the ordering)\n\n",
                relaxed);

    // --- Scenario 2: taint across three epochs (Lemma 6.3) -----------
    std::printf("=== three-epoch inheritance (two-phase resolution) "
                "===\n");
    countFindings(
        traceOf({
            {Event::nop(), Event::heartbeat(), assign8(vy, vs),
             Event::heartbeat(), Event::nop()},
            {Event::taintSrc(vs, 8), Event::heartbeat(), Event::nop(),
             Event::heartbeat(), assign8(vx, vy), Event::use(vx)},
        }),
        TaintTermination::SequentialConsistency);
    std::printf("  (taint: epoch 0 source -> epoch 1 copy in the wings "
                "-> epoch 2 use)\n\n");

    // --- Scenario 3: the SOS carries taint to the distant future -----
    std::printf("=== SOS propagation (Fig. 10) ===\n");
    countFindings(
        traceOf({
            {assign8(vb, va), Event::heartbeat(), Event::nop(),
             Event::heartbeat(), Event::nop(), Event::heartbeat(),
             assign8(vx, vb), Event::use(vx)},
            {Event::taintSrc(va, 8), Event::heartbeat(), Event::nop(),
             Event::heartbeat(), Event::nop(), Event::heartbeat(),
             Event::nop()},
        }),
        TaintTermination::SequentialConsistency);
    std::printf("  (the epoch-0 taint of b, concluded from the wings, "
                "was committed to the\n   SOS in time for the epoch-3 "
                "butterfly to see it)\n");
    return 0;
}
