/**
 * @file
 * Differential fuzzing CLI: generate adversarial traces, cross-check
 * every lifeguard in every scheduling mode against the sequential
 * oracles, and minimize + persist any invariant violation as a .bfz
 * repro.
 *
 *   fuzz_cli [--seed S|from-run-id] [--traces N] [--budget-sec T]
 *            [--threads K] [--no-tso] [--corpus DIR] [--json FILE]
 *            [--telemetry FILE] [--replay DIR] [--export-cases N]
 *            [--elision]
 *
 * --elision enables the elision-soundness axis: every case (generated
 * or replayed from the .bfz corpus) is additionally run with a static
 * ElisionPlan applied, and the elided run must still subsume the
 * sequential oracles computed on the full trace. Failures are
 * minimized and promoted into the corpus like any other violation.
 *
 * Exit status: 0 if every case satisfied every invariant, 1 on the
 * first violation (after the minimized repro has been written and its
 * path printed), 2 on usage errors.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/differential_runner.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/trace_fuzzer.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/telemetry.hpp"

using namespace bfly;
using namespace bfly::fuzz;

namespace {

struct Options
{
    std::uint64_t seed = 1;
    std::size_t traces = 500;     ///< 0 = unbounded (budget-limited)
    double budgetSec = 0;         ///< 0 = unbounded (trace-limited)
    unsigned maxThreads = 4;
    bool allowTso = true;
    std::string corpusDir = "fuzz-corpus";
    std::string jsonPath;
    std::string telemetryPath;
    std::string replayDir;        ///< replay mode instead of fuzzing
    std::size_t exportCases = 0;  ///< export first N cases, no checking
    bool injectFault = false;     ///< self-test: simulate a lifeguard bug
    bool elision = false;         ///< also check elision soundness
};

void
usage()
{
    std::cerr
        << "usage: fuzz_cli [options]\n"
        << "  --seed S|from-run-id  fuzzer seed (from-run-id derives it\n"
        << "                        from $GITHUB_RUN_ID, else the clock)\n"
        << "  --traces N            stop after N cases (default 500)\n"
        << "  --budget-sec T        stop after T seconds\n"
        << "  --threads K           max threads per case (default 4)\n"
        << "  --no-tso              sequentially consistent cases only\n"
        << "  --corpus DIR          where minimized repros are written\n"
        << "  --json FILE           write a JSON summary\n"
        << "  --telemetry FILE      write a Chrome-trace span dump\n"
        << "  --replay DIR          re-check every .bfz repro in DIR\n"
        << "  --export-cases N      serialize the first N generated\n"
        << "                        cases into --corpus and exit\n"
        << "  --inject-fault        self-test: corrupt ADDRCHECK's\n"
        << "                        report so the violation, minimizer\n"
        << "                        and repro paths demonstrably fire\n"
        << "  --elision             also apply a static ElisionPlan per\n"
        << "                        case and require the elided run to\n"
        << "                        subsume the full-trace oracles\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "from-run-id") == 0) {
                if (const char *run = std::getenv("GITHUB_RUN_ID"))
                    opt.seed = std::strtoull(run, nullptr, 10);
                else
                    opt.seed = static_cast<std::uint64_t>(
                        std::chrono::system_clock::now()
                            .time_since_epoch()
                            .count());
                if (opt.seed == 0)
                    opt.seed = 1;
            } else {
                opt.seed = std::strtoull(v, nullptr, 0);
            }
        } else if (a == "--traces") {
            const char *v = next();
            if (!v)
                return false;
            opt.traces = std::strtoull(v, nullptr, 10);
        } else if (a == "--budget-sec") {
            const char *v = next();
            if (!v)
                return false;
            opt.budgetSec = std::strtod(v, nullptr);
        } else if (a == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            opt.maxThreads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--no-tso") {
            opt.allowTso = false;
        } else if (a == "--corpus") {
            const char *v = next();
            if (!v)
                return false;
            opt.corpusDir = v;
        } else if (a == "--json") {
            const char *v = next();
            if (!v)
                return false;
            opt.jsonPath = v;
        } else if (a == "--telemetry") {
            const char *v = next();
            if (!v)
                return false;
            opt.telemetryPath = v;
            telemetry::setEnabled(true);
        } else if (a == "--replay") {
            const char *v = next();
            if (!v)
                return false;
            opt.replayDir = v;
        } else if (a == "--export-cases") {
            const char *v = next();
            if (!v)
                return false;
            opt.exportCases = std::strtoull(v, nullptr, 10);
        } else if (a == "--inject-fault") {
            opt.injectFault = true;
        } else if (a == "--elision") {
            opt.elision = true;
        } else {
            std::cerr << "fuzz_cli: unknown option " << a << "\n";
            return false;
        }
    }
    return true;
}

/** Rolling tallies across the whole run. */
struct Summary
{
    std::uint64_t seed = 0;
    std::size_t cases = 0;
    std::size_t events = 0;
    std::size_t oracleErrors = 0;
    std::size_t falsePositives = 0;
    std::size_t violations = 0;
    std::size_t elidedEvents = 0;  ///< --elision: events elided
    std::size_t summaryEvents = 0; ///< --elision: summaries emitted
    double elapsedSec = 0;
    std::string failingRepro; ///< path of the minimized repro, if any
    std::string firstViolation;

    void
    writeJson(std::ostream &os) const
    {
        os << "{\n"
           << "  \"seed\": " << seed << ",\n"
           << "  \"cases\": " << cases << ",\n"
           << "  \"events\": " << events << ",\n"
           << "  \"oracle_errors\": " << oracleErrors << ",\n"
           << "  \"false_positives\": " << falsePositives << ",\n"
           << "  \"violations\": " << violations << ",\n"
           << "  \"elided_events\": " << elidedEvents << ",\n"
           << "  \"summary_events\": " << summaryEvents << ",\n"
           << "  \"elapsed_sec\": " << elapsedSec << ",\n"
           << "  \"failing_repro\": \"" << failingRepro << "\",\n"
           << "  \"first_violation\": \"" << firstViolation << "\"\n"
           << "}\n";
    }
};

void
writeOutputs(const Options &opt, const Summary &summary)
{
    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        summary.writeJson(out);
    }
    if (!opt.telemetryPath.empty()) {
        std::ofstream out(opt.telemetryPath);
        telemetry::writeChromeTrace(out);
    }
}

/** Minimize @p failing, persist the repro, and report. @return repro
 *  path (empty if it could not be written). */
std::string
persistFailure(const FuzzCase &failing, const DifferentialRunner &runner,
               const std::string &corpus_dir)
{
    TraceMinimizer minimizer(runner);
    const TraceMinimizer::Result min = minimizer.minimize(failing);
    const FuzzCase &repro = min.reproduced ? min.minimized : failing;

    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);
    const std::string path =
        (std::filesystem::path(corpus_dir) / reproFileName(repro))
            .string();
    if (!saveRepro(repro, path)) {
        std::cerr << "fuzz_cli: failed to write repro to " << path
                  << "\n";
        return {};
    }
    std::cerr << "fuzz_cli: minimized " << min.fromEvents << " -> "
              << min.toEvents << " events (" << min.probes
              << " probes)\n"
              << "fuzz_cli: repro written to " << path << "\n";
    return path;
}

int
replayCorpus(const Options &opt)
{
    RunnerConfig rcfg;
    rcfg.checkElision = opt.elision;
    const DifferentialRunner runner(rcfg);
    Summary summary;
    summary.seed = opt.seed;
    const auto t0 = std::chrono::steady_clock::now();

    const std::vector<std::string> files = listCorpus(opt.replayDir);
    if (files.empty()) {
        std::cerr << "fuzz_cli: no .bfz repros under " << opt.replayDir
                  << "\n";
        return 2;
    }
    int status = 0;
    for (const std::string &path : files) {
        FuzzCase c;
        try {
            c = loadRepro(path);
        } catch (const std::exception &e) {
            std::cerr << "fuzz_cli: " << path << ": " << e.what()
                      << "\n";
            status = 2;
            continue;
        }
        const CaseOutcome outcome = runner.run(c);
        ++summary.cases;
        summary.events += outcome.events;
        summary.oracleErrors += outcome.oracleErrors;
        summary.falsePositives += outcome.falsePositives;
        summary.violations += outcome.violations.size();
        summary.elidedEvents += outcome.elidedEvents;
        summary.summaryEvents += outcome.summaryEvents;
        if (!outcome.clean()) {
            std::cerr << "fuzz_cli: REPLAY FAILURE " << path << ": "
                      << outcome.violations.front().toString() << "\n";
            if (summary.firstViolation.empty())
                summary.firstViolation =
                    outcome.violations.front().toString();
            // Promote the (re-)minimized failure into the corpus so the
            // repro reflects the axis that actually fired.
            summary.failingRepro =
                persistFailure(c, runner, opt.corpusDir);
            if (summary.failingRepro.empty())
                summary.failingRepro = path;
            status = 1;
        } else {
            std::cout << "fuzz_cli: replay ok " << path << " ("
                      << outcome.events << " events";
            if (opt.elision)
                std::cout << ", " << outcome.elidedEvents << " elided";
            std::cout << ")\n";
        }
    }
    summary.elapsedSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    writeOutputs(opt, summary);
    std::cout << "fuzz_cli: replayed " << summary.cases << " repros, "
              << summary.violations << " violations\n";
    return status;
}

int
exportCases(const Options &opt)
{
    TraceFuzzer fuzzer({opt.seed, opt.maxThreads, 240, opt.allowTso});
    std::error_code ec;
    std::filesystem::create_directories(opt.corpusDir, ec);
    for (std::size_t i = 0; i < opt.exportCases; ++i) {
        const FuzzCase c = fuzzer.next();
        const std::string path =
            (std::filesystem::path(opt.corpusDir) / reproFileName(c))
                .string();
        if (!saveRepro(c, path)) {
            std::cerr << "fuzz_cli: failed to write " << path << "\n";
            return 2;
        }
        std::cout << "fuzz_cli: exported " << path << " ("
                  << c.totalEvents() << " events)\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    if (opt.traces == 0 && opt.budgetSec <= 0) {
        std::cerr << "fuzz_cli: need --traces or --budget-sec\n";
        return 2;
    }
    if (!opt.replayDir.empty())
        return replayCorpus(opt);
    if (opt.exportCases > 0)
        return exportCases(opt);

    FuzzerConfig fcfg;
    fcfg.seed = opt.seed;
    fcfg.maxThreads = opt.maxThreads;
    fcfg.allowTso = opt.allowTso;
    TraceFuzzer fuzzer(fcfg);
    RunnerConfig rcfg;
    rcfg.checkElision = opt.elision;
    if (opt.injectFault) {
        rcfg.fault.enabled = true;
        rcfg.fault.target = Lifeguard::AddrCheck;
        rcfg.fault.dropKind = ErrorKind::UnallocatedAccess;
        rcfg.fault.modeMask = 0x2; // parallel mode only
    }
    const DifferentialRunner runner(rcfg);

    Summary summary;
    summary.seed = opt.seed;
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::cout << "fuzz_cli: seed=" << opt.seed
              << " traces=" << opt.traces
              << " budget-sec=" << opt.budgetSec << "\n";

    int status = 0;
    while ((opt.traces == 0 || summary.cases < opt.traces) &&
           (opt.budgetSec <= 0 || elapsed() < opt.budgetSec)) {
        const FuzzCase c = fuzzer.next();
        const CaseOutcome outcome = runner.run(c);
        ++summary.cases;
        summary.events += outcome.events;
        summary.oracleErrors += outcome.oracleErrors;
        summary.falsePositives += outcome.falsePositives;
        summary.violations += outcome.violations.size();
        summary.elidedEvents += outcome.elidedEvents;
        summary.summaryEvents += outcome.summaryEvents;

        if (!outcome.clean()) {
            summary.firstViolation =
                outcome.violations.front().toString();
            std::cerr << "fuzz_cli: VIOLATION in case " << c.caseId
                      << " (" << c.scenario
                      << "): " << summary.firstViolation << "\n";
            summary.failingRepro =
                persistFailure(c, runner, opt.corpusDir);
            status = 1;
            break;
        }
        if (summary.cases % 100 == 0)
            std::cout << "fuzz_cli: " << summary.cases << " cases, "
                      << summary.events << " events, "
                      << summary.oracleErrors << " oracle errors, "
                      << summary.falsePositives << " FPs, 0 violations\n";
    }

    summary.elapsedSec = elapsed();
    writeOutputs(opt, summary);

    std::cout << "fuzz_cli: done: " << summary.cases << " cases, "
              << summary.events << " events in " << summary.elapsedSec
              << "s; " << summary.violations << " violations\n";
    if (opt.elision)
        std::cout << "fuzz_cli: elision: " << summary.elidedEvents
                  << " events elided into " << summary.summaryEvents
                  << " summaries"
                  << (status == 0 ? ", oracle subsumption held on every case"
                                  : "")
                  << "\n";
    if (status != 0 && !summary.failingRepro.empty())
        std::cout << "fuzz_cli: repro: " << summary.failingRepro << "\n";
    return status;
}
