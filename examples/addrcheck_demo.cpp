/**
 * @file
 * ADDRCHECK demo: the paper's Figure 9 scenarios, run for real.
 *
 * Recreates the two interleavings Figure 9 contrasts:
 *   - thread 1 allocates `a` while thread 2 accesses it in an adjacent
 *     epoch: *potentially concurrent*, flagged (a false positive if the
 *     actual order was safe — the price of not tracking inter-thread
 *     dependences);
 *   - thread 3 allocates `b` in isolation and uses it itself: safe,
 *     not flagged, even though the allocation is not yet in the SOS.
 *
 * Then shows the epoch-distance rule: once an allocation is two epochs
 * old it enters the Strongly Ordered State and any thread may touch it
 * silently.
 *
 * Build & run:  ./build/examples/addrcheck_demo
 */

#include <cstdio>

#include "butterfly/window.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "tests/helpers.hpp" // traceOf: embedded-heartbeat trace builder

namespace {

void
runScenario(const char *title, bfly::Trace trace,
            const bfly::AddrCheckConfig &cfg)
{
    using namespace bfly;
    std::printf("--- %s ---\n", title);
    const EpochLayout layout = EpochLayout::fromHeartbeats(trace);
    ButterflyAddrCheck lifeguard(layout, cfg);
    WindowSchedule().run(layout, lifeguard);
    if (lifeguard.errors().empty()) {
        std::printf("  no findings (safe / isolated)\n\n");
        return;
    }
    for (const auto &rec : lifeguard.errors().records())
        std::printf("  flagged: %s\n", rec.toString().c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace bfly;
    using test::traceOf;

    AddrCheckConfig cfg;
    cfg.heapBase = 0x100;
    cfg.heapLimit = 0x10000;

    const Addr a = 0x100, b = 0x200;

    // Figure 9, threads 1 & 2: allocation of `a` in epoch j, access by
    // another thread in epoch j+1 — potentially concurrent, flagged.
    runScenario("Fig. 9: concurrent allocation and access (flagged)",
                traceOf({
                    {Event::alloc(a, 8), Event::heartbeat(),
                     Event::nop()},
                    {Event::nop(), Event::heartbeat(),
                     Event::read(a, 8)},
                }),
                cfg);

    // Figure 9, thread 3: isolated allocation, own access next epoch.
    runScenario("Fig. 9: isolated allocation (safe)",
                traceOf({
                    {Event::alloc(b, 8), Event::heartbeat(),
                     Event::read(b, 8)},
                    {Event::nop(), Event::heartbeat(), Event::nop()},
                }),
                cfg);

    // Two epochs of distance: the allocation has reached the SOS and
    // any thread may access it without a flag.
    runScenario("epoch distance 2: allocation visible via the SOS",
                traceOf({
                    {Event::alloc(a, 8), Event::heartbeat(), Event::nop(),
                     Event::heartbeat(), Event::nop()},
                    {Event::nop(), Event::heartbeat(), Event::nop(),
                     Event::heartbeat(), Event::read(a, 8)},
                }),
                cfg);

    // A genuine double free — flagged under every interleaving.
    runScenario("double free (true positive)",
                traceOf({
                    {Event::alloc(a, 8), Event::freeOf(a, 8),
                     Event::freeOf(a, 8)},
                }),
                cfg);

    std::printf("The first scenario is the trade-off the paper "
                "quantifies in Fig. 13:\nconcurrency the analysis "
                "cannot order is flagged conservatively, so larger\n"
                "epochs (more unordered concurrency) mean more false "
                "positives but lower\nper-epoch overheads.\n");
    return 0;
}
