/**
 * @file
 * Quickstart: monitor a tiny hand-written two-thread program with the
 * butterfly ADDRCHECK lifeguard and compare against the exact oracle.
 *
 * Walks through the whole public API surface in ~80 lines:
 *   1. write per-thread event programs,
 *   2. execute them under a memory model (here: TSO) to get a trace,
 *   3. slice the trace into heartbeat epochs,
 *   4. run the butterfly lifeguard with the two-pass window schedule,
 *   5. diff against the ground-truth oracle.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "butterfly/window.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "memmodel/interleaver.hpp"

int
main()
{
    using namespace bfly;

    // 1. Two threads: thread 0 allocates, writes and later frees a
    //    buffer; thread 1 reads it — once racily (same epoch window as
    //    the free) and once after it was freed for sure (a real bug).
    std::vector<std::vector<Event>> programs(2);
    const Addr buf = 0x1000;

    programs[0].push_back(Event::alloc(buf, 64));
    programs[0].push_back(Event::write(buf, 8));
    programs[0].push_back(Event::barrier());
    // Init spacer: give the allocation two epochs to reach the SOS
    // before other threads touch it (real programs' init phases dwarf
    // an epoch; without this the early reads are warm-up FPs).
    for (int i = 0; i < 2000; ++i)
        programs[0].push_back(Event::nop());
    programs[0].push_back(Event::barrier());
    for (int i = 0; i < 2000; ++i)
        programs[0].push_back(Event::nop()); // long quiet phase
    programs[0].push_back(Event::freeOf(buf, 64));
    for (int i = 0; i < 2000; ++i)
        programs[0].push_back(Event::nop());

    programs[1].push_back(Event::barrier());
    for (int i = 0; i < 2000; ++i)
        programs[1].push_back(Event::nop());
    programs[1].push_back(Event::barrier());
    for (int i = 0; i < 1000; ++i)
        programs[1].push_back(Event::read(buf, 8)); // safe: far from free
    for (int i = 0; i < 3000; ++i)
        programs[1].push_back(Event::nop());
    programs[1].push_back(Event::read(buf, 8)); // bug: use after free

    // 2. Execute under TSO with a seeded scheduler.
    Rng rng(2024);
    InterleaveConfig icfg;
    icfg.model = MemModel::TSO;
    Trace trace = interleave(programs, icfg, rng);

    // 3. Heartbeats every ~500 events of global progress.
    EpochLayout layout = EpochLayout::byGlobalSeq(trace, 500 * 2);
    std::printf("trace: %zu events in %zu epochs\n",
                trace.instructionCount(), layout.numEpochs());

    // 4. Butterfly ADDRCHECK over the per-thread streams. The lifeguard
    //    never sees the inter-thread ordering — only the epochs.
    AddrCheckConfig acfg;
    acfg.heapBase = 0x1000;
    acfg.heapLimit = 0x2000;
    ButterflyAddrCheck lifeguard(layout, acfg);
    WindowSchedule().run(layout, lifeguard);

    // 5. Ground truth and the accuracy diff.
    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);

    std::printf("\nbutterfly findings (%zu):\n",
                lifeguard.errors().size());
    std::size_t shown = 0;
    for (const auto &rec : lifeguard.errors().records()) {
        if (shown++ == 5) {
            std::printf("  ...\n");
            break;
        }
        std::printf("  %s\n", rec.toString().c_str());
    }

    std::printf("\noracle findings (%zu):\n", oracle.errors().size());
    for (const auto &rec : oracle.errors().records())
        std::printf("  %s\n", rec.toString().c_str());

    const AccuracyReport acc = compareToOracle(
        lifeguard.errors(), oracle.errors(), acfg.granularity);
    std::printf("\ntrue positives:  %zu\n", acc.truePositives);
    std::printf("false positives: %zu (safe events flagged: the price "
                "of unordered windows)\n",
                acc.falsePositives);
    std::printf("false negatives: %zu (provably zero — Theorem 6.1)\n",
                acc.falseNegatives);
    return acc.falseNegatives == 0 ? 0 : 1;
}
