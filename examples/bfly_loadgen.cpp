/**
 * @file
 * bfly_loadgen: conformance + load driver for the monitoring service.
 *
 *   bfly_loadgen [--unix PATH | --tcp PORT] --sessions N --traces M
 *                [--seed S] [--chunk-bytes B] [--json FILE] [--quiet]
 *                [--adaptive] [--chaos --budget-sec T]
 *
 * Replays TraceFuzzer cases across N concurrent client connections,
 * cycling all six lifeguards. Every remote report is checked
 * bit-for-bit (error records, SOS addresses, dataflow fingerprint)
 * against an in-process reference run of the same trace; any divergence
 * is a conformance failure. When no endpoint is given, an in-process
 * MonitorServer is spun up on a private Unix socket, so the tool is
 * self-contained for CI smoke runs.
 *
 * --adaptive (in-process server only) turns on the server's online
 * epoch-sizing ladder *and* the deterministic force-cycle policy, which
 * re-slices every session through epoch widths 1,2,4,8,... — at least
 * three h-changes per session. The server advertises the realized
 * slicing in EpochHint frames; the local reference is then rebuilt over
 * exactly those boundaries (EpochLayout::coalescedFromHeartbeats), so
 * every report must still be bit-identical. Any divergence at an
 * adaptation point is a conformance failure.
 *
 * --chaos turns the run into a time-budgeted soak: workers keep issuing
 * sessions until --budget-sec expires, and each iteration randomly
 * picks a well-behaved conformance run, a conformance run whose trace
 * carries clock-skewed heartbeat markers (extra/duplicate markers in one
 * thread; the local reference is computed over the *same* skewed trace,
 * so bit-identity must still hold), a mid-stream client kill (raw
 * socket, SessionOpen + a dangling LogChunk, then an abrupt close with
 * no TraceEnd), connect/disconnect churn, a budget hog (a session that
 * parks megabytes of decoded events with no TraceEnd, pressuring the
 * shard byte budget while peers run conformance cases), or a TraceEnd
 * flood (one valid chunk, then dozens of out-of-sequence TraceEnd
 * frames the server must Ignore). The server must shed the abusive
 * sessions without perturbing any concurrent conformance run. Chaos
 * mode shrinks the in-process server's budget so hogs genuinely bite,
 * and samples its own RSS to expose steady-state memory growth.
 *
 * Emits a JSON throughput/latency summary (stdout and optionally
 * --json FILE); session latency is also recorded into the telemetry
 * registry ("loadgen.session.latency_us").
 *
 * Exit status: 0 on full conformance, 1 on any mismatch or failed
 * session, 2 on usage errors.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fuzz/trace_fuzzer.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/log_codec.hpp"

using namespace bfly;
using namespace bfly::service;

namespace {

struct Options
{
    std::string unixPath;
    bool tcp = false;
    std::uint16_t tcpPort = 0;
    std::size_t sessions = 4;
    std::size_t traces = 50;
    std::uint64_t seed = 1;
    std::size_t chunkBytes = 32 * 1024;
    std::string jsonPath;
    bool quiet = false;
    bool chaos = false;
    std::uint64_t budgetSec = 30;
    std::size_t shards = 1;  ///< in-process server only
    bool adaptive = false;   ///< in-process server only
};

struct Tally
{
    std::atomic<std::uint64_t> traces{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> busyRetries{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> partials{0};
    /** Encoded log bytes shipped across all conformance sessions. */
    std::atomic<std::uint64_t> logBytes{0};
    // adaptive: epoch-width changes observed across all EpochHint spans
    std::atomic<std::uint64_t> hChanges{0};
    // chaos-only counters
    std::atomic<std::uint64_t> kills{0};
    std::atomic<std::uint64_t> churns{0};
    std::atomic<std::uint64_t> skews{0};
    std::atomic<std::uint64_t> hogs{0};
    std::atomic<std::uint64_t> floods{0};
    /** Sessions refused with RejectCode::Overload — the shed rung doing
     *  its job under chaos pressure, not a conformance failure. */
    std::atomic<std::uint64_t> sheds{0};
    /** Highest shard count any SessionAccept reported (0 = none seen). */
    std::atomic<std::uint64_t> serverShards{0};

    void
    noteServerShards(std::uint64_t n)
    {
        std::uint64_t cur = serverShards.load(std::memory_order_relaxed);
        while (n > cur && !serverShards.compare_exchange_weak(
                              cur, n, std::memory_order_relaxed))
            ;
    }
};

void
usage(std::ostream &out)
{
    out << "usage: bfly_loadgen [options]\n"
        << "  --unix PATH      connect to a Unix-domain socket\n"
        << "  --tcp PORT       connect to loopback TCP\n"
        << "                   (neither: in-process server is started)\n"
        << "  --sessions N     concurrent client connections (default 4)\n"
        << "  --shards N       reactor shards for the in-process server\n"
        << "  --traces M       total fuzzer traces to replay (default 50)\n"
        << "  --seed S|from-run-id  fuzzer seed (from-run-id derives\n"
        << "                   it from $GITHUB_RUN_ID, else the clock)\n"
        << "  --chunk-bytes B  log bytes per LogChunk (default 32768)\n"
        << "  --json FILE      also write the JSON summary to FILE\n"
        << "  --quiet          only print the JSON summary\n"
        << "  --adaptive       in-process server: adaptive epoch sizing\n"
        << "                   with the force-cycle policy; references\n"
        << "                   are rebuilt over the advertised slicing\n"
        << "  --chaos          soak mode: mix conformance runs with\n"
        << "                   client kills, connect churn, skewed\n"
        << "                   heartbeats, budget hogs and TraceEnd\n"
        << "                   floods until the budget expires\n"
        << "  --budget-sec T   chaos wall-clock budget (default 30)\n"
        << "  --help           print this help and exit 0\n";
}

SessionSpec
specFor(const fuzz::FuzzCase &fuzz_case, const Trace &trace,
        std::uint64_t trace_index)
{
    SessionSpec spec;
    spec.lifeguard = static_cast<std::uint8_t>(trace_index % 6);
    spec.memModel = fuzz_case.model == MemModel::TSO ? 1 : 0;
    spec.numThreads = static_cast<std::uint32_t>(trace.numThreads());
    const Lifeguard lg = static_cast<Lifeguard>(spec.lifeguard);
    spec.granularity =
        (lg == Lifeguard::TaintCheck || lg == Lifeguard::AddrLeak) ? 4 : 8;
    spec.heapBase = fuzz_case.heapBase;
    spec.heapLimit = fuzz_case.heapLimit;
    spec.globalH = fuzz_case.globalH;
    spec.windowEpochs = 4;
    return spec;
}

/** Approximate percentile of a log-scale histogram: upper bound of the
 *  bucket where the cumulative count crosses @p q. */
std::uint64_t
histPercentile(const telemetry::HistogramSnapshot &h, double q)
{
    if (h.count == 0)
        return 0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(h.count));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < telemetry::HistogramSnapshot::kBuckets; ++b) {
        seen += h.buckets[b];
        if (seen > target)
            return std::uint64_t{1} << (b + 1);
    }
    return h.max;
}

/**
 * Clock-skew @p marked in place: one randomly chosen thread gains 1-3
 * extra Heartbeat markers at random positions (possibly adjacent to an
 * existing marker, i.e. a duplicate, which yields an empty block). The
 * slicing stays well defined — markers are positional — it just shifts
 * that thread's tail blocks into later epochs relative to its peers.
 */
void
skewHeartbeats(Trace &marked, std::mt19937_64 &rng)
{
    if (marked.numThreads() == 0)
        return;
    auto &events = marked.threads[rng() % marked.numThreads()].events;
    const std::size_t extra = 1 + rng() % 3;
    for (std::size_t k = 0; k < extra; ++k) {
        const std::size_t pos = events.empty() ? 0 : rng() % events.size();
        events.insert(events.begin() + static_cast<std::ptrdiff_t>(pos),
                      Event::heartbeat());
    }
}

/**
 * One full conformance iteration: generate case @p index, run it
 * remotely, compare bit-for-bit against the local reference. With
 * @p skew, the heartbeat-marked trace is clock-skewed first and the
 * reference recomputed over the skewed trace's own marker slicing.
 * Against an adaptive server the reference is computed *after* the
 * remote run, over the realized slicing the server advertised in its
 * EpochHint frames — so bit-identity is demanded across every online
 * h-change, whatever the controller decided.
 */
void
runConformanceCase(const Options &opt, fuzz::TraceFuzzer &fuzzer,
                   std::uint64_t index, bool skew, std::mt19937_64 &rng,
                   Tally &tally, std::mutex &log_mutex,
                   telemetry::MetricsRegistry &reg,
                   telemetry::MetricId latency)
{
    const fuzz::FuzzCase fuzz_case =
        fuzzer.generate(opt.seed * 1000003 + index);
    const Trace trace = fuzz_case.materialize();
    const EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, fuzz_case.globalH);
    const SessionSpec spec = specFor(fuzz_case, trace, index);

    Trace marked = withHeartbeatMarkers(trace, layout);
    if (skew) {
        skewHeartbeats(marked, rng);
        tally.skews.fetch_add(1);
    }

    ClientConfig ccfg;
    ccfg.chunkBytes = opt.chunkBytes;
    MonitorClient client(ccfg);
    const bool connected = opt.tcp ? client.connectTcp(opt.tcpPort)
                                   : client.connectUnix(opt.unixPath);
    if (!connected) {
        tally.failures.fetch_add(1);
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "loadgen: case " << index << ": connect failed\n";
        return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const RunResult remote = client.run(spec, marked);
    const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    reg.observe(latency, static_cast<std::uint64_t>(dt.count()));

    tally.traces.fetch_add(1);
    tally.busyRetries.fetch_add(remote.busyRetries);
    tally.events.fetch_add(trace.instructionCount());
    tally.logBytes.fetch_add(remote.logBytesSent);
    tally.noteServerShards(remote.serverShards);

    if (!remote.ok) {
        if (remote.overloaded) {
            // Shed by the degradation ladder: retry-later semantics.
            tally.sheds.fetch_add(1);
            return;
        }
        tally.failures.fetch_add(1);
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "loadgen: case " << index << " ("
                  << fuzz_case.scenario << ", "
                  << lifeguardName(static_cast<Lifeguard>(spec.lifeguard))
                  << (skew ? ", skewed" : "")
                  << "): session failed: " << remote.error << "\n";
        return;
    }
    if (remote.summary.status == SummaryStatus::Partial)
        tally.partials.fetch_add(1);
    tally.hChanges.fetch_add(remote.hChanges());

    // Local reference over the realized slicing. An adaptive server
    // advertises its (possibly re-sliced) epoch spans; rebuilding the
    // coalesced layout from the same marked trace reproduces the exact
    // boundaries it analyzed. Without hints the source slicing stands.
    RemoteReport local;
    if (!remote.epochSpans.empty()) {
        std::uint64_t spanned = 0;
        for (const std::uint32_t k : remote.epochSpans)
            spanned += k;
        const EpochLayout source = EpochLayout::fromHeartbeats(marked);
        if (spanned != source.numEpochs()) {
            tally.mismatches.fetch_add(1);
            std::lock_guard<std::mutex> lock(log_mutex);
            std::cerr << "loadgen: case " << index
                      << ": EpochHint spans cover " << spanned
                      << " source epochs, trace has "
                      << source.numEpochs() << "\n";
            return;
        }
        local = analyzeReference(
            spec, marked,
            EpochLayout::coalescedFromHeartbeats(marked,
                                                 remote.epochSpans));
    } else if (skew) {
        // The skewed markers *are* the epoch structure now; the
        // reference must follow the same slicing the server saw.
        local = analyzeReference(spec, marked,
                                 EpochLayout::fromHeartbeats(marked));
    } else {
        local = analyzeReference(spec, trace, layout);
    }
    tally.records.fetch_add(local.records.size());

    // A Partial summary means the record/sos stream was cut (slow-client
    // truncation or the Partial degrade rung); the fingerprint still
    // witnesses the full analysis, so conformance falls back to it.
    const bool partial = remote.summary.status == SummaryStatus::Partial;
    const bool conformant =
        partial ? remote.report.fingerprint == local.fingerprint &&
                      remote.report.epochs == local.epochs
                : remote.report.identical(local);
    if (!conformant) {
        tally.mismatches.fetch_add(1);
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "loadgen: case " << index << " ("
                  << fuzz_case.scenario << ", "
                  << lifeguardName(static_cast<Lifeguard>(spec.lifeguard))
                  << (skew ? ", skewed" : "")
                  << "): REPORT MISMATCH remote{records="
                  << remote.report.records.size()
                  << " sos=" << remote.report.sos.size()
                  << " fp=" << remote.report.fingerprint
                  << " epochs=" << remote.report.epochs
                  << "} local{records=" << local.records.size()
                  << " sos=" << local.sos.size()
                  << " fp=" << local.fingerprint
                  << " epochs=" << local.epochs << "}\n";
    }
}

/** Raw client socket, bypassing MonitorClient, for misbehaving peers. */
int
rawConnect(const Options &opt)
{
    if (opt.tcp) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(opt.tcpPort);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
sendRaw(int fd, const std::vector<std::uint8_t> &bytes, std::size_t limit)
{
    std::size_t off = 0;
    const std::size_t n = std::min(bytes.size(), limit);
    while (off < n) {
        // MSG_NOSIGNAL: the server dropping an abusive peer mid-write
        // must surface as EPIPE here, not kill the whole soak.
        const ssize_t w =
            ::send(fd, bytes.data() + off, n - off, MSG_NOSIGNAL);
        if (w <= 0)
            return; // server already dropped us; that is fine
        off += static_cast<std::size_t>(w);
    }
}

/**
 * Mid-stream kill: open a session, stream a dangling LogChunk (and,
 * half the time, a truncated frame header on top), then close the
 * socket with no TraceEnd. The server must reap the session without
 * disturbing concurrent well-behaved ones.
 */
void
midStreamKill(const Options &opt, fuzz::TraceFuzzer &fuzzer,
              std::uint64_t index, std::mt19937_64 &rng, Tally &tally)
{
    const int fd = rawConnect(opt);
    if (fd < 0)
        return; // connect-refused under churn is not a conformance event
    const fuzz::FuzzCase fuzz_case =
        fuzzer.generate(opt.seed * 1000003 + index);
    const Trace trace = fuzz_case.materialize();
    const SessionSpec spec = specFor(fuzz_case, trace, index);

    sendRaw(fd, encodeFramed(FrameType::SessionOpen, encodeSessionOpen(spec)),
            SIZE_MAX);

    if (!trace.threads.empty()) {
        const std::vector<std::uint8_t> log =
            encodeEvents(trace.threads[0].events);
        ChunkHeader header;
        header.seq = 0;
        header.tid = trace.threads[0].tid;
        // A complete LogChunk frame whose log bytes stop mid-stream:
        // the per-thread decoder is left waiting on NeedMore forever.
        const std::vector<std::uint8_t> frame = encodeFramed(
            FrameType::LogChunk,
            encodeChunk(header, std::span<const std::uint8_t>(
                                    log.data(), log.size() / 2)));
        sendRaw(fd, frame, SIZE_MAX);
    }
    if (rng() % 2) {
        // Torn frame: a few header bytes of a frame that never arrives.
        const std::vector<std::uint8_t> torn =
            encodeFramed(FrameType::TraceEnd, encodeTraceEnd(1));
        sendRaw(fd, torn, 1 + rng() % 3);
    }
    ::close(fd);
    tally.kills.fetch_add(1);
}

/** Connect/disconnect churn: no session, maybe one Heartbeat frame. */
void
connectChurn(const Options &opt, std::mt19937_64 &rng, Tally &tally)
{
    const int fd = rawConnect(opt);
    if (fd < 0)
        return;
    if (rng() % 2)
        sendRaw(fd, encodeFramed(FrameType::Heartbeat, {}), SIZE_MAX);
    ::close(fd);
    tally.churns.fetch_add(1);
}

/**
 * Budget hog: a session that streams a few MiB of decoded events with
 * no heartbeat markers and no TraceEnd, so nothing can retire and the
 * bytes sit accounted against the shard budget. It holds that pressure
 * for a beat — long enough for concurrent workers' conformance runs to
 * cross the admission edge (Busy{GlobalBudget} rewinds, the adaptive
 * ladder's escalation) — then closes; the abort path must reclaim
 * every byte. The hog never nests a conformance run of its own: if
 * several hogs pinned the whole budget while each waited on a client
 * run, they would deadlock the soak.
 */
void
budgetExhaust(const Options &opt, fuzz::TraceFuzzer &fuzzer,
              std::uint64_t index, std::mt19937_64 &rng, Tally &tally)
{
    const int fd = rawConnect(opt);
    if (fd < 0)
        return;
    const fuzz::FuzzCase fuzz_case =
        fuzzer.generate(opt.seed * 1000003 + index);
    const Trace trace = fuzz_case.materialize();
    SessionSpec spec = specFor(fuzz_case, trace, index);
    spec.numThreads = std::max<std::uint32_t>(spec.numThreads, 1);

    sendRaw(fd, encodeFramed(FrameType::SessionOpen, encodeSessionOpen(spec)),
            SIZE_MAX);

    // Tile thread 0's log into ~2 MiB of decoded events (each decoded
    // event accounts kDecodedEventBytes). Sequenced correctly so every
    // chunk is admitted until the server pushes back.
    std::vector<Event> base;
    for (const ThreadTrace &t : trace.threads)
        if (!t.events.empty()) {
            base = t.events;
            break;
        }
    if (base.empty()) {
        ::close(fd);
        return;
    }
    const std::vector<std::uint8_t> log = encodeEvents(base);
    constexpr std::size_t kTargetDecodedBytes = 2 * 1024 * 1024;
    const std::size_t perChunk = base.size() * 40;
    const std::size_t chunks =
        std::max<std::size_t>(1, kTargetDecodedBytes / perChunk);
    for (std::size_t seq = 0; seq < chunks; ++seq) {
        ChunkHeader header;
        header.seq = seq;
        header.tid = 0;
        sendRaw(fd, encodeFramed(FrameType::LogChunk,
                                 encodeChunk(header, log)),
                SIZE_MAX);
    }
    // Hold the pressure; peers are running conformance cases against
    // the shrunken chaos budget right now.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(50 + rng() % 150));
    ::close(fd);
    tally.hogs.fetch_add(1);
}

/**
 * TraceEnd flood: one valid chunk, then dozens of TraceEnd frames whose
 * sequence numbers are wrong — duplicates, far-future, shuffled. Every
 * one of them must be Ignored (go-back-N discipline: TraceEnd shares
 * the chunk sequence space), the session must stay un-drained, and the
 * abort on close must reclaim its bytes.
 */
void
traceEndFlood(const Options &opt, fuzz::TraceFuzzer &fuzzer,
              std::uint64_t index, std::mt19937_64 &rng, Tally &tally)
{
    const int fd = rawConnect(opt);
    if (fd < 0)
        return;
    const fuzz::FuzzCase fuzz_case =
        fuzzer.generate(opt.seed * 1000003 + index);
    const Trace trace = fuzz_case.materialize();
    const SessionSpec spec = specFor(fuzz_case, trace, index);

    sendRaw(fd, encodeFramed(FrameType::SessionOpen, encodeSessionOpen(spec)),
            SIZE_MAX);
    if (!trace.threads.empty() && !trace.threads[0].events.empty()) {
        ChunkHeader header;
        header.seq = 0;
        header.tid = trace.threads[0].tid;
        sendRaw(fd, encodeFramed(
                        FrameType::LogChunk,
                        encodeChunk(header,
                                    encodeEvents(trace.threads[0].events))),
                SIZE_MAX);
    }
    // expectedSeq is now 1; every flooded TraceEnd dodges it (>= 2),
    // so none may finalize the session.
    const std::size_t flood = 48 + rng() % 17;
    for (std::size_t k = 0; k < flood; ++k) {
        const std::uint64_t seq = 2 + rng() % 64;
        sendRaw(fd, encodeFramed(FrameType::TraceEnd, encodeTraceEnd(seq)),
                SIZE_MAX);
    }
    ::close(fd);
    tally.floods.fetch_add(1);
}

void
worker(const Options &opt, std::atomic<std::uint64_t> &next, Tally &tally,
       std::mutex &log_mutex,
       std::chrono::steady_clock::time_point deadline)
{
    fuzz::FuzzerConfig fcfg;
    fcfg.seed = opt.seed;
    fuzz::TraceFuzzer fuzzer(fcfg);
    telemetry::MetricsRegistry &reg = telemetry::globalRegistry();
    const telemetry::MetricId latency =
        reg.histogram("loadgen.session.latency_us");

    for (;;) {
        const std::uint64_t index = next.fetch_add(1);
        if (opt.chaos) {
            if (std::chrono::steady_clock::now() >= deadline)
                return;
        } else if (index >= opt.traces) {
            return;
        }

        if (!opt.chaos) {
            std::mt19937_64 rng(opt.seed ^ index);
            runConformanceCase(opt, fuzzer, index, /*skew=*/false, rng,
                               tally, log_mutex, reg, latency);
            continue;
        }

        std::mt19937_64 rng(opt.seed * 0x9e3779b97f4a7c15ull + index);
        switch (rng() % 10) {
          case 0:
            midStreamKill(opt, fuzzer, index, rng, tally);
            break;
          case 1:
            connectChurn(opt, rng, tally);
            break;
          case 2:
          case 3:
            runConformanceCase(opt, fuzzer, index, /*skew=*/true, rng,
                               tally, log_mutex, reg, latency);
            break;
          case 8:
            budgetExhaust(opt, fuzzer, index, rng, tally);
            break;
          case 9:
            traceEndFlood(opt, fuzzer, index, rng, tally);
            break;
          default:
            runConformanceCase(opt, fuzzer, index, /*skew=*/false, rng,
                               tally, log_mutex, reg, latency);
            break;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "bfly_loadgen: " << arg
                          << " requires a value\n";
                usage(std::cerr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--unix")
            opt.unixPath = value();
        else if (arg == "--tcp") {
            opt.tcp = true;
            opt.tcpPort = static_cast<std::uint16_t>(std::atoi(value()));
        } else if (arg == "--sessions")
            opt.sessions = std::strtoull(value(), nullptr, 10);
        else if (arg == "--shards") {
            opt.shards = std::strtoull(value(), nullptr, 10);
            if (opt.shards == 0) {
                std::cerr << "bfly_loadgen: --shards must be > 0\n";
                return 2;
            }
        }
        else if (arg == "--traces")
            opt.traces = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed") {
            const char *v = value();
            if (std::strcmp(v, "from-run-id") == 0) {
                // Same convention as fuzz_cli: a fresh seed per CI run
                // widens soak coverage over time; the JSON echoes the
                // seed so any failure is reproducible.
                if (const char *run = std::getenv("GITHUB_RUN_ID"))
                    opt.seed = std::strtoull(run, nullptr, 10);
                else
                    opt.seed = static_cast<std::uint64_t>(
                        std::chrono::system_clock::now()
                            .time_since_epoch()
                            .count());
                if (opt.seed == 0)
                    opt.seed = 1;
            } else {
                opt.seed = std::strtoull(v, nullptr, 10);
            }
        }
        else if (arg == "--chunk-bytes")
            opt.chunkBytes = std::strtoull(value(), nullptr, 10);
        else if (arg == "--json")
            opt.jsonPath = value();
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--adaptive")
            opt.adaptive = true;
        else if (arg == "--chaos")
            opt.chaos = true;
        else if (arg == "--budget-sec")
            opt.budgetSec = std::strtoull(value(), nullptr, 10);
        else {
            std::cerr << "bfly_loadgen: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (opt.sessions == 0) {
        std::cerr << "bfly_loadgen: --sessions must be > 0\n";
        return 2;
    }
    if (opt.traces == 0) {
        std::cerr << "bfly_loadgen: --traces must be > 0\n";
        return 2;
    }
    if (opt.chaos && opt.budgetSec == 0) {
        std::cerr << "bfly_loadgen: --budget-sec must be > 0\n";
        return 2;
    }
    if (opt.adaptive && (opt.tcp || !opt.unixPath.empty()) && !opt.quiet)
        std::cerr << "loadgen: note: --adaptive configures the "
                     "in-process server; against an external endpoint "
                     "the reference already follows any advertised "
                     "EpochHint slicing\n";

    telemetry::setEnabled(true);

    // Self-contained mode: no endpoint given -> in-process server.
    std::unique_ptr<MonitorServer> inProcess;
    if (opt.unixPath.empty() && !opt.tcp) {
        ServerConfig scfg;
        scfg.unixPath =
            "/tmp/bfly-loadgen-" + std::to_string(::getpid()) + ".sock";
        scfg.shards = opt.shards;
        if (opt.adaptive) {
            // Force-cycle the epoch width every group so every session
            // crosses several h-changes; the conformance check then
            // proves bit-identity at each adaptation point.
            scfg.mux.adaptive = true;
            scfg.mux.adaptiveForceCycle = true;
        }
        if (opt.chaos) {
            // Shrink the budget so the hog action genuinely pressures
            // admission (one hog parks ~2 MiB decoded against 8 MiB
            // total, sliced across shards), and widen the per-session
            // queue so the hog's burst is admitted rather than cut at
            // the queue watermark before it ever reaches the budget.
            scfg.mux.globalBudgetBytes = 8 * 1024 * 1024;
            scfg.mux.sessionQueueBytes = 1024 * 1024;
        }
        inProcess = std::make_unique<MonitorServer>(scfg);
        if (!inProcess->start()) {
            std::cerr << "loadgen: failed to start in-process server\n";
            return 1;
        }
        opt.unixPath = scfg.unixPath;
        if (!opt.quiet)
            std::cerr << "loadgen: in-process server on " << opt.unixPath
                      << "\n";
    }

    Tally tally;
    std::atomic<std::uint64_t> next{0};
    std::mutex logMutex;

    // Chaos soaks watch their own resident set: after warmup the
    // process should plateau, so the growth ratio between the third and
    // final quarter of the samples exposes a leak that absolute peak
    // numbers would hide.
    std::vector<std::uint64_t> rssKb;
    std::atomic<bool> rssStop{false};
    std::thread rssThread;
    if (opt.chaos) {
        rssThread = std::thread([&rssKb, &rssStop] {
            const long page = ::sysconf(_SC_PAGESIZE);
            while (!rssStop.load()) {
                std::ifstream statm("/proc/self/statm");
                std::uint64_t size = 0, resident = 0;
                if (statm >> size >> resident)
                    rssKb.push_back(resident *
                                    static_cast<std::uint64_t>(page) /
                                    1024);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(500));
            }
        });
    }

    const auto wall0 = std::chrono::steady_clock::now();
    const auto deadline = wall0 + std::chrono::seconds(opt.budgetSec);
    std::vector<std::thread> threads;
    threads.reserve(opt.sessions);
    for (std::size_t i = 0; i < opt.sessions; ++i)
        threads.emplace_back(
            [&] { worker(opt, next, tally, logMutex, deadline); });
    for (std::thread &t : threads)
        t.join();
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    rssStop.store(true);
    if (rssThread.joinable())
        rssThread.join();

    if (inProcess)
        inProcess->stop();

    // rss_growth: mean of the last quarter of samples over the mean of
    // the quarter before it, minus one. Both windows are post-warmup,
    // so a healthy steady state sits near 0 regardless of how big the
    // working set got while ramping.
    double rssGrowth = 0.0;
    std::uint64_t rssPeakKb = 0;
    for (const std::uint64_t kb : rssKb)
        rssPeakKb = std::max(rssPeakKb, kb);
    if (rssKb.size() >= 8) {
        const std::size_t q = rssKb.size() / 4;
        auto mean = [&](std::size_t begin, std::size_t end) {
            double sum = 0;
            for (std::size_t i = begin; i < end; ++i)
                sum += static_cast<double>(rssKb[i]);
            return sum / static_cast<double>(end - begin);
        };
        const double third = mean(rssKb.size() - 2 * q, rssKb.size() - q);
        const double last = mean(rssKb.size() - q, rssKb.size());
        if (third > 0)
            rssGrowth = last / third - 1.0;
    }

    const auto snapshot = telemetry::globalRegistry().snapshot();
    const telemetry::HistogramSnapshot *lat =
        snapshot.histogram("loadgen.session.latency_us");

    std::ostringstream json;
    json << "{\"sessions\": " << opt.sessions
         << ", \"shards\": " << tally.serverShards.load()
         << ", \"seed\": " << opt.seed
         << ", \"traces\": " << tally.traces.load()
         << ", \"mismatches\": " << tally.mismatches.load()
         << ", \"failures\": " << tally.failures.load()
         << ", \"partials\": " << tally.partials.load()
         << ", \"busy_retries\": " << tally.busyRetries.load()
         << ", \"events\": " << tally.events.load()
         << ", \"records\": " << tally.records.load()
         << ", \"log_bytes\": " << tally.logBytes.load()
         << ", \"log_bytes_per_session\": "
         << (tally.traces.load() > 0
                 ? tally.logBytes.load() / tally.traces.load()
                 : 0)
         << ", \"chaos\": " << (opt.chaos ? "true" : "false")
         << ", \"adaptive\": " << (opt.adaptive ? "true" : "false")
         << ", \"hchanges\": " << tally.hChanges.load()
         << ", \"kills\": " << tally.kills.load()
         << ", \"churns\": " << tally.churns.load()
         << ", \"skews\": " << tally.skews.load()
         << ", \"hogs\": " << tally.hogs.load()
         << ", \"floods\": " << tally.floods.load()
         << ", \"sheds\": " << tally.sheds.load()
         << ", \"rss_peak_kb\": " << rssPeakKb
         << ", \"rss_growth\": " << rssGrowth
         << ", \"wall_ms\": " << wallMs << ", \"traces_per_sec\": "
         << (wallMs > 0 ? 1000.0 * tally.traces.load() / wallMs : 0.0)
         << ", \"events_per_sec\": "
         << (wallMs > 0 ? 1000.0 * tally.events.load() / wallMs : 0.0)
         << ", \"latency_us_mean\": " << (lat ? lat->mean() : 0.0)
         << ", \"latency_us_p50\": "
         << (lat ? histPercentile(*lat, 0.50) : 0)
         << ", \"latency_us_p99\": "
         << (lat ? histPercentile(*lat, 0.99) : 0) << "}";

    std::cout << json.str() << std::endl;
    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        out << json.str() << "\n";
    }

    const bool clean =
        tally.mismatches.load() == 0 && tally.failures.load() == 0;
    if (!opt.quiet)
        std::cerr << "loadgen: " << (clean ? "PASS" : "FAIL") << " ("
                  << tally.traces.load() << " traces, "
                  << tally.mismatches.load() << " mismatches, "
                  << tally.failures.load() << " failures"
                  << (opt.chaos
                          ? ", " + std::to_string(tally.kills.load()) +
                                " kills, " +
                                std::to_string(tally.churns.load()) +
                                " churns, " +
                                std::to_string(tally.skews.load()) +
                                " skews, " +
                                std::to_string(tally.hogs.load()) +
                                " hogs, " +
                                std::to_string(tally.floods.load()) +
                                " floods"
                          : "")
                  << (opt.adaptive
                          ? ", " + std::to_string(tally.hChanges.load()) +
                                " h-changes"
                          : "")
                  << ")\n";
    return clean ? 0 : 1;
}
