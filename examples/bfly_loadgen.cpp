/**
 * @file
 * bfly_loadgen: conformance + load driver for the monitoring service.
 *
 *   bfly_loadgen [--unix PATH | --tcp PORT] --sessions N --traces M
 *                [--seed S] [--chunk-bytes B] [--json FILE] [--quiet]
 *
 * Replays TraceFuzzer cases across N concurrent client connections,
 * cycling all four lifeguards. Every remote report is checked
 * bit-for-bit (error records, SOS addresses, dataflow fingerprint)
 * against an in-process reference run of the same trace; any divergence
 * is a conformance failure. When no endpoint is given, an in-process
 * MonitorServer is spun up on a private Unix socket, so the tool is
 * self-contained for CI smoke runs.
 *
 * Emits a JSON throughput/latency summary (stdout and optionally
 * --json FILE); session latency is also recorded into the telemetry
 * registry ("loadgen.session.latency_us").
 *
 * Exit status: 0 on full conformance, 1 on any mismatch or failed
 * session, 2 on usage errors.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fuzz/trace_fuzzer.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/log_codec.hpp"

using namespace bfly;
using namespace bfly::service;

namespace {

struct Options
{
    std::string unixPath;
    bool tcp = false;
    std::uint16_t tcpPort = 0;
    std::size_t sessions = 4;
    std::size_t traces = 50;
    std::uint64_t seed = 1;
    std::size_t chunkBytes = 32 * 1024;
    std::string jsonPath;
    bool quiet = false;
};

struct Tally
{
    std::atomic<std::uint64_t> traces{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> busyRetries{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> partials{0};
};

void
usage()
{
    std::cerr
        << "usage: bfly_loadgen [options]\n"
        << "  --unix PATH      connect to a Unix-domain socket\n"
        << "  --tcp PORT       connect to loopback TCP\n"
        << "                   (neither: in-process server is started)\n"
        << "  --sessions N     concurrent client connections (default 4)\n"
        << "  --traces M       total fuzzer traces to replay (default 50)\n"
        << "  --seed S         fuzzer seed (default 1)\n"
        << "  --chunk-bytes B  log bytes per LogChunk (default 32768)\n"
        << "  --json FILE      also write the JSON summary to FILE\n"
        << "  --quiet          only print the JSON summary\n";
}

SessionSpec
specFor(const fuzz::FuzzCase &fuzz_case, const Trace &trace,
        std::uint64_t trace_index)
{
    SessionSpec spec;
    spec.lifeguard = static_cast<std::uint8_t>(trace_index % 4);
    spec.memModel = fuzz_case.model == MemModel::TSO ? 1 : 0;
    spec.numThreads = static_cast<std::uint32_t>(trace.numThreads());
    spec.granularity =
        static_cast<Lifeguard>(spec.lifeguard) == Lifeguard::TaintCheck
            ? 4
            : 8;
    spec.heapBase = fuzz_case.heapBase;
    spec.heapLimit = fuzz_case.heapLimit;
    spec.globalH = fuzz_case.globalH;
    spec.windowEpochs = 4;
    return spec;
}

/** Approximate percentile of a log-scale histogram: upper bound of the
 *  bucket where the cumulative count crosses @p q. */
std::uint64_t
histPercentile(const telemetry::HistogramSnapshot &h, double q)
{
    if (h.count == 0)
        return 0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(h.count));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < telemetry::HistogramSnapshot::kBuckets; ++b) {
        seen += h.buckets[b];
        if (seen > target)
            return std::uint64_t{1} << (b + 1);
    }
    return h.max;
}

void
worker(const Options &opt, std::atomic<std::uint64_t> &next, Tally &tally,
       std::mutex &log_mutex)
{
    fuzz::FuzzerConfig fcfg;
    fcfg.seed = opt.seed;
    fuzz::TraceFuzzer fuzzer(fcfg);
    telemetry::MetricsRegistry &reg = telemetry::globalRegistry();
    const telemetry::MetricId latency =
        reg.histogram("loadgen.session.latency_us");

    for (;;) {
        const std::uint64_t index = next.fetch_add(1);
        if (index >= opt.traces)
            return;

        const fuzz::FuzzCase fuzz_case =
            fuzzer.generate(opt.seed * 1000003 + index);
        const Trace trace = fuzz_case.materialize();
        const EpochLayout layout =
            EpochLayout::byGlobalSeq(trace, fuzz_case.globalH);
        const SessionSpec spec = specFor(fuzz_case, trace, index);

        const RemoteReport local = analyzeReference(spec, trace, layout);
        const Trace marked = withHeartbeatMarkers(trace, layout);

        ClientConfig ccfg;
        ccfg.chunkBytes = opt.chunkBytes;
        MonitorClient client(ccfg);
        const bool connected = opt.tcp ? client.connectTcp(opt.tcpPort)
                                       : client.connectUnix(opt.unixPath);
        if (!connected) {
            tally.failures.fetch_add(1);
            std::lock_guard<std::mutex> lock(log_mutex);
            std::cerr << "loadgen: case " << index << ": connect failed\n";
            continue;
        }

        const auto t0 = std::chrono::steady_clock::now();
        const RunResult remote = client.run(spec, marked);
        const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0);
        reg.observe(latency, static_cast<std::uint64_t>(dt.count()));

        tally.traces.fetch_add(1);
        tally.busyRetries.fetch_add(remote.busyRetries);
        tally.events.fetch_add(trace.instructionCount());
        tally.records.fetch_add(local.records.size());

        if (!remote.ok) {
            tally.failures.fetch_add(1);
            std::lock_guard<std::mutex> lock(log_mutex);
            std::cerr << "loadgen: case " << index << " ("
                      << fuzz_case.scenario << ", "
                      << lifeguardName(
                             static_cast<Lifeguard>(spec.lifeguard))
                      << "): session failed: " << remote.error << "\n";
            continue;
        }
        if (remote.summary.status == SummaryStatus::Partial)
            tally.partials.fetch_add(1);
        if (!remote.report.identical(local)) {
            tally.mismatches.fetch_add(1);
            std::lock_guard<std::mutex> lock(log_mutex);
            std::cerr << "loadgen: case " << index << " ("
                      << fuzz_case.scenario << ", "
                      << lifeguardName(
                             static_cast<Lifeguard>(spec.lifeguard))
                      << "): REPORT MISMATCH remote{records="
                      << remote.report.records.size()
                      << " sos=" << remote.report.sos.size()
                      << " fp=" << remote.report.fingerprint
                      << " epochs=" << remote.report.epochs
                      << "} local{records=" << local.records.size()
                      << " sos=" << local.sos.size()
                      << " fp=" << local.fingerprint
                      << " epochs=" << local.epochs << "}\n";
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix")
            opt.unixPath = value();
        else if (arg == "--tcp") {
            opt.tcp = true;
            opt.tcpPort = static_cast<std::uint16_t>(std::atoi(value()));
        } else if (arg == "--sessions")
            opt.sessions = std::strtoull(value(), nullptr, 10);
        else if (arg == "--traces")
            opt.traces = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            opt.seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--chunk-bytes")
            opt.chunkBytes = std::strtoull(value(), nullptr, 10);
        else if (arg == "--json")
            opt.jsonPath = value();
        else if (arg == "--quiet")
            opt.quiet = true;
        else {
            usage();
            return 2;
        }
    }
    if (opt.sessions == 0 || opt.traces == 0) {
        usage();
        return 2;
    }

    telemetry::setEnabled(true);

    // Self-contained mode: no endpoint given -> in-process server.
    std::unique_ptr<MonitorServer> inProcess;
    if (opt.unixPath.empty() && !opt.tcp) {
        ServerConfig scfg;
        scfg.unixPath =
            "/tmp/bfly-loadgen-" + std::to_string(::getpid()) + ".sock";
        inProcess = std::make_unique<MonitorServer>(scfg);
        if (!inProcess->start()) {
            std::cerr << "loadgen: failed to start in-process server\n";
            return 1;
        }
        opt.unixPath = scfg.unixPath;
        if (!opt.quiet)
            std::cerr << "loadgen: in-process server on " << opt.unixPath
                      << "\n";
    }

    Tally tally;
    std::atomic<std::uint64_t> next{0};
    std::mutex logMutex;

    const auto wall0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(opt.sessions);
    for (std::size_t i = 0; i < opt.sessions; ++i)
        threads.emplace_back(
            [&] { worker(opt, next, tally, logMutex); });
    for (std::thread &t : threads)
        t.join();
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    if (inProcess)
        inProcess->stop();

    const auto snapshot = telemetry::globalRegistry().snapshot();
    const telemetry::HistogramSnapshot *lat =
        snapshot.histogram("loadgen.session.latency_us");

    std::ostringstream json;
    json << "{\"sessions\": " << opt.sessions
         << ", \"traces\": " << tally.traces.load()
         << ", \"mismatches\": " << tally.mismatches.load()
         << ", \"failures\": " << tally.failures.load()
         << ", \"partials\": " << tally.partials.load()
         << ", \"busy_retries\": " << tally.busyRetries.load()
         << ", \"events\": " << tally.events.load()
         << ", \"records\": " << tally.records.load()
         << ", \"wall_ms\": " << wallMs << ", \"traces_per_sec\": "
         << (wallMs > 0 ? 1000.0 * tally.traces.load() / wallMs : 0.0)
         << ", \"events_per_sec\": "
         << (wallMs > 0 ? 1000.0 * tally.events.load() / wallMs : 0.0)
         << ", \"latency_us_mean\": " << (lat ? lat->mean() : 0.0)
         << ", \"latency_us_p50\": "
         << (lat ? histPercentile(*lat, 0.50) : 0)
         << ", \"latency_us_p99\": "
         << (lat ? histPercentile(*lat, 0.99) : 0) << "}";

    std::cout << json.str() << std::endl;
    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        out << json.str() << "\n";
    }

    const bool clean =
        tally.mismatches.load() == 0 && tally.failures.load() == 0;
    if (!opt.quiet)
        std::cerr << "loadgen: " << (clean ? "PASS" : "FAIL") << " ("
                  << tally.traces.load() << " traces, "
                  << tally.mismatches.load() << " mismatches, "
                  << tally.failures.load() << " failures)\n";
    return clean ? 0 : 1;
}
