/**
 * @file
 * bfly_serve: run the multi-tenant butterfly monitoring daemon.
 *
 *   bfly_serve --unix /tmp/bfly.sock [--tcp PORT] [--workers N]
 *              [--shards N] [--reuseport] [--queue-kb K]
 *              [--budget-mb M] [--session-mb M] [--idle-ms T]
 *              [--adaptive] [--target-events N] [--quiet]
 *
 * Listens until SIGINT/SIGTERM, then prints a one-line stats summary.
 * Clients speak the wire protocol in src/service/wire.hpp; the stock
 * client is bfly_loadgen (or the MonitorClient library).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "service/server.hpp"
#include "telemetry/telemetry.hpp"

using namespace bfly;
using namespace bfly::service;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

void
usage()
{
    std::cerr << "usage: bfly_serve [--unix PATH] [--tcp PORT]\n"
              << "  --unix PATH     Unix-domain socket to listen on\n"
              << "  --tcp PORT      loopback TCP port (0 = ephemeral)\n"
              << "  --workers N     worker pool size (0 = hw threads)\n"
              << "  --shards N      reactor event loops (default 1)\n"
              << "  --reuseport     per-shard SO_REUSEPORT TCP listeners\n"
              << "  --queue-kb K    per-session ingest queue (KiB)\n"
              << "  --budget-mb M   server-wide byte budget (MiB)\n"
              << "  --session-mb M  hard per-session cap (MiB)\n"
              << "  --idle-ms T     idle-session disconnect (0 = off)\n"
              << "  --adaptive      online epoch sizing + graduated\n"
              << "                  degradation ladder (see DESIGN.md)\n"
              << "  --target-events N  adaptive: coalesce epochs until\n"
              << "                  ~N events each (default 512)\n"
              << "  --quiet         suppress the startup banner\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig config;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix")
            config.unixPath = value();
        else if (arg == "--tcp") {
            config.tcp = true;
            config.tcpPort =
                static_cast<std::uint16_t>(std::atoi(value()));
        } else if (arg == "--workers")
            config.workers = std::strtoull(value(), nullptr, 10);
        else if (arg == "--shards") {
            config.shards = std::strtoull(value(), nullptr, 10);
            if (config.shards == 0) {
                std::cerr << "bfly_serve: --shards must be > 0\n";
                return 2;
            }
        } else if (arg == "--reuseport")
            config.tcpReusePort = true;
        else if (arg == "--queue-kb")
            config.mux.sessionQueueBytes =
                std::strtoull(value(), nullptr, 10) * 1024;
        else if (arg == "--budget-mb")
            config.mux.globalBudgetBytes =
                std::strtoull(value(), nullptr, 10) * 1024 * 1024;
        else if (arg == "--session-mb")
            config.mux.maxSessionBytes =
                std::strtoull(value(), nullptr, 10) * 1024 * 1024;
        else if (arg == "--idle-ms")
            config.idleTimeoutMs = std::atoi(value());
        else if (arg == "--adaptive")
            config.mux.adaptive = true;
        else if (arg == "--target-events")
            config.mux.controller.targetEventsPerEpoch =
                std::strtoull(value(), nullptr, 10);
        else if (arg == "--quiet")
            quiet = true;
        else {
            usage();
            return 2;
        }
    }
    if (config.unixPath.empty() && !config.tcp) {
        usage();
        return 2;
    }
    // Adaptive without an explicit size target: default to merging
    // toward ~512-event analyzed epochs so fine-grained tenants see a
    // benefit even before pressure drives the degradation ladder.
    if (config.mux.adaptive &&
        config.mux.controller.targetEventsPerEpoch == 0)
        config.mux.controller.targetEventsPerEpoch = 512;

    telemetry::setEnabled(true);

    MonitorServer server(config);
    if (!server.start()) {
        std::cerr << "bfly_serve: failed to bind\n";
        return 1;
    }
    if (!quiet) {
        std::cout << "bfly_serve: listening";
        if (!config.unixPath.empty())
            std::cout << " unix=" << config.unixPath;
        if (config.tcp)
            std::cout << " tcp=127.0.0.1:" << server.tcpPort();
        std::cout << " shards=" << server.shards();
        if (config.mux.adaptive)
            std::cout << " adaptive=1 target_events="
                      << config.mux.controller.targetEventsPerEpoch;
        std::cout << std::endl;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    std::cout << "bfly_serve: completed=" << server.sessionsCompleted()
              << " failed=" << server.sessionsFailed()
              << " busy_sent=" << server.busySent()
              << " partial=" << server.partialReports()
              << " shed=" << server.sessionsShed()
              << " hint_echoes=" << server.hintEchoes()
              << " elision_sessions=" << server.elisionSessions()
              << " summary_events=" << server.summaryEventsSeen()
              << std::endl;
    for (const ShardStats &s : server.shardStats())
        std::cout << "bfly_serve: shard=" << s.shard
                  << " assigned=" << s.sessionsAssigned
                  << " completed=" << s.completed
                  << " busy_sent=" << s.busySent
                  << " steals=" << s.budgetSteals
                  << " stolen_bytes=" << s.budgetStolenBytes
                  << " donated_bytes=" << s.budgetDonatedBytes
                  << std::endl;
    return 0;
}
