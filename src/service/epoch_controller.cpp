#include "service/epoch_controller.hpp"

#include <algorithm>

namespace bfly {

const char *
degradeLevelName(DegradeLevel level)
{
    switch (level) {
    case DegradeLevel::Normal: return "normal";
    case DegradeLevel::Grow2: return "grow2";
    case DegradeLevel::Grow4: return "grow4";
    case DegradeLevel::Grow8: return "grow8";
    case DegradeLevel::Partial: return "partial";
    case DegradeLevel::Busy: return "busy";
    case DegradeLevel::Shed: return "shed";
    }
    return "?";
}

DegradeLevel
EpochController::observe(const ControllerSample &sample)
{
    const double pressure =
        std::max({sample.queueFraction, sample.budgetFraction,
                  sample.partialRate});

    if (pressure >= config_.upThreshold) {
        coolStreak_ = 0;
        if (++hotStreak_ >= config_.escalateAfter) {
            hotStreak_ = 0;
            if (level_ < DegradeLevel::Shed) {
                level_ = static_cast<DegradeLevel>(
                    static_cast<std::uint8_t>(level_) + 1);
                ++escalations_;
            }
        }
    } else if (pressure <= config_.downThreshold) {
        hotStreak_ = 0;
        if (++coolStreak_ >= config_.recoverAfter) {
            coolStreak_ = 0;
            if (level_ > DegradeLevel::Normal) {
                level_ = static_cast<DegradeLevel>(
                    static_cast<std::uint8_t>(level_) - 1);
                ++recoveries_;
            }
        }
    } else {
        // Dead band: steady mid-range load neither climbs nor descends,
        // so the ladder cannot oscillate around either threshold.
        hotStreak_ = 0;
        coolStreak_ = 0;
    }
    return level_;
}

std::size_t
EpochController::coalesceFactor() const
{
    switch (level_) {
    case DegradeLevel::Normal: return 1;
    case DegradeLevel::Grow2: return 2;
    case DegradeLevel::Grow4: return 4;
    default: return 8;
    }
}

} // namespace bfly
