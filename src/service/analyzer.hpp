/**
 * @file
 * Session analysis for the monitoring service: run one lifeguard over
 * one trace and produce a canonical, comparable report.
 *
 * Both sides of the wire use this module. The server drives the
 * pipelined window schedule over a streaming EpochStream (heartbeat
 * boundaries — remote logs carry no gseq) on the shared worker pool;
 * the client/loadgen computes a local reference with the sequential
 * barrier schedule over a materialized layout. The reports are required
 * to be bit-identical: records, SOS and the dataflow fingerprint all
 * match, or the service has corrupted the analysis somewhere between
 * the socket and the scheduler.
 */

#ifndef BUTTERFLY_SERVICE_ANALYZER_HPP
#define BUTTERFLY_SERVICE_ANALYZER_HPP

#include <cstdint>
#include <vector>

#include "common/worker_pool.hpp"
#include "lifeguards/report.hpp"
#include "service/wire.hpp"
#include "trace/epoch_slicer.hpp"
#include "trace/trace.hpp"

namespace bfly::service {

/** Lifeguards a session may request (the SessionSpec::lifeguard byte). */
enum class Lifeguard : std::uint8_t {
    AddrCheck = 0,
    TaintCheck = 1,
    DefCheck = 2,
    ReachingDefs = 3,
    LockSet = 4,
    AddrLeak = 5,
};

inline constexpr Lifeguard kAllLifeguards[] = {
    Lifeguard::AddrCheck, Lifeguard::TaintCheck, Lifeguard::DefCheck,
    Lifeguard::ReachingDefs, Lifeguard::LockSet, Lifeguard::AddrLeak};

const char *lifeguardName(Lifeguard lg);

/** One session's observable analysis result, in canonical form. */
struct RemoteReport
{
    std::vector<ErrorRecord> records; ///< sorted (tid,index,addr,kind,size)
    std::vector<Addr> sos;            ///< final SOS, sorted
    std::uint64_t fingerprint = 0;    ///< FNV over records+SOS+dataflow
    std::uint64_t epochs = 0;
    std::uint64_t events = 0;         ///< non-heartbeat instructions
    std::uint64_t peakResidentEpochs = 0; ///< streaming runs only

    bool identical(const RemoteReport &other) const;
};

/**
 * Server path: pipelined dependency-graph schedule over a bounded
 * EpochStream sliced at the trace's embedded heartbeat markers, with
 * graph tasks dispatched on @p pool (shared across sessions — each run
 * waits on its own TaskGroup). @p batch selects the lifeguard's batched
 * (columnar) pass-1 kernels; reports are bit-identical either way, so
 * the flag is a server-side deployment knob (MuxConfig::batchMode), not
 * part of the wire protocol.
 *
 * @p reslice optionally coalesces the marker-delimited source epochs
 * into coarser analyzed epochs (adaptive epoch sizing; see
 * EpochStream::ReslicePolicy). When set, @p realized_spans (if non-null)
 * receives the per-epoch merge widths actually chosen so the caller can
 * advertise them (EpochHint) and rebuild the bit-identical reference
 * with EpochLayout::coalescedFromHeartbeats.
 */
RemoteReport analyzeStreaming(const SessionSpec &spec, const Trace &trace,
                              WorkerPool &pool, bool batch = false,
                              const EpochStream::ReslicePolicy &reslice = {},
                              std::vector<std::uint32_t> *realized_spans =
                                  nullptr);

/**
 * Reference path: sequential barrier schedule over a materialized
 * layout. @p layout must describe @p trace. @p batch as above.
 */
RemoteReport analyzeReference(const SessionSpec &spec, const Trace &trace,
                              const EpochLayout &layout,
                              bool batch = false);

} // namespace bfly::service

#endif // BUTTERFLY_SERVICE_ANALYZER_HPP
