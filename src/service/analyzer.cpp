#include "service/analyzer.hpp"

#include <algorithm>
#include <tuple>

#include "butterfly/reaching_defs.hpp"
#include "butterfly/window.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/addrleak.hpp"
#include "lifeguards/defcheck.hpp"
#include "lifeguards/lockset.hpp"
#include "lifeguards/taintcheck.hpp"

namespace bfly::service {

namespace {

const char *const kLifeguardNames[] = {"ADDRCHECK",     "TAINTCHECK",
                                       "DEFINEDCHECK",  "REACHING-DEFS",
                                       "LOCKSET",       "ADDRLEAK"};

void
fnv(std::uint64_t &h, std::uint64_t v)
{
    h ^= v;
    h *= 0x100000001b3ull;
}

std::vector<ErrorRecord>
canonicalRecords(const ErrorLog &log)
{
    std::vector<ErrorRecord> out = log.records();
    std::sort(out.begin(), out.end(),
              [](const ErrorRecord &a, const ErrorRecord &b) {
                  return std::tie(a.tid, a.index, a.addr, a.kind, a.size) <
                         std::tie(b.tid, b.index, b.addr, b.kind, b.size);
              });
    return out;
}

/** Fold the canonical observables into the report's fingerprint, so a
 *  single u64 in the Summary frame already witnesses the full report
 *  (records and SOS are also streamed and compared field-by-field). */
void
fingerprintObservables(RemoteReport &report)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const ErrorRecord &r : report.records) {
        fnv(h, r.tid);
        fnv(h, r.index);
        fnv(h, r.addr);
        fnv(h, static_cast<std::uint64_t>(r.kind));
        fnv(h, r.size);
    }
    fnv(h, 0x5050);
    for (Addr a : report.sos)
        fnv(h, a);
    fnv(h, report.fingerprint); // dataflow component (reaching defs)
    report.fingerprint = h;
}

/**
 * Construct the requested lifeguard, run @p drive over it, and collect
 * the canonical report. @p drive receives the driver and returns the
 * streaming peak-residency (0 for materialized runs).
 */
template <typename DriveFn>
RemoteReport
runLifeguard(const SessionSpec &spec, std::size_t num_threads,
             std::size_t num_epochs, DriveFn &&drive)
{
    RemoteReport report;
    report.epochs = num_epochs;

    switch (static_cast<Lifeguard>(spec.lifeguard)) {
      case Lifeguard::AddrCheck: {
        AddrCheckConfig cfg;
        cfg.granularity = spec.granularity;
        cfg.heapBase = spec.heapBase;
        cfg.heapLimit = spec.heapLimit;
        ButterflyAddrCheck driver(num_threads, cfg);
        report.peakResidentEpochs = drive(driver);
        report.records = canonicalRecords(driver.errors());
        report.sos = driver.sosNow().sorted();
        break;
      }
      case Lifeguard::TaintCheck: {
        TaintCheckConfig cfg;
        cfg.granularity = spec.granularity;
        const TaintTermination termination =
            spec.memModel == 1 ? TaintTermination::Relaxed
                               : TaintTermination::SequentialConsistency;
        ButterflyTaintCheck driver(num_threads, cfg, termination);
        report.peakResidentEpochs = drive(driver);
        report.records = canonicalRecords(driver.errors());
        report.sos = driver.sosNow().sorted();
        break;
      }
      case Lifeguard::DefCheck: {
        DefCheckConfig cfg;
        cfg.granularity = spec.granularity;
        cfg.heapBase = spec.heapBase;
        cfg.heapLimit = spec.heapLimit;
        ButterflyDefCheck driver(num_threads, cfg);
        report.peakResidentEpochs = drive(driver);
        report.records = canonicalRecords(driver.errors());
        break;
      }
      case Lifeguard::LockSet: {
        LockSetConfig cfg;
        cfg.granularity = spec.granularity;
        cfg.heapBase = spec.heapBase;
        cfg.heapLimit = spec.heapLimit;
        ButterflyLockSet driver(num_threads, cfg);
        report.peakResidentEpochs = drive(driver);
        report.records = canonicalRecords(driver.errors());
        break;
      }
      case Lifeguard::AddrLeak: {
        AddrLeakConfig cfg;
        cfg.granularity = spec.granularity;
        cfg.heapBase = spec.heapBase;
        cfg.heapLimit = spec.heapLimit;
        ButterflyAddrLeak driver(num_threads, cfg);
        report.peakResidentEpochs = drive(driver);
        report.records = canonicalRecords(driver.errors());
        report.sos = driver.sosNow().sorted();
        break;
      }
      case Lifeguard::ReachingDefs: {
        ReachingDefinitions driver(num_threads);
        report.peakResidentEpochs = drive(driver);
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (EpochId l = 0; l < num_epochs; ++l) {
            for (DefId d : driver.sos(l).sorted())
                fnv(h, d);
            fnv(h, 0x5051);
            for (DefId d : driver.genEpoch(l).sorted())
                fnv(h, d);
            fnv(h, 0x5052);
            for (ThreadId t = 0; t < num_threads; ++t) {
                for (DefId d : driver.blockResults(l, t).in.sorted())
                    fnv(h, d);
                fnv(h, 0x5053);
                for (DefId d : driver.blockResults(l, t).out.sorted())
                    fnv(h, d);
                fnv(h, 0x5054);
            }
        }
        report.fingerprint = h;
        break;
      }
    }
    fingerprintObservables(report);
    return report;
}

} // namespace

const char *
lifeguardName(Lifeguard lg)
{
    return kLifeguardNames[static_cast<unsigned>(lg)];
}

bool
RemoteReport::identical(const RemoteReport &other) const
{
    if (records.size() != other.records.size() || sos != other.sos ||
        fingerprint != other.fingerprint || epochs != other.epochs ||
        events != other.events)
        return false;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ErrorRecord &a = records[i];
        const ErrorRecord &b = other.records[i];
        if (a.tid != b.tid || a.index != b.index || a.addr != b.addr ||
            a.kind != b.kind || a.size != b.size)
            return false;
    }
    return true;
}

RemoteReport
analyzeStreaming(const SessionSpec &spec, const Trace &trace,
                 WorkerPool &pool, bool batch,
                 const EpochStream::ReslicePolicy &reslice,
                 std::vector<std::uint32_t> *realized_spans)
{
    EpochStream::Config cfg;
    cfg.windowEpochs = spec.windowEpochs;
    cfg.fromHeartbeats = true;
    cfg.reslice = reslice;
    EpochStream stream(trace, cfg);
    if (realized_spans)
        *realized_spans = stream.realizedSpans();

    RemoteReport report = runLifeguard(
        spec, trace.numThreads(), stream.numEpochs(),
        [&](AnalysisDriver &driver) {
            driver.setBatchMode(batch);
            if (stream.numEpochs() == 0)
                return std::size_t{0}; // empty session, nothing to run
            const PipelineStats stats =
                WindowSchedule(true, &pool).runPipelined(stream, driver);
            return stats.peakResidentEpochs;
        });
    report.events = trace.instructionCount();
    return report;
}

RemoteReport
analyzeReference(const SessionSpec &spec, const Trace &trace,
                 const EpochLayout &layout, bool batch)
{
    RemoteReport report = runLifeguard(
        spec, layout.numThreads(), layout.numEpochs(),
        [&](AnalysisDriver &driver) {
            driver.setBatchMode(batch);
            WindowSchedule(false).run(layout, driver);
            return std::size_t{0};
        });
    report.events = trace.instructionCount();
    return report;
}

} // namespace bfly::service
