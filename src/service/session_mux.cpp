#include "service/session_mux.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/log_codec.hpp"

namespace bfly::service {

namespace {

/** Pre-interned service metric ids (valid for any registry instance —
 *  the directory is process-wide, only the cells are per-session). */
struct MuxMetrics
{
    telemetry::MetricId ingestBytes;
    telemetry::MetricId ingestEvents;
    telemetry::MetricId ingestChunks;
    telemetry::MetricId analysisEpochs;
    telemetry::MetricId analysisRecords;
    telemetry::MetricId analysisSos;
    telemetry::MetricId coalescedEpochs;
    telemetry::MetricId hChanges;

    static const MuxMetrics &
    get()
    {
        static const MuxMetrics m = [] {
            auto &r = telemetry::registry();
            MuxMetrics x;
            x.ingestBytes = r.counter("bfly.service.session.ingest_bytes");
            x.ingestEvents = r.counter("bfly.service.session.events");
            x.ingestChunks = r.counter("bfly.service.session.chunks");
            x.analysisEpochs = r.counter("bfly.service.session.epochs");
            x.analysisRecords = r.counter("bfly.service.session.records");
            x.analysisSos = r.counter("bfly.service.session.sos");
            x.coalescedEpochs =
                r.counter("bfly.service.session.coalesced_epochs");
            x.hChanges = r.counter("bfly.service.session.h_changes");
            return x;
        }();
        return m;
    }
};

} // namespace

/** One tenant's ingest + decode + analysis state. */
struct SessionMux::Session
{
    std::uint64_t id = 0;
    SessionSpec spec;

    std::mutex mutex; ///< guards everything below

    // Go-back-N sequencing (chunks and TraceEnd share one space).
    std::uint64_t expectedSeq = 0;
    bool draining = false; ///< TraceEnd accepted
    bool failed = false;
    bool aborted = false;
    bool pumpScheduled = false;
    bool analysisScheduled = false;

    struct RawChunk
    {
        std::uint32_t tid = 0;
        std::vector<std::uint8_t> bytes;
    };
    std::deque<RawChunk> queue; ///< bounded by sessionQueueBytes
    std::size_t queuedBytes = 0;

    // Decoded state: touched only by the (single in-flight) pump task
    // and, after the pump has drained, the analysis task.
    std::vector<ChunkedLogDecoder> decoders; ///< [tid]
    std::vector<std::vector<Event>> decoded; ///< [tid]
    std::size_t decodedEvents = 0;
    /** SiteSummary events among the decoded (wire v4 Summary echo). */
    std::uint64_t summaryEvents = 0;

    /** Bytes currently charged against the mux's global budget. */
    std::size_t accounted = 0;

    /** Per-tenant degradation ladder (adaptive mode only). Mutated under
     *  `mutex` during admission; quiescent once draining is set (late
     *  frames are Ignored before they reach it), so the analysis task
     *  may read it without the lock. */
    EpochController controller;

    /** The session's private telemetry registry (multi-tenancy). */
    telemetry::MetricsRegistry metrics;
};

namespace {

/** Heap context carrying a session reference through the pool's
 *  void* task interface. */
struct JobCtx
{
    SessionMux *mux;
    std::shared_ptr<SessionMux::Session> session;
};

} // namespace

SessionMux::SessionMux(WorkerPool &pool, const MuxConfig &config,
                       std::function<void()> wake,
                       std::size_t shard_budget_bytes, BudgetPool *rebalance)
    : pool_(pool), config_(config), wake_(std::move(wake)),
      rebalance_(rebalance)
{
    // The per-session cap is still clamped to the *global* budget: with
    // rebalancing, a shard under load can grow past its base slice, so
    // the slice is not the right ceiling for a single tenant.
    if (config_.maxSessionBytes > config_.globalBudgetBytes)
        config_.maxSessionBytes = config_.globalBudgetBytes;
    baseBudgetBytes_ = shard_budget_bytes > 0 ? shard_budget_bytes
                                              : config_.globalBudgetBytes;
    budgetBytes_.store(baseBudgetBytes_, std::memory_order_relaxed);
    shardController_ = EpochController(config_.controller);
}

SessionMux::~SessionMux()
{
    pool_.waitGroup(jobs_);
}

std::uint64_t
SessionMux::open(const SessionSpec &spec, std::uint64_t preassigned_id)
{
    auto session = std::make_shared<Session>();
    session->spec = spec;
    session->decoders.resize(spec.numThreads);
    session->decoded.resize(spec.numThreads);
    session->controller = EpochController(config_.controller);

    std::lock_guard<std::mutex> lock(mutex_);
    if (preassigned_id != 0) {
        session->id = preassigned_id;
        if (preassigned_id >= nextId_)
            nextId_ = preassigned_id + 1;
    } else {
        session->id = nextId_++;
    }
    sessions_.emplace(session->id, session);
    return session->id;
}

std::shared_ptr<SessionMux::Session>
SessionMux::find(std::uint64_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(session_id);
    return it == sessions_.end() ? nullptr : it->second;
}

void
SessionMux::erase(std::uint64_t session_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(session_id);
}

Admission
SessionMux::submitChunk(std::uint64_t session_id, const ChunkHeader &header,
                        std::span<const std::uint8_t> log, BusyInfo &busy,
                        RejectInfo &reject)
{
    auto session = find(session_id);
    if (!session) {
        reject = {RejectCode::Protocol, "unknown session"};
        return Admission::Rejected;
    }

    bool schedule_pump = false;
    {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->failed || session->aborted || session->draining)
            return Admission::Ignored;
        if (header.seq != session->expectedSeq)
            return Admission::Ignored; // go-back-N flood after a shed

        if (config_.adaptive && header.tid < session->spec.numThreads) {
            // Graduated admission: each in-sequence chunk is one
            // telemetry sample for the tenant's ladder and the shard's.
            // At Busy and beyond, back-pressure kicks in well before the
            // hard watermark would; the Grow/Partial rungs act later, at
            // analysis time.
            ControllerSample sample;
            sample.queueFraction =
                static_cast<double>(session->queuedBytes) /
                static_cast<double>(config_.sessionQueueBytes);
            const std::size_t budget =
                budgetBytes_.load(std::memory_order_relaxed);
            sample.budgetFraction =
                budget == 0
                    ? 1.0
                    : static_cast<double>(
                          globalBytes_.load(std::memory_order_relaxed)) /
                          static_cast<double>(budget);
            const DegradeLevel level =
                session->controller.observe(sample);
            {
                std::lock_guard<std::mutex> ctl(shardCtlMutex_);
                shardController_.observe(sample);
            }
            if (level >= DegradeLevel::Busy) {
                busy = {BusyReason::SessionQueueFull, header.seq,
                        config_.busyRetryMs};
                return Admission::Busy;
            }
        }

        if (header.tid >= session->spec.numThreads) {
            session->failed = true;
            globalBytes_.fetch_sub(session->accounted,
                                   std::memory_order_relaxed);
            session->accounted = 0;
            reject = {RejectCode::Protocol, "chunk tid out of range"};
        } else if (session->accounted + log.size() >
                   config_.maxSessionBytes) {
            session->failed = true;
            globalBytes_.fetch_sub(session->accounted,
                                   std::memory_order_relaxed);
            session->accounted = 0;
            reject = {RejectCode::TooLarge,
                      "session exceeds its byte cap"};
        } else if (session->queuedBytes >= config_.sessionQueueBytes) {
            busy = {BusyReason::SessionQueueFull, header.seq,
                    config_.busyRetryMs};
            return Admission::Busy;
        } else {
            const std::size_t global =
                globalBytes_.load(std::memory_order_relaxed);
            std::size_t budget = budgetBytes_.load(std::memory_order_relaxed);
            if (global + log.size() > budget &&
                stealBudget(global + log.size() - budget))
                budget = budgetBytes_.load(std::memory_order_relaxed);
            if (global + log.size() > budget) {
                if (global > session->accounted) {
                    // Other tenants hold budget; they will release it.
                    busy = {BusyReason::GlobalBudget, header.seq,
                            config_.busyRetryMs * 4};
                    return Admission::Busy;
                }
                if (budget < config_.globalBudgetBytes) {
                    // Alone on this shard but siblings hold the rest of
                    // the budget; an idle tick may donate it. Transient.
                    busy = {BusyReason::GlobalBudget, header.seq,
                            config_.busyRetryMs * 4};
                    return Admission::Busy;
                }
                // This session alone exhausts the budget: permanent.
                session->failed = true;
                globalBytes_.fetch_sub(session->accounted,
                                       std::memory_order_relaxed);
                session->accounted = 0;
                reject = {RejectCode::TooLarge,
                          "session exceeds the global byte budget"};
            }
        }
        if (!session->failed) {
            session->expectedSeq = header.seq + 1;
            session->queuedBytes += log.size();
            session->accounted += log.size();
            globalBytes_.fetch_add(log.size(), std::memory_order_relaxed);
            session->queue.push_back(Session::RawChunk{
                header.tid,
                std::vector<std::uint8_t>(log.begin(), log.end())});
            if (!session->pumpScheduled) {
                session->pumpScheduled = true;
                schedule_pump = true;
            }
        }
    }
    if (schedule_pump)
        pool_.submitTask(jobs_, &SessionMux::pumpTrampoline,
                         new JobCtx{this, session}, 0);
    if (reject.message.empty())
        return Admission::Accepted;
    erase(session_id);
    return Admission::Rejected;
}

Admission
SessionMux::submitTraceEnd(std::uint64_t session_id, std::uint64_t seq,
                           BusyInfo &busy, RejectInfo &reject)
{
    (void)busy;
    auto session = find(session_id);
    if (!session) {
        reject = {RejectCode::Protocol, "unknown session"};
        return Admission::Rejected;
    }
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->failed || session->aborted || session->draining)
        return Admission::Ignored;
    if (seq != session->expectedSeq)
        return Admission::Ignored;
    session->expectedSeq = seq + 1;
    session->draining = true;
    maybeScheduleAnalysis(session);
    return Admission::Accepted;
}

void
SessionMux::abort(std::uint64_t session_id)
{
    auto session = find(session_id);
    if (!session)
        return;
    erase(session_id);
    std::lock_guard<std::mutex> lock(session->mutex);
    session->aborted = true;
    session->queue.clear();
    session->queuedBytes = 0;
    globalBytes_.fetch_sub(session->accounted, std::memory_order_relaxed);
    session->accounted = 0;
}

void
SessionMux::maybeScheduleAnalysis(const std::shared_ptr<Session> &session)
{
    if (!session->draining || session->analysisScheduled ||
        session->failed || session->aborted || session->pumpScheduled ||
        !session->queue.empty())
        return;
    session->analysisScheduled = true;
    pool_.submitTask(jobs_, &SessionMux::analysisTrampoline,
                     new JobCtx{this, session}, 0);
}

void
SessionMux::pumpTrampoline(void *ctx, std::size_t)
{
    std::unique_ptr<JobCtx> job(static_cast<JobCtx *>(ctx));
    job->mux->pump(job->session);
}

void
SessionMux::pump(const std::shared_ptr<Session> &session)
{
    telemetry::ScopedRegistry scoped(&session->metrics);
    const bool traced = telemetry::enabled();
    const MuxMetrics &metrics = MuxMetrics::get();

    for (;;) {
        Session::RawChunk chunk;
        {
            std::lock_guard<std::mutex> lock(session->mutex);
            if (session->failed || session->aborted) {
                session->pumpScheduled = false;
                return;
            }
            if (session->queue.empty()) {
                session->pumpScheduled = false;
                maybeScheduleAnalysis(session);
                return;
            }
            chunk = std::move(session->queue.front());
            session->queue.pop_front();
        }

        if (config_.debugPumpDelayMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config_.debugPumpDelayMs));

        // Decode outside the lock: decoders/decoded are owned by the
        // single in-flight pump.
        ChunkedLogDecoder &decoder = session->decoders[chunk.tid];
        decoder.feed(chunk.bytes);
        std::vector<Event> &out = session->decoded[chunk.tid];
        Event e;
        DecodeStatus status;
        std::size_t decoded_now = 0;
        std::uint64_t summaries_now = 0;
        while ((status = decoder.next(e)) == DecodeStatus::Ok) {
            out.push_back(e);
            ++decoded_now;
            if (e.kind == EventKind::SiteSummary)
                ++summaries_now;
        }
        if (status == DecodeStatus::Corrupt) {
            failSession(session, RejectCode::CorruptLog,
                        "log bytes failed to decode");
            return;
        }

        const std::size_t event_bytes = decodedEventBytes(decoded_now);
        bool too_large = false;
        {
            std::lock_guard<std::mutex> lock(session->mutex);
            if (session->failed || session->aborted) {
                session->pumpScheduled = false;
                return;
            }
            session->queuedBytes -= chunk.bytes.size();
            session->decodedEvents += decoded_now;
            session->summaryEvents += summaries_now;
            session->accounted += event_bytes;
            session->accounted -= chunk.bytes.size();
            // One accounting call per chunk: charge the decoded events
            // and credit the drained raw bytes as a single signed delta
            // (two's-complement wraparound makes fetch_add a subtract
            // when the delta is negative). Intermediate states where
            // only half the adjustment is visible can no longer be
            // observed by concurrent admission decisions.
            const std::size_t delta =
                event_bytes - chunk.bytes.size(); // may wrap: intended
            globalBytes_.fetch_add(delta, std::memory_order_relaxed);
            too_large = session->decodedEvents > config_.maxSessionEvents ||
                        session->accounted > config_.maxSessionBytes;
        }
        if (too_large) {
            failSession(session, RejectCode::TooLarge,
                        "decoded trace exceeds the session cap");
            return;
        }
        if (traced) {
            auto &r = telemetry::registry();
            r.add(metrics.ingestChunks, 1);
            r.add(metrics.ingestBytes, chunk.bytes.size());
            r.add(metrics.ingestEvents, decoded_now);
        }
    }
}

void
SessionMux::analysisTrampoline(void *ctx, std::size_t)
{
    std::unique_ptr<JobCtx> job(static_cast<JobCtx *>(ctx));
    job->mux->analyze(job->session);
}

void
SessionMux::analyze(const std::shared_ptr<Session> &session)
{
    telemetry::ScopedRegistry scoped(&session->metrics);

    Trace trace;
    DegradeLevel level = DegradeLevel::Normal;
    {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->failed || session->aborted)
            return;
        trace.threads.resize(session->spec.numThreads);
        for (std::uint32_t t = 0; t < session->spec.numThreads; ++t) {
            trace.threads[t].tid = t;
            trace.threads[t].events = std::move(session->decoded[t]);
        }
        level = session->controller.level();
    }

    // Adaptive epoch sizing: pick the coalescing policy the stream will
    // consult per epoch group. The ladder's Grow rungs set a floor, the
    // size target merges marker-dense streams up to the analysis sweet
    // spot, and the force-cycle hook deterministically exercises every
    // width so the differential harness can prove bit-identity across
    // h-changes.
    EpochStream::ReslicePolicy reslice;
    bool degrade_partial = false;
    if (config_.adaptive) {
        degrade_partial = level >= DegradeLevel::Partial;
        if (config_.adaptiveForceCycle) {
            auto group = std::make_shared<std::size_t>(0);
            reslice = [group](EpochId, std::span<const std::size_t>) {
                static constexpr std::size_t kCycle[4] = {1, 2, 4, 8};
                return kCycle[(*group)++ % 4];
            };
        } else {
            const std::size_t floor_k = [&] {
                std::lock_guard<std::mutex> lock(session->mutex);
                return session->controller.coalesceFactor();
            }();
            const ControllerConfig ctl = config_.controller;
            if (floor_k > 1 || ctl.targetEventsPerEpoch > 0) {
                reslice = [floor_k, ctl](
                              EpochId leader,
                              std::span<const std::size_t> events) {
                    std::size_t k = floor_k;
                    if (ctl.targetEventsPerEpoch > 0) {
                        std::size_t sum = 0, grow = 0;
                        while (leader + grow < events.size() &&
                               grow < ctl.maxCoalesce &&
                               sum < ctl.targetEventsPerEpoch)
                            sum += events[leader + grow++];
                        k = std::max(k, grow);
                    }
                    return std::min(k, std::max<std::size_t>(
                                           ctl.maxCoalesce, 1));
                };
            }
        }
    }

    // The pipelined schedule's task graph dispatches on the shared pool;
    // its GraphRunner waits on its own TaskGroup, so concurrent sessions
    // never steal each other's completion signal.
    std::vector<std::uint32_t> spans;
    RemoteReport report =
        analyzeStreaming(session->spec, trace, pool_, config_.batchMode,
                         reslice, reslice ? &spans : nullptr);

    std::uint64_t h_changes = 0;
    std::uint64_t coalesced = 0;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (spans[i] > 1)
            coalesced += spans[i] - 1;
        if (i > 0 && spans[i] != spans[i - 1])
            ++h_changes;
    }

    if (telemetry::enabled()) {
        const MuxMetrics &metrics = MuxMetrics::get();
        auto &r = telemetry::registry();
        r.add(metrics.analysisEpochs, report.epochs);
        r.add(metrics.analysisRecords, report.records.size());
        r.add(metrics.analysisSos, report.sos.size());
        r.add(metrics.coalescedEpochs, coalesced);
        r.add(metrics.hChanges, h_changes);
    }

    {
        std::lock_guard<std::mutex> lock(session->mutex);
        globalBytes_.fetch_sub(session->accounted,
                               std::memory_order_relaxed);
        session->accounted = 0;
    }
    erase(session->id);

    SessionResult result;
    result.sessionId = session->id;
    result.report = std::move(report);
    result.realizedSpans = std::move(spans);
    result.hChanges = h_changes;
    result.degradePartial = degrade_partial;
    result.planFingerprint = session->spec.planFingerprint;
    result.summaryEvents = session->summaryEvents;
    result.metrics = session->metrics.snapshot();
    publish(std::move(result));
}

void
SessionMux::failSession(const std::shared_ptr<Session> &session,
                        RejectCode code, std::string message)
{
    {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->failed || session->aborted)
            return;
        session->failed = true;
        session->pumpScheduled = false;
        session->queue.clear();
        session->queuedBytes = 0;
        globalBytes_.fetch_sub(session->accounted,
                               std::memory_order_relaxed);
        session->accounted = 0;
    }
    erase(session->id);

    SessionResult result;
    result.sessionId = session->id;
    result.failed = true;
    result.reject = {code, std::move(message)};
    result.metrics = session->metrics.snapshot();
    publish(std::move(result));
}

void
SessionMux::publish(SessionResult result)
{
    {
        std::lock_guard<std::mutex> lock(completedMutex_);
        completed_.push_back(std::move(result));
    }
    if (wake_)
        wake_();
}

std::vector<SessionResult>
SessionMux::drainCompleted()
{
    std::lock_guard<std::mutex> lock(completedMutex_);
    std::vector<SessionResult> out;
    out.swap(completed_);
    return out;
}

std::size_t
SessionMux::globalBytes() const
{
    return globalBytes_.load(std::memory_order_relaxed);
}

std::size_t
SessionMux::activeSessions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

bool
SessionMux::stealBudget(std::size_t need)
{
    if (!rebalance_)
        return false;
    // Take at least a quantum so a pressured shard does not come back
    // for every chunk, but never more than the pool holds.
    static constexpr std::size_t kStealQuantum = 64 * 1024;
    std::size_t spare = rebalance_->spare.load(std::memory_order_relaxed);
    for (;;) {
        if (spare == 0)
            return false;
        const std::size_t want = std::max(need, kStealQuantum);
        const std::size_t take = std::min(spare, want);
        if (rebalance_->spare.compare_exchange_weak(
                spare, spare - take, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
            budgetBytes_.fetch_add(take, std::memory_order_relaxed);
            steals_.fetch_add(1, std::memory_order_relaxed);
            stolenBytes_.fetch_add(take, std::memory_order_relaxed);
            return true;
        }
    }
}

void
SessionMux::donateIdleBudget()
{
    if (!rebalance_)
        return;
    // Only a *fully* idle shard donates: no open sessions and nothing
    // accounted. Keeping half the base slice means an arriving session
    // is admitted immediately without a round-trip through the pool.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!sessions_.empty())
            return;
    }
    if (globalBytes_.load(std::memory_order_relaxed) != 0)
        return;
    const std::size_t keep = baseBudgetBytes_ / 2;
    std::size_t budget = budgetBytes_.load(std::memory_order_relaxed);
    for (;;) {
        if (budget <= keep)
            return;
        const std::size_t give = budget - keep;
        if (budgetBytes_.compare_exchange_weak(
                budget, keep, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
            rebalance_->spare.fetch_add(give, std::memory_order_acq_rel);
            donatedBytes_.fetch_add(give, std::memory_order_relaxed);
            return;
        }
    }
}

std::size_t
SessionMux::budgetBytes() const
{
    return budgetBytes_.load(std::memory_order_relaxed);
}

std::uint64_t
SessionMux::budgetSteals() const
{
    return steals_.load(std::memory_order_relaxed);
}

std::size_t
SessionMux::budgetStolenBytes() const
{
    return stolenBytes_.load(std::memory_order_relaxed);
}

std::size_t
SessionMux::budgetDonatedBytes() const
{
    return donatedBytes_.load(std::memory_order_relaxed);
}

DegradeLevel
SessionMux::shardLevel() const
{
    if (!config_.adaptive)
        return DegradeLevel::Normal;
    std::lock_guard<std::mutex> lock(shardCtlMutex_);
    return shardController_.level();
}

bool
SessionMux::shedNewSessions() const
{
    return shardLevel() >= DegradeLevel::Shed;
}

void
SessionMux::tickShardController()
{
    if (!config_.adaptive)
        return;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(shardCtlMutex_);
    if (now - lastCtlTick_ < std::chrono::milliseconds(100))
        return;
    lastCtlTick_ = now;
    // Queue fractions are per-session; what outlives every session is
    // the accounted-bytes occupancy, so the tick judges pressure by the
    // budget alone. An abusive tenant's parked bytes keep the sample
    // hot; an abort that reclaims them lets the ladder walk back down.
    ControllerSample sample;
    const std::size_t budget =
        budgetBytes_.load(std::memory_order_relaxed);
    sample.budgetFraction =
        budget == 0 ? 1.0
                    : static_cast<double>(
                          globalBytes_.load(std::memory_order_relaxed)) /
                          static_cast<double>(budget);
    shardController_.observe(sample);
}

} // namespace bfly::service
