#include "service/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "trace/log_codec.hpp"

namespace bfly::service {

namespace {

/** One LogChunk in flight: which thread's stream, which byte range. */
struct ChunkItem
{
    std::uint32_t tid;
    std::span<const std::uint8_t> log;
};

} // namespace

MonitorClient::MonitorClient(ClientConfig config) : config_(config) {}

MonitorClient::~MonitorClient()
{
    close();
}

void
MonitorClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    parser_ = FrameParser();
}

bool
MonitorClient::connectUnix(const std::string &path)
{
    close();
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        close();
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return false;
    }
    return true;
}

bool
MonitorClient::connectTcp(std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return false;
    }
    return true;
}

bool
MonitorClient::sendAll(const std::vector<std::uint8_t> &bytes,
                       std::string &error)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            error = "send failed (connection lost)";
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
MonitorClient::pump(bool block, std::string &error)
{
    if (block) {
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, config_.ioTimeoutMs);
        if (ready == 0) {
            error = "timed out waiting for server";
            return false;
        }
        if (ready < 0) {
            error = "poll failed";
            return false;
        }
    }
    std::uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
            parser_.feed({buf, static_cast<std::size_t>(n)});
            if (static_cast<std::size_t>(n) < sizeof(buf))
                return true;
            continue;
        }
        if (n == 0) {
            error = "server closed the connection";
            return false;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true; // nothing pending right now
        if (errno == EINTR)
            continue;
        error = "recv failed";
        return false;
    }
}

RunResult
MonitorClient::run(const SessionSpec &spec, const Trace &marked_trace)
{
    RunResult result;
    if (fd_ < 0) {
        result.error = "not connected";
        return result;
    }

    // A send failure usually means the server rejected us and closed;
    // the Reject frame explaining why is still sitting in our receive
    // buffer. Surface it instead of the bare "connection lost".
    auto salvageReject = [&] {
        std::string ignored;
        (void)pump(false, ignored);
        Frame frame;
        while (parser_.next(frame) == DecodeStatus::Ok) {
            if (frame.type != FrameType::Reject)
                continue;
            RejectInfo reject;
            decodeReject(frame.payload, reject);
            result.overloaded = reject.code == RejectCode::Overload;
            result.error = "rejected: " + reject.message;
            return;
        }
    };

    // Encode each thread's stream and carve it into chunk items. The
    // spans view the encoded vectors, which must outlive the send loop.
    std::vector<std::vector<std::uint8_t>> encoded;
    encoded.reserve(marked_trace.numThreads());
    for (const ThreadTrace &thread : marked_trace.threads) {
        encoded.push_back(encodeEvents(thread.events));
        result.logBytesSent += encoded.back().size();
    }

    std::vector<ChunkItem> items;
    const std::size_t chunk =
        std::min(std::max<std::size_t>(config_.chunkBytes, 16),
                 kMaxFramePayload - 64);
    for (std::uint32_t tid = 0; tid < encoded.size(); ++tid) {
        const auto &bytes = encoded[tid];
        for (std::size_t off = 0; off < bytes.size(); off += chunk) {
            const std::size_t n = std::min(chunk, bytes.size() - off);
            items.push_back({tid, {bytes.data() + off, n}});
        }
    }

    if (!sendAll(encodeFramed(FrameType::SessionOpen,
                              encodeSessionOpen(spec)),
                 result.error)) {
        salvageReject();
        return result;
    }

    // Go-back-N send loop: cursor runs over the chunk items plus the
    // trailing TraceEnd (same sequence space). A Busy frame rewinds the
    // cursor; everything the server received out of sequence after the
    // shed was silently dropped, so resending is always safe.
    std::uint64_t cursor = 0;
    const std::uint64_t endSeq = items.size();
    bool allSent = false;

    for (;;) {
        if (!allSent) {
            if (cursor < endSeq) {
                const ChunkItem &item = items[cursor];
                const auto payload =
                    encodeChunk({cursor, item.tid}, item.log);
                if (!sendAll(encodeFramed(FrameType::LogChunk, payload),
                             result.error)) {
                    salvageReject();
                    return result;
                }
                ++cursor;
            } else {
                if (!sendAll(encodeFramed(FrameType::TraceEnd,
                                          encodeTraceEnd(endSeq)),
                             result.error)) {
                    salvageReject();
                    return result;
                }
                allSent = true;
            }
        }

        // While still sending, only drain what is already queued (Busy /
        // Reject arrive asynchronously); once everything is out, block
        // for the report.
        if (!pump(allSent, result.error))
            return result;

        Frame frame;
        for (;;) {
            const DecodeStatus status = parser_.next(frame);
            if (status == DecodeStatus::NeedMore)
                break;
            if (status == DecodeStatus::Corrupt) {
                result.error = "corrupt frame stream from server";
                return result;
            }
            switch (frame.type) {
              case FrameType::SessionAccept: {
                SessionAcceptInfo accept;
                if (decodeSessionAccept(frame.payload, accept) !=
                    DecodeStatus::Ok) {
                    result.error = "bad SessionAccept frame";
                    return result;
                }
                result.sessionId = accept.sessionId;
                result.serverShards = accept.shardCount;
                break;
              }
              case FrameType::Heartbeat:
                break;
              case FrameType::Busy: {
                BusyInfo busy;
                if (decodeBusy(frame.payload, busy) != DecodeStatus::Ok) {
                    result.error = "bad Busy frame";
                    return result;
                }
                if (++result.busyRetries > config_.maxBusyRetries) {
                    result.error = "server overloaded (Busy retry cap)";
                    return result;
                }
                cursor = busy.seq;
                allSent = false;
                if (busy.retryMs > 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(busy.retryMs));
                break;
              }
              case FrameType::Reject: {
                RejectInfo reject;
                decodeReject(frame.payload, reject);
                result.overloaded = reject.code == RejectCode::Overload;
                result.error = "rejected: " + reject.message;
                return result;
              }
              case FrameType::ErrorReport: {
                std::vector<ErrorRecord> records;
                if (decodeErrorReport(frame.payload, records) !=
                    DecodeStatus::Ok) {
                    result.error = "bad ErrorReport frame";
                    return result;
                }
                result.report.records.insert(result.report.records.end(),
                                             records.begin(),
                                             records.end());
                break;
              }
              case FrameType::Sos: {
                std::vector<Addr> addrs;
                if (decodeSos(frame.payload, addrs) != DecodeStatus::Ok) {
                    result.error = "bad Sos frame";
                    return result;
                }
                result.report.sos.insert(result.report.sos.end(),
                                         addrs.begin(), addrs.end());
                break;
              }
              case FrameType::EpochHint: {
                EpochHintInfo hint;
                hint.spans = std::move(result.epochSpans);
                if (decodeEpochHint(frame.payload, hint) !=
                    DecodeStatus::Ok) {
                    result.error = "bad EpochHint frame";
                    return result;
                }
                result.epochSpans = std::move(hint.spans);
                result.effectiveH = hint.effectiveH;
                // Echo the frame back verbatim: the server counts which
                // tenants consumed the sizing hint. Best-effort — the
                // server may already have closed after the Summary, and
                // the hint is advisory, so a failed echo is not a
                // session failure.
                std::string echo_error;
                (void)sendAll(encodeFramed(FrameType::EpochHint,
                                           frame.payload),
                              echo_error);
                break;
              }
              case FrameType::Summary: {
                if (decodeSummary(frame.payload, result.summary) !=
                    DecodeStatus::Ok) {
                    result.error = "bad Summary frame";
                    return result;
                }
                result.report.fingerprint = result.summary.fingerprint;
                result.report.epochs = result.summary.epochs;
                result.report.events = result.summary.events;
                result.report.peakResidentEpochs =
                    result.summary.peakResidentEpochs;
                result.ok = true;
                return result;
              }
              default:
                result.error = "unexpected frame from server";
                return result;
            }
        }
    }
}

std::vector<std::uint8_t>
encodeFramed(FrameType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + kFrameHeaderBytes);
    appendFrame(out, type, payload);
    return out;
}

} // namespace bfly::service
