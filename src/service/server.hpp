/**
 * @file
 * MonitorServer: the multi-tenant butterfly monitoring daemon.
 *
 * The server is a set of N independent *reactors*. Each reactor thread
 * owns a poll loop, a wake pipe, its connection map and a private
 * SessionMux shard — which does all heavy work (decode, pipelined
 * analysis) on the shared WorkerPool. Completions cross back through
 * the shard's queue and the reactor's self-pipe, and the owning loop
 * streams ErrorReport/Sos/Summary frames to the client. Because every
 * socket and session lives on exactly one reactor, the hot path has no
 * cross-reactor locks at all; reactors touch each other only through
 * the accept handoff queue and the shared budget pool.
 *
 * Session placement: reactor 0 polls the shared Unix/TCP listeners.
 * Every accepted connection is preassigned a server-global session id
 * and routed to shard hash(id) % N — adopted locally or handed to the
 * target reactor through a mutex-protected handoff queue plus a wake.
 * With tcpReusePort, each reactor additionally owns its own
 * SO_REUSEPORT TCP listener and the kernel spreads accepts directly
 * (ids stay globally unique; placement is then the kernel's choice).
 *
 * Budgets: the configured global byte budget is sliced evenly across
 * the shards. The slices rebalance through a BudgetPool — a pressured
 * shard steals spare bytes before shedding Busy{GlobalBudget}, an idle
 * reactor donates its excess on the loop tick — so a single hot shard
 * can grow toward the whole budget while sum(slices) + spare stays
 * constant (see session_mux.hpp).
 *
 * Failure modes are explicit, never silent:
 *  - over-budget chunk          -> Busy frame (client rewinds, go-back-N)
 *  - oversized / corrupt / bad  -> Reject frame, session dropped
 *  - slow client (outbound cap) -> truncated report, final Summary frame
 *    with status=Partial, then disconnect
 *  - idle client (timeout set)  -> Reject(Timeout), session aborted
 */

#ifndef BUTTERFLY_SERVICE_SERVER_HPP
#define BUTTERFLY_SERVICE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/worker_pool.hpp"
#include "service/session_mux.hpp"
#include "service/wire.hpp"
#include "telemetry/metrics.hpp"

namespace bfly::service {

struct ServerConfig
{
    /** Unix-domain socket path ("" = no UDS listener). */
    std::string unixPath;
    /** Enable the TCP listener (loopback only). */
    bool tcp = false;
    /** TCP port; 0 = ephemeral (read back via tcpPort()). */
    std::uint16_t tcpPort = 0;
    /** Worker pool size; 0 = hardware concurrency. */
    std::size_t workers = 0;
    /** Reactor shards; each owns a poll loop and a SessionMux slice of
     *  the byte budget. 0 is treated as 1 (the classic single loop). */
    std::size_t shards = 1;
    /** With tcp and shards > 1: give every reactor its own SO_REUSEPORT
     *  listener so the kernel spreads accepts without a handoff hop. */
    bool tcpReusePort = false;
    /** Admission control and shedding knobs. globalBudgetBytes is the
     *  whole-server budget; it is sliced across shards. */
    MuxConfig mux;
    /** Outbound backlog cap per connection: a report that does not fit
     *  is truncated and closed with Summary{status=Partial} — the
     *  slow-client disconnect path. */
    std::size_t maxOutboundBytes = 8 * 1024 * 1024;
    /** Disconnect sessions idle for longer than this (0 = disabled). */
    int idleTimeoutMs = 0;
};

/** One shard's observability snapshot (all counters monotonic except
 *  the byte gauges). */
struct ShardStats
{
    std::size_t shard = 0;
    std::uint64_t sessionsAssigned = 0; ///< connections adopted
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t busySent = 0;
    std::uint64_t partialReports = 0;
    std::size_t globalBytes = 0;     ///< bytes accounted right now
    std::size_t activeSessions = 0;  ///< open sessions right now
    std::size_t budgetBytes = 0;     ///< current (rebalanced) slice
    std::uint64_t budgetSteals = 0;
    std::size_t budgetStolenBytes = 0;
    std::size_t budgetDonatedBytes = 0;
    std::uint64_t sessionsShed = 0;  ///< SessionOpens refused (Overload)
    std::uint64_t hintEchoes = 0;    ///< EpochHint frames echoed back
    DegradeLevel degradeLevel = DegradeLevel::Normal;
};

class MonitorServer
{
  public:
    explicit MonitorServer(ServerConfig config);
    ~MonitorServer();

    MonitorServer(const MonitorServer &) = delete;
    MonitorServer &operator=(const MonitorServer &) = delete;

    /** Bind + listen + spawn the reactor loops. False on bind failure. */
    bool start();

    /** Stop accepting, drop connections, join every reactor loop. */
    void stop();

    /** Bound TCP port (valid after start() when tcp is enabled). */
    std::uint16_t tcpPort() const { return boundTcpPort_; }

    /** Reactor count actually running (>= 1 once started). */
    std::size_t shards() const { return reactors_.size(); }

    /** Shard a session id maps to on the shared-listener path. Exposed
     *  so tests can pick ids that collide on / span shards. */
    static std::size_t shardOfSession(std::uint64_t session_id,
                                      std::size_t shards);

    // Observability (test + CLI surface); sums over all shards.
    std::uint64_t sessionsCompleted() const;
    std::uint64_t sessionsFailed() const;
    std::uint64_t busySent() const;
    std::uint64_t partialReports() const;
    std::uint64_t sessionsShed() const;
    std::uint64_t hintEchoes() const;
    std::uint64_t elisionSessions() const;
    std::uint64_t summaryEventsSeen() const;
    std::size_t globalBytes() const;
    std::size_t activeSessions() const;

    /** Per-shard counters (index == shard). */
    std::vector<ShardStats> shardStats() const;

    /** Telemetry snapshot of the most recently completed session's
     *  private registry (multi-tenancy observability). */
    telemetry::RegistrySnapshot lastSessionMetrics() const;

  private:
    struct Connection
    {
        int fd = -1;
        FrameParser parser;
        std::vector<std::uint8_t> out;
        std::size_t outPos = 0;
        bool wantClose = false; ///< close once the out buffer drains
        /** Nonzero: the report carried EpochHint frames, so hold the
         *  drained connection open until this deadline to harvest the
         *  client's advisory echo (loopback clients lose the race
         *  against an immediate close). Peer close or the echo itself
         *  ends the linger early. */
        std::int64_t lingerUntilMs = 0;
        bool open = false;      ///< SessionOpen accepted
        std::uint64_t sessionId = 0;
        /** Server-global id preassigned at accept; becomes sessionId
         *  when the SessionOpen frame arrives. */
        std::uint64_t assignedId = 0;
        std::uint64_t busyCount = 0;
        std::int64_t lastActivityMs = 0;
    };

    /** One event-loop shard. Everything except the handoff queue and
     *  the atomics is owned by its loop thread alone. */
    struct Reactor
    {
        std::size_t index = 0;
        int wakeFds[2] = {-1, -1};
        int tcpFd = -1; ///< own SO_REUSEPORT listener, else -1
        std::unique_ptr<SessionMux> mux;
        std::thread thread;

        std::map<int, Connection> connections;    ///< loop thread only
        std::map<std::uint64_t, int> sessionToFd; ///< loop thread only

        /** Accepted fds routed here by another reactor. */
        std::mutex handoffMutex;
        std::vector<std::pair<int, std::uint64_t>> handoff;

        std::atomic<std::uint64_t> assigned{0};
        std::atomic<std::uint64_t> completed{0};
        std::atomic<std::uint64_t> failed{0};
        std::atomic<std::uint64_t> busySent{0};
        std::atomic<std::uint64_t> partial{0};
        std::atomic<std::uint64_t> shed{0};
        std::atomic<std::uint64_t> hintEchoes{0};
        /** v4: sessions that declared a nonzero plan fingerprint. */
        std::atomic<std::uint64_t> elisionSessions{0};
        /** v4: SiteSummary events decoded across completed sessions. */
        std::atomic<std::uint64_t> summaryEvents{0};
    };

    void reactorLoop(Reactor &r);
    void acceptAll(Reactor &r, int listen_fd);
    void adoptConnection(Reactor &r, int fd, std::uint64_t assigned_id);
    void adoptHandoffs(Reactor &r);
    void handleReadable(Reactor &r, Connection &conn);
    void handleFrame(Reactor &r, Connection &conn, const Frame &frame);
    void flush(Connection &conn);
    void drainCompletions(Reactor &r);
    void sendReport(Reactor &r, Connection &conn,
                    const SessionResult &result);
    void sendFrame(Connection &conn, FrameType type,
                   std::span<const std::uint8_t> payload);
    void closeConnection(Reactor &r, int fd, bool abort_session);
    void checkIdle(Reactor &r);
    void wake(Reactor &r);

    ServerConfig config_;
    int unixFd_ = -1;
    int tcpFd_ = -1; ///< shared listener (reactor 0 polls it)
    std::uint16_t boundTcpPort_ = 0;

    WorkerPool pool_;
    BudgetPool budgetPool_;
    std::vector<std::unique_ptr<Reactor>> reactors_;
    std::atomic<std::uint64_t> nextSessionId_{1};

    std::atomic<bool> stop_{false};
    bool started_ = false;

    mutable std::mutex metricsMutex_;
    telemetry::RegistrySnapshot lastSessionMetrics_;
};

} // namespace bfly::service

#endif // BUTTERFLY_SERVICE_SERVER_HPP
