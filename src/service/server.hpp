/**
 * @file
 * MonitorServer: the multi-tenant butterfly monitoring daemon.
 *
 * One event-loop thread owns every socket: it accepts connections on a
 * TCP (loopback) and/or Unix-domain listener, splits inbound bytes into
 * frames, and feeds the SessionMux — which does all heavy work (decode,
 * pipelined analysis) on the shared WorkerPool. Completions cross back
 * through the mux's queue and a self-pipe that wakes poll(), and the
 * loop streams ErrorReport/Sos/Summary frames to the client.
 *
 * Failure modes are explicit, never silent:
 *  - over-budget chunk          -> Busy frame (client rewinds, go-back-N)
 *  - oversized / corrupt / bad  -> Reject frame, session dropped
 *  - slow client (outbound cap) -> truncated report, final Summary frame
 *    with status=Partial, then disconnect
 *  - idle client (timeout set)  -> Reject(Timeout), session aborted
 */

#ifndef BUTTERFLY_SERVICE_SERVER_HPP
#define BUTTERFLY_SERVICE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/worker_pool.hpp"
#include "service/session_mux.hpp"
#include "service/wire.hpp"
#include "telemetry/metrics.hpp"

namespace bfly::service {

struct ServerConfig
{
    /** Unix-domain socket path ("" = no UDS listener). */
    std::string unixPath;
    /** Enable the TCP listener (loopback only). */
    bool tcp = false;
    /** TCP port; 0 = ephemeral (read back via tcpPort()). */
    std::uint16_t tcpPort = 0;
    /** Worker pool size; 0 = hardware concurrency. */
    std::size_t workers = 0;
    /** Admission control and shedding knobs. */
    MuxConfig mux;
    /** Outbound backlog cap per connection: a report that does not fit
     *  is truncated and closed with Summary{status=Partial} — the
     *  slow-client disconnect path. */
    std::size_t maxOutboundBytes = 8 * 1024 * 1024;
    /** Disconnect sessions idle for longer than this (0 = disabled). */
    int idleTimeoutMs = 0;
};

class MonitorServer
{
  public:
    explicit MonitorServer(ServerConfig config);
    ~MonitorServer();

    MonitorServer(const MonitorServer &) = delete;
    MonitorServer &operator=(const MonitorServer &) = delete;

    /** Bind + listen + spawn the event loop. False on bind failure. */
    bool start();

    /** Stop accepting, drop connections, drain jobs, join the loop. */
    void stop();

    /** Bound TCP port (valid after start() when tcp is enabled). */
    std::uint16_t tcpPort() const { return boundTcpPort_; }

    // Observability (test + CLI surface).
    std::uint64_t sessionsCompleted() const { return completed_.load(); }
    std::uint64_t sessionsFailed() const { return failed_.load(); }
    std::uint64_t busySent() const { return busySent_.load(); }
    std::uint64_t partialReports() const { return partial_.load(); }
    std::size_t globalBytes() const { return mux_.globalBytes(); }
    std::size_t activeSessions() const { return mux_.activeSessions(); }

    /** Telemetry snapshot of the most recently completed session's
     *  private registry (multi-tenancy observability). */
    telemetry::RegistrySnapshot lastSessionMetrics() const;

  private:
    struct Connection
    {
        int fd = -1;
        FrameParser parser;
        std::vector<std::uint8_t> out;
        std::size_t outPos = 0;
        bool wantClose = false; ///< close once the out buffer drains
        bool open = false;      ///< SessionOpen accepted
        std::uint64_t sessionId = 0;
        std::uint64_t busyCount = 0;
        std::int64_t lastActivityMs = 0;
    };

    void eventLoop();
    void acceptAll(int listen_fd);
    void handleReadable(Connection &conn);
    void handleFrame(Connection &conn, const Frame &frame);
    void flush(Connection &conn);
    void drainCompletions();
    void sendReport(Connection &conn, const SessionResult &result);
    void sendFrame(Connection &conn, FrameType type,
                   std::span<const std::uint8_t> payload);
    void closeConnection(int fd, bool abort_session);
    void checkIdle();
    void wake();

    ServerConfig config_;
    int wakeFds_[2] = {-1, -1};
    int unixFd_ = -1;
    int tcpFd_ = -1;
    std::uint16_t boundTcpPort_ = 0;

    WorkerPool pool_;
    SessionMux mux_;

    std::thread loop_;
    std::atomic<bool> stop_{false};
    bool started_ = false;

    std::map<int, Connection> connections_;        ///< loop thread only
    std::map<std::uint64_t, int> sessionToFd_;     ///< loop thread only

    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> busySent_{0};
    std::atomic<std::uint64_t> partial_{0};

    mutable std::mutex metricsMutex_;
    telemetry::RegistrySnapshot lastSessionMetrics_;
};

} // namespace bfly::service

#endif // BUTTERFLY_SERVICE_SERVER_HPP
