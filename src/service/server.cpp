#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hpp"

namespace bfly::service {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kRecordsPerFrame = 4096;
constexpr std::size_t kSosPerFrame = 8192;

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::size_t
defaultWorkers(std::size_t configured)
{
    if (configured > 0)
        return configured;
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 2;
}

} // namespace

MonitorServer::MonitorServer(ServerConfig config)
    : config_(std::move(config)), pool_(defaultWorkers(config_.workers)),
      mux_(pool_, config_.mux, [this] { wake(); })
{}

MonitorServer::~MonitorServer()
{
    stop();
}

void
MonitorServer::wake()
{
    if (wakeFds_[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeFds_[1], &byte, 1);
    }
}

bool
MonitorServer::start()
{
    if (started_)
        return true;
    if (::pipe(wakeFds_) != 0)
        return false;
    setNonBlocking(wakeFds_[0]);
    setNonBlocking(wakeFds_[1]);

    if (!config_.unixPath.empty()) {
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd_ < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.unixPath.size() >= sizeof(addr.sun_path))
            return false;
        std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(config_.unixPath.c_str());
        if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(unixFd_, 64) != 0)
            return false;
        setNonBlocking(unixFd_);
    }

    if (config_.tcp) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0)
            return false;
        const int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(config_.tcpPort);
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(tcpFd_, 64) != 0)
            return false;
        socklen_t len = sizeof(addr);
        if (::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0)
            boundTcpPort_ = ntohs(addr.sin_port);
        setNonBlocking(tcpFd_);
    }

    stop_.store(false, std::memory_order_release);
    loop_ = std::thread([this] { eventLoop(); });
    started_ = true;
    return true;
}

void
MonitorServer::stop()
{
    if (!started_)
        return;
    stop_.store(true, std::memory_order_release);
    wake();
    loop_.join();
    started_ = false;

    for (auto &[fd, conn] : connections_)
        ::close(fd);
    connections_.clear();
    sessionToFd_.clear();
    for (int *fd : {&unixFd_, &tcpFd_, &wakeFds_[0], &wakeFds_[1]}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
MonitorServer::eventLoop()
{
    std::vector<pollfd> fds;
    while (!stop_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back({wakeFds_[0], POLLIN, 0});
        if (unixFd_ >= 0)
            fds.push_back({unixFd_, POLLIN, 0});
        if (tcpFd_ >= 0)
            fds.push_back({tcpFd_, POLLIN, 0});
        const std::size_t firstConn = fds.size();
        for (auto &[fd, conn] : connections_) {
            short events = POLLIN;
            if (conn.out.size() > conn.outPos)
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        const int timeout = config_.idleTimeoutMs > 0
                                ? std::min(100, config_.idleTimeoutMs)
                                : 100;
        const int ready = ::poll(fds.data(), fds.size(), timeout);
        if (stop_.load(std::memory_order_acquire))
            break;
        if (ready < 0)
            continue; // EINTR

        if (fds[0].revents & POLLIN) {
            char buf[256];
            while (::read(wakeFds_[0], buf, sizeof(buf)) > 0) {
            }
        }
        // Always drain completions: the pipe is only a wake hint.
        drainCompletions();

        for (std::size_t i = 1; i < firstConn; ++i)
            if (fds[i].revents & POLLIN)
                acceptAll(fds[i].fd);

        std::vector<int> doomed;
        for (std::size_t i = firstConn; i < fds.size(); ++i) {
            auto it = connections_.find(fds[i].fd);
            if (it == connections_.end())
                continue;
            Connection &conn = it->second;
            if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
                doomed.push_back(conn.fd);
                continue;
            }
            if (fds[i].revents & POLLIN)
                handleReadable(conn);
            if (fds[i].revents & POLLOUT)
                flush(conn);
            if (conn.fd < 0 ||
                (conn.wantClose && conn.out.size() == conn.outPos))
                doomed.push_back(it->first);
        }
        for (int fd : doomed)
            closeConnection(fd, true);

        if (config_.idleTimeoutMs > 0)
            checkIdle();
    }
}

void
MonitorServer::acceptAll(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        Connection conn;
        conn.fd = fd;
        conn.lastActivityMs = nowMs();
        connections_.emplace(fd, std::move(conn));
    }
}

void
MonitorServer::handleReadable(Connection &conn)
{
    std::uint8_t buf[kReadChunk];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            // Peer closed: anything not yet completed is abandoned.
            conn.wantClose = true;
            conn.out.clear();
            conn.outPos = 0;
            return;
        }
        if (n < 0)
            break; // EAGAIN (or a real error surfacing via poll later)
        conn.lastActivityMs = nowMs();
        conn.parser.feed({buf, static_cast<std::size_t>(n)});
        if (static_cast<std::size_t>(n) < sizeof(buf))
            break;
    }

    Frame frame;
    for (;;) {
        const DecodeStatus status = conn.parser.next(frame);
        if (status == DecodeStatus::NeedMore)
            return;
        if (status == DecodeStatus::Corrupt) {
            const auto payload = encodeReject(
                {RejectCode::Protocol, "unparseable frame stream"});
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            return;
        }
        handleFrame(conn, frame);
        if (conn.wantClose)
            return;
    }
}

void
MonitorServer::handleFrame(Connection &conn, const Frame &frame)
{
    auto reject = [&](RejectCode code, const char *message) {
        const auto payload = encodeReject({code, message});
        sendFrame(conn, FrameType::Reject, payload);
        conn.wantClose = true;
    };

    switch (frame.type) {
      case FrameType::SessionOpen: {
        if (conn.open) {
            reject(RejectCode::Protocol, "session already open");
            return;
        }
        SessionSpec spec;
        if (decodeSessionOpen(frame.payload, spec) != DecodeStatus::Ok ||
            spec.lifeguard > 5 || spec.memModel > 1) {
            reject(RejectCode::Protocol, "bad SessionOpen");
            return;
        }
        conn.sessionId = mux_.open(spec);
        conn.open = true;
        sessionToFd_[conn.sessionId] = conn.fd;
        const auto payload = encodeSessionAccept(
            {conn.sessionId, config_.mux.sessionQueueBytes});
        sendFrame(conn, FrameType::SessionAccept, payload);
        return;
      }
      case FrameType::LogChunk: {
        if (!conn.open) {
            reject(RejectCode::Protocol, "chunk before SessionOpen");
            return;
        }
        ChunkHeader header;
        std::span<const std::uint8_t> log;
        if (decodeChunk(frame.payload, header, log) != DecodeStatus::Ok) {
            reject(RejectCode::Protocol, "bad LogChunk");
            return;
        }
        BusyInfo busy;
        RejectInfo why;
        switch (mux_.submitChunk(conn.sessionId, header, log, busy, why)) {
          case Admission::Accepted:
          case Admission::Ignored:
            return;
          case Admission::Busy: {
            ++conn.busyCount;
            busySent_.fetch_add(1, std::memory_order_relaxed);
            const auto payload = encodeBusy(busy);
            sendFrame(conn, FrameType::Busy, payload);
            return;
          }
          case Admission::Rejected: {
            const auto payload = encodeReject(why);
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            failed_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        return;
      }
      case FrameType::TraceEnd: {
        if (!conn.open) {
            reject(RejectCode::Protocol, "TraceEnd before SessionOpen");
            return;
        }
        std::uint64_t seq = 0;
        if (decodeTraceEnd(frame.payload, seq) != DecodeStatus::Ok) {
            reject(RejectCode::Protocol, "bad TraceEnd");
            return;
        }
        BusyInfo busy;
        RejectInfo why;
        switch (mux_.submitTraceEnd(conn.sessionId, seq, busy, why)) {
          case Admission::Rejected: {
            const auto payload = encodeReject(why);
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            return;
          }
          default:
            return;
        }
      }
      case FrameType::Heartbeat:
        sendFrame(conn, FrameType::Heartbeat, {});
        return;
      default:
        reject(RejectCode::Protocol, "unexpected frame type");
        return;
    }
}

void
MonitorServer::drainCompletions()
{
    for (SessionResult &result : mux_.drainCompleted()) {
        {
            std::lock_guard<std::mutex> lock(metricsMutex_);
            lastSessionMetrics_ = result.metrics;
        }
        auto it = sessionToFd_.find(result.sessionId);
        if (it == sessionToFd_.end())
            continue; // connection already gone
        auto cit = connections_.find(it->second);
        sessionToFd_.erase(it);
        if (cit == connections_.end())
            continue;
        Connection &conn = cit->second;
        if (result.failed) {
            failed_.fetch_add(1, std::memory_order_relaxed);
            const auto payload = encodeReject(result.reject);
            sendFrame(conn, FrameType::Reject, payload);
        } else {
            completed_.fetch_add(1, std::memory_order_relaxed);
            sendReport(conn, result);
        }
        conn.wantClose = true;
        flush(conn);
    }
}

void
MonitorServer::sendReport(Connection &conn, const SessionResult &result)
{
    const RemoteReport &report = result.report;
    // Frames that would overrun the outbound cap are dropped and the
    // Summary downgraded to Partial: the slow-client path. The Summary
    // itself always fits (the cap is clamped far above one frame).
    const std::size_t cap =
        std::max<std::size_t>(config_.maxOutboundBytes, 4096);
    bool truncated = false;

    auto room = [&](std::size_t bytes) {
        return conn.out.size() - conn.outPos + bytes + kFrameHeaderBytes <=
               cap - 1024; // reserve space for the Summary frame
    };

    for (std::size_t i = 0; i < report.records.size();
         i += kRecordsPerFrame) {
        const std::size_t n =
            std::min(kRecordsPerFrame, report.records.size() - i);
        const auto payload = encodeErrorReport(
            {report.records.data() + i, n});
        if (!room(payload.size())) {
            truncated = true;
            break;
        }
        sendFrame(conn, FrameType::ErrorReport, payload);
    }
    if (!truncated) {
        for (std::size_t i = 0; i < report.sos.size(); i += kSosPerFrame) {
            const std::size_t n =
                std::min(kSosPerFrame, report.sos.size() - i);
            const auto payload = encodeSos({report.sos.data() + i, n});
            if (!room(payload.size())) {
                truncated = true;
                break;
            }
            sendFrame(conn, FrameType::Sos, payload);
        }
    }

    SummaryInfo summary;
    summary.status =
        truncated ? SummaryStatus::Partial : SummaryStatus::Complete;
    summary.epochs = report.epochs;
    summary.events = report.events;
    summary.recordsTotal = report.records.size();
    summary.sosTotal = report.sos.size();
    summary.busyCount = conn.busyCount;
    summary.peakResidentEpochs = report.peakResidentEpochs;
    summary.fingerprint = report.fingerprint;
    const auto payload = encodeSummary(summary);
    sendFrame(conn, FrameType::Summary, payload);
    if (truncated)
        partial_.fetch_add(1, std::memory_order_relaxed);
}

void
MonitorServer::sendFrame(Connection &conn, FrameType type,
                         std::span<const std::uint8_t> payload)
{
    appendFrame(conn.out, type, payload);
    flush(conn);
}

void
MonitorServer::flush(Connection &conn)
{
    while (conn.outPos < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outPos,
                   conn.out.size() - conn.outPos, MSG_NOSIGNAL);
        if (n <= 0)
            break; // EAGAIN: poll() will raise POLLOUT
        conn.outPos += static_cast<std::size_t>(n);
    }
    if (conn.outPos == conn.out.size()) {
        conn.out.clear();
        conn.outPos = 0;
    } else if (conn.outPos > kReadChunk) {
        conn.out.erase(conn.out.begin(),
                       conn.out.begin() +
                           static_cast<std::ptrdiff_t>(conn.outPos));
        conn.outPos = 0;
    }
}

void
MonitorServer::closeConnection(int fd, bool abort_session)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    Connection &conn = it->second;
    if (conn.open && abort_session) {
        // Abort is a no-op for sessions the mux already completed.
        mux_.abort(conn.sessionId);
        sessionToFd_.erase(conn.sessionId);
    }
    ::close(fd);
    connections_.erase(it);
}

void
MonitorServer::checkIdle()
{
    const std::int64_t now = nowMs();
    std::vector<int> doomed;
    for (auto &[fd, conn] : connections_) {
        if (conn.wantClose)
            continue;
        if (now - conn.lastActivityMs > config_.idleTimeoutMs) {
            const auto payload = encodeReject(
                {RejectCode::Timeout, "session idle too long"});
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            if (conn.out.size() == conn.outPos)
                doomed.push_back(fd);
        }
    }
    for (int fd : doomed)
        closeConnection(fd, true);
}

telemetry::RegistrySnapshot
MonitorServer::lastSessionMetrics() const
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    return lastSessionMetrics_;
}

} // namespace bfly::service
