#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hpp"

namespace bfly::service {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kRecordsPerFrame = 4096;
constexpr std::size_t kSosPerFrame = 8192;
constexpr std::size_t kSpansPerFrame = 8192;
/** How long a drained connection whose report carried EpochHint frames
 *  stays open waiting for the client's advisory echo. Bounded: a client
 *  that neither echoes nor closes costs one linger, not a leak. */
constexpr std::int64_t kEchoLingerMs = 250;

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::size_t
defaultWorkers(std::size_t configured)
{
    if (configured > 0)
        return configured;
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 2;
}

} // namespace

std::size_t
MonitorServer::shardOfSession(std::uint64_t session_id, std::size_t shards)
{
    if (shards <= 1)
        return 0;
    // splitmix64 finalizer: adjacent ids land on well-spread shards.
    std::uint64_t x = session_id + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards);
}

MonitorServer::MonitorServer(ServerConfig config)
    : config_(std::move(config)), pool_(defaultWorkers(config_.workers))
{
    if (config_.shards == 0)
        config_.shards = 1;
}

MonitorServer::~MonitorServer()
{
    stop();
    // Reactor teardown: the mux drains its in-flight jobs (which may
    // still poke the wake pipe) before the pipe fds close.
    for (auto &r : reactors_) {
        r->mux.reset();
        for (int fd : {r->wakeFds[0], r->wakeFds[1], r->tcpFd})
            if (fd >= 0)
                ::close(fd);
    }
    reactors_.clear();
}

void
MonitorServer::wake(Reactor &r)
{
    if (r.wakeFds[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(r.wakeFds[1], &byte, 1);
    }
}

bool
MonitorServer::start()
{
    if (started_)
        return true;

    const std::size_t nshards = config_.shards;
    const bool reuseport =
        config_.tcp && config_.tcpReusePort && nshards > 1;

    if (!config_.unixPath.empty()) {
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd_ < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.unixPath.size() >= sizeof(addr.sun_path))
            return false;
        std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(config_.unixPath.c_str());
        if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(unixFd_, 64) != 0)
            return false;
        setNonBlocking(unixFd_);
    }

    if (config_.tcp && !reuseport) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0)
            return false;
        const int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(config_.tcpPort);
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(tcpFd_, 64) != 0)
            return false;
        socklen_t len = sizeof(addr);
        if (::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0)
            boundTcpPort_ = ntohs(addr.sin_port);
        setNonBlocking(tcpFd_);
    }

    // (Re)build the reactors. Destroying old ones first drains any
    // jobs a previous run left in flight and releases their pipes.
    for (auto &r : reactors_) {
        r->mux.reset();
        for (int fd : {r->wakeFds[0], r->wakeFds[1], r->tcpFd})
            if (fd >= 0)
                ::close(fd);
    }
    reactors_.clear();
    budgetPool_.spare.store(0, std::memory_order_relaxed);

    const std::size_t total = config_.mux.globalBudgetBytes;
    const std::size_t base = total / nshards;
    for (std::size_t i = 0; i < nshards; ++i) {
        auto r = std::make_unique<Reactor>();
        r->index = i;
        if (::pipe(r->wakeFds) != 0)
            return false;
        setNonBlocking(r->wakeFds[0]);
        setNonBlocking(r->wakeFds[1]);

        const std::size_t slice = base + (i == 0 ? total % nshards : 0);
        Reactor *rp = r.get();
        r->mux = std::make_unique<SessionMux>(
            pool_, config_.mux, [this, rp] { wake(*rp); },
            nshards > 1 ? slice : 0,
            nshards > 1 ? &budgetPool_ : nullptr);

        if (reuseport) {
            r->tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (r->tcpFd < 0)
                return false;
            const int one = 1;
            ::setsockopt(r->tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            ::setsockopt(r->tcpFd, SOL_SOCKET, SO_REUSEPORT, &one,
                         sizeof(one));
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            // After the first ephemeral bind, siblings join its port.
            addr.sin_port = htons(boundTcpPort_ > 0 ? boundTcpPort_
                                                    : config_.tcpPort);
            if (::bind(r->tcpFd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) != 0 ||
                ::listen(r->tcpFd, 64) != 0)
                return false;
            socklen_t len = sizeof(addr);
            if (boundTcpPort_ == 0 &&
                ::getsockname(r->tcpFd,
                              reinterpret_cast<sockaddr *>(&addr),
                              &len) == 0)
                boundTcpPort_ = ntohs(addr.sin_port);
            setNonBlocking(r->tcpFd);
        }
        reactors_.push_back(std::move(r));
    }

    stop_.store(false, std::memory_order_release);
    for (auto &r : reactors_) {
        Reactor *rp = r.get();
        r->thread = std::thread([this, rp] { reactorLoop(*rp); });
    }
    started_ = true;
    return true;
}

void
MonitorServer::stop()
{
    if (!started_)
        return;
    stop_.store(true, std::memory_order_release);
    for (auto &r : reactors_)
        wake(*r);
    for (auto &r : reactors_)
        r->thread.join();
    started_ = false;

    for (auto &r : reactors_) {
        for (auto &[fd, conn] : r->connections)
            ::close(fd);
        r->connections.clear();
        r->sessionToFd.clear();
        std::lock_guard<std::mutex> lock(r->handoffMutex);
        for (auto &[fd, id] : r->handoff)
            ::close(fd);
        r->handoff.clear();
        // Wake pipe and reuseport listener stay open until the next
        // start() or destruction: in-flight mux jobs may still wake us,
        // and the aggregate counters must survive a stop() for the CLI
        // exit stats.
    }
    for (int *fd : {&unixFd_, &tcpFd_}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
MonitorServer::reactorLoop(Reactor &r)
{
    std::vector<pollfd> fds;
    while (!stop_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back({r.wakeFds[0], POLLIN, 0});
        if (r.index == 0) {
            if (unixFd_ >= 0)
                fds.push_back({unixFd_, POLLIN, 0});
            if (tcpFd_ >= 0)
                fds.push_back({tcpFd_, POLLIN, 0});
        }
        if (r.tcpFd >= 0)
            fds.push_back({r.tcpFd, POLLIN, 0});
        const std::size_t firstConn = fds.size();
        for (auto &[fd, conn] : r.connections) {
            short events = POLLIN;
            if (conn.out.size() > conn.outPos)
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        const int timeout = config_.idleTimeoutMs > 0
                                ? std::min(100, config_.idleTimeoutMs)
                                : 100;
        const int ready = ::poll(fds.data(), fds.size(), timeout);
        if (stop_.load(std::memory_order_acquire))
            break;
        if (ready < 0)
            continue; // EINTR

        if (fds[0].revents & POLLIN) {
            char buf[256];
            while (::read(r.wakeFds[0], buf, sizeof(buf)) > 0) {
            }
        }
        // Always drain handoffs and completions: the pipe is only a
        // wake hint.
        adoptHandoffs(r);
        drainCompletions(r);

        for (std::size_t i = 1; i < firstConn; ++i)
            if (fds[i].revents & POLLIN)
                acceptAll(r, fds[i].fd);

        std::vector<int> doomed;
        for (std::size_t i = firstConn; i < fds.size(); ++i) {
            auto it = r.connections.find(fds[i].fd);
            if (it == r.connections.end())
                continue;
            Connection &conn = it->second;
            if (fds[i].revents & (POLLERR | POLLNVAL)) {
                doomed.push_back(conn.fd);
                continue;
            }
            // POLLHUP often arrives together with POLLIN when the peer
            // wrote its last frames and closed in one breath; the bytes
            // are still buffered in the kernel, so read first and let
            // handleReadable's EOF path parse them (a final EpochHint
            // echo rides ahead of the FIN). Doom on a bare HUP only.
            if (fds[i].revents & POLLIN)
                handleReadable(r, conn);
            else if (fds[i].revents & POLLHUP) {
                doomed.push_back(conn.fd);
                continue;
            }
            if (fds[i].revents & POLLOUT)
                flush(conn);
            const bool drained = conn.out.size() == conn.outPos;
            if (conn.fd < 0 || (conn.wantClose && drained) ||
                (conn.lingerUntilMs != 0 && drained &&
                 nowMs() >= conn.lingerUntilMs))
                doomed.push_back(it->first);
        }
        for (int fd : doomed)
            closeConnection(r, fd, true);

        if (config_.idleTimeoutMs > 0)
            checkIdle(r);

        // Idle tick of the budget rebalance: a shard with nothing to
        // serve returns its excess slice to the shared pool. The shard
        // ladder ticks here too, so a Shed rung entered under abuse can
        // recover even after the abusive sessions are gone.
        r.mux->donateIdleBudget();
        r.mux->tickShardController();
    }
}

void
MonitorServer::adoptConnection(Reactor &r, int fd, std::uint64_t assigned_id)
{
    setNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    conn.assignedId = assigned_id;
    conn.lastActivityMs = nowMs();
    r.connections.emplace(fd, std::move(conn));
    r.assigned.fetch_add(1, std::memory_order_relaxed);
}

void
MonitorServer::adoptHandoffs(Reactor &r)
{
    std::vector<std::pair<int, std::uint64_t>> pending;
    {
        std::lock_guard<std::mutex> lock(r.handoffMutex);
        pending.swap(r.handoff);
    }
    for (auto &[fd, id] : pending)
        adoptConnection(r, fd, id);
}

void
MonitorServer::acceptAll(Reactor &r, int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return;
        const std::uint64_t id =
            nextSessionId_.fetch_add(1, std::memory_order_relaxed);
        // A reuseport listener is already the kernel's placement; the
        // shared listeners place by session-id hash.
        const std::size_t target =
            listen_fd == r.tcpFd ? r.index
                                 : shardOfSession(id, reactors_.size());
        if (target == r.index) {
            adoptConnection(r, fd, id);
            continue;
        }
        Reactor &t = *reactors_[target];
        {
            std::lock_guard<std::mutex> lock(t.handoffMutex);
            t.handoff.emplace_back(fd, id);
        }
        wake(t);
    }
}

void
MonitorServer::handleReadable(Reactor &r, Connection &conn)
{
    std::uint8_t buf[kReadChunk];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            // Peer closed: anything not yet completed is abandoned, but
            // bytes that rode ahead of the EOF (a final EpochHint echo)
            // still get parsed below.
            conn.wantClose = true;
            conn.out.clear();
            conn.outPos = 0;
            break;
        }
        if (n < 0)
            break; // EAGAIN (or a real error surfacing via poll later)
        conn.lastActivityMs = nowMs();
        conn.parser.feed({buf, static_cast<std::size_t>(n)});
        if (static_cast<std::size_t>(n) < sizeof(buf))
            break;
    }

    Frame frame;
    for (;;) {
        const DecodeStatus status = conn.parser.next(frame);
        if (status == DecodeStatus::NeedMore)
            return;
        if (status == DecodeStatus::Corrupt) {
            const auto payload = encodeReject(
                {RejectCode::Protocol, "unparseable frame stream"});
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            return;
        }
        handleFrame(r, conn, frame);
        if (conn.wantClose)
            return;
    }
}

void
MonitorServer::handleFrame(Reactor &r, Connection &conn, const Frame &frame)
{
    auto reject = [&](RejectCode code, const char *message) {
        const auto payload = encodeReject({code, message});
        sendFrame(conn, FrameType::Reject, payload);
        conn.wantClose = true;
    };

    switch (frame.type) {
      case FrameType::SessionOpen: {
        if (conn.open) {
            reject(RejectCode::Protocol, "session already open");
            return;
        }
        SessionSpec spec;
        if (decodeSessionOpen(frame.payload, spec) != DecodeStatus::Ok ||
            spec.lifeguard > 5 || spec.memModel > 1) {
            reject(RejectCode::Protocol, "bad SessionOpen");
            return;
        }
        if (r.mux->shedNewSessions()) {
            // Top rung of the graduated ladder: the shard is saturated
            // past what coarser epochs, Partial summaries and Busy
            // back-pressure can absorb, so new tenants are turned away
            // while existing ones drain.
            r.shed.fetch_add(1, std::memory_order_relaxed);
            reject(RejectCode::Overload, "shard shedding load");
            return;
        }
        conn.sessionId = r.mux->open(spec, conn.assignedId);
        conn.open = true;
        r.sessionToFd[conn.sessionId] = conn.fd;
        const auto payload = encodeSessionAccept(
            {conn.sessionId, config_.mux.sessionQueueBytes,
             static_cast<std::uint64_t>(reactors_.size())});
        sendFrame(conn, FrameType::SessionAccept, payload);
        return;
      }
      case FrameType::LogChunk: {
        if (!conn.open) {
            reject(RejectCode::Protocol, "chunk before SessionOpen");
            return;
        }
        ChunkHeader header;
        std::span<const std::uint8_t> log;
        if (decodeChunk(frame.payload, header, log) != DecodeStatus::Ok) {
            reject(RejectCode::Protocol, "bad LogChunk");
            return;
        }
        BusyInfo busy;
        RejectInfo why;
        switch (
            r.mux->submitChunk(conn.sessionId, header, log, busy, why)) {
          case Admission::Accepted:
          case Admission::Ignored:
            return;
          case Admission::Busy: {
            ++conn.busyCount;
            r.busySent.fetch_add(1, std::memory_order_relaxed);
            const auto payload = encodeBusy(busy);
            sendFrame(conn, FrameType::Busy, payload);
            return;
          }
          case Admission::Rejected: {
            const auto payload = encodeReject(why);
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            r.failed.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        return;
      }
      case FrameType::TraceEnd: {
        if (!conn.open) {
            reject(RejectCode::Protocol, "TraceEnd before SessionOpen");
            return;
        }
        std::uint64_t seq = 0;
        if (decodeTraceEnd(frame.payload, seq) != DecodeStatus::Ok) {
            reject(RejectCode::Protocol, "bad TraceEnd");
            return;
        }
        BusyInfo busy;
        RejectInfo why;
        switch (r.mux->submitTraceEnd(conn.sessionId, seq, busy, why)) {
          case Admission::Rejected: {
            const auto payload = encodeReject(why);
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            return;
          }
          default:
            return;
        }
      }
      case FrameType::Heartbeat:
        sendFrame(conn, FrameType::Heartbeat, {});
        return;
      case FrameType::EpochHint: {
        // The client echoing our advisory epoch-sizing frame back; count
        // it (which tenants consumed the hint) and move on. The payload
        // is advisory either way, so a stale or garbled echo is not a
        // protocol error. If the connection was lingering for exactly
        // this, the linger is over.
        r.hintEchoes.fetch_add(1, std::memory_order_relaxed);
        if (conn.lingerUntilMs != 0)
            conn.wantClose = true;
        return;
      }
      default:
        reject(RejectCode::Protocol, "unexpected frame type");
        return;
    }
}

void
MonitorServer::drainCompletions(Reactor &r)
{
    for (SessionResult &result : r.mux->drainCompleted()) {
        {
            std::lock_guard<std::mutex> lock(metricsMutex_);
            lastSessionMetrics_ = result.metrics;
        }
        auto it = r.sessionToFd.find(result.sessionId);
        if (it == r.sessionToFd.end())
            continue; // connection already gone
        auto cit = r.connections.find(it->second);
        r.sessionToFd.erase(it);
        if (cit == r.connections.end())
            continue;
        Connection &conn = cit->second;
        if (result.failed) {
            r.failed.fetch_add(1, std::memory_order_relaxed);
            const auto payload = encodeReject(result.reject);
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
        } else {
            r.completed.fetch_add(1, std::memory_order_relaxed);
            if (result.planFingerprint != 0)
                r.elisionSessions.fetch_add(1, std::memory_order_relaxed);
            r.summaryEvents.fetch_add(result.summaryEvents,
                                      std::memory_order_relaxed);
            sendReport(r, conn, result);
            if (result.realizedSpans.empty())
                conn.wantClose = true;
            else
                conn.lingerUntilMs = nowMs() + kEchoLingerMs;
        }
        flush(conn);
    }
}

void
MonitorServer::sendReport(Reactor &r, Connection &conn,
                          const SessionResult &result)
{
    const RemoteReport &report = result.report;
    // Frames that would overrun the outbound cap are dropped and the
    // Summary downgraded to Partial: the slow-client path. The Summary
    // itself always fits (the cap is clamped far above one frame).
    const std::size_t cap =
        std::max<std::size_t>(config_.maxOutboundBytes, 4096);

    auto room = [&](std::size_t bytes) {
        return conn.out.size() - conn.outPos + bytes + kFrameHeaderBytes <=
               cap - 1024; // reserve space for the Summary frame
    };

    // Adaptive runs advertise the realized epoch slicing first, so the
    // client can rebuild the bit-identical reference layout before the
    // records arrive. Purely advisory: a client that does not know the
    // frame skips it.
    if (!result.realizedSpans.empty()) {
        std::uint64_t effective_h = 1;
        for (const std::uint32_t k : result.realizedSpans)
            effective_h = std::max<std::uint64_t>(effective_h, k);
        for (std::size_t i = 0; i < result.realizedSpans.size();
             i += kSpansPerFrame) {
            const std::size_t n = std::min(
                kSpansPerFrame, result.realizedSpans.size() - i);
            EpochHintInfo hint;
            hint.effectiveH = effective_h;
            hint.spans.assign(result.realizedSpans.begin() +
                                  static_cast<std::ptrdiff_t>(i),
                              result.realizedSpans.begin() +
                                  static_cast<std::ptrdiff_t>(i + n));
            const auto payload = encodeEpochHint(hint);
            if (!room(payload.size()))
                break; // advisory — never worth truncating the report for
            sendFrame(conn, FrameType::EpochHint, payload);
        }
    }

    // A session degraded to Partial ships only the Summary (the
    // fingerprint still witnesses the full analysis): the report body is
    // the expensive part of a slow tenant's egress.
    bool truncated = result.degradePartial;

    for (std::size_t i = 0;
         !truncated && i < report.records.size();
         i += kRecordsPerFrame) {
        const std::size_t n =
            std::min(kRecordsPerFrame, report.records.size() - i);
        const auto payload = encodeErrorReport(
            {report.records.data() + i, n});
        if (!room(payload.size())) {
            truncated = true;
            break;
        }
        sendFrame(conn, FrameType::ErrorReport, payload);
    }
    if (!truncated) {
        for (std::size_t i = 0; i < report.sos.size(); i += kSosPerFrame) {
            const std::size_t n =
                std::min(kSosPerFrame, report.sos.size() - i);
            const auto payload = encodeSos({report.sos.data() + i, n});
            if (!room(payload.size())) {
                truncated = true;
                break;
            }
            sendFrame(conn, FrameType::Sos, payload);
        }
    }

    SummaryInfo summary;
    summary.status =
        truncated ? SummaryStatus::Partial : SummaryStatus::Complete;
    summary.epochs = report.epochs;
    summary.events = report.events;
    summary.recordsTotal = report.records.size();
    summary.sosTotal = report.sos.size();
    summary.busyCount = conn.busyCount;
    summary.peakResidentEpochs = report.peakResidentEpochs;
    summary.fingerprint = report.fingerprint;
    summary.planFingerprint = result.planFingerprint;
    summary.summaryEvents = result.summaryEvents;
    const auto payload = encodeSummary(summary);
    sendFrame(conn, FrameType::Summary, payload);
    if (truncated)
        r.partial.fetch_add(1, std::memory_order_relaxed);
}

void
MonitorServer::sendFrame(Connection &conn, FrameType type,
                         std::span<const std::uint8_t> payload)
{
    appendFrame(conn.out, type, payload);
    flush(conn);
}

void
MonitorServer::flush(Connection &conn)
{
    while (conn.outPos < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outPos,
                   conn.out.size() - conn.outPos, MSG_NOSIGNAL);
        if (n <= 0)
            break; // EAGAIN: poll() will raise POLLOUT
        conn.outPos += static_cast<std::size_t>(n);
    }
    if (conn.outPos == conn.out.size()) {
        conn.out.clear();
        conn.outPos = 0;
    } else if (conn.outPos > kReadChunk) {
        conn.out.erase(conn.out.begin(),
                       conn.out.begin() +
                           static_cast<std::ptrdiff_t>(conn.outPos));
        conn.outPos = 0;
    }
}

void
MonitorServer::closeConnection(Reactor &r, int fd, bool abort_session)
{
    auto it = r.connections.find(fd);
    if (it == r.connections.end())
        return;
    Connection &conn = it->second;
    if (conn.open && abort_session) {
        // Abort is a no-op for sessions the mux already completed.
        r.mux->abort(conn.sessionId);
        r.sessionToFd.erase(conn.sessionId);
    }
    ::close(fd);
    r.connections.erase(it);
}

void
MonitorServer::checkIdle(Reactor &r)
{
    const std::int64_t now = nowMs();
    std::vector<int> doomed;
    for (auto &[fd, conn] : r.connections) {
        if (conn.wantClose)
            continue;
        if (now - conn.lastActivityMs > config_.idleTimeoutMs) {
            const auto payload = encodeReject(
                {RejectCode::Timeout, "session idle too long"});
            sendFrame(conn, FrameType::Reject, payload);
            conn.wantClose = true;
            if (conn.out.size() == conn.outPos)
                doomed.push_back(fd);
        }
    }
    for (int fd : doomed)
        closeConnection(r, fd, true);
}

std::uint64_t
MonitorServer::sessionsCompleted() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->completed.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::sessionsFailed() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->failed.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::busySent() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->busySent.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::partialReports() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->partial.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::sessionsShed() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->shed.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::hintEchoes() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->hintEchoes.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::elisionSessions() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->elisionSessions.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
MonitorServer::summaryEventsSeen() const
{
    std::uint64_t sum = 0;
    for (const auto &r : reactors_)
        sum += r->summaryEvents.load(std::memory_order_relaxed);
    return sum;
}

std::size_t
MonitorServer::globalBytes() const
{
    std::size_t sum = 0;
    for (const auto &r : reactors_)
        if (r->mux)
            sum += r->mux->globalBytes();
    return sum;
}

std::size_t
MonitorServer::activeSessions() const
{
    std::size_t sum = 0;
    for (const auto &r : reactors_)
        if (r->mux)
            sum += r->mux->activeSessions();
    return sum;
}

std::vector<ShardStats>
MonitorServer::shardStats() const
{
    std::vector<ShardStats> out;
    out.reserve(reactors_.size());
    for (const auto &r : reactors_) {
        ShardStats s;
        s.shard = r->index;
        s.sessionsAssigned = r->assigned.load(std::memory_order_relaxed);
        s.completed = r->completed.load(std::memory_order_relaxed);
        s.failed = r->failed.load(std::memory_order_relaxed);
        s.busySent = r->busySent.load(std::memory_order_relaxed);
        s.partialReports = r->partial.load(std::memory_order_relaxed);
        s.sessionsShed = r->shed.load(std::memory_order_relaxed);
        s.hintEchoes = r->hintEchoes.load(std::memory_order_relaxed);
        if (r->mux) {
            s.globalBytes = r->mux->globalBytes();
            s.activeSessions = r->mux->activeSessions();
            s.budgetBytes = r->mux->budgetBytes();
            s.budgetSteals = r->mux->budgetSteals();
            s.budgetStolenBytes = r->mux->budgetStolenBytes();
            s.budgetDonatedBytes = r->mux->budgetDonatedBytes();
            s.degradeLevel = r->mux->shardLevel();
        }
        out.push_back(s);
    }
    return out;
}

telemetry::RegistrySnapshot
MonitorServer::lastSessionMetrics() const
{
    std::lock_guard<std::mutex> lock(metricsMutex_);
    return lastSessionMetrics_;
}

} // namespace bfly::service

