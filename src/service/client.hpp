/**
 * @file
 * MonitorClient: blocking client library for the monitoring service.
 *
 * A client encodes a heartbeat-marked trace with the log codec, streams
 * it as sequence-numbered LogChunk frames, and obeys the server's
 * go-back-N flow control: on a Busy frame it rewinds to the rejected
 * sequence number, backs off for the suggested interval and resends
 * (the server silently ignores everything out of sequence, so resending
 * is always safe). After TraceEnd it collects the streamed
 * ErrorReport/Sos frames and the final Summary into a RemoteReport that
 * can be compared bit-for-bit against an in-process run.
 */

#ifndef BUTTERFLY_SERVICE_CLIENT_HPP
#define BUTTERFLY_SERVICE_CLIENT_HPP

#include <cstdint>
#include <string>

#include "service/analyzer.hpp"
#include "service/wire.hpp"
#include "trace/trace.hpp"

namespace bfly::service {

struct ClientConfig
{
    /** Target log bytes per LogChunk frame. */
    std::size_t chunkBytes = 32 * 1024;
    /** Poll timeout while waiting for server frames. */
    int ioTimeoutMs = 30000;
    /** Give up after this many Busy rewinds (overload, not progress). */
    std::uint64_t maxBusyRetries = 100000;
};

/** Outcome of one remote monitoring run. */
struct RunResult
{
    bool ok = false;       ///< Summary received (Complete or Partial)
    std::string error;     ///< human-readable failure (when !ok)
    SummaryInfo summary;   ///< final frame (valid when ok)
    RemoteReport report;   ///< records/sos/fingerprint as streamed
    std::uint64_t busyRetries = 0; ///< Busy rewinds survived
    /** The session was refused with RejectCode::Overload — the shard's
     *  degradation ladder is shedding new sessions. Retry-later
     *  semantics, distinct from a conformance failure. */
    bool overloaded = false;
    std::uint64_t serverShards = 0; ///< reactor count from SessionAccept
    std::uint64_t sessionId = 0;    ///< id from SessionAccept (0 if none)
    /** Realized epoch slicing advertised in EpochHint frames (adaptive
     *  servers only; empty = source slicing). Feeding these to
     *  EpochLayout::coalescedFromHeartbeats rebuilds the exact layout
     *  the server analyzed. */
    std::vector<std::uint32_t> epochSpans;
    std::uint64_t effectiveH = 1;  ///< headline width from EpochHint
    /** Encoded log bytes streamed for this session (before go-back-N
     *  resends) — the bytes-on-the-wire a static ElisionPlan saves. */
    std::uint64_t logBytesSent = 0;

    /** How often the realized epoch width changed mid-stream. */
    std::uint64_t
    hChanges() const
    {
        std::uint64_t n = 0;
        for (std::size_t i = 1; i < epochSpans.size(); ++i)
            if (epochSpans[i] != epochSpans[i - 1])
                ++n;
        return n;
    }
};

/** One frame (header + payload) as a contiguous byte vector. */
std::vector<std::uint8_t>
encodeFramed(FrameType type, const std::vector<std::uint8_t> &payload);

class MonitorClient
{
  public:
    explicit MonitorClient(ClientConfig config = {});
    ~MonitorClient();

    MonitorClient(const MonitorClient &) = delete;
    MonitorClient &operator=(const MonitorClient &) = delete;

    bool connectUnix(const std::string &path);
    bool connectTcp(std::uint16_t port);
    void close();
    bool connected() const { return fd_ >= 0; }

    /**
     * Run one full session over the open connection: open, stream
     * @p marked_trace (which must already carry heartbeat epoch markers,
     * see withHeartbeatMarkers), collect the report. The connection is
     * single-session: the server closes it after the Summary.
     */
    RunResult run(const SessionSpec &spec, const Trace &marked_trace);

  private:
    bool sendAll(const std::vector<std::uint8_t> &bytes,
                 std::string &error);
    /** Pull socket bytes into the parser. @p block waits ioTimeoutMs.
     *  @return false on timeout/EOF/error (fills @p error). */
    bool pump(bool block, std::string &error);

    ClientConfig config_;
    int fd_ = -1;
    FrameParser parser_;
};

} // namespace bfly::service

#endif // BUTTERFLY_SERVICE_CLIENT_HPP
