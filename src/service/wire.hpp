/**
 * @file
 * Length-prefixed binary wire protocol of the monitoring service.
 *
 * Every frame is [u8 type][u32 LE payload length][payload]; the payload
 * length is capped (kMaxFramePayload) so a malicious length can never
 * drive an allocation. Log bytes inside LogChunk frames reuse the
 * log_codec per-thread framing verbatim — the service adds only session
 * multiplexing, flow control and report streaming on top.
 *
 * Everything that arrives from a socket is untrusted: every decode path
 * here is bounds-checked and returns DecodeStatus (shared with the log
 * codec) instead of asserting. A Corrupt result means the connection is
 * beyond recovery and must be dropped; NeedMore means the frame or field
 * is split across reads and the caller should feed more bytes.
 *
 * Flow control is go-back-N on a per-session chunk sequence number: the
 * server applies chunks strictly in sequence order, answers an
 * over-budget chunk with Busy{seq} and silently discards everything
 * until the client rewinds and resends from that seq. One Busy per shed
 * event, no per-chunk acks on the accept path.
 */

#ifndef BUTTERFLY_SERVICE_WIRE_HPP
#define BUTTERFLY_SERVICE_WIRE_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lifeguards/report.hpp"
#include "trace/log_codec.hpp"

namespace bfly::service {

/** Protocol revision carried in SessionOpen. v2 added shardCount to
 *  SessionAccept; v3 added the EpochHint frame (advisory epoch-sizing
 *  feedback — a peer that does not understand it may simply skip it)
 *  and RejectCode::Overload; v4 added the elision-plan fingerprint to
 *  SessionOpen (the client declares which static ElisionPlan its log
 *  was generated under, 0 = none) and its echo plus the decoded
 *  SiteSummary count to Summary, so both ends can assert they agree on
 *  what was elided (servers reject other versions, so both ends move
 *  together — the repo ships client and server from one tree). */
inline constexpr std::uint8_t kWireVersion = 4;

/** Hard cap on one frame's payload (bounds every inbound allocation). */
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/** Frame header size: u8 type + u32 LE length. */
inline constexpr std::size_t kFrameHeaderBytes = 5;

enum class FrameType : std::uint8_t {
    SessionOpen = 1,  ///< client->server: open a monitoring session
    SessionAccept,    ///< server->client: session admitted
    LogChunk,         ///< client->server: encoded log bytes for one thread
    TraceEnd,         ///< client->server: no more chunks; analyze
    Heartbeat,        ///< either direction: keepalive, echoed by server
    Busy,             ///< server->client: chunk shed, rewind and retry
    Reject,           ///< server->client: fatal; session is over
    ErrorReport,      ///< server->client: a batch of error records
    Sos,              ///< server->client: a batch of final-SOS addresses
    Summary,          ///< server->client: final frame of a session
    EpochHint,        ///< v3, advisory: server->client: realized epoch
                      ///< sizing (effective h + per-epoch source spans);
                      ///< clients echo it back so the server can tell
                      ///< which tenants consumed the hint
};

const char *frameTypeName(FrameType type);

/** Why the server shed a chunk (Busy frames). */
enum class BusyReason : std::uint8_t {
    SessionQueueFull = 1, ///< this session's ingest queue is at capacity
    GlobalBudget = 2,     ///< the server-wide byte budget is exhausted
};

/** Why the server terminated a session (Reject frames). */
enum class RejectCode : std::uint8_t {
    Protocol = 1,   ///< malformed or out-of-state frame
    TooLarge = 2,   ///< session exceeded its hard event/byte cap
    CorruptLog = 3, ///< log bytes failed to decode
    Internal = 4,   ///< server-side failure
    Timeout = 5,    ///< client went silent / stopped reading
    Overload = 6,   ///< v3: shard shedding load; retry another time/shard
};

/** How a session ended (Summary frames). */
enum class SummaryStatus : std::uint8_t {
    Complete = 0, ///< full report delivered
    Partial = 1,  ///< report truncated (slow client / outbound cap)
};

/** One decoded frame: type + owned payload bytes. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::vector<std::uint8_t> payload;
};

/** Append one frame (header + payload) to @p out. */
void appendFrame(std::vector<std::uint8_t> &out, FrameType type,
                 std::span<const std::uint8_t> payload);

/**
 * Incremental frame splitter over an untrusted byte stream. feed()
 * appends raw socket bytes; next() yields complete frames. Corrupt
 * (unknown type or oversized length) is sticky.
 */
class FrameParser
{
  public:
    void feed(std::span<const std::uint8_t> bytes);
    DecodeStatus next(Frame &out);

    std::size_t pendingBytes() const { return buffer_.size() - consumed_; }

  private:
    std::vector<std::uint8_t> buffer_;
    std::size_t consumed_ = 0;
    bool corrupt_ = false;
};

// ---------------------------------------------------------------- payloads

/** What a client asks the server to monitor (SessionOpen). */
struct SessionSpec
{
    std::uint8_t lifeguard = 0;   ///< service::Lifeguard (analyzer.hpp)
    std::uint8_t memModel = 0;    ///< 0 = SC, 1 = TSO (taint termination)
    std::uint32_t numThreads = 1; ///< per-thread log streams to expect
    std::uint32_t granularity = 8;
    std::uint64_t heapBase = 0;
    std::uint64_t heapLimit = 0;
    std::uint64_t globalH = 64;      ///< diagnostic; slicing uses markers
    std::uint32_t windowEpochs = 4;  ///< EpochStream ring size
    /** v4: fingerprint of the ElisionPlan the log was generated under
     *  (staticpass::ElisionPlan::fingerprint(); 0 = no elision). The
     *  server echoes it in Summary so a mismatch is detectable. */
    std::uint64_t planFingerprint = 0;
};

struct SessionAcceptInfo
{
    std::uint64_t sessionId = 0;
    std::uint64_t queueBytesHint = 0; ///< server's per-session queue cap
    std::uint64_t shardCount = 1;     ///< reactor shards serving sessions
};

/** LogChunk header; the log bytes follow in the same payload. */
struct ChunkHeader
{
    std::uint64_t seq = 0; ///< session-wide chunk sequence number
    std::uint32_t tid = 0; ///< which per-thread stream the bytes extend
};

struct BusyInfo
{
    BusyReason reason = BusyReason::SessionQueueFull;
    std::uint64_t seq = 0;     ///< first sequence number to resend
    std::uint64_t retryMs = 1; ///< suggested backoff
};

struct RejectInfo
{
    RejectCode code = RejectCode::Protocol;
    std::string message;
};

/**
 * Realized epoch sizing of a session (EpochHint frames). `spans[i]` is
 * how many source (marker-delimited) epochs were merged into analyzed
 * epoch i; `effectiveH` is the advisory headline number (the largest
 * realized merge width). A session's spans may arrive split over
 * several frames; clients concatenate them in order.
 */
struct EpochHintInfo
{
    std::uint64_t effectiveH = 1;
    std::vector<std::uint32_t> spans;
};

struct SummaryInfo
{
    SummaryStatus status = SummaryStatus::Complete;
    std::uint64_t epochs = 0;
    std::uint64_t events = 0;
    std::uint64_t recordsTotal = 0; ///< records found (>= records sent)
    std::uint64_t sosTotal = 0;
    std::uint64_t busyCount = 0;    ///< sheds this session survived
    std::uint64_t peakResidentEpochs = 0;
    std::uint64_t fingerprint = 0;  ///< dataflow fingerprint
    /** v4: echo of SessionSpec::planFingerprint. */
    std::uint64_t planFingerprint = 0;
    /** v4: SiteSummary events decoded from the session's log — the
     *  server-observed evidence of elision on the wire. */
    std::uint64_t summaryEvents = 0;
};

std::vector<std::uint8_t> encodeSessionOpen(const SessionSpec &spec);
std::vector<std::uint8_t> encodeSessionAccept(const SessionAcceptInfo &info);
std::vector<std::uint8_t> encodeChunk(const ChunkHeader &header,
                                      std::span<const std::uint8_t> log);
std::vector<std::uint8_t> encodeTraceEnd(std::uint64_t seq);
std::vector<std::uint8_t> encodeBusy(const BusyInfo &info);
std::vector<std::uint8_t> encodeReject(const RejectInfo &info);
std::vector<std::uint8_t>
encodeErrorReport(std::span<const ErrorRecord> records);
std::vector<std::uint8_t> encodeSos(std::span<const Addr> addrs);
std::vector<std::uint8_t> encodeSummary(const SummaryInfo &info);
std::vector<std::uint8_t> encodeEpochHint(const EpochHintInfo &info);

DecodeStatus decodeSessionOpen(std::span<const std::uint8_t> payload,
                               SessionSpec &out);
DecodeStatus decodeSessionAccept(std::span<const std::uint8_t> payload,
                                 SessionAcceptInfo &out);
/** On Ok, @p log views the log bytes inside @p payload (not a copy). */
DecodeStatus decodeChunk(std::span<const std::uint8_t> payload,
                         ChunkHeader &out,
                         std::span<const std::uint8_t> &log);
DecodeStatus decodeTraceEnd(std::span<const std::uint8_t> payload,
                            std::uint64_t &seq);
DecodeStatus decodeBusy(std::span<const std::uint8_t> payload,
                        BusyInfo &out);
DecodeStatus decodeReject(std::span<const std::uint8_t> payload,
                          RejectInfo &out);
DecodeStatus decodeErrorReport(std::span<const std::uint8_t> payload,
                               std::vector<ErrorRecord> &out);
DecodeStatus decodeSos(std::span<const std::uint8_t> payload,
                       std::vector<Addr> &out);
DecodeStatus decodeSummary(std::span<const std::uint8_t> payload,
                           SummaryInfo &out);
/** On Ok, the decoded spans are *appended* to out.spans (frames chain). */
DecodeStatus decodeEpochHint(std::span<const std::uint8_t> payload,
                             EpochHintInfo &out);

} // namespace bfly::service

#endif // BUTTERFLY_SERVICE_WIRE_HPP
