#include "service/wire.hpp"

#include <cstring>

namespace bfly::service {

namespace {

/** Per-frame sanity caps: a hostile count can never drive a large
 *  allocation (the frame cap bounds the bytes; these bound the element
 *  counts claimed by a length prefix before the elements are read). */
constexpr std::uint64_t kMaxRecordsPerFrame = 1u << 16;
constexpr std::uint64_t kMaxSosPerFrame = 1u << 17;
constexpr std::uint64_t kMaxSpansPerFrame = 1u << 16;

/** Bounds-checked little-endian / varint writer. */
struct Writer
{
    std::vector<std::uint8_t> out;

    void putU8(std::uint8_t v) { out.push_back(v); }

    void
    putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    putVarint(std::uint64_t v)
    {
        while (v >= 0x80) {
            out.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        out.push_back(static_cast<std::uint8_t>(v));
    }

    void
    putBytes(std::span<const std::uint8_t> bytes)
    {
        out.insert(out.end(), bytes.begin(), bytes.end());
    }
};

/** Bounds-checked reader over one untrusted payload. */
struct Reader
{
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;

    std::size_t remaining() const { return bytes.size() - pos; }

    bool
    getU8(std::uint8_t &v)
    {
        if (remaining() < 1)
            return false;
        v = bytes[pos++];
        return true;
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (remaining() < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
        return true;
    }

    bool
    getVarint(std::uint64_t &v)
    {
        v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (remaining() < 1)
                return false;
            const std::uint8_t b = bytes[pos++];
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80))
                return true;
        }
        return false; // overlong varint
    }
};

DecodeStatus
statusOf(bool ok, const Reader &r, bool require_drained = true)
{
    if (!ok)
        return DecodeStatus::Corrupt;
    if (require_drained && r.remaining() != 0)
        return DecodeStatus::Corrupt; // trailing garbage
    return DecodeStatus::Ok;
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::SessionOpen: return "SessionOpen";
      case FrameType::SessionAccept: return "SessionAccept";
      case FrameType::LogChunk: return "LogChunk";
      case FrameType::TraceEnd: return "TraceEnd";
      case FrameType::Heartbeat: return "Heartbeat";
      case FrameType::Busy: return "Busy";
      case FrameType::Reject: return "Reject";
      case FrameType::ErrorReport: return "ErrorReport";
      case FrameType::Sos: return "Sos";
      case FrameType::Summary: return "Summary";
      case FrameType::EpochHint: return "EpochHint";
    }
    return "?";
}

void
appendFrame(std::vector<std::uint8_t> &out, FrameType type,
            std::span<const std::uint8_t> payload)
{
    out.push_back(static_cast<std::uint8_t>(type));
    const auto n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    out.insert(out.end(), payload.begin(), payload.end());
}

void
FrameParser::feed(std::span<const std::uint8_t> bytes)
{
    if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

DecodeStatus
FrameParser::next(Frame &out)
{
    if (corrupt_)
        return DecodeStatus::Corrupt;
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes)
        return DecodeStatus::NeedMore;
    const std::uint8_t *p = buffer_.data() + consumed_;
    const std::uint8_t type = p[0];
    if (type < static_cast<std::uint8_t>(FrameType::SessionOpen) ||
        type > static_cast<std::uint8_t>(FrameType::EpochHint)) {
        corrupt_ = true;
        return DecodeStatus::Corrupt;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(p[1 + i]) << (8 * i);
    if (len > kMaxFramePayload) {
        corrupt_ = true;
        return DecodeStatus::Corrupt;
    }
    if (avail < kFrameHeaderBytes + len)
        return DecodeStatus::NeedMore;
    out.type = static_cast<FrameType>(type);
    out.payload.assign(p + kFrameHeaderBytes, p + kFrameHeaderBytes + len);
    consumed_ += kFrameHeaderBytes + len;
    return DecodeStatus::Ok;
}

// ---------------------------------------------------------------- payloads

std::vector<std::uint8_t>
encodeSessionOpen(const SessionSpec &spec)
{
    Writer w;
    w.putU8(kWireVersion);
    w.putU8(spec.lifeguard);
    w.putU8(spec.memModel);
    w.putU8(0); // reserved flags
    w.putVarint(spec.numThreads);
    w.putVarint(spec.granularity);
    w.putVarint(spec.globalH);
    w.putVarint(spec.windowEpochs);
    w.putU64(spec.heapBase);
    w.putU64(spec.heapLimit);
    w.putU64(spec.planFingerprint);
    return std::move(w.out);
}

DecodeStatus
decodeSessionOpen(std::span<const std::uint8_t> payload, SessionSpec &out)
{
    Reader r{payload};
    std::uint8_t version = 0, flags = 0;
    std::uint64_t threads = 0, gran = 0, h = 0, window = 0;
    const bool ok = r.getU8(version) && r.getU8(out.lifeguard) &&
                    r.getU8(out.memModel) && r.getU8(flags) &&
                    r.getVarint(threads) && r.getVarint(gran) &&
                    r.getVarint(h) && r.getVarint(window) &&
                    r.getU64(out.heapBase) && r.getU64(out.heapLimit) &&
                    r.getU64(out.planFingerprint);
    if (statusOf(ok, r) != DecodeStatus::Ok)
        return DecodeStatus::Corrupt;
    if (version != kWireVersion || threads == 0 || threads > 1u << 16 ||
        gran == 0 || gran > 4096 || window < 4 || window > 1024)
        return DecodeStatus::Corrupt;
    out.numThreads = static_cast<std::uint32_t>(threads);
    out.granularity = static_cast<std::uint32_t>(gran);
    out.globalH = h;
    out.windowEpochs = static_cast<std::uint32_t>(window);
    return DecodeStatus::Ok;
}

std::vector<std::uint8_t>
encodeSessionAccept(const SessionAcceptInfo &info)
{
    Writer w;
    w.putVarint(info.sessionId);
    w.putVarint(info.queueBytesHint);
    w.putVarint(info.shardCount);
    return std::move(w.out);
}

DecodeStatus
decodeSessionAccept(std::span<const std::uint8_t> payload,
                    SessionAcceptInfo &out)
{
    Reader r{payload};
    const bool ok = r.getVarint(out.sessionId) &&
                    r.getVarint(out.queueBytesHint) &&
                    r.getVarint(out.shardCount);
    return statusOf(ok, r);
}

std::vector<std::uint8_t>
encodeChunk(const ChunkHeader &header, std::span<const std::uint8_t> log)
{
    Writer w;
    w.putVarint(header.seq);
    w.putVarint(header.tid);
    w.putBytes(log);
    return std::move(w.out);
}

DecodeStatus
decodeChunk(std::span<const std::uint8_t> payload, ChunkHeader &out,
            std::span<const std::uint8_t> &log)
{
    Reader r{payload};
    std::uint64_t tid = 0;
    if (!r.getVarint(out.seq) || !r.getVarint(tid) || tid > 1u << 16)
        return DecodeStatus::Corrupt;
    out.tid = static_cast<std::uint32_t>(tid);
    log = payload.subspan(r.pos);
    return DecodeStatus::Ok;
}

std::vector<std::uint8_t>
encodeTraceEnd(std::uint64_t seq)
{
    Writer w;
    w.putVarint(seq);
    return std::move(w.out);
}

DecodeStatus
decodeTraceEnd(std::span<const std::uint8_t> payload, std::uint64_t &seq)
{
    Reader r{payload};
    return statusOf(r.getVarint(seq), r);
}

std::vector<std::uint8_t>
encodeBusy(const BusyInfo &info)
{
    Writer w;
    w.putU8(static_cast<std::uint8_t>(info.reason));
    w.putVarint(info.seq);
    w.putVarint(info.retryMs);
    return std::move(w.out);
}

DecodeStatus
decodeBusy(std::span<const std::uint8_t> payload, BusyInfo &out)
{
    Reader r{payload};
    std::uint8_t reason = 0;
    const bool ok =
        r.getU8(reason) && r.getVarint(out.seq) && r.getVarint(out.retryMs);
    if (statusOf(ok, r) != DecodeStatus::Ok || reason < 1 || reason > 2)
        return DecodeStatus::Corrupt;
    out.reason = static_cast<BusyReason>(reason);
    return DecodeStatus::Ok;
}

std::vector<std::uint8_t>
encodeReject(const RejectInfo &info)
{
    Writer w;
    w.putU8(static_cast<std::uint8_t>(info.code));
    w.putVarint(info.message.size());
    w.putBytes({reinterpret_cast<const std::uint8_t *>(
                    info.message.data()),
                info.message.size()});
    return std::move(w.out);
}

DecodeStatus
decodeReject(std::span<const std::uint8_t> payload, RejectInfo &out)
{
    Reader r{payload};
    std::uint8_t code = 0;
    std::uint64_t len = 0;
    if (!r.getU8(code) || !r.getVarint(len) || code < 1 || code > 6 ||
        len > r.remaining())
        return DecodeStatus::Corrupt;
    out.code = static_cast<RejectCode>(code);
    out.message.assign(
        reinterpret_cast<const char *>(payload.data() + r.pos),
        static_cast<std::size_t>(len));
    r.pos += static_cast<std::size_t>(len);
    return statusOf(true, r);
}

std::vector<std::uint8_t>
encodeErrorReport(std::span<const ErrorRecord> records)
{
    Writer w;
    w.putVarint(records.size());
    for (const ErrorRecord &rec : records) {
        w.putVarint(rec.tid);
        w.putVarint(rec.index);
        w.putU8(static_cast<std::uint8_t>(rec.kind));
        w.putVarint(rec.size);
        w.putU64(rec.addr);
    }
    return std::move(w.out);
}

DecodeStatus
decodeErrorReport(std::span<const std::uint8_t> payload,
                  std::vector<ErrorRecord> &out)
{
    Reader r{payload};
    std::uint64_t count = 0;
    if (!r.getVarint(count) || count > kMaxRecordsPerFrame)
        return DecodeStatus::Corrupt;
    out.reserve(out.size() + static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        ErrorRecord rec;
        std::uint64_t tid = 0, size = 0;
        std::uint8_t kind = 0;
        if (!r.getVarint(tid) || !r.getVarint(rec.index) ||
            !r.getU8(kind) || !r.getVarint(size) || !r.getU64(rec.addr) ||
            tid > 1u << 16 || size > 0xFFFF ||
            kind > static_cast<std::uint8_t>(ErrorKind::AddrLeak))
            return DecodeStatus::Corrupt;
        rec.tid = static_cast<ThreadId>(tid);
        rec.kind = static_cast<ErrorKind>(kind);
        rec.size = static_cast<std::uint16_t>(size);
        out.push_back(rec);
    }
    return statusOf(true, r);
}

std::vector<std::uint8_t>
encodeSos(std::span<const Addr> addrs)
{
    Writer w;
    w.putVarint(addrs.size());
    for (Addr a : addrs)
        w.putU64(a);
    return std::move(w.out);
}

DecodeStatus
decodeSos(std::span<const std::uint8_t> payload, std::vector<Addr> &out)
{
    Reader r{payload};
    std::uint64_t count = 0;
    if (!r.getVarint(count) || count > kMaxSosPerFrame)
        return DecodeStatus::Corrupt;
    out.reserve(out.size() + static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr a = 0;
        if (!r.getU64(a))
            return DecodeStatus::Corrupt;
        out.push_back(a);
    }
    return statusOf(true, r);
}

std::vector<std::uint8_t>
encodeSummary(const SummaryInfo &info)
{
    Writer w;
    w.putU8(static_cast<std::uint8_t>(info.status));
    w.putVarint(info.epochs);
    w.putVarint(info.events);
    w.putVarint(info.recordsTotal);
    w.putVarint(info.sosTotal);
    w.putVarint(info.busyCount);
    w.putVarint(info.peakResidentEpochs);
    w.putU64(info.fingerprint);
    w.putU64(info.planFingerprint);
    w.putVarint(info.summaryEvents);
    return std::move(w.out);
}

DecodeStatus
decodeSummary(std::span<const std::uint8_t> payload, SummaryInfo &out)
{
    Reader r{payload};
    std::uint8_t status = 0;
    const bool ok = r.getU8(status) && r.getVarint(out.epochs) &&
                    r.getVarint(out.events) &&
                    r.getVarint(out.recordsTotal) &&
                    r.getVarint(out.sosTotal) &&
                    r.getVarint(out.busyCount) &&
                    r.getVarint(out.peakResidentEpochs) &&
                    r.getU64(out.fingerprint) &&
                    r.getU64(out.planFingerprint) &&
                    r.getVarint(out.summaryEvents);
    if (statusOf(ok, r) != DecodeStatus::Ok || status > 1)
        return DecodeStatus::Corrupt;
    out.status = static_cast<SummaryStatus>(status);
    return DecodeStatus::Ok;
}

std::vector<std::uint8_t>
encodeEpochHint(const EpochHintInfo &info)
{
    Writer w;
    w.putVarint(info.effectiveH);
    w.putVarint(info.spans.size());
    for (const std::uint32_t k : info.spans)
        w.putVarint(k);
    return std::move(w.out);
}

DecodeStatus
decodeEpochHint(std::span<const std::uint8_t> payload, EpochHintInfo &out)
{
    Reader r{payload};
    std::uint64_t count = 0;
    if (!r.getVarint(out.effectiveH) || !r.getVarint(count) ||
        count > kMaxSpansPerFrame)
        return DecodeStatus::Corrupt;
    out.spans.reserve(out.spans.size() + static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t k = 0;
        // A span merges at least one source epoch, and a frame-sized
        // bound keeps a hostile varint from claiming absurd widths.
        if (!r.getVarint(k) || k == 0 || k > 1u << 20)
            return DecodeStatus::Corrupt;
        out.spans.push_back(static_cast<std::uint32_t>(k));
    }
    return statusOf(true, r);
}

} // namespace bfly::service
