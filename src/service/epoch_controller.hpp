/**
 * @file
 * Feedback controller closing the loop from per-tenant telemetry to
 * adaptive epoch sizing and graduated load shedding.
 *
 * The paper's precision/performance tradeoff hangs on the epoch size h
 * (Section 6: larger epochs amortize SOS folds but coarsen concurrency),
 * and the service's only pre-existing defense against overload was a
 * binary queue watermark. The controller replaces that cliff with a
 * ladder:
 *
 *     Normal → Grow2 → Grow4 → Grow8 → Partial → Busy → Shed
 *
 * The Grow levels coarsen the realized epoch slicing (EpochStream's
 * reslice seam merges 2/4/8 source epochs per analyzed epoch — cheaper
 * per event, still bit-reproducible against a reference layout built
 * from the same realized spans). Partial keeps analyzing at the
 * coarsest slicing but ships only the Summary fingerprint. Busy pushes
 * go-back-N back-pressure before the hard watermark would. Shed rejects
 * new sessions at the shard edge with RejectCode::Overload.
 *
 * Transitions are hysteretic and deterministic: escalation needs
 * `escalateAfter` consecutive samples at or above `upThreshold`,
 * recovery needs `recoverAfter` consecutive samples at or below
 * `downThreshold`, and samples in the dead band reset both streaks.
 * The asymmetry (recovery slower than escalation, with a gap between
 * the thresholds) is what prevents oscillation under steady load — the
 * table-driven tests in test_epoch_controller.cpp pin this.
 */

#ifndef BUTTERFLY_SERVICE_EPOCH_CONTROLLER_HPP
#define BUTTERFLY_SERVICE_EPOCH_CONTROLLER_HPP

#include <cstddef>
#include <cstdint>

namespace bfly {

/** Rungs of the graduated degradation ladder, mildest first. */
enum class DegradeLevel : std::uint8_t {
    Normal = 0, ///< source slicing, full reports
    Grow2,      ///< merge 2 source epochs per analyzed epoch
    Grow4,      ///< merge 4
    Grow8,      ///< merge 8
    Partial,    ///< coarsest slicing + fingerprint-only summaries
    Busy,       ///< early go-back-N back-pressure on chunks
    Shed,       ///< reject new sessions (RejectCode::Overload)
};

const char *degradeLevelName(DegradeLevel level);

struct ControllerConfig
{
    /** Pressure at or above this escalates (after escalateAfter). */
    double upThreshold = 0.75;
    /** Pressure at or below this recovers (after recoverAfter). */
    double downThreshold = 0.40;
    /** Consecutive hot samples required to climb one rung. */
    int escalateAfter = 2;
    /** Consecutive cool samples required to descend one rung. */
    int recoverAfter = 4;
    /**
     * Size-driven coalescing target: merge consecutive tiny source
     * epochs until an analyzed epoch holds about this many events
     * (0 disables). Independent of the pressure ladder — a session
     * whose markers are far denser than the analysis sweet spot gets
     * coarsened even at Normal, mirroring the paper's "pick h for the
     * workload" guidance online.
     */
    std::size_t targetEventsPerEpoch = 0;
    /** Upper bound on source epochs merged into one analyzed epoch. */
    std::size_t maxCoalesce = 64;
};

/** One telemetry observation; fractions are each in [0, 1]-ish. */
struct ControllerSample
{
    double queueFraction = 0.0;  ///< session queue bytes / watermark
    double budgetFraction = 0.0; ///< shard accounted bytes / budget slice
    double partialRate = 0.0;    ///< partial summaries / completed sessions
};

class EpochController
{
  public:
    EpochController() = default;
    explicit EpochController(const ControllerConfig &config)
        : config_(config)
    {
    }

    /** Fold one sample into the ladder; returns the (new) level. */
    DegradeLevel observe(const ControllerSample &sample);

    DegradeLevel level() const { return level_; }

    /**
     * Source epochs to merge per analyzed epoch at the current level:
     * 1/2/4/8, saturating at 8 for Partial and beyond (degradation past
     * Grow8 changes what is *reported* or *admitted*, not the slicing).
     */
    std::size_t coalesceFactor() const;

    std::uint64_t escalations() const { return escalations_; }
    std::uint64_t recoveries() const { return recoveries_; }

    const ControllerConfig &config() const { return config_; }

  private:
    ControllerConfig config_;
    DegradeLevel level_ = DegradeLevel::Normal;
    int hotStreak_ = 0;
    int coolStreak_ = 0;
    std::uint64_t escalations_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_SERVICE_EPOCH_CONTROLLER_HPP
