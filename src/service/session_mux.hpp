/**
 * @file
 * Session multiplexer: shards concurrent monitoring sessions onto the
 * shared WorkerPool with bounded ingest and explicit load shedding.
 *
 * Each session owns a bounded queue of raw log chunks (the service's
 * LogBuffer analogue: the network is the producer, the decode pump the
 * consumer). The event loop enqueues accepted chunks and a pump task —
 * one in flight per session, running on the shared pool — drains the
 * queue through a per-thread ChunkedLogDecoder into the session's
 * decoded trace. When the queue is at capacity, or the server-wide byte
 * budget (queued + decoded bytes across all sessions) is exhausted, the
 * chunk is shed with a Busy outcome and the client rewinds (go-back-N).
 * A session whose own footprint exceeds its hard cap is rejected
 * outright — that is not a transient condition, so retrying would
 * livelock.
 *
 * After TraceEnd drains, an analysis job runs the pipelined window
 * schedule over a streaming EpochStream (O(window) resident epochs) on
 * the same pool, inside the session's telemetry registry. Completion
 * results cross back to the event loop through a mutex-protected queue
 * plus a caller-supplied wake callback (the server writes a self-pipe).
 *
 * Threading contract: open/submit/abort are called only from the
 * owning reactor's event loop thread; pump and analysis tasks run on
 * the pool; per-session state is guarded by the session's mutex, the
 * session map by the mux's, and the byte budget is atomic.
 *
 * Sharding: a multi-reactor server creates one SessionMux per reactor,
 * each with a slice of the global byte budget. The slices are linked
 * through a shared BudgetPool: a shard that would shed with
 * Busy{GlobalBudget} first tries to *steal* spare budget from the pool
 * (fast path, one CAS), and a fully idle shard *donates* its excess
 * back down to half its base slice on the reactor's idle tick. The
 * invariant is conservation: sum over shards of budgetBytes() plus the
 * pool's spare always equals the configured global budget.
 */

#ifndef BUTTERFLY_SERVICE_SESSION_MUX_HPP
#define BUTTERFLY_SERVICE_SESSION_MUX_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/worker_pool.hpp"
#include "service/analyzer.hpp"
#include "service/epoch_controller.hpp"
#include "service/wire.hpp"
#include "telemetry/metrics.hpp"

namespace bfly::service {

/**
 * Spare-budget pool shared by the session muxes of a sharded server.
 * Holds bytes no shard currently owns: idle shards donate into it,
 * pressured shards steal from it. Lock-free; one atomic.
 */
struct BudgetPool
{
    std::atomic<std::size_t> spare{0};
};

struct MuxConfig
{
    /** Per-session ingest queue watermark: a chunk is admitted while the
     *  queued bytes are below this (LogBuffer-style overshoot by at most
     *  one chunk), shed with Busy otherwise. */
    std::size_t sessionQueueBytes = 256 * 1024;
    /** Server-wide budget over queued + decoded bytes of all sessions.
     *  A sharded server slices this evenly across its shards and lets
     *  the slices rebalance through a BudgetPool. */
    std::size_t globalBudgetBytes = 64 * 1024 * 1024;
    /** Hard per-session footprint cap; exceeding it is a Reject, not a
     *  Busy (the client's data simply does not fit). Clamped to the
     *  global budget. */
    std::size_t maxSessionBytes = 16 * 1024 * 1024;
    /** Hard cap on decoded events per session. */
    std::size_t maxSessionEvents = 1u << 22;
    /** Backoff hint carried in Busy frames. */
    std::uint64_t busyRetryMs = 2;
    /** Test hook: delay (ms) before the pump decodes each chunk, making
     *  queue-full shedding deterministic in back-pressure tests. */
    int debugPumpDelayMs = 0;
    /** Server deployment knob: run session analyses with the lifeguards'
     *  batched (columnar) pass-1 kernels. Reports are bit-identical to
     *  the scalar kernels, so this is not part of the wire protocol —
     *  clients cannot observe it. */
    bool batchMode = false;
    /** Adaptive epoch sizing + graduated admission: per-session and
     *  per-shard EpochControllers replace the single queue-watermark
     *  cliff with the grow-h → Partial → Busy → Shed ladder, and the
     *  realized epoch spans are surfaced in SessionResult so the server
     *  can advertise them (EpochHint). Off by default — the legacy
     *  admission path is untouched when false. */
    bool adaptive = false;
    /** Test/chaos hook: ignore telemetry and cycle the coalescing width
     *  1→2→4→8 per epoch group, guaranteeing several h-changes within
     *  every session regardless of load (the differential harness then
     *  proves bit-identity across every adaptation point). */
    bool adaptiveForceCycle = false;
    /** Ladder thresholds and the size-driven coalescing target. */
    ControllerConfig controller;
};

/** Verdict of one admission attempt. */
enum class Admission : std::uint8_t {
    Accepted, ///< chunk applied (in sequence, within budget)
    Ignored,  ///< out-of-sequence duplicate/flood; silently dropped
    Busy,     ///< shed; client must rewind to busy.seq and retry
    Rejected, ///< session is over; reject carries the reason
};

/** What a finished session hands back to the event loop. */
struct SessionResult
{
    std::uint64_t sessionId = 0;
    bool failed = false;
    RejectInfo reject;   ///< valid when failed
    RemoteReport report; ///< valid when !failed
    /** Realized per-epoch source spans (adaptive runs; empty = source
     *  slicing). The server forwards these in EpochHint frames. */
    std::vector<std::uint32_t> realizedSpans;
    /** How often the realized merge width changed mid-stream. */
    std::uint64_t hChanges = 0;
    /** v4: the client's declared ElisionPlan fingerprint (echo). */
    std::uint64_t planFingerprint = 0;
    /** v4: SiteSummary events decoded from this session's log. */
    std::uint64_t summaryEvents = 0;
    /** Session degraded to Partial: ship only the Summary fingerprint. */
    bool degradePartial = false;
    /** Snapshot of the session's private telemetry registry. */
    telemetry::RegistrySnapshot metrics;
};

class SessionMux
{
  public:
    struct Session; ///< defined in session_mux.cpp

    /**
     * @param wake  called (possibly from a pool thread) after a result
     *              is queued; must be async-signal-ish cheap.
     * @param shard_budget_bytes  this shard's slice of the global byte
     *              budget; 0 means the whole config.globalBudgetBytes
     *              (the single-shard/legacy layout).
     * @param rebalance  shared spare-budget pool linking sibling shards;
     *              null disables steal/donate (single shard). Borrowed,
     *              must outlive the mux.
     */
    SessionMux(WorkerPool &pool, const MuxConfig &config,
               std::function<void()> wake,
               std::size_t shard_budget_bytes = 0,
               BudgetPool *rebalance = nullptr);
    /** Drains all in-flight pump/analysis tasks before returning. */
    ~SessionMux();

    SessionMux(const SessionMux &) = delete;
    SessionMux &operator=(const SessionMux &) = delete;

    /**
     * Budget charge for @p n decoded events. The pump makes one
     * accounting call per drained chunk with the *net* delta — this
     * charge minus the raw-byte credit — so admission math and tests
     * must agree on the per-event footprint; the assert pins it.
     */
    static constexpr std::size_t
    decodedEventBytes(std::size_t n)
    {
        static_assert(sizeof(Event) == 40,
                      "Event grew: retune SessionMux byte budgets");
        return n * sizeof(Event);
    }

    /** Admit a new session. @return its id. A sharded server passes a
     *  @p preassigned_id (server-global, nonzero) so ids stay unique
     *  across shards; 0 draws from this mux's own counter. */
    std::uint64_t open(const SessionSpec &spec,
                       std::uint64_t preassigned_id = 0);

    /** Admission + enqueue of one log chunk. On Busy fills @p busy, on
     *  Rejected fills @p reject (and the session is gone). */
    Admission submitChunk(std::uint64_t session_id,
                          const ChunkHeader &header,
                          std::span<const std::uint8_t> log,
                          BusyInfo &busy, RejectInfo &reject);

    /** Admission of the end-of-trace marker (same sequence space). */
    Admission submitTraceEnd(std::uint64_t session_id, std::uint64_t seq,
                             BusyInfo &busy, RejectInfo &reject);

    /** Connection died: drop the session and free its budget. */
    void abort(std::uint64_t session_id);

    /** Results completed since the last drain (any order). */
    std::vector<SessionResult> drainCompleted();

    /** Bytes currently accounted against the global budget. */
    std::size_t globalBytes() const;

    /** Sessions currently open (excludes completed/aborted). */
    std::size_t activeSessions() const;

    /** Bytes this shard may currently admit (base slice +- rebalance). */
    std::size_t budgetBytes() const;

    /** Reactor idle tick: if the shard is fully idle (no sessions, no
     *  accounted bytes) donate everything above half the base slice to
     *  the shared pool. No-op without a pool. */
    void donateIdleBudget();

    /** Budget-rebalance observability. */
    std::uint64_t budgetSteals() const;
    std::size_t budgetStolenBytes() const;
    std::size_t budgetDonatedBytes() const;

    /** Shard-wide degradation rung (Normal when not adaptive). */
    DegradeLevel shardLevel() const;

    /** True when the adaptive ladder says new sessions must be shed
     *  (the server answers SessionOpen with RejectCode::Overload). */
    bool shedNewSessions() const;

    /** Reactor idle tick for the shard ladder: feed it a sample built
     *  from the shard's current budget occupancy. Without this a shard
     *  that escalated to Shed while its last sessions drained would
     *  never observe another admission sample — and so never recover.
     *  Rate-limited internally to one sample per 100ms; no-op when not
     *  adaptive. */
    void tickShardController();

  private:
    static void pumpTrampoline(void *ctx, std::size_t);
    void pump(const std::shared_ptr<Session> &session);
    static void analysisTrampoline(void *ctx, std::size_t);
    void analyze(const std::shared_ptr<Session> &session);

    /** Queue the analysis job if the session is ready for it. Caller
     *  holds the session mutex. */
    void maybeScheduleAnalysis(const std::shared_ptr<Session> &session);

    /** Fail the session from a pool task and publish the result. */
    void failSession(const std::shared_ptr<Session> &session,
                     RejectCode code, std::string message);

    void publish(SessionResult result);

    std::shared_ptr<Session> find(std::uint64_t session_id);
    void erase(std::uint64_t session_id);

    /** Under pressure for @p need more bytes: grab spare budget from
     *  the pool (at least a quantum, to amortize the contention).
     *  @return true if any budget was acquired. */
    bool stealBudget(std::size_t need);

    WorkerPool &pool_;
    MuxConfig config_;
    std::function<void()> wake_;

    /** This shard's base budget slice and its current (rebalanced)
     *  value. budgetBytes_ only moves through steal/donate, so
     *  sum(shards) + pool->spare is conserved. */
    std::size_t baseBudgetBytes_ = 0;
    std::atomic<std::size_t> budgetBytes_{0};
    BudgetPool *rebalance_ = nullptr;
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::size_t> stolenBytes_{0};
    std::atomic<std::size_t> donatedBytes_{0};

    /** Shard-wide ladder fed by every session's admission samples.
     *  Guarded by its own mutex (taken after a session mutex, never
     *  before — the only nesting order used). */
    mutable std::mutex shardCtlMutex_;
    EpochController shardController_;
    std::chrono::steady_clock::time_point lastCtlTick_{};

    mutable std::mutex mutex_; ///< guards sessions_ and nextId_
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
    std::uint64_t nextId_ = 1;

    std::atomic<std::size_t> globalBytes_{0};

    std::mutex completedMutex_;
    std::vector<SessionResult> completed_;

    /** Completion domain of all pump/analysis tasks this mux submitted. */
    TaskGroup jobs_;
};

} // namespace bfly::service

#endif // BUTTERFLY_SERVICE_SESSION_MUX_HPP
