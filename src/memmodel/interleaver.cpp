#include "memmodel/interleaver.hpp"

#include <deque>

#include "common/logging.hpp"

namespace bfly {

namespace {

/** True for events whose effect is a store (drains via the store buffer). */
bool
isStoreLike(const Event &e)
{
    switch (e.kind) {
      case EventKind::Write:
      case EventKind::Alloc:
      case EventKind::Free:
      case EventKind::TaintSrc:
      case EventKind::Untaint:
      case EventKind::Assign:
        return true;
      default:
        return false;
    }
}

/** Address range(s) an event touches, for intra-thread dependences. */
bool
rangesOverlap(const Event &a, const Event &b)
{
    auto overlap1 = [](Addr base_a, std::uint16_t sz_a, Addr base_b,
                       std::uint16_t sz_b) {
        if (base_a == kNoAddr || base_b == kNoAddr)
            return false;
        const Addr end_a = base_a + (sz_a > 0 ? sz_a : 1);
        const Addr end_b = base_b + (sz_b > 0 ? sz_b : 1);
        return base_a < end_b && base_b < end_a;
    };
    Addr a_addrs[3] = {a.addr, kNoAddr, kNoAddr};
    Addr b_addrs[3] = {b.addr, kNoAddr, kNoAddr};
    if (a.kind == EventKind::Assign) {
        a_addrs[1] = a.nsrc >= 1 ? a.src0 : kNoAddr;
        a_addrs[2] = a.nsrc >= 2 ? a.src1 : kNoAddr;
    }
    if (b.kind == EventKind::Assign) {
        b_addrs[1] = b.nsrc >= 1 ? b.src0 : kNoAddr;
        b_addrs[2] = b.nsrc >= 2 ? b.src1 : kNoAddr;
    }
    for (Addr aa : a_addrs)
        for (Addr bb : b_addrs)
            if (overlap1(aa, a.size, bb, b.size))
                return true;
    return false;
}

} // namespace

Trace
interleave(const std::vector<std::vector<Event>> &programs,
           const InterleaveConfig &config, Rng &rng)
{
    const std::size_t nthreads = programs.size();
    ensure(nthreads > 0, "interleave needs at least one thread");

    Trace trace;
    trace.threads.resize(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) {
        trace.threads[t].tid = static_cast<ThreadId>(t);
        trace.threads[t].events = programs[t];
    }

    // Per-thread cursor into the program, and (TSO) a FIFO of indices of
    // buffered stores awaiting visibility.
    std::vector<std::size_t> cursor(nthreads, 0);
    std::vector<std::deque<std::size_t>> store_buffer(nthreads);

    std::uint64_t gseq = 1;
    std::size_t last_thread = nthreads;
    std::size_t burst = 0;

    auto finished = [&](std::size_t t) {
        return cursor[t] >= programs[t].size() && store_buffer[t].empty();
    };
    auto at_barrier = [&](std::size_t t) {
        return cursor[t] < programs[t].size() &&
               programs[t][cursor[t]].kind == EventKind::Barrier;
    };
    /** Thread can take a scheduler step right now. */
    auto steppable = [&](std::size_t t) {
        if (!store_buffer[t].empty())
            return true; // can always drain
        return cursor[t] < programs[t].size() && !at_barrier(t);
    };

    for (;;) {
        // Barrier release: every thread is finished, or parked at a
        // barrier with a drained store buffer (barriers are fences).
        bool any_parked = false;
        bool all_parked_or_done = true;
        for (std::size_t t = 0; t < nthreads; ++t) {
            if (at_barrier(t) && store_buffer[t].empty()) {
                any_parked = true;
            } else if (!finished(t)) {
                all_parked_or_done = false;
            }
        }
        if (any_parked && all_parked_or_done) {
            for (std::size_t t = 0; t < nthreads; ++t) {
                if (at_barrier(t)) {
                    trace.threads[t].events[cursor[t]].gseq = gseq++;
                    ++cursor[t];
                }
            }
            continue;
        }

        bool any = false;
        for (std::size_t t = 0; t < nthreads; ++t)
            any = any || steppable(t);
        if (!any)
            break; // all finished (or deadlocked barrier; callers emit
                   // barriers symmetrically so this means done)

        // Pick a steppable thread, honouring speed weights and the
        // fairness bound.
        std::size_t t;
        for (;;) {
            if (!config.speedWeights.empty()) {
                double total = 0;
                for (std::size_t u = 0; u < nthreads; ++u)
                    if (steppable(u))
                        total += config.speedWeights[u];
                double pick = rng.uniform() * total;
                t = nthreads;
                for (std::size_t u = 0; u < nthreads; ++u) {
                    if (!steppable(u))
                        continue;
                    pick -= config.speedWeights[u];
                    if (pick <= 0) {
                        t = u;
                        break;
                    }
                }
                if (t == nthreads)
                    continue;
            } else {
                t = rng.below(nthreads);
            }
            if (!steppable(t))
                continue;
            if (config.maxBurst > 0 && t == last_thread &&
                burst >= config.maxBurst && nthreads > 1) {
                bool other = false;
                for (std::size_t u = 0; u < nthreads; ++u)
                    other = other || (u != t && steppable(u));
                if (other)
                    continue;
            }
            break;
        }
        if (t == last_thread) {
            ++burst;
        } else {
            last_thread = t;
            burst = 1;
        }

        auto &buf = store_buffer[t];
        const bool must_drain =
            cursor[t] >= programs[t].size() || at_barrier(t);

        if (!buf.empty() &&
            (must_drain || rng.chance(config.drainProbability) ||
             buf.size() >= config.storeBufferDepth)) {
            // Oldest buffered store becomes globally visible.
            trace.threads[t].events[buf.front()].gseq = gseq++;
            buf.pop_front();
            continue;
        }
        if (must_drain)
            continue;

        const std::size_t i = cursor[t]++;
        Event &e = trace.threads[t].events[i];
        if (e.kind == EventKind::Heartbeat)
            continue; // markers take no execution step

        if (config.model == MemModel::TSO) {
            // Lock/unlock carry acquire/release semantics: on x86-TSO a
            // locked instruction flushes the store buffer, so every
            // buffered store becomes visible before the sync operation.
            if (e.kind == EventKind::Lock ||
                e.kind == EventKind::Unlock) {
                while (!buf.empty()) {
                    trace.threads[t].events[buf.front()].gseq = gseq++;
                    buf.pop_front();
                }
            }
            // Intra-thread dependences are respected (paper Section 4.4
            // assumption (i)): a TSO core forwards from its own store
            // buffer, so any buffered store to an overlapping address
            // must become visible no later than this event. Drain the
            // FIFO through the last overlapping store.
            std::size_t drain_through = 0;
            bool found = false;
            for (std::size_t k = 0; k < buf.size(); ++k) {
                if (rangesOverlap(trace.threads[t].events[buf[k]], e)) {
                    drain_through = k;
                    found = true;
                }
            }
            if (found) {
                for (std::size_t k = 0; k <= drain_through; ++k) {
                    trace.threads[t].events[buf.front()].gseq = gseq++;
                    buf.pop_front();
                }
            }
        }

        if (config.model == MemModel::TSO && isStoreLike(e)) {
            buf.push_back(i);
        } else {
            e.gseq = gseq++;
        }
    }
    return trace;
}

} // namespace bfly
