#include "memmodel/valid_orderings.hpp"

#include <algorithm>
#include <map>

#include "common/logging.hpp"

namespace bfly {

ValidOrderings::ValidOrderings(const EpochLayout &layout, EpochId max_epoch)
{
    ensure(max_epoch < layout.numEpochs(), "max_epoch out of range");
    streams_.resize(layout.numThreads());
    for (ThreadId t = 0; t < layout.numThreads(); ++t) {
        streams_[t].tid = t;
        for (EpochId l = 0; l <= max_epoch; ++l) {
            const BlockView block = layout.block(l, t);
            for (InstrOffset i = 0; i < block.size(); ++i) {
                streams_[t].instrs.push_back(
                    OrderedInstr{l, block.thread, i, block.events[i]});
            }
        }
        totalInstrs_ += streams_[t].instrs.size();
    }
}

bool
ValidOrderings::emittable(const std::vector<std::size_t> &cursor,
                          std::size_t thread) const
{
    const auto &instrs = streams_[thread].instrs;
    if (cursor[thread] >= instrs.size())
        return false;
    const EpochId l = instrs[cursor[thread]].l;
    if (l < 2)
        return true;
    // Every instruction of epoch <= l-2, in every thread, must be emitted.
    for (std::size_t u = 0; u < streams_.size(); ++u) {
        const auto &other = streams_[u].instrs;
        if (cursor[u] < other.size() && other[cursor[u]].l <= l - 2)
            return false;
    }
    return true;
}

std::uint64_t
ValidOrderings::recurse(
    std::vector<std::size_t> &cursor, std::vector<OrderedInstr> &prefix,
    const std::function<bool(const std::vector<OrderedInstr> &)> &visit,
    bool &aborted) const
{
    if (prefix.size() == totalInstrs_) {
        if (!visit(prefix))
            aborted = true;
        return 1;
    }
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < streams_.size() && !aborted; ++t) {
        if (!emittable(cursor, t))
            continue;
        prefix.push_back(streams_[t].instrs[cursor[t]]);
        ++cursor[t];
        total += recurse(cursor, prefix, visit, aborted);
        --cursor[t];
        prefix.pop_back();
    }
    return total;
}

std::uint64_t
ValidOrderings::forEach(
    const std::function<bool(const std::vector<OrderedInstr> &)> &visit)
    const
{
    std::vector<std::size_t> cursor(streams_.size(), 0);
    std::vector<OrderedInstr> prefix;
    prefix.reserve(totalInstrs_);
    bool aborted = false;
    return recurse(cursor, prefix, visit, aborted);
}

std::uint64_t
ValidOrderings::count() const
{
    return forEach([](const std::vector<OrderedInstr> &) { return true; });
}

std::vector<OrderedInstr>
ValidOrderings::sample(Rng &rng) const
{
    std::vector<std::size_t> cursor(streams_.size(), 0);
    std::vector<OrderedInstr> order;
    order.reserve(totalInstrs_);
    while (order.size() < totalInstrs_) {
        std::vector<std::size_t> candidates;
        for (std::size_t t = 0; t < streams_.size(); ++t) {
            if (emittable(cursor, t))
                candidates.push_back(t);
        }
        ensure(!candidates.empty(), "valid ordering sampling wedged");
        const std::size_t t = candidates[rng.below(candidates.size())];
        order.push_back(streams_[t].instrs[cursor[t]]);
        ++cursor[t];
    }
    return order;
}

bool
ValidOrderings::isValid(const std::vector<OrderedInstr> &order)
{
    // Cross-thread: once an instruction of epoch m has appeared, no later
    // instruction may belong to an epoch < m-1.
    EpochId max_epoch_seen = 0;
    // Per-thread program order: (l, i) must be lexicographically increasing.
    std::map<ThreadId, std::pair<EpochId, InstrOffset>> last;

    for (const OrderedInstr &instr : order) {
        if (max_epoch_seen >= 1 && instr.l + 1 < max_epoch_seen)
            return false;
        max_epoch_seen = std::max(max_epoch_seen, instr.l);

        auto it = last.find(instr.t);
        if (it != last.end()) {
            const auto &[pl, pi] = it->second;
            if (instr.l < pl || (instr.l == pl && instr.i <= pi))
                return false;
        }
        last[instr.t] = {instr.l, instr.i};
    }
    return true;
}

} // namespace bfly
