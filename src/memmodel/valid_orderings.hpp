/**
 * @file
 * Exhaustive enumeration of *valid orderings* (paper Section 5).
 *
 * A valid ordering O_k is a total order of all instructions in the first k
 * epochs that respects the butterfly assumptions: program order within each
 * thread, and "epoch l strictly before epoch l+2" across threads. The set
 * of valid orderings is a superset of the orderings any machine (with
 * intra-thread dependences + cache coherence) can produce.
 *
 * The enumerator is the test bench for the paper's lemmas: on small windows
 * we can check GEN_l / KILL_l / SOS invariants against *every* valid
 * ordering, and check the lifeguards' zero-false-negative theorems against
 * every ordering a machine could exhibit.
 */

#ifndef BUTTERFLY_MEMMODEL_VALID_ORDERINGS_HPP
#define BUTTERFLY_MEMMODEL_VALID_ORDERINGS_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "trace/epoch_slicer.hpp"

namespace bfly {

/** One instruction instance (l, t, i) with its event payload. */
struct OrderedInstr
{
    EpochId l = 0;
    ThreadId t = 0;
    InstrOffset i = 0;
    Event e;
};

/**
 * Enumerate valid orderings of all instructions in epochs [0, max_epoch].
 */
class ValidOrderings
{
  public:
    /**
     * @param layout     epoch structure of the trace
     * @param max_epoch  enumerate orderings of epochs 0..max_epoch inclusive
     */
    ValidOrderings(const EpochLayout &layout, EpochId max_epoch);

    /**
     * Invoke @p visit on every valid ordering.
     * @param visit  return false to abort enumeration early
     * @return number of orderings visited
     */
    std::uint64_t
    forEach(const std::function<bool(const std::vector<OrderedInstr> &)>
                &visit) const;

    /** Count valid orderings without materializing them. */
    std::uint64_t count() const;

    /** Draw one valid ordering uniformly-ish at random (for sampling). */
    std::vector<OrderedInstr> sample(Rng &rng) const;

    /**
     * Check whether @p order (a permutation of the instructions) is a
     * valid ordering under the butterfly assumptions.
     */
    static bool isValid(const std::vector<OrderedInstr> &order);

    /** Total number of instructions being ordered. */
    std::size_t size() const { return totalInstrs_; }

  private:
    struct ThreadStream
    {
        ThreadId tid;
        std::vector<OrderedInstr> instrs; ///< program order, epochs tagged
    };

    bool
    emittable(const std::vector<std::size_t> &cursor,
              std::size_t thread) const;

    std::uint64_t
    recurse(std::vector<std::size_t> &cursor,
            std::vector<OrderedInstr> &prefix,
            const std::function<bool(const std::vector<OrderedInstr> &)>
                &visit,
            bool &aborted) const;

    std::vector<ThreadStream> streams_;
    std::size_t totalInstrs_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_MEMMODEL_VALID_ORDERINGS_HPP
