/**
 * @file
 * Execution interleavers: produce the *actual* global visibility order of a
 * multithreaded program under a chosen memory consistency model.
 *
 * Workload threads are written as per-thread event programs. An interleaver
 * executes them, stamping each event's @c gseq with the order in which its
 * effect became globally visible:
 *
 *  - SC: one instruction from a randomly chosen runnable thread at a time;
 *    visibility order = execution order, program order preserved per thread.
 *  - TSO/relaxed: stores enter a per-thread FIFO store buffer and become
 *    visible when drained; loads are visible at execute. A load can thus
 *    become visible before an older store of its own thread — the classic
 *    relaxation the paper's Section 4.4 must tolerate. Same-address write
 *    order is a single global order (cache coherence).
 *
 * The per-thread traces handed to lifeguards keep program order (that is
 * what a per-thread log contains); the gseq stamps give the oracle its
 * ground-truth serialized view.
 */

#ifndef BUTTERFLY_MEMMODEL_INTERLEAVER_HPP
#define BUTTERFLY_MEMMODEL_INTERLEAVER_HPP

#include <vector>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Memory consistency model to execute under. */
enum class MemModel {
    SequentiallyConsistent,
    TSO, ///< FIFO store buffers; loads may pass older stores
};

/** Scheduling knobs for interleaved execution. */
struct InterleaveConfig
{
    MemModel model = MemModel::SequentiallyConsistent;
    /** Maximum store-buffer entries per thread (TSO only). */
    std::size_t storeBufferDepth = 8;
    /** Probability that a scheduler step drains a store buffer (TSO). */
    double drainProbability = 0.3;
    /**
     * Fairness bound: no thread may run more than this many consecutive
     * steps (0 = unbounded). Bounding the skew keeps executions compatible
     * with heartbeat-delimited epochs.
     */
    std::size_t maxBurst = 0;
    /**
     * Relative execution speeds per thread (empty = uniform). Unequal
     * weights model cores running at different effective speeds, which
     * makes per-thread progress drift apart linearly — harmless for
     * time-based heartbeats, fatal for naive instruction-count epochs
     * (see bench_ablation_window).
     */
    std::vector<double> speedWeights;
};

/**
 * Execute per-thread event programs under the configured model.
 *
 * @param programs  one event sequence per thread, program order; any
 *                  embedded Heartbeat markers are preserved in the output
 *                  trace but take no execution step
 * @param config    model and scheduling parameters
 * @param rng       scheduling randomness (deterministic per seed)
 * @return a Trace whose threads hold the same events in program order with
 *         gseq stamped by global visibility order
 */
Trace interleave(const std::vector<std::vector<Event>> &programs,
                 const InterleaveConfig &config, Rng &rng);

} // namespace bfly

#endif // BUTTERFLY_MEMMODEL_INTERLEAVER_HPP
