#include "harness/session.hpp"

#include "butterfly/window.hpp"
#include "common/logging.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"
#include "trace/log_codec.hpp"

namespace bfly {

namespace {

/** Pre-interned session metric ids (registration is one-time). */
struct SessionMetrics
{
    telemetry::MetricId runs;
    telemetry::MetricId instructions;
    telemetry::MetricId memoryAccesses;
    telemetry::MetricId epochs;
    telemetry::MetricId threads;
    telemetry::MetricId butterflyErrors;
    telemetry::MetricId oracleErrors;
    telemetry::MetricId falsePositives;
    telemetry::MetricId falseNegatives;
    telemetry::MetricId peakResidentEpochs;

    static const SessionMetrics &
    get()
    {
        static const SessionMetrics m = [] {
            auto &r = telemetry::registry();
            SessionMetrics s;
            s.runs = r.counter("bfly.session.runs");
            s.instructions = r.gauge("bfly.session.instructions");
            s.memoryAccesses = r.gauge("bfly.session.memory_accesses");
            s.epochs = r.gauge("bfly.session.epochs");
            s.threads = r.gauge("bfly.session.threads");
            s.butterflyErrors = r.gauge("bfly.session.butterfly_errors");
            s.oracleErrors = r.gauge("bfly.session.oracle_errors");
            s.falsePositives = r.gauge("bfly.session.false_positives");
            s.falseNegatives = r.gauge("bfly.session.false_negatives");
            s.peakResidentEpochs =
                r.gauge("bfly.session.peak_resident_epochs");
            return s;
        }();
        return m;
    }
};

} // namespace

SessionResult
runSession(const SessionConfig &config)
{
    ensure(config.factory != nullptr, "session needs a workload factory");

    // Root telemetry scope: everything below nests inside this span.
    telemetry::TraceSpan root("session");

    SessionResult result;

    // 1. Generate the workload and execute it under the memory model.
    Workload workload = config.factory(config.workload);

    // 1b. Static elision pre-pass: classify the kernels' emitting sites
    // (pseudo-sites fill in for anything the generator left unstamped)
    // and build the plan the log-generation step will consult.
    staticpass::ElisionPlan plan;
    if (config.elide) {
        telemetry::TraceSpan span("session.staticpass");
        staticpass::assignPseudoSites(workload.programs, workload.sites);
        staticpass::ClassifyOptions copt;
        copt.granularity = config.granularity;
        plan = staticpass::classifySites(workload.programs, workload.sites,
                                         copt, &result.siteClasses);
        result.planFingerprint = plan.fingerprint();
    }

    Rng rng(config.interleaveSeed);
    InterleaveConfig icfg;
    icfg.model = config.model;
    Trace trace = [&] {
        telemetry::TraceSpan span("session.interleave");
        return interleave(workload.programs, icfg, rng);
    }();

    // The monitored stream: what the application actually logs. With
    // elision on, AlwaysPrivate Read/Write events never reach the log —
    // only their SiteSummary stand-ins do. The oracle below still
    // replays the full trace.
    Trace elided;
    if (config.elide) {
        telemetry::TraceSpan span("session.elide");
        elided = staticpass::applyElisionPlan(trace, plan, &result.elision);
    }
    const Trace &monitored = config.elide ? elided : trace;

    // 2. Slice into heartbeat epochs.
    // Heartbeats fire after h*n instructions of global progress (the
    // prototype's mechanism, Section 7.1), so the epoch structure is
    // time-like: stalled threads contribute empty blocks.
    EpochLayout layout = [&] {
        telemetry::TraceSpan span("session.epoch_slice");
        return EpochLayout::byGlobalSeq(
            monitored, config.epochSize * monitored.numThreads());
    }();

    // 3. Functional butterfly ADDRCHECK run.
    AddrCheckConfig acfg;
    acfg.granularity = config.granularity;
    acfg.heapBase = workload.heapBase;
    acfg.heapLimit = workload.heapLimit;

    ButterflyAddrCheck butterfly(layout, acfg);
    butterfly.setBatchMode(config.batchMode);
    // One persistent pool per run: its threads service every pass of the
    // schedule instead of being spawned and joined twice per epoch.
    std::unique_ptr<WorkerPool> pool;
    if ((config.parallelPasses || config.pipelineMode) &&
        monitored.numThreads() > 1)
        pool = std::make_unique<WorkerPool>(monitored.numThreads());
    WindowSchedule schedule(config.parallelPasses, pool.get());
    std::size_t peak_resident = 0;
    {
        telemetry::TraceSpan span("session.butterfly");
        if (config.pipelineMode) {
            // Streaming pipelined path: same epoch boundaries as the
            // materialized layout, but only O(window) epochs of events
            // resident while the task graph runs.
            EpochStream::Config scfg;
            scfg.globalH = config.epochSize * monitored.numThreads();
            EpochStream stream(monitored, scfg);
            const PipelineStats stats =
                schedule.runPipelined(stream, butterfly);
            peak_resident = stats.peakResidentEpochs;
        } else {
            schedule.run(layout, butterfly);
        }
    }

    // 4. Ground truth from the exact oracle over the true interleaving.
    AddrCheckOracle oracle(acfg);
    {
        telemetry::TraceSpan span("session.oracle");
        oracle.runOnTrace(trace);
    }

    if (config.elide) {
        const auto encodedBytes = [](const Trace &t) {
            std::size_t n = 0;
            for (const ThreadTrace &tt : t.threads)
                n += encodeEvents(tt.events).size();
            return n;
        };
        result.encodedBytesFull = encodedBytes(trace);
        result.encodedBytesMonitored = encodedBytes(monitored);
    }

    result.workloadName = workload.name;
    result.threads = trace.numThreads();
    result.instructions = trace.instructionCount();
    result.memoryAccesses = trace.memoryAccessCount();
    result.epochs = layout.numEpochs();
    result.peakResidentEpochs = peak_resident;
    result.butterflyErrorCount = butterfly.errors().size();
    result.oracleErrorCount = oracle.errors().size();
    result.accuracy = compareToOracle(butterfly.errors(), oracle.errors(),
                                      acfg.granularity);
    result.falsePositiveRate =
        result.accuracy.falsePositiveRate(result.memoryAccesses);

    // 5. Timing for every monitoring mode.
    PerfInputs pin;
    pin.trace = &monitored; // priced on what the log actually carries
    pin.layout = &layout;
    pin.butterfly = &butterfly;
    pin.addrcheck = acfg;
    pin.costs = config.costs;
    pin.logBufferBytes = config.logBufferBytes;
    {
        telemetry::TraceSpan span("session.perf_model");
        result.perf = computePerformance(pin);
    }

    if (telemetry::enabled()) {
        const SessionMetrics &m = SessionMetrics::get();
        auto &reg = telemetry::registry();
        reg.add(m.runs);
        reg.set(m.instructions, result.instructions);
        reg.set(m.memoryAccesses, result.memoryAccesses);
        reg.set(m.epochs, result.epochs);
        reg.set(m.threads, result.threads);
        reg.set(m.butterflyErrors, result.butterflyErrorCount);
        reg.set(m.oracleErrors, result.oracleErrorCount);
        reg.set(m.falsePositives, result.accuracy.falsePositives);
        reg.set(m.falseNegatives, result.accuracy.falseNegatives);
        reg.set(m.peakResidentEpochs, result.peakResidentEpochs);
    }
    return result;
}

} // namespace bfly
