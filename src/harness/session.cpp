#include "harness/session.hpp"

#include "butterfly/window.hpp"
#include "common/logging.hpp"
#include "lifeguards/addrcheck_oracle.hpp"

namespace bfly {

SessionResult
runSession(const SessionConfig &config)
{
    ensure(config.factory != nullptr, "session needs a workload factory");

    // 1. Generate the workload and execute it under the memory model.
    Workload workload = config.factory(config.workload);
    Rng rng(config.interleaveSeed);
    InterleaveConfig icfg;
    icfg.model = config.model;
    Trace trace = interleave(workload.programs, icfg, rng);

    // 2. Slice into heartbeat epochs.
    // Heartbeats fire after h*n instructions of global progress (the
    // prototype's mechanism, Section 7.1), so the epoch structure is
    // time-like: stalled threads contribute empty blocks.
    EpochLayout layout = EpochLayout::byGlobalSeq(
        trace, config.epochSize * trace.numThreads());

    // 3. Functional butterfly ADDRCHECK run.
    AddrCheckConfig acfg;
    acfg.granularity = config.granularity;
    acfg.heapBase = workload.heapBase;
    acfg.heapLimit = workload.heapLimit;

    ButterflyAddrCheck butterfly(layout, acfg);
    WindowSchedule schedule(config.parallelPasses);
    schedule.run(layout, butterfly);

    // 4. Ground truth from the exact oracle over the true interleaving.
    AddrCheckOracle oracle(acfg);
    oracle.runOnTrace(trace);

    SessionResult result;
    result.workloadName = workload.name;
    result.threads = trace.numThreads();
    result.instructions = trace.instructionCount();
    result.memoryAccesses = trace.memoryAccessCount();
    result.epochs = layout.numEpochs();
    result.butterflyErrorCount = butterfly.errors().size();
    result.oracleErrorCount = oracle.errors().size();
    result.accuracy = compareToOracle(butterfly.errors(), oracle.errors(),
                                      acfg.granularity);
    result.falsePositiveRate =
        result.accuracy.falsePositiveRate(result.memoryAccesses);

    // 5. Timing for every monitoring mode.
    PerfInputs pin;
    pin.trace = &trace;
    pin.layout = &layout;
    pin.butterfly = &butterfly;
    pin.addrcheck = acfg;
    pin.costs = config.costs;
    pin.logBufferBytes = config.logBufferBytes;
    result.perf = computePerformance(pin);
    return result;
}

} // namespace bfly
