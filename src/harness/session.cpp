#include "harness/session.hpp"

#include "butterfly/window.hpp"
#include "common/logging.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {

namespace {

/** Pre-interned session metric ids (registration is one-time). */
struct SessionMetrics
{
    telemetry::MetricId runs;
    telemetry::MetricId instructions;
    telemetry::MetricId memoryAccesses;
    telemetry::MetricId epochs;
    telemetry::MetricId threads;
    telemetry::MetricId butterflyErrors;
    telemetry::MetricId oracleErrors;
    telemetry::MetricId falsePositives;
    telemetry::MetricId falseNegatives;
    telemetry::MetricId peakResidentEpochs;

    static const SessionMetrics &
    get()
    {
        static const SessionMetrics m = [] {
            auto &r = telemetry::registry();
            SessionMetrics s;
            s.runs = r.counter("bfly.session.runs");
            s.instructions = r.gauge("bfly.session.instructions");
            s.memoryAccesses = r.gauge("bfly.session.memory_accesses");
            s.epochs = r.gauge("bfly.session.epochs");
            s.threads = r.gauge("bfly.session.threads");
            s.butterflyErrors = r.gauge("bfly.session.butterfly_errors");
            s.oracleErrors = r.gauge("bfly.session.oracle_errors");
            s.falsePositives = r.gauge("bfly.session.false_positives");
            s.falseNegatives = r.gauge("bfly.session.false_negatives");
            s.peakResidentEpochs =
                r.gauge("bfly.session.peak_resident_epochs");
            return s;
        }();
        return m;
    }
};

} // namespace

SessionResult
runSession(const SessionConfig &config)
{
    ensure(config.factory != nullptr, "session needs a workload factory");

    // Root telemetry scope: everything below nests inside this span.
    telemetry::TraceSpan root("session");

    // 1. Generate the workload and execute it under the memory model.
    Workload workload = config.factory(config.workload);
    Rng rng(config.interleaveSeed);
    InterleaveConfig icfg;
    icfg.model = config.model;
    Trace trace = [&] {
        telemetry::TraceSpan span("session.interleave");
        return interleave(workload.programs, icfg, rng);
    }();

    // 2. Slice into heartbeat epochs.
    // Heartbeats fire after h*n instructions of global progress (the
    // prototype's mechanism, Section 7.1), so the epoch structure is
    // time-like: stalled threads contribute empty blocks.
    EpochLayout layout = [&] {
        telemetry::TraceSpan span("session.epoch_slice");
        return EpochLayout::byGlobalSeq(
            trace, config.epochSize * trace.numThreads());
    }();

    // 3. Functional butterfly ADDRCHECK run.
    AddrCheckConfig acfg;
    acfg.granularity = config.granularity;
    acfg.heapBase = workload.heapBase;
    acfg.heapLimit = workload.heapLimit;

    ButterflyAddrCheck butterfly(layout, acfg);
    butterfly.setBatchMode(config.batchMode);
    // One persistent pool per run: its threads service every pass of the
    // schedule instead of being spawned and joined twice per epoch.
    std::unique_ptr<WorkerPool> pool;
    if ((config.parallelPasses || config.pipelineMode) &&
        trace.numThreads() > 1)
        pool = std::make_unique<WorkerPool>(trace.numThreads());
    WindowSchedule schedule(config.parallelPasses, pool.get());
    std::size_t peak_resident = 0;
    {
        telemetry::TraceSpan span("session.butterfly");
        if (config.pipelineMode) {
            // Streaming pipelined path: same epoch boundaries as the
            // materialized layout, but only O(window) epochs of events
            // resident while the task graph runs.
            EpochStream::Config scfg;
            scfg.globalH = config.epochSize * trace.numThreads();
            EpochStream stream(trace, scfg);
            const PipelineStats stats =
                schedule.runPipelined(stream, butterfly);
            peak_resident = stats.peakResidentEpochs;
        } else {
            schedule.run(layout, butterfly);
        }
    }

    // 4. Ground truth from the exact oracle over the true interleaving.
    AddrCheckOracle oracle(acfg);
    {
        telemetry::TraceSpan span("session.oracle");
        oracle.runOnTrace(trace);
    }

    SessionResult result;
    result.workloadName = workload.name;
    result.threads = trace.numThreads();
    result.instructions = trace.instructionCount();
    result.memoryAccesses = trace.memoryAccessCount();
    result.epochs = layout.numEpochs();
    result.peakResidentEpochs = peak_resident;
    result.butterflyErrorCount = butterfly.errors().size();
    result.oracleErrorCount = oracle.errors().size();
    result.accuracy = compareToOracle(butterfly.errors(), oracle.errors(),
                                      acfg.granularity);
    result.falsePositiveRate =
        result.accuracy.falsePositiveRate(result.memoryAccesses);

    // 5. Timing for every monitoring mode.
    PerfInputs pin;
    pin.trace = &trace;
    pin.layout = &layout;
    pin.butterfly = &butterfly;
    pin.addrcheck = acfg;
    pin.costs = config.costs;
    pin.logBufferBytes = config.logBufferBytes;
    {
        telemetry::TraceSpan span("session.perf_model");
        result.perf = computePerformance(pin);
    }

    if (telemetry::enabled()) {
        const SessionMetrics &m = SessionMetrics::get();
        auto &reg = telemetry::registry();
        reg.add(m.runs);
        reg.set(m.instructions, result.instructions);
        reg.set(m.memoryAccesses, result.memoryAccesses);
        reg.set(m.epochs, result.epochs);
        reg.set(m.threads, result.threads);
        reg.set(m.butterflyErrors, result.butterflyErrorCount);
        reg.set(m.oracleErrors, result.oracleErrorCount);
        reg.set(m.falsePositives, result.accuracy.falsePositives);
        reg.set(m.falseNegatives, result.accuracy.falseNegatives);
        reg.set(m.peakResidentEpochs, result.peakResidentEpochs);
    }
    return result;
}

} // namespace bfly
