/**
 * @file
 * End-to-end monitoring session: generate a workload, execute it under a
 * memory model, monitor it with butterfly ADDRCHECK, compare against the
 * exact oracle, and price every monitoring mode with the timing model.
 *
 * This is the top-level convenience API the examples and benchmark
 * harnesses use; each stage is also available separately for tests.
 */

#ifndef BUTTERFLY_HARNESS_SESSION_HPP
#define BUTTERFLY_HARNESS_SESSION_HPP

#include <string>

#include "harness/perf_model.hpp"
#include "memmodel/interleaver.hpp"
#include "staticpass/classify.hpp"
#include "workloads/workload.hpp"

namespace bfly {

/** Everything configurable about one run. */
struct SessionConfig
{
    WorkloadFactory factory = nullptr;
    WorkloadConfig workload;
    /** Epoch size h: instructions per thread per epoch (8K/64K in §7). */
    std::size_t epochSize = 8192;
    unsigned granularity = 8;
    MemModel model = MemModel::SequentiallyConsistent;
    std::uint64_t interleaveSeed = 42;
    LifeguardCosts costs;
    std::size_t logBufferBytes = 8 * 1024;
    /** Run the lifeguard passes on real threads (results must match). */
    bool parallelPasses = false;
    /**
     * Opt-in: drive the butterfly analysis with the pipelined
     * dependency-graph schedule over a streaming epoch slicer instead of
     * the barrier-per-pass loop. Default off. Analysis results are
     * guaranteed identical to the barrier schedule (see DESIGN.md
     * "Pipelined scheduler"); only scheduling and resident memory change,
     * and SessionResult::peakResidentEpochs reports the high-water mark.
     */
    bool pipelineMode = false;
    /**
     * Opt-in: select the batched (columnar SoA) pass-1 kernels in the
     * lifeguard. Default off. Reports, summaries and counters are
     * guaranteed bit-identical to the scalar kernels (see DESIGN.md
     * "Columnar epoch batches"); only the per-block execution strategy
     * changes. Composes freely with parallelPasses/pipelineMode.
     */
    bool batchMode = false;
    /**
     * Opt-in: run the static elision pre-pass (src/staticpass/) before
     * monitoring. Events from sites the classifier proves AlwaysPrivate
     * are dropped from the monitored stream and replaced by SiteSummary
     * events carrying exact per-site counts. The oracle still replays
     * the full trace, so the accuracy comparison of every elided run is
     * itself a zero-false-negative proof. Default off.
     */
    bool elide = false;
};

/** Everything measured in one run. */
struct SessionResult
{
    std::string workloadName;
    std::size_t threads = 0;
    std::size_t instructions = 0;
    std::size_t memoryAccesses = 0;
    std::size_t epochs = 0;
    /** Pipeline mode only: most epochs simultaneously resident in the
     *  streaming slicer's ring (bounded by its window; 0 otherwise). */
    std::size_t peakResidentEpochs = 0;

    // Static elision (elide mode only; zero/default otherwise).
    staticpass::ClassifyStats siteClasses;
    staticpass::ElisionStats elision;
    std::uint64_t planFingerprint = 0;
    /** Log-codec bytes for the full vs. the monitored (elided) trace —
     *  the bytes-on-the-wire saving the summaries buy. */
    std::size_t encodedBytesFull = 0;
    std::size_t encodedBytesMonitored = 0;

    std::size_t butterflyErrorCount = 0;
    std::size_t oracleErrorCount = 0;
    AccuracyReport accuracy;
    /** Fig. 13 metric: FPs as a fraction of memory accesses. */
    double falsePositiveRate = 0.0;

    PerfReport perf;
};

/** Run the full pipeline for one configuration. */
SessionResult runSession(const SessionConfig &config);

} // namespace bfly

#endif // BUTTERFLY_HARNESS_SESSION_HPP
