#include "harness/perf_model.hpp"

#include "harness/idempotent_filter.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {

namespace {

/** Pre-interned perf-model telemetry (one-time registration). */
struct PerfTelemetry
{
    telemetry::MetricId seqBaselineCycles;
    telemetry::MetricId timeslicedCycles;
    telemetry::MetricId butterflyCycles;
    telemetry::MetricId parallelNoMonCycles;
    telemetry::MetricId dbiCycles;
    telemetry::MetricId appStallCycles;
    telemetry::MetricId barrierWaitCycles;
    telemetry::MetricId recordedEvents;
    telemetry::MetricId pass1BlockCycles; ///< histogram
    telemetry::MetricId pass2BlockCycles; ///< histogram
    telemetry::MetricId sosEpochCycles;   ///< histogram
    telemetry::MetricId butterflyPipelinedCycles;
    telemetry::MetricId taskWaitCycles;
    telemetry::MetricId barrierStallBlockCycles; ///< histogram

    static const PerfTelemetry &
    get()
    {
        static const PerfTelemetry m = [] {
            auto &r = telemetry::registry();
            PerfTelemetry s;
            s.seqBaselineCycles =
                r.gauge("bfly.perf.sequential_baseline_cycles");
            s.timeslicedCycles = r.gauge("bfly.perf.timesliced_cycles");
            s.butterflyCycles = r.gauge("bfly.perf.butterfly_cycles");
            s.parallelNoMonCycles =
                r.gauge("bfly.perf.parallel_nomonitor_cycles");
            s.dbiCycles = r.gauge("bfly.perf.dbi_cycles");
            s.appStallCycles = r.gauge("bfly.perf.app_stall_cycles");
            s.barrierWaitCycles =
                r.gauge("bfly.perf.barrier_wait_cycles");
            s.recordedEvents = r.counter("bfly.perf.recorded_events");
            s.pass1BlockCycles =
                r.histogram("bfly.perf.pass1_block_cycles");
            s.pass2BlockCycles =
                r.histogram("bfly.perf.pass2_block_cycles");
            s.sosEpochCycles = r.histogram("bfly.perf.sos_epoch_cycles");
            s.butterflyPipelinedCycles =
                r.gauge("bfly.perf.butterfly_pipelined_cycles");
            s.taskWaitCycles =
                r.gauge("bfly.perf.pipelined_task_wait_cycles");
            s.barrierStallBlockCycles =
                r.histogram("bfly.perf.barrier_stall_block_cycles");
            return s;
        }();
        return m;
    }
};

/** Expand an event's monitored keys (destination + sources). */
void
monitoredKeys(const Event &e, const AddrCheckConfig &cfg,
              std::vector<Addr> &out)
{
    out.clear();
    auto push_range = [&](Addr base, std::uint16_t size) {
        if (base == kNoAddr || !cfg.monitored(base))
            return;
        const Addr first = cfg.keyOf(base);
        const Addr last = cfg.keyOf(base + (size > 0 ? size - 1 : 0));
        for (Addr k = first; k <= last; ++k)
            out.push_back(k);
    };
    push_range(e.addr, e.size);
    if (e.kind == EventKind::Assign) {
        const Addr srcs[2] = {e.src0, e.src1};
        for (unsigned n = 0; n < e.nsrc; ++n)
            push_range(srcs[n], e.size);
    }
}

/**
 * Lifeguard cycles to process one event in pass 1 (or in the timesliced
 * monitor when @p record is false). Updates the filter; counts events
 * that were fully checked (and therefore recorded for pass 2).
 */
Cycles
lifeguardEventCost(const Event &e, const AddrCheckConfig &cfg,
                   const LifeguardCosts &costs, IdempotentFilter &filter,
                   bool record, std::vector<Addr> &scratch,
                   std::uint64_t *recorded)
{
    switch (e.kind) {
      case EventKind::Alloc:
      case EventKind::Free: {
        monitoredKeys(e, cfg, scratch);
        for (Addr k : scratch)
            filter.evict(k); // metadata changed: force re-checks
        if (scratch.empty())
            return record ? costs.bfDispatchCost : costs.dispatchCost;
        if (recorded)
            ++*recorded;
        return costs.allocCost + (record ? costs.recordCost : 0);
      }
      case EventKind::Read:
      case EventKind::Write:
      case EventKind::Use:
      case EventKind::Assign: {
        monitoredKeys(e, cfg, scratch);
        if (scratch.empty())
            return record ? costs.bfDispatchCost : costs.dispatchCost;
        bool all_hit = true;
        for (Addr k : scratch)
            all_hit = all_hit && filter.hit(k);
        if (recorded)
            ++*recorded;
        if (all_hit) {
            // A filter hit skips the metadata check, but the butterfly
            // first pass must still record the access: the pass-2
            // isolation check needs every access in the block summary.
            // With first-pass caching (the paper's future-work
            // optimization, Section 7.2) a repeated access reuses its
            // cached record instead of rebuilding it.
            const Cycles rec = !record ? 0
                               : costs.firstPassCaching
                                   ? costs.recordCachedCost
                                   : costs.recordCost;
            return costs.filteredCost + rec;
        }
        for (Addr k : scratch)
            filter.insert(k);
        return costs.checkCost + (record ? costs.recordCost : 0);
      }
      default:
        return record ? costs.bfDispatchCost : costs.dispatchCost;
    }
}

/**
 * Replay the trace through a CMP, returning per-thread, per-event
 * application cycles (indexed by per-thread non-heartbeat event index).
 * Parallel mode assigns each thread its own core and replays in true
 * (gseq) order so coherence misses land where they occurred; serial mode
 * funnels everything through core 0 in the same order.
 */
std::vector<std::vector<Cycles>>
replayAppCosts(const Trace &trace, const CoreModel &core, Cmp &cmp,
               bool parallel)
{
    struct Ref
    {
        std::uint64_t gseq;
        ThreadId tid;
        std::size_t slot;
        const Event *e;
    };
    std::vector<Ref> order;
    order.reserve(trace.instructionCount());
    std::vector<std::vector<Cycles>> costs(trace.numThreads());
    for (std::size_t t = 0; t < trace.numThreads(); ++t) {
        std::size_t slot = 0;
        for (const Event &e : trace.threads[t].events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            order.push_back(
                Ref{e.gseq, static_cast<ThreadId>(t), slot++, &e});
        }
        costs[t].resize(slot, 0);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.gseq < b.gseq;
                     });

    for (const Ref &r : order) {
        Cycles mem = 0;
        if (r.e->isMemoryAccess() || r.e->kind == EventKind::Alloc ||
            r.e->kind == EventKind::Free) {
            const unsigned c = parallel ? r.tid : 0;
            const bool is_write = r.e->kind != EventKind::Read &&
                                  r.e->kind != EventKind::Use;
            mem = cmp.access(c, r.e->addr, is_write);
        }
        costs[r.tid][r.slot] = core.cost(*r.e, mem);
    }
    return costs;
}

/**
 * Replay in barrier-segment order on core 0: all of thread 0's events up
 * to the first barrier, then thread 1's, ... — how a single-threaded run
 * of the same program would traverse memory, phase by phase, with intact
 * per-thread locality. This is the paper's normalization baseline
 * ("running sequentially on a single thread without monitoring"); the
 * timesliced *monitored* run instead replays the fine-grained interleave
 * and pays the cache interference of timeslicing.
 */
Cycles
replaySegmentOrderedBaseline(const Trace &trace, const CoreModel &core,
                             Cmp &cmp)
{
    const std::size_t T = trace.numThreads();
    std::vector<std::size_t> cursor(T, 0);
    Cycles total = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t t = 0; t < T; ++t) {
            const auto &events = trace.threads[t].events;
            while (cursor[t] < events.size()) {
                const Event &e = events[cursor[t]++];
                progress = true;
                if (e.kind == EventKind::Heartbeat)
                    continue;
                Cycles mem = 0;
                if (e.isMemoryAccess() || e.kind == EventKind::Alloc ||
                    e.kind == EventKind::Free) {
                    const bool is_write =
                        e.kind != EventKind::Read &&
                        e.kind != EventKind::Use;
                    mem = cmp.access(0, e.addr, is_write);
                }
                total += core.cost(e, mem);
                if (e.kind == EventKind::Barrier)
                    break; // next thread's slice of this phase
            }
        }
    }
    return total;
}

/**
 * Parallel application time with barrier rendezvous: the sum over barrier
 * intervals of the slowest thread's segment.
 */
Cycles
barrierAwareParallelTime(const Trace &trace,
                         const std::vector<std::vector<Cycles>> &costs)
{
    const std::size_t T = trace.numThreads();
    // Segment sums between Barrier events, per thread.
    std::vector<std::vector<Cycles>> segments(T);
    for (std::size_t t = 0; t < T; ++t) {
        Cycles acc = 0;
        std::size_t slot = 0;
        for (const Event &e : trace.threads[t].events) {
            if (e.kind == EventKind::Heartbeat)
                continue;
            acc += costs[t][slot++];
            if (e.kind == EventKind::Barrier) {
                segments[t].push_back(acc);
                acc = 0;
            }
        }
        segments[t].push_back(acc);
    }
    std::size_t max_segs = 0;
    for (const auto &s : segments)
        max_segs = std::max(max_segs, s.size());
    Cycles total = 0;
    for (std::size_t k = 0; k < max_segs; ++k) {
        Cycles slowest = 0;
        for (const auto &s : segments)
            if (k < s.size())
                slowest = std::max(slowest, s[k]);
        total += slowest;
    }
    return total;
}

} // namespace

PerfReport
computePerformance(const PerfInputs &in)
{
    ensure(in.trace && in.layout && in.butterfly,
           "perf model needs trace, layout and functional results");
    const Trace &trace = *in.trace;
    const EpochLayout &layout = *in.layout;
    const std::size_t T = trace.numThreads();
    const std::size_t capacity =
        std::max<std::size_t>(1, in.logBufferBytes / in.logRecordBytes);

    PerfReport report;

    // --- Application-side cycles -------------------------------------
    // Parallel runs use 2T cores (T application + T lifeguard; Table 1
    // scales L2 with the core count). Serial runs use the 2-core config.
    Cmp cmp_parallel(CmpConfig::forCores(static_cast<unsigned>(2 * T)));
    auto par_costs = [&] {
        telemetry::TraceSpan span("perf.app_replay_parallel");
        return replayAppCosts(trace, in.core, cmp_parallel, true);
    }();
    report.cacheStats = cmp_parallel.stats();

    // Timesliced app core: the fine-grained interleave (cache
    // interference between the timesliced threads' working sets).
    Cmp cmp_serial(CmpConfig::forCores(2));
    auto ser_costs = [&] {
        telemetry::TraceSpan span("perf.app_replay_serial");
        return replayAppCosts(trace, in.core, cmp_serial, false);
    }();

    // Sequential unmonitored baseline: same work, single-threaded
    // traversal order (phase-by-phase, locality intact).
    Cmp cmp_baseline(CmpConfig::forCores(2));
    {
        telemetry::TraceSpan span("perf.sequential_baseline");
        report.sequentialBaseline =
            replaySegmentOrderedBaseline(trace, in.core, cmp_baseline);
    }
    const Cycles seq_total = report.sequentialBaseline;

    // Parallel, no monitoring: barrier-aware slowest-thread time.
    {
        const Cycles t = barrierAwareParallelTime(trace, par_costs);
        report.parallelNoMonitor.timing.totalCycles = t;
        report.parallelNoMonitor.timing.appCycles = t;
    }

    // --- Software-only DBI monitoring --------------------------------
    // DBI frameworks cannot soundly monitor threads running in parallel
    // (the inter-thread dependence problem this paper addresses), so
    // the deployed tools serialize the threads onto one core (as
    // Valgrind does) with checks inlined into the instruction stream.
    {
        telemetry::TraceSpan span("perf.dbi");
        Cycles total = 0;
        std::vector<Addr> scratch;
        for (std::size_t t = 0; t < T; ++t) {
            std::size_t slot = 0;
            for (const Event &e : trace.threads[t].events) {
                if (e.kind == EventKind::Heartbeat)
                    continue;
                monitoredKeys(e, in.addrcheck, scratch);
                total += ser_costs[t][slot] +
                         (scratch.empty() ? in.costs.dbiPerOtherEvent
                                          : in.costs.dbiPerMemEvent);
                ++slot;
            }
        }
        report.dbiSoftware.timing.totalCycles = total;
        report.dbiSoftware.timing.appCycles = total;
    }

    // --- Timesliced monitoring ---------------------------------------
    // One application core produces the merged stream; one lifeguard
    // core consumes it with a persistent idempotent filter.
    {
        telemetry::TraceSpan span("perf.timesliced");
        struct Ref
        {
            std::uint64_t gseq;
            ThreadId tid;
            std::size_t slot;
            const Event *e;
        };
        std::vector<Ref> order;
        order.reserve(trace.instructionCount());
        for (std::size_t t = 0; t < T; ++t) {
            std::size_t slot = 0;
            for (const Event &e : trace.threads[t].events) {
                if (e.kind == EventKind::Heartbeat)
                    continue;
                order.push_back(
                    Ref{e.gseq, static_cast<ThreadId>(t), slot++, &e});
            }
        }
        std::stable_sort(order.begin(), order.end(),
                         [](const Ref &a, const Ref &b) {
                             return a.gseq < b.gseq;
                         });

        std::vector<Cycles> prod, cons;
        prod.reserve(order.size());
        cons.reserve(order.size());
        IdempotentFilter filter(in.costs.filterSlots);
        std::vector<Addr> scratch;
        for (const Ref &r : order) {
            prod.push_back(ser_costs[r.tid][r.slot]);
            cons.push_back(lifeguardEventCost(*r.e, in.addrcheck,
                                              in.costs, filter, false,
                                              scratch, nullptr));
        }
        report.timesliced.timing = simulateSpsc(prod, cons, capacity);
    }

    // --- Parallel butterfly monitoring -------------------------------
    {
        telemetry::TraceSpan span("perf.butterfly");
        const bool traced = telemetry::enabled();
        const PerfTelemetry *pt = traced ? &PerfTelemetry::get() : nullptr;
        auto &reg = telemetry::registry();

        ButterflyTimingInput bt;
        bt.bufferCapacity = capacity;
        bt.barrierCost = in.costs.barrierCost;
        bt.costs.resize(T);

        const std::size_t L = layout.numEpochs();
        std::vector<Addr> scratch;
        for (ThreadId t = 0; t < T; ++t) {
            bt.costs[t].resize(L);
            IdempotentFilter filter(in.costs.filterSlots);
            for (EpochId l = 0; l < L; ++l) {
                filter.flush(); // butterfly flushes at epoch boundaries
                const BlockView block = layout.block(l, t);
                EpochCosts &ec = bt.costs[t][l];
                ec.appCost.reserve(block.size());
                ec.pass1Cost.reserve(block.size());
                std::uint64_t recorded = 0;
                Cycles pass1_total = 0;
                for (InstrOffset i = 0; i < block.size(); ++i) {
                    const std::size_t idx = layout.globalIndex(l, t, i);
                    ec.appCost.push_back(par_costs[t][idx]);
                    const Cycles c = lifeguardEventCost(
                        block.events[i], in.addrcheck, in.costs, filter,
                        true, scratch, &recorded);
                    pass1_total += c;
                    ec.pass1Cost.push_back(c);
                }
                // Pass 2: merge the wing summaries, re-analyze recorded
                // events, process any flagged errors.
                Cycles meet = 0;
                const EpochId lo = l >= 1 ? l - 1 : 0;
                for (EpochId w = lo; w <= l + 1 && w < L; ++w) {
                    for (ThreadId u = 0; u < T; ++u) {
                        if (u != t)
                            meet += in.butterfly->summarySize(w, u);
                    }
                }
                ec.pass2Cost =
                    in.costs.pass2PerEvent * recorded +
                    in.costs.meetPerKey * meet +
                    in.costs.fpCost * in.butterfly->errorsInBlock(l, t);
                if (traced) {
                    // Per-(thread, epoch) cost breakdown: one histogram
                    // sample per block, one counter flush per block —
                    // never per event.
                    reg.add(pt->recordedEvents, recorded);
                    reg.observe(pt->pass1BlockCycles, pass1_total);
                    reg.observe(pt->pass2BlockCycles, ec.pass2Cost);
                }
            }
        }
        bt.sosUpdateCost.resize(L);
        for (EpochId l = 0; l < L; ++l) {
            bt.sosUpdateCost[l] =
                in.costs.sosPerKey * in.butterfly->sosUpdateWork(l);
            if (traced)
                reg.observe(pt->sosEpochCycles, bt.sosUpdateCost[l]);
        }
        report.butterfly.timing = simulateButterfly(bt);
        // The same costs, dependency-scheduled: one lifeguard core per
        // application core, no barriers. Strictness follows the
        // functional driver's declared finalize ordering.
        report.butterflyPipelined.timing = simulateButterflyPipelined(
            bt, T, in.butterfly->finalizeAfterPass2());

        if (traced) {
            // Per-(thread, epoch) barrier-stall breakdown of the
            // barrier schedule: one histogram sample per block. This is
            // exactly the time the pipelined schedule recovers.
            for (const auto &per_thread :
                 report.butterfly.timing.barrierStallPerBlock)
                for (Cycles stall : per_thread)
                    reg.observe(pt->barrierStallBlockCycles, stall);
        }
    }

    const double denom = static_cast<double>(seq_total);
    report.parallelNoMonitor.normalized =
        report.parallelNoMonitor.timing.totalCycles / denom;
    report.timesliced.normalized =
        report.timesliced.timing.totalCycles / denom;
    report.butterfly.normalized =
        report.butterfly.timing.totalCycles / denom;
    report.butterflyPipelined.normalized =
        report.butterflyPipelined.timing.totalCycles / denom;
    report.dbiSoftware.normalized =
        report.dbiSoftware.timing.totalCycles / denom;

    if (telemetry::enabled()) {
        const PerfTelemetry &pt = PerfTelemetry::get();
        auto &reg = telemetry::registry();
        reg.set(pt.seqBaselineCycles, report.sequentialBaseline);
        reg.set(pt.timeslicedCycles,
                report.timesliced.timing.totalCycles);
        reg.set(pt.butterflyCycles, report.butterfly.timing.totalCycles);
        reg.set(pt.parallelNoMonCycles,
                report.parallelNoMonitor.timing.totalCycles);
        reg.set(pt.dbiCycles, report.dbiSoftware.timing.totalCycles);
        reg.set(pt.appStallCycles,
                report.butterfly.timing.appStallCycles);
        reg.set(pt.barrierWaitCycles,
                report.butterfly.timing.barrierWaitCycles);
        reg.set(pt.butterflyPipelinedCycles,
                report.butterflyPipelined.timing.totalCycles);
        reg.set(pt.taskWaitCycles,
                report.butterflyPipelined.timing.taskWaitCycles);
    }
    return report;
}

} // namespace bfly
