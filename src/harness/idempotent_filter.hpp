/**
 * @file
 * Direct-mapped idempotent filter (LBA accelerator model).
 *
 * Remembers the last metadata key hashed into each slot; an access whose
 * keys all hit needs no full metadata check (the same check already ran
 * and nothing invalidated it). Allocation-state changes evict their keys
 * so stale "checked" verdicts cannot survive a metadata change. Butterfly
 * analysis must flush the filter at every epoch boundary (Section 7.1,
 * footnote 5: events may be filtered within, never across, epochs); the
 * timesliced baseline never flushes.
 */

#ifndef BUTTERFLY_HARNESS_IDEMPOTENT_FILTER_HPP
#define BUTTERFLY_HARNESS_IDEMPOTENT_FILTER_HPP

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/** Last-key-per-slot filter; see file comment. */
class IdempotentFilter
{
  public:
    explicit IdempotentFilter(std::size_t slots = 4096)
        : slots_(slots, kNoAddr)
    {}

    bool
    hit(Addr key) const
    {
        // Empty slots hold kNoAddr; the sentinel must never read as a
        // cached verdict.
        return key != kNoAddr && slots_[key % slots_.size()] == key;
    }

    void insert(Addr key) { slots_[key % slots_.size()] = key; }

    /** Metadata changed: forget any cached verdict for @p key. */
    void
    evict(Addr key)
    {
        auto &slot = slots_[key % slots_.size()];
        if (slot == key)
            slot = kNoAddr;
    }

    /** Epoch boundary (butterfly mode): forget everything. */
    void flush() { std::fill(slots_.begin(), slots_.end(), kNoAddr); }

    std::size_t slots() const { return slots_.size(); }

  private:
    std::vector<Addr> slots_;
};

} // namespace bfly

#endif // BUTTERFLY_HARNESS_IDEMPOTENT_FILTER_HPP
