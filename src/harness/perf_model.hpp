/**
 * @file
 * Lifeguard cost model and end-to-end timing of the three monitoring modes
 * the paper's Figure 11 compares:
 *
 *  - timesliced monitoring: all application threads interleaved on one
 *    core, one sequential lifeguard core (the state of the art);
 *  - parallel (butterfly) monitoring: one lifeguard core per application
 *    core, two passes per epoch with barriers and SOS updates;
 *  - parallel, no monitoring.
 *
 * Application-side per-event cycles come from the CMP cache model
 * (src/sim); lifeguard-side per-event cycles come from the instruction
 * cost model below, which reflects the prototype's measured behaviour
 * (Section 7.2): a baseline metadata check per unfiltered event, ~7-10
 * extra instructions per load/store in pass 1 to record it for pass 2,
 * per-epoch barrier and SOS-update costs, wing-summary merge work
 * proportional to summary sizes, and expensive false-positive handling.
 * Idempotent filtering (an LBA accelerator the prototype uses) makes
 * repeat accesses to a recently-checked location nearly free; butterfly
 * analysis must flush the filter at every epoch boundary (Section 7.1
 * footnote), the timesliced baseline never flushes.
 */

#ifndef BUTTERFLY_HARNESS_PERF_MODEL_HPP
#define BUTTERFLY_HARNESS_PERF_MODEL_HPP

#include <cstdint>

#include "sim/cmp.hpp"
#include "sim/core_model.hpp"
#include "sim/lba.hpp"
#include "lifeguards/addrcheck.hpp"
#include "trace/epoch_slicer.hpp"
#include "trace/trace.hpp"

namespace bfly {

/** Cycle costs of lifeguard processing (per event / per element). */
struct LifeguardCosts
{
    Cycles checkCost = 20;      ///< unfiltered metadata check
    Cycles filteredCost = 3;    ///< idempotent-filter hit
    Cycles dispatchCost = 1;    ///< non-memory event dispatch (timesliced)
    /** Butterfly pass-1 per-instruction bookkeeping. The prototype's
     *  first pass executes several instructions per event beyond the
     *  check itself (Section 7.2 calls this overhead non-fundamental
     *  but real); the timesliced monitor has no such loop. */
    Cycles bfDispatchCost = 7;
    Cycles recordCost = 10;     ///< butterfly pass-1 record per mem event
    Cycles pass2PerEvent = 10;  ///< pass-2 re-analysis per recorded event
    Cycles meetPerKey = 1;      ///< wing-summary merge, per summary key
    Cycles allocCost = 40;      ///< alloc/free metadata range update
    Cycles fpCost = 1000;       ///< per flagged error (logging/handling)
    Cycles barrierCost = 400;   ///< per barrier crossing
    Cycles sosPerKey = 3;       ///< SOS update per GEN/KILL element
    /** Idempotent-filter entries (direct-mapped). */
    std::size_t filterSlots = 4096;
    /**
     * Section 7.2's future-work optimization: cache parts of the
     * first-pass analysis and reuse them when the same monitored code
     * revisits a location. When enabled, a filtered (repeat) access
     * pays recordCachedCost instead of recordCost.
     */
    bool firstPassCaching = false;
    Cycles recordCachedCost = 2;
    /**
     * Software-only dynamic binary instrumentation (the paper's
     * Section 2 alternative to hardware-assisted logging): lifeguard
     * code inlined between application instructions on the *same*
     * core. Costs reflect DBI frameworks' measured overheads
     * (Valgrind-class tools slow programs by 1-2 orders of magnitude).
     */
    Cycles dbiPerMemEvent = 55;  ///< inline check + shadow lookup
    Cycles dbiPerOtherEvent = 4; ///< translation/dispatch tax
};

/** Per-mode timing plus its normalization. */
struct ModeTiming
{
    TimingResult timing;
    double normalized = 0.0; ///< vs sequential unmonitored execution
};

/** Inputs shared by all modes for one workload run. */
struct PerfInputs
{
    const Trace *trace = nullptr;
    const EpochLayout *layout = nullptr;
    /** Functional butterfly run (per-block FP counts, summary sizes). */
    const ButterflyAddrCheck *butterfly = nullptr;
    AddrCheckConfig addrcheck;
    LifeguardCosts costs;
    CoreModel core;
    std::size_t logBufferBytes = 8 * 1024;
    std::size_t logRecordBytes = 16;
};

/** End-to-end timing of every mode for one run. */
struct PerfReport
{
    Cycles sequentialBaseline = 0; ///< 1 thread, unmonitored (denominator)
    ModeTiming parallelNoMonitor;
    ModeTiming timesliced;
    ModeTiming butterfly;
    /** The same butterfly costs under the pipelined (dependency-graph)
     *  schedule instead of barrier-per-pass: no barrier crossings, a
     *  block-pass starts when its wings are ready and a lifeguard core
     *  is free. The gap to `butterfly` is the barrier tax on this
     *  trace; `timing.barrierStallPerBlock` of the barrier mode shows
     *  which blocks paid it. */
    ModeTiming butterflyPipelined;
    /** Software-only DBI monitoring (same-core, no logging hardware) —
     *  the Section 2 alternative the paper's platform improves on. Note
     *  plain DBI on a parallel program needs extra machinery for
     *  inter-thread dependences; this mode prices only its instruction
     *  overheads, as a floor. */
    ModeTiming dbiSoftware;
    StatSet cacheStats;
};

/** Compute the full performance report for one workload run. */
PerfReport computePerformance(const PerfInputs &inputs);

} // namespace bfly

#endif // BUTTERFLY_HARNESS_PERF_MODEL_HPP
