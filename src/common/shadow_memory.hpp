/**
 * @file
 * Two-level paged shadow memory.
 *
 * Lifeguards keep per-byte (or per-word) metadata for the entire simulated
 * application address space. A flat array would be wasteful; instead we use
 * the classic two-level scheme from Memcheck/AddrCheck: a directory of
 * fixed-size pages, allocated lazily on first touch. Reads of untouched
 * addresses return a default value without allocating.
 */

#ifndef BUTTERFLY_COMMON_SHADOW_MEMORY_HPP
#define BUTTERFLY_COMMON_SHADOW_MEMORY_HPP

#include <array>
#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/**
 * Lazily-allocated paged map from address to metadata value.
 *
 * @tparam T           metadata type (must be cheap to copy)
 * @tparam PageBits    log2 of entries per page (default 4096 entries)
 */
template <typename T, unsigned PageBits = 12>
class ShadowMemory
{
  public:
    static constexpr std::size_t kPageSize = std::size_t{1} << PageBits;
    static constexpr Addr kOffsetMask = kPageSize - 1;

    explicit ShadowMemory(T default_value = T{})
        : defaultValue_(default_value)
    {}

    /** Read the metadata for @p addr (default value if untouched). */
    T
    get(Addr addr) const
    {
        auto it = pages_.find(pageIndex(addr));
        if (it == pages_.end())
            return defaultValue_;
        return (*it->second)[addr & kOffsetMask];
    }

    /** Write metadata for @p addr, allocating its page if needed. */
    void
    set(Addr addr, const T &value)
    {
        page(addr)[addr & kOffsetMask] = value;
    }

    /** Write metadata for a contiguous range [addr, addr+len). */
    void
    setRange(Addr addr, std::size_t len, const T &value)
    {
        for (std::size_t k = 0; k < len; ++k)
            set(addr + k, value);
    }

    /** True if every byte of [addr, addr+len) equals @p value. */
    bool
    rangeEquals(Addr addr, std::size_t len, const T &value) const
    {
        for (std::size_t k = 0; k < len; ++k) {
            if (!(get(addr + k) == value))
                return false;
        }
        return true;
    }

    /** Number of lazily-allocated pages (for footprint accounting). */
    std::size_t allocatedPages() const { return pages_.size(); }

    /** Drop all pages, restoring every address to the default value. */
    void
    clear()
    {
        pages_.clear();
    }

  private:
    using Page = std::array<T, kPageSize>;

    static Addr pageIndex(Addr addr) { return addr >> PageBits; }

    Page &
    page(Addr addr)
    {
        auto &slot = pages_[pageIndex(addr)];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(defaultValue_);
        }
        return *slot;
    }

    T defaultValue_;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_SHADOW_MEMORY_HPP
