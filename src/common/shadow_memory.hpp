/**
 * @file
 * Two-level paged shadow memory.
 *
 * Lifeguards keep per-byte (or per-word) metadata for the entire simulated
 * application address space. A flat array would be wasteful; instead we use
 * the classic two-level scheme from Memcheck/AddrCheck: a directory of
 * fixed-size pages, allocated lazily on first touch. Reads of untouched
 * addresses return a default value without allocating.
 *
 * Range operations (setRange / rangeEquals / forEachInRange) walk the
 * range page by page — one directory lookup per page, then std::fill or a
 * linear scan within it — instead of one hash lookup per entry. Pointwise
 * get/set keep a one-entry cache of the last page touched, which turns the
 * oracles' sequential access patterns into a single compare per entry.
 *
 * Not thread-safe: the last-page cache mutates on const reads. All users
 * (oracles, per-block lifeguard commits) access their instance from one
 * thread at a time.
 */

#ifndef BUTTERFLY_COMMON_SHADOW_MEMORY_HPP
#define BUTTERFLY_COMMON_SHADOW_MEMORY_HPP

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/**
 * Coalesce a sorted address run into maximal contiguous ranges: calls
 * @p fn(base, len) once per run of consecutive addresses. Duplicates
 * collapse into their run. This is the bridge from a batched kernel's
 * sort-by-address output to the page-span bulk operations below — one
 * setRange/rangeEquals per dense run instead of one probe per address.
 *
 * @pre @p sorted is in ascending order.
 */
template <typename Fn>
void
forEachCoalescedRun(std::span<const Addr> sorted, Fn &&fn)
{
    std::size_t i = 0;
    const std::size_t n = sorted.size();
    while (i < n) {
        const Addr base = sorted[i];
        Addr end = base; // inclusive end of the run so far
        ++i;
        while (i < n && (sorted[i] == end || sorted[i] == end + 1)) {
            end = sorted[i];
            ++i;
        }
        fn(base, static_cast<std::size_t>(end - base) + 1);
    }
}

/**
 * Lazily-allocated paged map from address to metadata value.
 *
 * @tparam T           metadata type (must be cheap to copy)
 * @tparam PageBits    log2 of entries per page (default 4096 entries)
 */
template <typename T, unsigned PageBits = 12>
class ShadowMemory
{
  public:
    static constexpr std::size_t kPageSize = std::size_t{1} << PageBits;
    static constexpr Addr kOffsetMask = kPageSize - 1;

    explicit ShadowMemory(T default_value = T{})
        : defaultValue_(default_value)
    {}

    /** Read the metadata for @p addr (default value if untouched). */
    T
    get(Addr addr) const
    {
        const Addr pi = pageIndex(addr);
        if (pi == cachedIndex_)
            return cachedPage_ ? (*cachedPage_)[addr & kOffsetMask]
                               : defaultValue_;
        auto it = pages_.find(pi);
        cachedIndex_ = pi;
        cachedPage_ = it == pages_.end() ? nullptr : it->second.get();
        return cachedPage_ ? (*cachedPage_)[addr & kOffsetMask]
                           : defaultValue_;
    }

    /** Write metadata for @p addr, allocating its page if needed. */
    void
    set(Addr addr, const T &value)
    {
        const Addr pi = pageIndex(addr);
        if (pi != cachedIndex_ || cachedPage_ == nullptr) {
            Page *p = &page(addr);
            cachedIndex_ = pi;
            cachedPage_ = p;
        }
        (*cachedPage_)[addr & kOffsetMask] = value;
    }

    /** Write metadata for a contiguous range [addr, addr+len). */
    void
    setRange(Addr addr, std::size_t len, const T &value)
    {
        while (len > 0) {
            const std::size_t off =
                static_cast<std::size_t>(addr & kOffsetMask);
            const std::size_t run = std::min(len, kPageSize - off);
            Page &p = page(addr);
            std::fill_n(p.data() + off, run, value);
            addr += run;
            len -= run;
        }
    }

    /** True if every entry of [addr, addr+len) equals @p value. */
    bool
    rangeEquals(Addr addr, std::size_t len, const T &value) const
    {
        while (len > 0) {
            const std::size_t off =
                static_cast<std::size_t>(addr & kOffsetMask);
            const std::size_t run = std::min(len, kPageSize - off);
            auto it = pages_.find(pageIndex(addr));
            if (it == pages_.end()) {
                // Untouched page: every entry holds the default.
                if (!(defaultValue_ == value))
                    return false;
            } else {
                const T *base = it->second->data() + off;
                for (std::size_t k = 0; k < run; ++k)
                    if (!(base[k] == value))
                        return false;
            }
            addr += run;
            len -= run;
        }
        return true;
    }

    /**
     * Call @p fn(value) for every entry of [addr, addr+len), page-wise.
     * Untouched pages yield the default value; nothing is allocated.
     */
    template <typename Fn>
    void
    forEachInRange(Addr addr, std::size_t len, Fn &&fn) const
    {
        while (len > 0) {
            const std::size_t off =
                static_cast<std::size_t>(addr & kOffsetMask);
            const std::size_t run = std::min(len, kPageSize - off);
            auto it = pages_.find(pageIndex(addr));
            if (it == pages_.end()) {
                for (std::size_t k = 0; k < run; ++k)
                    fn(defaultValue_);
            } else {
                const T *base = it->second->data() + off;
                for (std::size_t k = 0; k < run; ++k)
                    fn(base[k]);
            }
            addr += run;
            len -= run;
        }
    }

    /**
     * Write @p value at every address of a sorted run, coalescing
     * consecutive addresses into page-span fills. Equivalent to calling
     * set() per element; dense runs touch each page directory entry
     * once instead of once per address.
     */
    void
    setSorted(std::span<const Addr> sorted, const T &value)
    {
        forEachCoalescedRun(sorted, [&](Addr base, std::size_t len) {
            if (len == 1)
                set(base, value); // keep the last-page cache warm
            else
                setRange(base, len, value);
        });
    }

    /**
     * How many addresses of a sorted run hold @p value. Equivalent to a
     * per-element get() loop, but consecutive addresses are probed as
     * coalesced ranges (page-wise scans, no per-address hash lookups).
     * Duplicate addresses each count, mirroring the pointwise loop.
     */
    std::size_t
    countEqualSorted(std::span<const Addr> sorted, const T &value) const
    {
        std::size_t hits = 0;
        std::size_t i = 0;
        const std::size_t n = sorted.size();
        while (i < n) {
            const Addr base = sorted[i];
            std::size_t run = 1;
            ++i;
            while (i < n && sorted[i] == base + run) {
                ++run;
                ++i;
            }
            std::size_t run_hits = 0;
            forEachInRange(base, run, [&](const T &v) {
                if (v == value)
                    ++run_hits;
            });
            hits += run_hits;
            // Duplicates of the run's last address repeat its verdict.
            while (i < n && sorted[i] == base + run - 1) {
                hits += get(sorted[i]) == value ? 1 : 0;
                ++i;
            }
        }
        return hits;
    }

    /** Number of lazily-allocated pages (for footprint accounting). */
    std::size_t allocatedPages() const { return pages_.size(); }

    /** Drop all pages, restoring every address to the default value. */
    void
    clear()
    {
        pages_.clear();
        cachedIndex_ = kNoPage;
        cachedPage_ = nullptr;
    }

  private:
    using Page = std::array<T, kPageSize>;

    // No reachable address maps to this page index: pageIndex() always
    // shifts at least one bit off, so indexes fit in 64-PageBits bits.
    static constexpr Addr kNoPage = static_cast<Addr>(~std::uint64_t{0});

    static Addr pageIndex(Addr addr) { return addr >> PageBits; }

    Page &
    page(Addr addr)
    {
        auto &slot = pages_[pageIndex(addr)];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(defaultValue_);
            // Rehash may not move nodes, but a prior miss may have
            // cached "absent" for this very page.
            cachedIndex_ = kNoPage;
            cachedPage_ = nullptr;
        }
        return *slot;
    }

    T defaultValue_;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    mutable Addr cachedIndex_ = kNoPage;
    mutable Page *cachedPage_ = nullptr;
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_SHADOW_MEMORY_HPP
