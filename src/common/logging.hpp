/**
 * @file
 * Minimal panic/fatal/warn helpers in the spirit of gem5's base/logging.hh.
 *
 *  - panic(): an internal invariant of the library was violated (a bug in
 *    *this* code); aborts so a debugger/core dump can be collected.
 *  - fatal(): the caller configured something impossible (user error);
 *    exits with status 1.
 *  - warnOnce()/inform(): status messages that never stop execution.
 */

#ifndef BUTTERFLY_COMMON_LOGGING_HPP
#define BUTTERFLY_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace bfly {

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/** Assert a library invariant; calls panic() on failure. */
inline void
ensure(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("invariant violated: ") + what);
}

} // namespace bfly

#endif // BUTTERFLY_COMMON_LOGGING_HPP
