/**
 * @file
 * Lightweight statistics: named counters and scalar gauges, plus a simple
 * fixed-bucket histogram. Used by the simulator, lifeguards and harness to
 * report the quantities the paper's figures are built from (cycles, events,
 * errors, false positives, stalls, ...).
 */

#ifndef BUTTERFLY_COMMON_STATS_HPP
#define BUTTERFLY_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace bfly {

/** A named bag of counters with formatted dumping. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Overwrite counter @p name. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Current value (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Merge all counters from @p other into this set. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    void clear() { counters_.clear(); }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Dump "name value" lines, sorted by name. */
    void
    dump(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[name, value] : counters_)
            os << prefix << name << " " << value << "\n";
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/** Power-of-two bucketed histogram for latency / size distributions. */
class Histogram
{
  public:
    explicit Histogram(unsigned buckets = 32) : buckets_(buckets, 0) {}

    void
    sample(std::uint64_t value)
    {
        unsigned b = 0;
        while ((std::uint64_t{1} << (b + 1)) <= value &&
               b + 1 < buckets_.size()) {
            ++b;
        }
        ++buckets_[b];
        ++count_;
        sum_ += value;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_STATS_HPP
