/**
 * @file
 * Lightweight statistics: named counters and scalar gauges, plus a simple
 * fixed-bucket histogram. Used by the simulator, lifeguards and harness to
 * report the quantities the paper's figures are built from (cycles, events,
 * errors, false positives, stalls, ...).
 *
 * StatSet is now a thin compatibility shim over the telemetry subsystem's
 * interned-ID machinery (src/telemetry/metrics.hpp): names are interned
 * once in the process-wide table and each set stores a flat id -> value
 * map, so repeated add/get on the same name costs one O(1) hash of a
 * 32-bit id instead of an O(log n) string-keyed std::map walk. Hot paths
 * can pre-intern with statId() and use the id overloads. New code should
 * publish to telemetry::registry() directly.
 */

#ifndef BUTTERFLY_COMMON_STATS_HPP
#define BUTTERFLY_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/metrics.hpp"

namespace bfly {

/** Intern @p name in the process-wide stat-name table. */
inline telemetry::MetricId
statId(const std::string &name)
{
    return telemetry::statNames().intern(name);
}

/** A named bag of counters with formatted dumping. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[statId(name)] += delta;
    }

    /** Pre-interned hot-path variant. */
    void
    add(telemetry::MetricId id, std::uint64_t delta = 1)
    {
        counters_[id] += delta;
    }

    /** Overwrite counter @p name. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[statId(name)] = value;
    }

    void
    set(telemetry::MetricId id, std::uint64_t value)
    {
        counters_[id] = value;
    }

    /** Current value (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        return get(statId(name));
    }

    std::uint64_t
    get(telemetry::MetricId id) const
    {
        auto it = counters_.find(id);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Merge all counters from @p other into this set. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[id, value] : other.counters_)
            counters_[id] += value;
    }

    void clear() { counters_.clear(); }

    /** Materialize a name-sorted view (names resolved from the table). */
    std::map<std::string, std::uint64_t>
    all() const
    {
        std::map<std::string, std::uint64_t> out;
        for (const auto &[id, value] : counters_)
            out.emplace(telemetry::statNames().lookup(id), value);
        return out;
    }

    /** Dump "name value" lines, sorted by name. */
    void
    dump(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[name, value] : all())
            os << prefix << name << " " << value << "\n";
    }

  private:
    std::unordered_map<telemetry::MetricId, std::uint64_t> counters_;
};

/** Power-of-two bucketed histogram for latency / size distributions. */
class Histogram
{
  public:
    explicit Histogram(unsigned buckets = 32) : buckets_(buckets, 0) {}

    void
    sample(std::uint64_t value)
    {
        unsigned b = 0;
        while ((std::uint64_t{1} << (b + 1)) <= value &&
               b + 1 < buckets_.size()) {
            ++b;
        }
        ++buckets_[b];
        ++count_;
        sum_ += value;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_STATS_HPP
