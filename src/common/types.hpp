/**
 * @file
 * Fundamental identifier and arithmetic types shared across the butterfly
 * analysis library.
 *
 * The naming follows the paper: an *epoch* is a heartbeat-delimited slice of
 * every thread's dynamic trace; a *block* is the portion of one thread's
 * trace inside one epoch, identified by the pair (l, t); an individual
 * dynamic instruction is identified by the triple (l, t, i).
 */

#ifndef BUTTERFLY_COMMON_TYPES_HPP
#define BUTTERFLY_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace bfly {

/** Simulated virtual address within the monitored application. */
using Addr = std::uint64_t;

/** Application / lifeguard thread identifier. */
using ThreadId = std::uint32_t;

/** Epoch identifier `l`: monotonically increasing, 0-based. */
using EpochId = std::uint64_t;

/** Offset `i` of an instruction from the start of its block. */
using InstrOffset = std::uint32_t;

/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Count of dynamic instructions / events. */
using InstrCount = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no epoch". */
inline constexpr EpochId kNoEpoch = std::numeric_limits<EpochId>::max();

/** Sentinel for "no thread". */
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

} // namespace bfly

#endif // BUTTERFLY_COMMON_TYPES_HPP
