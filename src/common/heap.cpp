#include "common/heap.hpp"

#include "common/logging.hpp"

namespace bfly {

SimHeap::SimHeap(Addr base, std::size_t size, std::size_t alignment)
    : base_(base), size_(size), alignment_(alignment)
{
    ensure(alignment_ != 0 && (alignment_ & (alignment_ - 1)) == 0,
           "SimHeap alignment must be a power of two");
    ensure((base_ & (alignment_ - 1)) == 0,
           "SimHeap base must be aligned");
    freeList_[base_] = size_;
}

Addr
SimHeap::malloc(std::size_t size)
{
    if (size == 0)
        size = 1;
    // Round up to the alignment so that subsequent blocks stay aligned.
    size = (size + alignment_ - 1) & ~(alignment_ - 1);

    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        if (it->second < size)
            continue;
        const Addr addr = it->first;
        const std::size_t remaining = it->second - size;
        freeList_.erase(it);
        if (remaining > 0)
            freeList_[addr + size] = remaining;
        allocated_[addr] = size;
        bytesInUse_ += size;
        return addr;
    }
    return kNoAddr;
}

std::size_t
SimHeap::free(Addr addr)
{
    auto it = allocated_.find(addr);
    if (it == allocated_.end())
        return 0;
    const std::size_t size = it->second;
    allocated_.erase(it);
    bytesInUse_ -= size;

    // Insert into the free list and coalesce with neighbours.
    auto [pos, inserted] = freeList_.emplace(addr, size);
    ensure(inserted, "freed region already on free list");

    // Coalesce with successor.
    auto next = std::next(pos);
    if (next != freeList_.end() && pos->first + pos->second == next->first) {
        pos->second += next->second;
        freeList_.erase(next);
    }
    // Coalesce with predecessor.
    if (pos != freeList_.begin()) {
        auto prev = std::prev(pos);
        if (prev->first + prev->second == pos->first) {
            prev->second += pos->second;
            freeList_.erase(pos);
        }
    }
    return size;
}

std::size_t
SimHeap::allocationSize(Addr addr) const
{
    auto it = allocated_.find(addr);
    return it == allocated_.end() ? 0 : it->second;
}

bool
SimHeap::isAllocated(Addr addr) const
{
    auto it = allocated_.upper_bound(addr);
    if (it == allocated_.begin())
        return false;
    --it;
    return addr >= it->first && addr < it->first + it->second;
}

} // namespace bfly
