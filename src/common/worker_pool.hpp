/**
 * @file
 * Persistent worker pool executing queued tasks.
 *
 * The butterfly window schedule runs two parallel passes per epoch. The
 * original implementation paid a full std::thread spawn+join round-trip
 * for every pass, which dominated the measured per-epoch cost and hid
 * the paper's "no synchronization on metadata" property behind substrate
 * overhead. This pool keeps a fixed set of long-lived threads parked on
 * a condition variable; all dispatch goes through one mutex-protected
 * task queue. Per-item work in this codebase is a whole block pass
 * (thousands of events), so a queue lock per item is noise — and one
 * mechanism serves both callers:
 *
 *  - batch mode (`run`): enqueue fn(i) for i in [0, count), help drain,
 *    return when all items finished — the barrier-per-pass schedule;
 *  - task mode (`submitTask` + `runTasks`): tasks may submit further
 *    tasks from inside their bodies; this is how the pipelined window
 *    schedule's dependency graph releases a successor the moment its
 *    last prerequisite completes.
 *
 * Completion is an atomic count of submitted-but-unfinished tasks,
 * incremented before a task is visible in the queue and decremented
 * after its body returns; a graph's submissions happen inside task
 * bodies, so the count reaching zero means the whole frontier drained.
 * The last decrement wakes the submitter through a second condition
 * variable. Only one run()/runTasks() may be in flight at a time (the
 * schedules are single-driver); submitTask is safe from any thread.
 *
 * An earlier revision dispatched batches through a lock-free ticket
 * counter. A worker descheduled inside that protocol could wake after
 * the batch boundary and apply the new batch's function to the old
 * batch's ticket base — misindexed items, silently skipped blocks.
 * With block-sized work items the lock bought nothing; it was removed
 * rather than patched (see DESIGN.md "Performance substrate").
 */

#ifndef BUTTERFLY_COMMON_WORKER_POOL_HPP
#define BUTTERFLY_COMMON_WORKER_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bfly {

class WorkerPool;

/**
 * Completion domain for a set of tasks on a WorkerPool. Each group keeps
 * its own submitted-but-unfinished count, so several drivers (e.g. the
 * monitoring service's concurrent sessions) can share one pool: each
 * submits into its own group and waits for just that group to drain,
 * while the pool's threads execute tasks from every group in FIFO order.
 * A group must outlive every task submitted into it.
 */
class TaskGroup
{
  public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Tasks submitted into this group and not yet finished. */
    std::size_t
    outstanding() const
    {
        return outstanding_.load(std::memory_order_acquire);
    }

  private:
    friend class WorkerPool;
    std::atomic<std::size_t> outstanding_{0};
};

/** Fixed set of long-lived threads executing queued tasks. */
class WorkerPool
{
  public:
    /** Sizes the pool to std::thread::hardware_concurrency() (min 1). */
    WorkerPool();
    /**
     * @param workers  thread count; must be positive. A pool with zero
     *                 threads would park every dispatch forever, so the
     *                 mistake is rejected loudly instead.
     */
    explicit WorkerPool(std::size_t workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    std::size_t workers() const { return threads_.size(); }
    /** Thread count (alias of workers(), container-style spelling). */
    std::size_t size() const { return threads_.size(); }

    /**
     * Run @p fn(i) for every i in [0, count); blocks until all items
     * completed. The callable is borrowed for the duration of the call
     * only — no allocation, no copy.
     */
    template <typename Fn>
    void
    run(std::size_t count, Fn &&fn)
    {
        // Wrap in a local lambda so plain functions (whose address is a
        // function pointer, not convertible to void*) also work.
        auto thunk = [&fn](std::size_t i) { fn(i); };
        runBatch(
            count,
            [](void *ctx, std::size_t i) {
                (*static_cast<decltype(thunk) *>(ctx))(i);
            },
            std::addressof(thunk));
    }

    /** Type-erased batch entry point; see run(). */
    void runBatch(std::size_t count, void (*fn)(void *, std::size_t),
                  void *ctx);

    /**
     * Enqueue one task for the pool's threads into the pool's default
     * group. Safe to call from any thread, including from inside a
     * running task (a dependency graph submits a successor the moment
     * its last prerequisite completes). Every submitted task must be
     * balanced by a runTasks() in flight or to come; tasks never outlive
     * the pool.
     */
    void submitTask(void (*fn)(void *, std::size_t), void *ctx,
                    std::size_t arg);

    /**
     * Enqueue one task into @p group. Unlike the default-group overload,
     * any number of drivers may submit into distinct groups and wait on
     * them concurrently — this is how the monitoring service shards many
     * sessions' pipelined window schedules onto one shared pool.
     */
    void submitTask(TaskGroup &group, void (*fn)(void *, std::size_t),
                    void *ctx, std::size_t arg);

    /**
     * Help execute queued tasks and block until every default-group task
     * submitted so far — plus any their bodies transitively submit — has
     * completed. Call from the thread that seeded the root tasks; must
     * not be called concurrently with itself or with run(). (Group
     * waiters use waitGroup, which has no such restriction.)
     */
    void runTasks();

    /**
     * Help execute queued tasks (from any group — work conservation)
     * until @p group has no outstanding tasks. Safe to call from several
     * threads on distinct groups concurrently, and from inside a pool
     * task (the blocked body becomes another helper, so nested waits
     * cannot starve the pool).
     */
    void waitGroup(TaskGroup &group);

  private:
    void workerLoop();

    /** One queued task. */
    struct Task
    {
        void (*fn)(void *, std::size_t) = nullptr;
        void *ctx = nullptr;
        std::size_t arg = 0;
        TaskGroup *group = nullptr;
    };

    /** Run one task body and publish its completion to its group. */
    void finishTask(const Task &task);
    void enqueue(TaskGroup &group, void (*fn)(void *, std::size_t),
                 void *ctx, std::size_t arg);

    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wakeCv_; ///< workers park here
    std::condition_variable doneCv_; ///< submitter parks here
    bool stop_ = false;

    std::deque<Task> tasks_; ///< guarded by mutex_
    /** Completion domain of the legacy submitTask/runTasks/run API.
     *  Each group's count is incremented before its task is queued and
     *  decremented after the body returns. */
    TaskGroup defaultGroup_;
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_WORKER_POOL_HPP
