/**
 * @file
 * Persistent worker pool with a generation-counter barrier.
 *
 * The butterfly window schedule runs two parallel passes per epoch. The
 * original implementation paid a full std::thread spawn+join round-trip
 * for every pass, which dominated the measured per-epoch cost and hid
 * the paper's "no synchronization on metadata" property behind substrate
 * overhead. This pool keeps a fixed set of long-lived threads parked on
 * a condition variable; dispatching a batch is one generation bump plus
 * a notify, and items are claimed with a single atomic fetch-add each.
 *
 * Batch protocol (see DESIGN.md "Performance substrate"):
 *  - tickets are drawn from one monotonically increasing counter that is
 *    never reset; each batch owns the half-open ticket range
 *    [start, start+count) and an item is `ticket - start`;
 *  - `start` skips one slack ticket per thread past the counter's current
 *    value, so a straggler's final (losing) fetch-add from the previous
 *    batch can never alias an item of this one;
 *  - workers park on a generation counter; the submitter bumps it under
 *    the mutex and then helps drain the batch itself;
 *  - completion is an atomic countdown; the last decrement wakes the
 *    submitter via a second condition variable.
 *
 * One batch may be in flight at a time (the window schedule is strictly
 * pass-by-pass); runBatch must not be called concurrently or reentrantly.
 */

#ifndef BUTTERFLY_COMMON_WORKER_POOL_HPP
#define BUTTERFLY_COMMON_WORKER_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bfly {

/** Fixed set of long-lived threads executing indexed batches. */
class WorkerPool
{
  public:
    /** @param workers  thread count; 0 picks hardware_concurrency. */
    explicit WorkerPool(std::size_t workers = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    std::size_t workers() const { return threads_.size(); }

    /**
     * Run @p fn(i) for every i in [0, count); blocks until all items
     * completed. The callable is borrowed for the duration of the call
     * only — no allocation, no copy.
     */
    template <typename Fn>
    void
    run(std::size_t count, Fn &&fn)
    {
        // Wrap in a local lambda so plain functions (whose address is a
        // function pointer, not convertible to void*) also work.
        auto thunk = [&fn](std::size_t i) { fn(i); };
        runBatch(
            count,
            [](void *ctx, std::size_t i) {
                (*static_cast<decltype(thunk) *>(ctx))(i);
            },
            std::addressof(thunk));
    }

    /** Type-erased batch entry point; see run(). */
    void runBatch(std::size_t count, void (*fn)(void *, std::size_t),
                  void *ctx);

  private:
    void workerLoop();
    /** Claim and execute items until the current batch is exhausted. */
    void drain();

    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wakeCv_; ///< workers park here
    std::condition_variable doneCv_; ///< submitter parks here
    std::uint64_t generation_ = 0;   ///< bumped once per batch
    bool stop_ = false;

    // Current batch; published before end_ (release), read after an
    // acquire load of end_.
    void (*jobFn_)(void *, std::size_t) = nullptr;
    void *jobCtx_ = nullptr;
    std::atomic<std::uint64_t> start_{0};
    std::atomic<std::uint64_t> end_{0};
    std::atomic<std::uint64_t> next_{0};    ///< monotonic ticket counter
    std::atomic<std::size_t> pending_{0};   ///< items not yet finished
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_WORKER_POOL_HPP
