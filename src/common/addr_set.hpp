/**
 * @file
 * Hash-based address sets with the set algebra the butterfly dataflow
 * equations are written in (union, intersection, difference).
 *
 * The dataflow summaries (GEN, KILL, SIDE-OUT, SIDE-IN, SOS deltas) are all
 * sets of addresses or definition ids; this class provides value-semantic
 * set operations plus deterministic sorted iteration for reporting.
 *
 * Layout: per-block summaries are tiny (a handful of addresses touched per
 * block in the paper's workloads), so the set starts as an inline unsorted
 * array of up to 8 keys with no heap allocation at all. Past that it
 * becomes an open-addressed linear-probing table with power-of-two
 * capacity, <= 3/4 load, and tombstone-free backward-shift deletion, so
 * probes stay short and iteration is a contiguous scan. Empty slots hold
 * the all-ones sentinel; the sentinel value itself is still storable via a
 * side flag.
 */

#ifndef BUTTERFLY_COMMON_ADDR_SET_HPP
#define BUTTERFLY_COMMON_ADDR_SET_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/** Value-semantic set of 64-bit keys (addresses or packed ids). */
template <typename Key = Addr>
class FlatSet
{
    static_assert(std::is_integral_v<Key> && sizeof(Key) == 8,
                  "FlatSet is specialized for 64-bit integer keys");

    static constexpr std::size_t kInline = 8;
    static constexpr Key kEmptySlot = static_cast<Key>(~std::uint64_t{0});

  public:
    FlatSet() = default;

    FlatSet(std::initializer_list<Key> init)
    {
        for (Key k : init)
            insert(k);
    }

    FlatSet(const FlatSet &other) { copyFrom(other); }

    FlatSet(FlatSet &&other) noexcept { moveFrom(std::move(other)); }

    FlatSet &
    operator=(const FlatSet &other)
    {
        if (this != &other) {
            table_.reset();
            copyFrom(other);
        }
        return *this;
    }

    FlatSet &
    operator=(FlatSet &&other) noexcept
    {
        if (this != &other) {
            table_.reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    bool
    contains(Key k) const
    {
        if (!table_) {
            for (std::size_t i = 0; i < size_; ++i)
                if (small_[i] == k)
                    return true;
            return false;
        }
        if (k == kEmptySlot)
            return hasEmptyKey_;
        const std::size_t mask = cap_ - 1;
        for (std::size_t i = homeOf(k);; i = (i + 1) & mask) {
            const Key slot = table_[i];
            if (slot == k)
                return true;
            if (slot == kEmptySlot)
                return false;
        }
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    insert(Key k)
    {
        if (!table_) {
            for (std::size_t i = 0; i < size_; ++i)
                if (small_[i] == k)
                    return;
            if (size_ < kInline) {
                small_[size_++] = k;
                return;
            }
            migrateToTable();
        }
        if (k == kEmptySlot) {
            if (!hasEmptyKey_) {
                hasEmptyKey_ = true;
                ++size_;
            }
            return;
        }
        // +1 keeps the table at most 3/4 full after this insert, so a
        // probe always terminates on an empty slot.
        if ((tableCount() + 1) * 4 > cap_ * 3)
            rehash(cap_ * 2);
        if (rawInsert(k))
            ++size_;
    }

    void
    erase(Key k)
    {
        if (!table_) {
            for (std::size_t i = 0; i < size_; ++i) {
                if (small_[i] == k) {
                    small_[i] = small_[--size_];
                    return;
                }
            }
            return;
        }
        if (k == kEmptySlot) {
            if (hasEmptyKey_) {
                hasEmptyKey_ = false;
                --size_;
            }
            return;
        }
        const std::size_t mask = cap_ - 1;
        for (std::size_t i = homeOf(k);; i = (i + 1) & mask) {
            const Key slot = table_[i];
            if (slot == kEmptySlot)
                return;
            if (slot == k) {
                shiftBackward(i);
                --size_;
                return;
            }
        }
    }

    void
    clear()
    {
        table_.reset();
        cap_ = 0;
        size_ = 0;
        hasEmptyKey_ = false;
    }

    /**
     * Grow the table (if needed) so @p total elements fit within the
     * 3/4 load bound without another rehash. Never shrinks, and leaves
     * a set that is still inline-small untouched when @p total fits the
     * inline buffer.
     */
    void
    reserve(std::size_t total)
    {
        if (!table_) {
            if (total <= kInline)
                return;
            migrateToTable();
        }
        std::size_t cap = cap_;
        while (total * 4 > cap * 3)
            cap *= 2;
        if (cap != cap_)
            rehash(cap);
    }

    /**
     * Insert every key of @p keys: one capacity reservation up front
     * instead of incremental doubling, and adjacent equal keys (the
     * run-length shape a sort-by-address pass-1 kernel produces) are
     * collapsed before probing. Equivalent to per-element insert() for
     * any input order, sorted or not.
     */
    void
    insertBulk(std::span<const Key> keys)
    {
        if (keys.empty())
            return;
        reserve(size_ + keys.size());
        if (!table_) {
            // Still inline-small after the reservation: plain inserts.
            for (Key k : keys)
                insert(k);
            return;
        }
        const Key *prev = nullptr;
        for (const Key &k : keys) {
            if (prev && *prev == k)
                continue; // run-length dedupe of sorted runs
            prev = &k;
            if (k == kEmptySlot) {
                if (!hasEmptyKey_) {
                    hasEmptyKey_ = true;
                    ++size_;
                }
            } else if (rawInsert(k)) {
                ++size_;
            }
        }
    }

    /** Number of keys of @p keys present in the set (duplicates in the
     *  input each count — mirrors a per-element contains() loop). */
    std::size_t
    containsBulk(std::span<const Key> keys) const
    {
        std::size_t hits = 0;
        const Key *prev = nullptr;
        bool prev_hit = false;
        for (const Key &k : keys) {
            if (prev && *prev == k) {
                hits += prev_hit ? 1 : 0; // reuse the last probe's answer
                continue;
            }
            prev = &k;
            prev_hit = contains(k);
            hits += prev_hit ? 1 : 0;
        }
        return hits;
    }

    /** In-place union: *this |= other. */
    void
    unionWith(const FlatSet &other)
    {
        for (Key k : other)
            insert(k);
    }

    /**
     * In-place intersection: *this &= other.
     *
     * Rebuilds rather than erasing during iteration: a backward-shift
     * delete can move a not-yet-visited element across the wrap
     * boundary into an already-visited slot, silently skipping it.
     */
    void
    intersectWith(const FlatSet &other)
    {
        FlatSet out;
        for (Key k : *this)
            if (other.contains(k))
                out.insert(k);
        *this = std::move(out);
    }

    /** In-place difference: *this -= other. */
    void
    subtract(const FlatSet &other)
    {
        if (other.size() < size()) {
            for (Key k : other)
                erase(k); // point erases are safe; iterating `other`
        } else {
            FlatSet out;
            for (Key k : *this)
                if (!other.contains(k))
                    out.insert(k);
            *this = std::move(out);
        }
    }

    /** True if the intersection with @p other is non-empty. */
    bool
    intersects(const FlatSet &other) const
    {
        const FlatSet &small = size() <= other.size() ? *this : other;
        const FlatSet &large = size() <= other.size() ? other : *this;
        for (Key k : small)
            if (large.contains(k))
                return true;
        return false;
    }

    bool
    operator==(const FlatSet &other) const
    {
        if (size_ != other.size_)
            return false;
        for (Key k : *this)
            if (!other.contains(k))
                return false;
        return true;
    }

    /** Forward const iterator; order is unspecified (use sorted()). */
    class const_iterator
    {
      public:
        using value_type = Key;
        using reference = Key;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        const_iterator() = default;

        Key
        operator*() const
        {
            return idx_ < cap_ ? data_[idx_] : kEmptySlot;
        }

        const_iterator &
        operator++()
        {
            ++idx_;
            advance();
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator tmp = *this;
            ++*this;
            return tmp;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return idx_ == o.idx_;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return idx_ != o.idx_;
        }

      private:
        friend class FlatSet;

        const_iterator(const Key *data, std::size_t idx, std::size_t cap,
                       bool scan, bool hasEmpty)
            : data_(data), idx_(idx), cap_(cap), scan_(scan),
              hasEmpty_(hasEmpty)
        {
            advance();
        }

        void
        advance()
        {
            if (!scan_)
                return; // inline array: every position is an element
            while (idx_ < cap_ && data_[idx_] == kEmptySlot)
                ++idx_;
            // idx_ == cap_ is the virtual position for the empty-key
            // element; skip it when that element is absent.
            if (idx_ == cap_ && !hasEmpty_)
                ++idx_;
        }

        const Key *data_ = nullptr;
        std::size_t idx_ = 0;
        std::size_t cap_ = 0;
        bool scan_ = false;
        bool hasEmpty_ = false;
    };

    const_iterator
    begin() const
    {
        if (!table_)
            return const_iterator(small_, 0, size_, false, false);
        return const_iterator(table_.get(), 0, cap_, true, hasEmptyKey_);
    }

    const_iterator
    end() const
    {
        if (!table_)
            return const_iterator(small_, size_, size_, false, false);
        return const_iterator(table_.get(), cap_ + 1, cap_, false,
                              hasEmptyKey_);
    }

    /** Elements in ascending order (for deterministic reports/tests). */
    std::vector<Key>
    sorted() const
    {
        std::vector<Key> out;
        out.reserve(size_);
        for (Key k : *this)
            out.push_back(k);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::size_t tableCount() const { return size_ - (hasEmptyKey_ ? 1 : 0); }

    std::size_t
    homeOf(Key k) const
    {
        // splitmix64 finalizer: full-avalanche mix so sequential
        // addresses don't cluster into one probe run.
        std::uint64_t x = static_cast<std::uint64_t>(k);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x) & (cap_ - 1);
    }

    /** Insert into the table, assuming k != kEmptySlot and spare room. */
    bool
    rawInsert(Key k)
    {
        const std::size_t mask = cap_ - 1;
        for (std::size_t i = homeOf(k);; i = (i + 1) & mask) {
            const Key slot = table_[i];
            if (slot == k)
                return false;
            if (slot == kEmptySlot) {
                table_[i] = k;
                return true;
            }
        }
    }

    void
    migrateToTable()
    {
        cap_ = kInline * 2;
        table_ = std::make_unique<Key[]>(cap_);
        std::fill_n(table_.get(), cap_, kEmptySlot);
        const std::size_t n = size_;
        size_ = 0;
        hasEmptyKey_ = false;
        for (std::size_t i = 0; i < n; ++i) {
            const Key k = small_[i];
            if (k == kEmptySlot) {
                hasEmptyKey_ = true;
                ++size_;
            } else if (rawInsert(k)) {
                ++size_;
            }
        }
    }

    void
    rehash(std::size_t newCap)
    {
        std::unique_ptr<Key[]> old = std::move(table_);
        const std::size_t oldCap = cap_;
        cap_ = newCap;
        table_ = std::make_unique<Key[]>(cap_);
        std::fill_n(table_.get(), cap_, kEmptySlot);
        for (std::size_t i = 0; i < oldCap; ++i)
            if (old[i] != kEmptySlot)
                rawInsert(old[i]);
    }

    /** Close the hole at @p hole, preserving probe-run invariants. */
    void
    shiftBackward(std::size_t hole)
    {
        const std::size_t mask = cap_ - 1;
        std::size_t j = hole;
        for (std::size_t i = (hole + 1) & mask;; i = (i + 1) & mask) {
            const Key k = table_[i];
            if (k == kEmptySlot)
                break;
            // k may fill the hole iff its home position does not lie
            // strictly between the hole and its current slot (cyclic).
            if (((i - homeOf(k)) & mask) >= ((i - j) & mask)) {
                table_[j] = k;
                j = i;
            }
        }
        table_[j] = kEmptySlot;
    }

    void
    copyFrom(const FlatSet &other)
    {
        cap_ = other.cap_;
        size_ = other.size_;
        hasEmptyKey_ = other.hasEmptyKey_;
        if (other.table_) {
            table_ = std::make_unique<Key[]>(cap_);
            std::copy_n(other.table_.get(), cap_, table_.get());
        } else {
            std::copy_n(other.small_, other.size_, small_);
        }
    }

    void
    moveFrom(FlatSet &&other) noexcept
    {
        cap_ = other.cap_;
        size_ = other.size_;
        hasEmptyKey_ = other.hasEmptyKey_;
        if (other.table_) {
            table_ = std::move(other.table_);
        } else {
            std::copy_n(other.small_, other.size_, small_);
        }
        other.cap_ = 0;
        other.size_ = 0;
        other.hasEmptyKey_ = false;
    }

    Key small_[kInline] = {};          ///< inline storage while !table_
    std::unique_ptr<Key[]> table_;     ///< open-addressed slots
    std::size_t cap_ = 0;              ///< power-of-two table capacity
    std::size_t size_ = 0;             ///< total elements (incl. empty key)
    bool hasEmptyKey_ = false;         ///< sentinel value is an element
};

using AddrSet = FlatSet<Addr>;

/** s1 | s2 by value. */
template <typename K>
FlatSet<K>
setUnion(const FlatSet<K> &a, const FlatSet<K> &b)
{
    FlatSet<K> out = a;
    out.unionWith(b);
    return out;
}

/** s1 & s2 by value. */
template <typename K>
FlatSet<K>
setIntersect(const FlatSet<K> &a, const FlatSet<K> &b)
{
    FlatSet<K> out = a;
    out.intersectWith(b);
    return out;
}

/** s1 - s2 by value. */
template <typename K>
FlatSet<K>
setDifference(const FlatSet<K> &a, const FlatSet<K> &b)
{
    FlatSet<K> out = a;
    out.subtract(b);
    return out;
}

} // namespace bfly

#endif // BUTTERFLY_COMMON_ADDR_SET_HPP
