/**
 * @file
 * Hash-based address sets with the set algebra the butterfly dataflow
 * equations are written in (union, intersection, difference).
 *
 * The dataflow summaries (GEN, KILL, SIDE-OUT, SIDE-IN, SOS deltas) are all
 * sets of addresses or definition ids; this wrapper provides value-semantic
 * set operations plus deterministic sorted iteration for reporting.
 */

#ifndef BUTTERFLY_COMMON_ADDR_SET_HPP
#define BUTTERFLY_COMMON_ADDR_SET_HPP

#include <algorithm>
#include <initializer_list>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace bfly {

/** Value-semantic set of 64-bit keys (addresses or packed ids). */
template <typename Key = Addr>
class FlatSet
{
  public:
    FlatSet() = default;
    FlatSet(std::initializer_list<Key> init) : set_(init) {}

    bool contains(Key k) const { return set_.count(k) != 0; }
    bool empty() const { return set_.empty(); }
    std::size_t size() const { return set_.size(); }

    void insert(Key k) { set_.insert(k); }
    void erase(Key k) { set_.erase(k); }
    void clear() { set_.clear(); }

    /** In-place union: *this |= other. */
    void
    unionWith(const FlatSet &other)
    {
        for (Key k : other.set_)
            set_.insert(k);
    }

    /** In-place intersection: *this &= other. */
    void
    intersectWith(const FlatSet &other)
    {
        for (auto it = set_.begin(); it != set_.end();) {
            if (!other.contains(*it))
                it = set_.erase(it);
            else
                ++it;
        }
    }

    /** In-place difference: *this -= other. */
    void
    subtract(const FlatSet &other)
    {
        if (other.size() < set_.size()) {
            for (Key k : other.set_)
                set_.erase(k);
        } else {
            for (auto it = set_.begin(); it != set_.end();) {
                if (other.contains(*it))
                    it = set_.erase(it);
                else
                    ++it;
            }
        }
    }

    /** True if the intersection with @p other is non-empty. */
    bool
    intersects(const FlatSet &other) const
    {
        const FlatSet &small = size() <= other.size() ? *this : other;
        const FlatSet &large = size() <= other.size() ? other : *this;
        return std::any_of(small.set_.begin(), small.set_.end(),
                           [&](Key k) { return large.contains(k); });
    }

    bool
    operator==(const FlatSet &other) const
    {
        return set_ == other.set_;
    }

    auto begin() const { return set_.begin(); }
    auto end() const { return set_.end(); }

    /** Elements in ascending order (for deterministic reports/tests). */
    std::vector<Key>
    sorted() const
    {
        std::vector<Key> out(set_.begin(), set_.end());
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::unordered_set<Key> set_;
};

using AddrSet = FlatSet<Addr>;

/** s1 | s2 by value. */
template <typename K>
FlatSet<K>
setUnion(const FlatSet<K> &a, const FlatSet<K> &b)
{
    FlatSet<K> out = a;
    out.unionWith(b);
    return out;
}

/** s1 & s2 by value. */
template <typename K>
FlatSet<K>
setIntersect(const FlatSet<K> &a, const FlatSet<K> &b)
{
    FlatSet<K> out = a;
    out.intersectWith(b);
    return out;
}

/** s1 - s2 by value. */
template <typename K>
FlatSet<K>
setDifference(const FlatSet<K> &a, const FlatSet<K> &b)
{
    FlatSet<K> out = a;
    out.subtract(b);
    return out;
}

} // namespace bfly

#endif // BUTTERFLY_COMMON_ADDR_SET_HPP
