/**
 * @file
 * Simulated heap allocator for workload generation.
 *
 * Workloads do not touch real memory; they operate on a simulated address
 * space. This allocator hands out address ranges exactly the way a simple
 * first-fit malloc would, so that the ADDRCHECK lifeguard sees realistic
 * allocation lifetimes, reuse of freed regions, and fragmentation.
 */

#ifndef BUTTERFLY_COMMON_HEAP_HPP
#define BUTTERFLY_COMMON_HEAP_HPP

#include <cstddef>
#include <map>

#include "common/types.hpp"

namespace bfly {

/** First-fit free-list allocator over a simulated address range. */
class SimHeap
{
  public:
    /**
     * @param base       lowest address managed by the heap
     * @param size       bytes managed
     * @param alignment  every returned block is aligned to this (power of 2)
     */
    SimHeap(Addr base, std::size_t size, std::size_t alignment = 8);

    /**
     * Allocate @p size bytes.
     * @return base address of the block, or kNoAddr if out of memory.
     */
    Addr malloc(std::size_t size);

    /**
     * Free a previously allocated block.
     * @return size of the freed block, or 0 if @p addr was not a live
     *         allocation (double free / wild free).
     */
    std::size_t free(Addr addr);

    /** Size of the live allocation starting at @p addr (0 if none). */
    std::size_t allocationSize(Addr addr) const;

    /** True if @p addr falls inside any live allocation. */
    bool isAllocated(Addr addr) const;

    /** Total bytes currently allocated. */
    std::size_t bytesInUse() const { return bytesInUse_; }

    /** Number of live allocations. */
    std::size_t liveAllocations() const { return allocated_.size(); }

    Addr base() const { return base_; }
    std::size_t capacity() const { return size_; }

  private:
    Addr base_;
    std::size_t size_;
    std::size_t alignment_;
    std::size_t bytesInUse_ = 0;

    /** Free regions keyed by base address -> length (coalesced). */
    std::map<Addr, std::size_t> freeList_;
    /** Live allocations keyed by base address -> length. */
    std::map<Addr, std::size_t> allocated_;
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_HEAP_HPP
