#include "worker_pool.hpp"

#include "common/logging.hpp"

namespace bfly {

namespace {

std::size_t
defaultWorkerCount()
{
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

WorkerPool::WorkerPool() : WorkerPool(defaultWorkerCount()) {}

WorkerPool::WorkerPool(std::size_t workers)
{
    ensure(workers > 0,
           "WorkerPool needs at least one thread (a zero-thread pool "
           "would park every dispatch forever)");
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::runBatch(std::size_t count, void (*fn)(void *, std::size_t),
                     void *ctx)
{
    if (count == 0)
        return;
    // Count before publishing: the items must never be observable in the
    // queue while the group's count could still read as drained.
    defaultGroup_.outstanding_.fetch_add(count, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < count; ++i)
            tasks_.push_back(Task{fn, ctx, i, &defaultGroup_});
    }
    wakeCv_.notify_all();
    runTasks();
}

void
WorkerPool::enqueue(TaskGroup &group, void (*fn)(void *, std::size_t),
                    void *ctx, std::size_t arg)
{
    group.outstanding_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(Task{fn, ctx, arg, &group});
    }
    wakeCv_.notify_one();
    // A waiter sleeping through a momentarily empty queue wakes to help
    // with the refill.
    doneCv_.notify_all();
}

void
WorkerPool::submitTask(void (*fn)(void *, std::size_t), void *ctx,
                       std::size_t arg)
{
    enqueue(defaultGroup_, fn, ctx, arg);
}

void
WorkerPool::submitTask(TaskGroup &group, void (*fn)(void *, std::size_t),
                       void *ctx, std::size_t arg)
{
    enqueue(group, fn, ctx, arg);
}

void
WorkerPool::finishTask(const Task &task)
{
    if (task.group->outstanding_.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
        // The empty critical section orders this notify after the waiter
        // either observed outstanding != 0 and blocked, or never blocks
        // at all.
        { std::lock_guard<std::mutex> lock(mutex_); }
        doneCv_.notify_all();
    }
}

void
WorkerPool::runTasks()
{
    waitGroup(defaultGroup_);
}

void
WorkerPool::waitGroup(TaskGroup &group)
{
    for (;;) {
        if (group.outstanding_.load(std::memory_order_acquire) == 0)
            return;
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (tasks_.empty()) {
                // Workers own everything still queued or running; wake
                // to help if the queue refills, or to leave once the
                // group's last countdown lands.
                doneCv_.wait(lock, [&] {
                    return !tasks_.empty() ||
                           group.outstanding_.load(
                               std::memory_order_acquire) == 0;
                });
                continue;
            }
            task = tasks_.front();
            tasks_.pop_front();
        }
        task.fn(task.ctx, task.arg);
        finishTask(task);
    }
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeCv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
            if (stop_)
                return;
            task = tasks_.front();
            tasks_.pop_front();
        }
        task.fn(task.ctx, task.arg);
        finishTask(task);
    }
}

} // namespace bfly
