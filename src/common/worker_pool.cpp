#include "worker_pool.hpp"

namespace bfly {

WorkerPool::WorkerPool(std::size_t workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::runBatch(std::size_t count, void (*fn)(void *, std::size_t),
                     void *ctx)
{
    if (count == 0)
        return;

    // Partition the monotonic ticket space: skip one slack ticket per
    // thread so any straggler still finishing its terminal fetch-add
    // from the previous batch lands below start and is discarded.
    const std::uint64_t start =
        next_.load(std::memory_order_relaxed) + threads_.size() + 1;

    jobFn_ = fn;
    jobCtx_ = ctx;
    pending_.store(count, std::memory_order_relaxed);
    start_.store(start, std::memory_order_relaxed);
    next_.store(start, std::memory_order_relaxed);
    // end_ is the publication flag: workers acquire-load it in drain()
    // and only then read the fields above.
    end_.store(start + count, std::memory_order_release);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++generation_;
    }
    wakeCv_.notify_all();

    // The submitter helps; with count <= workers+1 it often finishes the
    // whole batch before a parked worker even wakes.
    drain();

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

void
WorkerPool::drain()
{
    const std::uint64_t start = start_.load(std::memory_order_relaxed);
    for (;;) {
        const std::uint64_t ticket =
            next_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t end = end_.load(std::memory_order_acquire);
        if (ticket >= end)
            break;
        if (ticket < start)
            continue; // stale ticket from a previous batch's slack
        jobFn_(jobCtx_, static_cast<std::size_t>(ticket - start));
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Pair with the submitter's predicate wait: the empty
            // critical section orders this notify after the submitter
            // either observed pending_ != 0 and blocked, or never
            // blocks at all.
            { std::lock_guard<std::mutex> lock(mutex_); }
            doneCv_.notify_all();
        }
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeCv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        drain();
    }
}

} // namespace bfly
