/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every randomized component in the library (workload generators, the
 * interleavers, property tests) draws from this splitmix64/xoshiro256**
 * generator so that runs are reproducible from a single seed, independent
 * of the platform's std::mt19937 implementation details.
 */

#ifndef BUTTERFLY_COMMON_RNG_HPP
#define BUTTERFLY_COMMON_RNG_HPP

#include <cstdint>

#include "common/logging.hpp"

namespace bfly {

/** xoshiro256** seeded via splitmix64; deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 4-word state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ensure(bound > 0, "Rng::below bound must be positive");
        // Rejection-free Lemire reduction is overkill here; modulo bias is
        // negligible for the bounds we use (all << 2^64).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        ensure(lo <= hi, "Rng::range requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace bfly

#endif // BUTTERFLY_COMMON_RNG_HPP
