/**
 * @file
 * The sliding-window schedule of butterfly analysis (paper Sections 4.2-4.3).
 *
 * Butterfly analysis processes a trace as a pipeline of 3-epoch windows.
 * When the events of epoch l have been fully received:
 *
 *   step 1  pass 1 runs on every block (l, t): local dataflow using the
 *           LSOS, producing the block's side-out summaries;
 *   step 2  summaries from the wings of each body block in epoch l-1 are
 *           met (all pass-1 summaries for epochs l-2..l now exist);
 *   step 3  pass 2 runs on every block (l-1, t), repeating the analysis
 *           with wing state and performing the lifeguard's checks;
 *   step 4  epoch l-1's summary (GEN_l-1 / KILL_l-1) updates the SOS.
 *
 * The WindowSchedule drives an AnalysisDriver through exactly this order,
 * optionally fanning each pass out over real threads — safe because blocks
 * within a pass touch disjoint state and the shared SOS is only advanced in
 * the single-writer step 4 (the paper's "no synchronization on metadata"
 * observation).
 */

#ifndef BUTTERFLY_BUTTERFLY_WINDOW_HPP
#define BUTTERFLY_BUTTERFLY_WINDOW_HPP

#include <cstddef>
#include <memory>

#include "common/worker_pool.hpp"
#include "trace/epoch_slicer.hpp"

namespace bfly {

/** Hooks a butterfly analysis implements; called by WindowSchedule. */
class AnalysisDriver
{
  public:
    virtual ~AnalysisDriver() = default;

    /**
     * Step 1: local analysis of block (l, t). The driver computes GEN/KILL
     * and its side-out summaries and may perform LSOS-based local checks.
     */
    virtual void pass1(const BlockView &block) = 0;

    /**
     * Steps 2+3: wing summaries for body block (l, t) are complete; meet
     * them and re-run the analysis with wing state, performing checks.
     */
    virtual void pass2(const BlockView &block) = 0;

    /**
     * Step 4: all blocks of epoch l have finished pass 2; fold the epoch
     * summary into the SOS (single-writer).
     */
    virtual void finalizeEpoch(EpochId l) = 0;

    /**
     * Called on the scheduler thread immediately before the per-block
     * fan-out of a pass over epoch @p l (@p second selects pass 2).
     * Drivers that grow shared containers lazily (e.g. the per-epoch
     * block vectors in reaching_defs) override this to pre-size them
     * single-threaded, so the parallel blocks only touch disjoint,
     * already-allocated slots.
     */
    virtual void beginPass(EpochId l, bool second)
    {
        (void)l;
        (void)second;
    }

    /**
     * Select the batched (columnar) pass-1 kernels where the driver has
     * them. The contract is strict: batched pass 1 must produce
     * bit-identical observable results — error records (including
     * first-report order per event), block summaries, SOS and counters
     * — to the scalar walk; pass 2 and finalizeEpoch are never batched.
     * The default is a scalar shim (the flag is ignored), so drivers
     * without batched kernels stay uniform members of any mode matrix.
     * Must be called before the schedule runs, never mid-run.
     */
    virtual void setBatchMode(bool enabled) { (void)enabled; }

    /**
     * Ordering constraint the pipelined (dependency-graph) schedule must
     * honor for this driver. The default — true — reproduces the
     * sequential pattern exactly: finalizeEpoch(l) waits for pass 2 of
     * epoch l and gates pass 2 of epoch l+1. This is required whenever
     * pass 2 reads SOS state that finalizeEpoch advances, or
     * finalizeEpoch reads pass-2 results (TAINTCHECK does both), and it
     * also makes every finalize a quiescent point at which beginPass may
     * safely resize shared containers (reaching_defs/exprs).
     *
     * Drivers whose pass 2 and finalizeEpoch consume only pass-1
     * summaries (ADDRCHECK) return false: finalizeEpoch then only waits
     * for pass 1 of its own window, so pass 1 of epoch l+1 overlaps
     * pass 2 of epoch l-1 with no global synchronization at all. A
     * relaxed driver must tolerate beginPass being called while pass-2
     * tasks of older epochs are still running (i.e. not override it, or
     * make it thread-safe).
     */
    virtual bool finalizeAfterPass2() const { return true; }

    /**
     * True if pass 2 of block (l, t) reads thread t's *own* epoch-l+1
     * pass-1 summary — e.g. a whole-window fixpoint like ADDRLEAK's
     * WM_l that must fold every thread's epoch-l+1 rules, its own
     * included. The pipelined schedule then orders P2(l,t) after
     * P1(l+1,t) as well. Drivers that exclude the body thread from all
     * wing reads (TAINTCHECK, ADDRCHECK, DEFINEDCHECK, LOCKSET) keep
     * the default and let a heavy thread's pass 2 overlap its own next
     * pass 1.
     */
    virtual bool pass2ReadsOwnNextPass1() const { return false; }
};

/** Observability counters from one pipelined (task-graph) run. */
struct PipelineStats
{
    std::size_t tasksRun = 0;         ///< graph tasks executed
    std::size_t epochsFinalized = 0;  ///< finalize tasks executed
    /** High-water mark of simultaneously resident epochs (streaming
     *  source only; 0 for a materialized layout, which is all-resident
     *  by definition). */
    std::size_t peakResidentEpochs = 0;
    /** Producer stalls recorded by the stream's back-pressure buffer. */
    std::uint64_t producerStalls = 0;
};

/** Drives an AnalysisDriver over a trace in butterfly window order. */
class WindowSchedule
{
  public:
    /**
     * @param parallel_passes  run each pass's per-thread blocks on a
     *                         persistent worker pool (demonstrates the
     *                         lock-free schedule; results must equal
     *                         sequential)
     * @param pool             pool to dispatch on; borrowed, must outlive
     *                         the schedule. When null and parallel passes
     *                         are requested, the schedule lazily creates
     *                         its own pool sized to the trace's threads.
     */
    explicit WindowSchedule(bool parallel_passes = false,
                            WorkerPool *pool = nullptr)
        : parallelPasses_(parallel_passes), pool_(pool)
    {}

    /** Process the whole trace pass-by-pass (barrier after every pass). */
    void run(const EpochLayout &layout, AnalysisDriver &driver) const;

    /**
     * Process the whole trace as a dependency task graph: each block-pass
     * and each finalize is one task that becomes runnable the instant its
     * prerequisites complete, so pass 1 of epoch l+1 overlaps pass 2 of
     * epoch l-1 and a thread with a heavy block never stalls the whole
     * window behind a barrier. Produces bit-identical analysis results to
     * run() for any driver (sequential-equivalence guarantee — see
     * DESIGN.md "Pipelined scheduler").
     */
    PipelineStats runPipelined(const EpochLayout &layout,
                               AnalysisDriver &driver) const;

    /**
     * Pipelined run over a streaming source: epochs are admitted into the
     * stream's bounded ring as the graph reaches them and retired once no
     * remaining task can read their events, keeping resident event memory
     * O(window) regardless of trace length.
     */
    PipelineStats runPipelined(EpochStream &stream,
                               AnalysisDriver &driver) const;

  private:
    void runPass(const EpochLayout &layout, EpochId l, bool second,
                 AnalysisDriver &driver) const;
    WorkerPool &ensurePool(std::size_t nthreads) const;

    bool parallelPasses_;
    WorkerPool *pool_;
    mutable std::unique_ptr<WorkerPool> owned_;
};

} // namespace bfly

#endif // BUTTERFLY_BUTTERFLY_WINDOW_HPP
