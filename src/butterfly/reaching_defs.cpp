#include "butterfly/reaching_defs.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hpp"

namespace bfly {

std::optional<Addr>
defaultDefines(const Event &e)
{
    switch (e.kind) {
      case EventKind::Write:
      case EventKind::Assign:
      case EventKind::TaintSrc:
      case EventKind::Untaint:
        return e.addr;
      default:
        return std::nullopt;
    }
}

ReachingDefinitions::ReachingDefinitions(std::size_t num_threads,
                                         DefineExtractor defines)
    : numThreads_(num_threads), defines_(std::move(defines))
{
    // SOS_0 = SOS_1 = empty (paper Section 5.1.2).
    sos_.resize(2);
}

const ReachingDefinitions::BlockPrivate &
ReachingDefinitions::priv(EpochId l, ThreadId t) const
{
    ensure(l < blocks_.size() && t < blocks_[l].size(),
           "block results not yet computed");
    return blocks_[l][t];
}

ReachingDefinitions::BlockPrivate &
ReachingDefinitions::priv(EpochId l, ThreadId t)
{
    if (blocks_.size() <= l)
        blocks_.resize(l + 1);
    if (blocks_[l].size() < numThreads_)
        blocks_[l].resize(numThreads_);
    return blocks_[l][t];
}

void
ReachingDefinitions::beginPass(EpochId l, bool second)
{
    // Pre-size the per-epoch block storage on the scheduler thread; a
    // resize during the parallel fan-out would invalidate references the
    // sibling blocks are reading (computeLsos walks epochs l-1/l-2).
    (void)second;
    if (blocks_.size() <= l)
        blocks_.resize(l + 1);
    if (blocks_[l].size() < numThreads_)
        blocks_[l].resize(numThreads_);
}

bool
ReachingDefinitions::inKillBlock(DefId d, EpochId l, ThreadId t) const
{
    if (l >= blocks_.size())
        return false;
    const BlockResults &res = priv(l, t).res;
    return res.killAddrs.contains(locOf(d)) && !res.gen.contains(d);
}

bool
ReachingDefinitions::inKillSpan(DefId d, EpochId l, ThreadId t) const
{
    // KILL_{(l-1,l),t} = (KILL_{l-1,t} - GEN_{l,t}) U KILL_{l,t}
    const bool gen_in_l =
        l < blocks_.size() && priv(l, t).res.gen.contains(d);
    if (l >= 1 && inKillBlock(d, l - 1, t) && !gen_in_l)
        return true;
    return inKillBlock(d, l, t);
}

bool
ReachingDefinitions::inNotGenSpan(DefId d, EpochId l, ThreadId t) const
{
    // NOT-GEN_{(l-1,l),t}: not generated (surviving) in epoch l-1 nor l.
    if (l >= 1 && l - 1 < blocks_.size() &&
        priv(l - 1, t).res.gen.contains(d)) {
        return false;
    }
    if (l < blocks_.size() && priv(l, t).res.gen.contains(d))
        return false;
    return true;
}

DefSet
ReachingDefinitions::computeLsos(EpochId l, ThreadId t) const
{
    DefSet lsos;
    if (l >= sos_.size())
        panic("SOS not available for requested epoch");
    const DefSet &sos_l = sos_[l];

    if (l == 0)
        return lsos; // no head, SOS_0 empty

    const BlockResults &head = priv(l - 1, t).res;

    // GEN_{l-1,t}
    lsos.unionWith(head.gen);

    for (DefId d : sos_l) {
        if (!inKillBlock(d, l - 1, t)) {
            // SOS_l - KILL_{l-1,t}
            lsos.insert(d);
            continue;
        }
        // Head killed d; it still reaches if another thread regenerated it
        // in epoch l-2, which may interleave after the head (adjacency).
        if (l >= 2) {
            for (ThreadId u = 0; u < numThreads_; ++u) {
                if (u != t && priv(l - 2, u).res.gen.contains(d)) {
                    lsos.insert(d);
                    break;
                }
            }
        }
    }
    return lsos;
}

void
ReachingDefinitions::pass1(const BlockView &block)
{
    BlockPrivate &bp = priv(block.epoch, block.thread);
    bp.res = BlockResults{};
    bp.defs.clear();

    // Last surviving definition per address (for GEN_{l,t}).
    std::unordered_map<Addr, DefId> last_def;

    for (InstrOffset i = 0; i < block.size(); ++i) {
        const auto target = defines_(block.events[i]);
        if (!target)
            continue;
        const DefId d =
            InstrId{block.epoch, block.thread, i}.pack();
        bp.defs.emplace_back(i, *target);
        bp.res.sideOut.insert(d); // generating is global (Section 5.1)
        bp.res.killAddrs.insert(*target);
        last_def[*target] = d;
    }
    for (const auto &[addr, d] : last_def)
        bp.res.gen.insert(d);

    bp.res.lsos = computeLsos(block.epoch, block.thread);
}

void
ReachingDefinitions::pass2(const BlockView &block)
{
    const EpochId l = block.epoch;
    const ThreadId t = block.thread;
    BlockPrivate &bp = priv(l, t);

    // Meet: GEN-SIDE-IN = union of wing side-outs (epochs l-1..l+1).
    DefSet side_in;
    const EpochId lo = l >= 1 ? l - 1 : 0;
    for (EpochId w = lo; w <= l + 1 && w < blocks_.size(); ++w) {
        for (ThreadId u = 0; u < numThreads_; ++u) {
            if (u != t && u < blocks_[w].size())
                side_in.unionWith(blocks_[w][u].res.sideOut);
        }
    }
    bp.res.genSideIn = std::move(side_in);

    // IN = GEN-SIDE-IN U LSOS; OUT = GEN U (IN - KILL).
    bp.res.in = setUnion(bp.res.genSideIn, bp.res.lsos);
    DefSet out = bp.res.gen;
    for (DefId d : bp.res.in) {
        if (!inKillBlock(d, l, t))
            out.insert(d);
    }
    bp.res.out = std::move(out);
}

void
ReachingDefinitions::finalizeEpoch(EpochId l)
{
    if (genEpoch_.size() <= l)
        genEpoch_.resize(l + 1);
    DefSet gen;
    for (ThreadId t = 0; t < numThreads_; ++t)
        gen.unionWith(priv(l, t).res.gen);
    genEpoch_[l] = std::move(gen);

    // SOS_{l+2} = GEN_l U (SOS_{l+1} - KILL_l).
    ensure(sos_.size() >= l + 2, "SOS pipeline out of order");
    if (sos_.size() == l + 2)
        sos_.resize(l + 3);
    DefSet next = genEpoch_[l];
    for (DefId d : sos_[l + 1]) {
        if (!inKillEpoch(d, l))
            next.insert(d);
    }
    sos_[l + 2] = std::move(next);
}

const DefSet &
ReachingDefinitions::sos(EpochId l) const
{
    ensure(l < sos_.size(), "SOS not computed for epoch");
    return sos_[l];
}

const ReachingDefinitions::BlockResults &
ReachingDefinitions::blockResults(EpochId l, ThreadId t) const
{
    return priv(l, t).res;
}

const DefSet &
ReachingDefinitions::genEpoch(EpochId l) const
{
    ensure(l < genEpoch_.size(), "epoch not finalized");
    return genEpoch_[l];
}

bool
ReachingDefinitions::inKillEpoch(DefId d, EpochId l) const
{
    // d in KILL_l iff some thread kills d at block level and every *other*
    // thread kills-or-never-generates d across epochs l-1..l (the paper's
    // prose and Lemma 5.1 proof use "for all other threads").
    for (ThreadId t = 0; t < numThreads_; ++t) {
        if (!inKillBlock(d, l, t))
            continue;
        bool all_others = true;
        for (ThreadId u = 0; u < numThreads_; ++u) {
            if (u == t)
                continue;
            if (!inKillSpan(d, l, u) && !inNotGenSpan(d, l, u)) {
                all_others = false;
                break;
            }
        }
        if (all_others)
            return true;
    }
    return false;
}

Addr
ReachingDefinitions::locOf(DefId d) const
{
    // The id itself names the defining block; its (offset, addr) pairs
    // are recorded in program order, so a binary search replaces the old
    // globally-shared DefId->Addr map (which raced under parallel
    // passes and cost a hash lookup per query).
    const InstrId id = InstrId::unpack(d);
    ensure(id.l < blocks_.size() && id.t < blocks_[id.l].size(),
           "unknown definition id");
    const auto &defs = blocks_[id.l][id.t].defs;
    auto it = std::lower_bound(
        defs.begin(), defs.end(), id.i,
        [](const auto &p, InstrOffset i) { return p.first < i; });
    ensure(it != defs.end() && it->first == id.i, "unknown definition id");
    return it->second;
}

DefSet
ReachingDefinitions::inAt(EpochId l, ThreadId t, InstrOffset i) const
{
    const BlockPrivate &bp = priv(l, t);
    // LSOS_{l,t,k} = GEN_{l,t,k} U (LSOS_{l,t,k-1} - KILL_{l,t,k})
    DefSet lsos_k = bp.res.lsos;
    for (const auto &[off, addr] : bp.defs) {
        if (off >= i)
            break;
        std::vector<DefId> to_erase;
        for (DefId d : lsos_k) {
            if (locOf(d) == addr)
                to_erase.push_back(d);
        }
        for (DefId d : to_erase)
            lsos_k.erase(d);
        lsos_k.insert(InstrId{l, t, off}.pack());
    }
    // IN_{l,t,i} = GEN-SIDE-IN_{l,t} U LSOS_{l,t,i}
    return setUnion(bp.res.genSideIn, lsos_k);
}

} // namespace bfly
