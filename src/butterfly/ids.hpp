/**
 * @file
 * Dynamic instruction identifiers (l, t, i) and the strictly-before order.
 *
 * The paper names a dynamic instruction by its epoch l, thread t and offset
 * i within block (l, t). TAINTCHECK's SSA-like transfer functions use these
 * tuples as variable subscripts, and its Check algorithm needs the
 * "occurs strictly before" relation of Section 6.2.
 */

#ifndef BUTTERFLY_BUTTERFLY_IDS_HPP
#define BUTTERFLY_BUTTERFLY_IDS_HPP

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace bfly {

/** Identifier of a dynamic instruction instance. */
struct InstrId
{
    EpochId l = 0;
    ThreadId t = 0;
    InstrOffset i = 0;

    auto operator<=>(const InstrId &) const = default;

    /**
     * Pack into one 64-bit key for set membership: 24 bits of epoch,
     * 8 bits of thread, 32 bits of offset. Sufficient for any run this
     * library simulates; checked in debug builds.
     */
    std::uint64_t
    pack() const
    {
        return (static_cast<std::uint64_t>(l & 0xffffff) << 40) |
               (static_cast<std::uint64_t>(t & 0xff) << 32) |
               static_cast<std::uint64_t>(i);
    }

    static InstrId
    unpack(std::uint64_t key)
    {
        return InstrId{static_cast<EpochId>(key >> 40),
                       static_cast<ThreadId>((key >> 32) & 0xff),
                       static_cast<InstrOffset>(key & 0xffffffff)};
    }

    std::string
    toString() const
    {
        return "(" + std::to_string(l) + "," + std::to_string(t) + "," +
               std::to_string(i) + ")";
    }
};

/**
 * The paper's "occurs strictly before" relation (Section 6.2).
 *
 * (l,t,i) < (l',t',i') holds if:
 *   - l <= l' - 2 (non-adjacent epochs are ordered by construction), or
 *   - under sequential consistency only: same thread and earlier in
 *     program order.
 */
inline bool
strictlyBefore(const InstrId &a, const InstrId &b,
               bool sequentially_consistent)
{
    if (a.l + 2 <= b.l)
        return true;
    if (!sequentially_consistent)
        return false;
    if (a.t != b.t)
        return false;
    if (a.l != b.l)
        return a.l < b.l;
    return a.i < b.i;
}

/** Relative position of an epoch within a butterfly with body epoch l. */
enum class WingPosition {
    BeforeWindow, ///< epoch <= l-2: strictly ordered before the body
    Head,         ///< epoch l-1, same thread
    Body,         ///< epoch l, same thread
    Tail,         ///< epoch l+1, same thread
    Wings,        ///< epochs l-1..l+1, other thread
    AfterWindow,  ///< epoch >= l+2: strictly ordered after the body
};

/** Classify block (bl, bt) relative to a butterfly with body (l, t). */
inline WingPosition
classify(EpochId l, ThreadId t, EpochId bl, ThreadId bt)
{
    if (bl + 2 <= l)
        return WingPosition::BeforeWindow;
    if (bl >= l + 2)
        return WingPosition::AfterWindow;
    if (bt != t)
        return WingPosition::Wings;
    if (bl == l)
        return WingPosition::Body;
    return bl < l ? WingPosition::Head : WingPosition::Tail;
}

} // namespace bfly

#endif // BUTTERFLY_BUTTERFLY_IDS_HPP
