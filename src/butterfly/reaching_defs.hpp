/**
 * @file
 * Dynamic parallel reaching definitions (paper Section 5.1).
 *
 * The canonical *may* analysis: a definition d_k reaches a point p if there
 * exists a valid ordering under which d_k reaches p. Definitions are dynamic
 * instruction instances (l, t, i) defining a location; killing a definition
 * is any other write to its location.
 *
 * Faithful to the paper's equations:
 *   - generating is global (GEN-SIDE-OUT visible to the whole wings);
 *     killing is local (KILL-SIDE-OUT conservatively "everything", unused);
 *   - GEN_l  = U_t GEN_{l,t};
 *   - KILL_l = U_t (KILL_{l,t} restricted to defs that every other thread
 *     kills-or-never-generates across epochs l-1..l);
 *   - SOS_l invariant: d in SOS_l iff some valid ordering O_{l-2} ends with
 *     d defined (Lemma 5.2);
 *   - LSOS folds in the head, resurrecting SOS defs the head killed that
 *     another thread regenerated in epoch l-2 (head/l-2 adjacency).
 *
 * This class retains per-block results for the whole run so tests and the
 * demonstration lifeguards can query IN/OUT anywhere; production lifeguards
 * (AddrCheck/TaintCheck) use their own windowed state instead.
 */

#ifndef BUTTERFLY_BUTTERFLY_REACHING_DEFS_HPP
#define BUTTERFLY_BUTTERFLY_REACHING_DEFS_HPP

#include <functional>
#include <optional>
#include <vector>

#include "common/addr_set.hpp"
#include "butterfly/ids.hpp"
#include "butterfly/window.hpp"

namespace bfly {

/** Packed InstrId of a defining instruction. */
using DefId = std::uint64_t;
using DefSet = FlatSet<DefId>;

/** Maps an event to the location it defines (nullopt: defines nothing). */
using DefineExtractor = std::function<std::optional<Addr>(const Event &)>;

/** The default extractor: any store-like event defines its target. */
std::optional<Addr> defaultDefines(const Event &e);

/** Butterfly reaching definitions over a dynamic parallel trace. */
class ReachingDefinitions : public AnalysisDriver
{
  public:
    /** Per-block dataflow results (paper notation in comments). */
    struct BlockResults
    {
        DefSet gen;        ///< GEN_{l,t}: defs surviving to block end
        DefSet sideOut;    ///< GEN-SIDE-OUT_{l,t}: every def in the block
        AddrSet killAddrs; ///< locations the block writes (its KILL basis)
        DefSet lsos;       ///< LSOS_{l,t} at block entry
        DefSet genSideIn;  ///< GEN-SIDE-IN_{l,t} (meet of wing side-outs)
        DefSet in;         ///< IN_{l,t}
        DefSet out;        ///< OUT_{l,t}
    };

    explicit ReachingDefinitions(std::size_t num_threads,
                                 DefineExtractor defines = defaultDefines);

    // AnalysisDriver hooks (invoked by WindowSchedule).
    void pass1(const BlockView &block) override;
    void pass2(const BlockView &block) override;
    void finalizeEpoch(EpochId l) override;
    void beginPass(EpochId l, bool second) override;

    /** SOS_l. Valid for l <= (last finalized epoch) + 2. */
    const DefSet &sos(EpochId l) const;

    /** Results of block (l, t) (after its pass 2). */
    const BlockResults &blockResults(EpochId l, ThreadId t) const;

    /** GEN_l: epoch-level generate set (after finalizeEpoch(l)). */
    const DefSet &genEpoch(EpochId l) const;

    /** Membership in KILL_l: true iff d is dead under every O_l. */
    bool inKillEpoch(DefId d, EpochId l) const;

    /** Location defined by @p d. @pre d was seen during the run. */
    Addr locOf(DefId d) const;

    /**
     * IN_{l,t,i}: definitions reaching instruction i of the block,
     * recomputed on demand from the recorded block events.
     */
    DefSet inAt(EpochId l, ThreadId t, InstrOffset i) const;

    std::size_t numThreads() const { return numThreads_; }

  private:
    struct BlockPrivate
    {
        BlockResults res;
        /** (offset, addr) of each defining instruction, program order. */
        std::vector<std::pair<InstrOffset, Addr>> defs;
    };

    const BlockPrivate &priv(EpochId l, ThreadId t) const;
    BlockPrivate &priv(EpochId l, ThreadId t);

    /** d in KILL_{l,t} (sequential block kill, surviving-GEN excluded). */
    bool inKillBlock(DefId d, EpochId l, ThreadId t) const;

    /** d in KILL_{(l-1,l),t} = (KILL_{l-1,t} - GEN_{l,t}) U KILL_{l,t}. */
    bool inKillSpan(DefId d, EpochId l, ThreadId t) const;

    /** d in NOT-GEN_{(l-1,l),t}. */
    bool inNotGenSpan(DefId d, EpochId l, ThreadId t) const;

    DefSet computeLsos(EpochId l, ThreadId t) const;

    std::size_t numThreads_;
    DefineExtractor defines_;
    std::vector<std::vector<BlockPrivate>> blocks_; ///< [l][t]
    std::vector<DefSet> sos_;                       ///< [l]
    std::vector<DefSet> genEpoch_;                  ///< [l]
};

} // namespace bfly

#endif // BUTTERFLY_BUTTERFLY_REACHING_DEFS_HPP
