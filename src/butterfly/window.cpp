#include "butterfly/window.hpp"

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {

namespace {

/** Pre-interned names/ids for the schedule's telemetry (one-time). */
struct WindowTelemetry
{
    std::uint32_t epochSpan;
    std::uint32_t pass1Span;
    std::uint32_t pass2Span;
    std::uint32_t blockPass1Span;
    std::uint32_t blockPass2Span;
    std::uint32_t finalizeSpan;
    std::uint32_t admitSpan;
    std::uint32_t retireSpan;
    std::uint32_t epochArg;
    telemetry::MetricId epochsDone;
    telemetry::MetricId pass1Blocks;
    telemetry::MetricId pass2Blocks;
    telemetry::MetricId taskWaitNs;
    telemetry::MetricId taskRunNs;

    static const WindowTelemetry &
    get()
    {
        static const WindowTelemetry w = [] {
            auto &t = telemetry::tracer();
            auto &r = telemetry::registry();
            WindowTelemetry s;
            s.epochSpan = t.internName("window.epoch");
            s.pass1Span = t.internName("window.pass1");
            s.pass2Span = t.internName("window.pass2");
            s.blockPass1Span = t.internName("block.pass1");
            s.blockPass2Span = t.internName("block.pass2");
            s.finalizeSpan = t.internName("window.sos_update");
            s.admitSpan = t.internName("window.admit");
            s.retireSpan = t.internName("window.retire");
            s.epochArg = t.internName("epoch");
            s.epochsDone = r.counter("bfly.window.epochs_finalized");
            s.pass1Blocks = r.counter("bfly.window.pass1_blocks");
            s.pass2Blocks = r.counter("bfly.window.pass2_blocks");
            s.taskWaitNs = r.histogram("bfly.pipeline.task_wait_ns");
            s.taskRunNs = r.histogram("bfly.pipeline.task_run_ns");
            return s;
        }();
        return w;
    }
};

/**
 * Uniform block access for the pipelined schedule: either a materialized
 * EpochLayout (everything resident; admission and retirement are no-ops)
 * or a streaming EpochStream (bounded ring; admission slices, retirement
 * frees).
 */
class PipelineSource
{
  public:
    virtual ~PipelineSource() = default;
    virtual std::size_t numEpochs() const = 0;
    virtual std::size_t numThreads() const = 0;
    virtual void acquire(EpochId l) = 0;
    virtual BlockView block(EpochId l, ThreadId t) const = 0;
    virtual void retire(EpochId l) = 0;
    virtual void fillStats(PipelineStats &stats) const { (void)stats; }
};

class LayoutSource final : public PipelineSource
{
  public:
    explicit LayoutSource(const EpochLayout &layout) : layout_(layout) {}
    std::size_t numEpochs() const override { return layout_.numEpochs(); }
    std::size_t numThreads() const override { return layout_.numThreads(); }
    void acquire(EpochId) override {}
    BlockView block(EpochId l, ThreadId t) const override
    {
        return layout_.block(l, t);
    }
    void retire(EpochId) override {}

  private:
    const EpochLayout &layout_;
};

class StreamSource final : public PipelineSource
{
  public:
    explicit StreamSource(EpochStream &stream) : stream_(stream) {}
    std::size_t numEpochs() const override { return stream_.numEpochs(); }
    std::size_t numThreads() const override { return stream_.numThreads(); }
    void acquire(EpochId l) override { stream_.acquire(l); }
    BlockView block(EpochId l, ThreadId t) const override
    {
        return stream_.block(l, t);
    }
    void retire(EpochId l) override { stream_.retire(l); }
    void fillStats(PipelineStats &stats) const override
    {
        stats.peakResidentEpochs = stream_.peakResidentEpochs();
        stats.producerStalls = stream_.producerStalls();
    }

  private:
    EpochStream &stream_;
};

/**
 * The dependency task graph of one pipelined butterfly run.
 *
 * Tasks, for a trace of L epochs and T threads ("X <- Y" = X runs after
 * Y completes):
 *
 *   A(l)     admission, l in [0, L]. Acquires epoch l from the source
 *            (l < L), then runs the driver's single-threaded beginPass
 *            hooks: beginPass(l, pass1) and, for l >= 1,
 *            beginPass(l-1, pass2) — the same scheduler-thread order the
 *            barrier schedule uses. The A chain is totally ordered (see
 *            edges), so the source's streaming cursors see in-order
 *            acquires from one task at a time.
 *   P1(l,t)  pass 1 of block (l, t).
 *   P2(l,t)  pass 2 of block (l, t).
 *   F(l)     finalizeEpoch(l) — the single-writer SOS fold.
 *   R(l)     retire epoch l's events from the source.
 *
 * Edges:
 *   A(1)    <- P1(0,u) for all u          (head of the A chain)
 *   A(l)    <- F(l-2)            l >= 2   (the window: everything of
 *                                          epoch l-2 settles before l is
 *                                          admitted; also orders the A
 *                                          chain transitively)
 *   A(l)    <- R(l-3)            l >= 3   (ring-slot safety: epoch l's
 *                                          cell and the kWindow=4
 *                                          summary slots it overwrites
 *                                          are free)
 *   P1(l,t) <- A(l)
 *   P2(l,t) <- A(l+1)                     (covers F(l-1) and all
 *                                          P1(<=l, *) transitively)
 *   P2(l,t) <- P1(l+1,u), u != t, l+1 < L (the wings; excluding the
 *                                          block's own thread is what
 *                                          lets a heavy thread's pass 2
 *                                          overlap its own next pass 1;
 *                                          u == t is added too when the
 *                                          driver declares
 *                                          pass2ReadsOwnNextPass1())
 *   F(l)    <- F(l-1)            l >= 1   (SOS is single-writer, epoch
 *                                          order)
 *   F(l)    <- P2(l,t) for all t          [strict drivers only]
 *   F(l)    <- P1(l+1,t) for all t, l+1<L (anti-dependency: pass 1 of
 *                                          l+1 reads the SOS before F(l)
 *                                          advances it)
 *   F(0)    <- P1(0,t) for all t          [relaxed drivers, L == 1 only:
 *                                          no later pass-1 exists to
 *                                          order F(0) behind pass 1]
 *   R(l)    <- P2(l,t) for all t          (the last readers of epoch l's
 *                                          events)
 *   R(l)    <- R(l-1)            l >= 1   (in-order retirement)
 *
 * For strict drivers (finalizeAfterPass2() == true) the schedule admits
 * no reordering the sequential loop forbids, and every A(l) runs at a
 * quiescent point — only R tasks, which touch no driver state, can be in
 * flight — so beginPass may resize shared containers. For relaxed
 * drivers F(l) drops its P2 edges and pass 1 of epoch l+1 overlaps
 * pass 2 of epoch l-1 with no global synchronization.
 *
 * Execution: one atomic pending-prerequisite counter per task; a
 * finishing task decrements each successor and submits any that reach
 * zero to the worker pool. The acq_rel decrement makes every
 * prerequisite's writes visible to the task it releases.
 */
class GraphRunner
{
  public:
    GraphRunner(PipelineSource &source, AnalysisDriver &driver,
                WorkerPool &pool)
        : source_(source), driver_(driver), pool_(pool),
          L_(source.numEpochs()), T_(source.numThreads()),
          strict_(driver.finalizeAfterPass2()),
          ownNextP1_(driver.pass2ReadsOwnNextPass1()), p1Base_(L_ + 1),
          p2Base_(p1Base_ + L_ * T_), fBase_(p2Base_ + L_ * T_),
          rBase_(fBase_ + L_), total_(rBase_ + L_),
          traced_(telemetry::enabled()),
          w_(traced_ ? &WindowTelemetry::get() : nullptr), nodes_(total_),
          succ_(total_)
    {
        ensure(total_ <= UINT32_MAX, "pipelined task graph too large");
        buildEdges();
    }

    PipelineStats
    run()
    {
        // Collect the seeds (pending == 0) before submitting anything:
        // once a task runs, its completions decrement counters
        // concurrently with this scan and a task could be seen at zero
        // twice.
        std::vector<std::size_t> seeds;
        for (std::size_t id = 0; id < total_; ++id)
            if (nodes_[id].pending.load(std::memory_order_relaxed) == 0)
                seeds.push_back(id);
        for (std::size_t id : seeds) {
            nodes_[id].readyNs = traced_ ? telemetry::tracer().nowNs() : 0;
            pool_.submitTask(group_, &GraphRunner::trampoline, this, id);
        }
        // Per-run completion group: several pipelined runs (one per
        // monitoring-service session) may share one pool concurrently.
        pool_.waitGroup(group_);

        PipelineStats stats;
        stats.tasksRun = tasksRun_.load(std::memory_order_relaxed);
        stats.epochsFinalized = L_;
        source_.fillStats(stats);
        return stats;
    }

  private:
    struct Node
    {
        std::atomic<std::uint32_t> pending{0};
        /** Stamped by the releasing task just before submission; read by
         *  the executing task (ordered by the pool's queue mutex). */
        std::uint64_t readyNs = 0;
    };

    std::size_t aId(EpochId l) const { return l; }
    std::size_t p1Id(EpochId l, std::size_t t) const
    {
        return p1Base_ + l * T_ + t;
    }
    std::size_t p2Id(EpochId l, std::size_t t) const
    {
        return p2Base_ + l * T_ + t;
    }
    std::size_t fId(EpochId l) const { return fBase_ + l; }
    std::size_t rId(EpochId l) const { return rBase_ + l; }

    void
    addEdge(std::size_t task, std::size_t prereq)
    {
        nodes_[task].pending.fetch_add(1, std::memory_order_relaxed);
        succ_[prereq].push_back(static_cast<std::uint32_t>(task));
    }

    void
    buildEdges()
    {
        for (EpochId l = 0; l <= L_; ++l) {
            if (l == 1)
                for (std::size_t u = 0; u < T_; ++u)
                    addEdge(aId(1), p1Id(0, u));
            if (l >= 2)
                addEdge(aId(l), fId(l - 2));
            if (l >= 3)
                addEdge(aId(l), rId(l - 3));
        }
        for (EpochId l = 0; l < L_; ++l)
            for (std::size_t t = 0; t < T_; ++t)
                addEdge(p1Id(l, t), aId(l));
        for (EpochId l = 0; l < L_; ++l) {
            for (std::size_t t = 0; t < T_; ++t) {
                addEdge(p2Id(l, t), aId(l + 1));
                if (l + 1 < L_)
                    for (std::size_t u = 0; u < T_; ++u)
                        if (u != t || ownNextP1_)
                            addEdge(p2Id(l, t), p1Id(l + 1, u));
            }
        }
        for (EpochId l = 0; l < L_; ++l) {
            if (l >= 1)
                addEdge(fId(l), fId(l - 1));
            if (strict_)
                for (std::size_t t = 0; t < T_; ++t)
                    addEdge(fId(l), p2Id(l, t));
            if (l + 1 < L_)
                for (std::size_t t = 0; t < T_; ++t)
                    addEdge(fId(l), p1Id(l + 1, t));
            if (!strict_ && L_ == 1)
                for (std::size_t t = 0; t < T_; ++t)
                    addEdge(fId(0), p1Id(0, t));
        }
        for (EpochId l = 0; l < L_; ++l) {
            for (std::size_t t = 0; t < T_; ++t)
                addEdge(rId(l), p2Id(l, t));
            if (l >= 1)
                addEdge(rId(l), rId(l - 1));
        }
    }

    static void
    trampoline(void *ctx, std::size_t id)
    {
        static_cast<GraphRunner *>(ctx)->execute(id);
    }

    void
    execute(std::size_t id)
    {
        std::uint64_t start = 0;
        if (traced_) {
            start = telemetry::tracer().nowNs();
            telemetry::registry().observe(w_->taskWaitNs,
                                          start - nodes_[id].readyNs);
        }
        runBody(id);
        if (traced_)
            telemetry::registry().observe(
                w_->taskRunNs, telemetry::tracer().nowNs() - start);
        tasksRun_.fetch_add(1, std::memory_order_relaxed);

        for (std::uint32_t s : succ_[id]) {
            if (nodes_[s].pending.fetch_sub(1,
                                            std::memory_order_acq_rel) ==
                1) {
                nodes_[s].readyNs =
                    traced_ ? telemetry::tracer().nowNs() : 0;
                pool_.submitTask(group_, &GraphRunner::trampoline, this,
                                 s);
            }
        }
    }

    void
    runBody(std::size_t id)
    {
        const std::uint32_t arg =
            traced_ ? w_->epochArg : telemetry::kNoMetric;
        if (id < p1Base_) {
            const EpochId l = id;
            telemetry::TraceSpan span(traced_ ? w_->admitSpan : 0, arg, l);
            if (l < L_) {
                source_.acquire(l);
                driver_.beginPass(l, false);
            }
            if (l >= 1)
                driver_.beginPass(l - 1, true);
        } else if (id < p2Base_) {
            const std::size_t k = id - p1Base_;
            const EpochId l = k / T_;
            const ThreadId t = static_cast<ThreadId>(k % T_);
            if (traced_)
                telemetry::registry().add(w_->pass1Blocks);
            telemetry::TraceSpan span(traced_ ? w_->blockPass1Span : 0,
                                      arg, l);
            driver_.pass1(source_.block(l, t));
        } else if (id < fBase_) {
            const std::size_t k = id - p2Base_;
            const EpochId l = k / T_;
            const ThreadId t = static_cast<ThreadId>(k % T_);
            if (traced_)
                telemetry::registry().add(w_->pass2Blocks);
            telemetry::TraceSpan span(traced_ ? w_->blockPass2Span : 0,
                                      arg, l);
            driver_.pass2(source_.block(l, t));
        } else if (id < rBase_) {
            const EpochId l = id - fBase_;
            telemetry::TraceSpan span(traced_ ? w_->finalizeSpan : 0, arg,
                                      l);
            driver_.finalizeEpoch(l);
            if (traced_)
                telemetry::registry().add(w_->epochsDone);
        } else {
            const EpochId l = id - rBase_;
            telemetry::TraceSpan span(traced_ ? w_->retireSpan : 0, arg,
                                      l);
            source_.retire(l);
        }
    }

    PipelineSource &source_;
    AnalysisDriver &driver_;
    WorkerPool &pool_;
    const std::size_t L_;
    const std::size_t T_;
    const bool strict_;
    const bool ownNextP1_;
    const std::size_t p1Base_;
    const std::size_t p2Base_;
    const std::size_t fBase_;
    const std::size_t rBase_;
    const std::size_t total_;
    const bool traced_;
    const WindowTelemetry *w_;
    std::vector<Node> nodes_;
    std::vector<std::vector<std::uint32_t>> succ_;
    TaskGroup group_;
    std::atomic<std::size_t> tasksRun_{0};
};

} // namespace

WorkerPool &
WindowSchedule::ensurePool(std::size_t nthreads) const
{
    if (pool_)
        return *pool_;
    if (!owned_)
        owned_ = std::make_unique<WorkerPool>(nthreads);
    return *owned_;
}

void
WindowSchedule::runPass(const EpochLayout &layout, EpochId l, bool second,
                        AnalysisDriver &driver) const
{
    const std::size_t nthreads = layout.numThreads();
    const bool traced = telemetry::enabled();
    const WindowTelemetry *w = traced ? &WindowTelemetry::get() : nullptr;

    // Give drivers one single-threaded hook to pre-size shared state
    // before blocks fan out.
    driver.beginPass(l, second);

    // Resolve every block view once, on the scheduler thread.
    std::vector<BlockView> blocks;
    blocks.reserve(nthreads);
    for (ThreadId t = 0; t < nthreads; ++t)
        blocks.push_back(layout.block(l, t));

    auto work = [&](std::size_t t) {
        const BlockView &block = blocks[t];
        if (!traced) {
            if (second)
                driver.pass2(block);
            else
                driver.pass1(block);
            return;
        }
        // Worker t writes its spans to timeline track t+1 (track 0 is
        // the scheduler thread); each block index is claimed by exactly
        // one pool worker per pass, so each track keeps a single writer
        // at any moment.
        telemetry::ScopedTid tid(static_cast<std::uint16_t>(t + 1));
        telemetry::TraceSpan span(second ? w->blockPass2Span
                                         : w->blockPass1Span,
                                  w->epochArg, l);
        if (second)
            driver.pass2(block);
        else
            driver.pass1(block);
    };

    if (traced)
        telemetry::registry().add(second ? w->pass2Blocks : w->pass1Blocks,
                                  nthreads);

    if (!parallelPasses_ || nthreads <= 1) {
        for (std::size_t t = 0; t < nthreads; ++t)
            work(t);
        return;
    }
    ensurePool(nthreads).run(nthreads, work);
}

void
WindowSchedule::run(const EpochLayout &layout, AnalysisDriver &driver) const
{
    const std::size_t nepochs = layout.numEpochs();
    const bool traced = telemetry::enabled();
    const WindowTelemetry *w = traced ? &WindowTelemetry::get() : nullptr;

    auto finalize = [&](EpochId l) {
        telemetry::TraceSpan span(traced ? w->finalizeSpan : 0,
                                  traced ? w->epochArg : telemetry::kNoMetric,
                                  l);
        driver.finalizeEpoch(l);
        if (traced)
            telemetry::registry().add(w->epochsDone);
    };

    for (EpochId l = 0; l < nepochs; ++l) {
        // One window step: pass 1 of epoch l, pass 2 + SOS of epoch l-1.
        telemetry::TraceSpan step(traced ? w->epochSpan : 0,
                                  traced ? w->epochArg : telemetry::kNoMetric,
                                  l);
        // Step 1: pass 1 over the newly-arrived epoch l.
        {
            telemetry::TraceSpan span(traced ? w->pass1Span : 0,
                                      traced ? w->epochArg
                                             : telemetry::kNoMetric,
                                      l);
            runPass(layout, l, false, driver);
        }
        // Steps 2-4: epoch l-1's wings (epochs l-2..l) are now summarized.
        if (l >= 1) {
            {
                telemetry::TraceSpan span(traced ? w->pass2Span : 0,
                                          traced ? w->epochArg
                                                 : telemetry::kNoMetric,
                                          l - 1);
                runPass(layout, l - 1, true, driver);
            }
            finalize(l - 1);
        }
    }
    if (nepochs >= 1) {
        // The final epoch's wings end at the trace boundary.
        telemetry::TraceSpan span(traced ? w->pass2Span : 0,
                                  traced ? w->epochArg : telemetry::kNoMetric,
                                  nepochs - 1);
        runPass(layout, nepochs - 1, true, driver);
        finalize(nepochs - 1);
    }
}

PipelineStats
WindowSchedule::runPipelined(const EpochLayout &layout,
                             AnalysisDriver &driver) const
{
    if (layout.numEpochs() == 0)
        return PipelineStats{};
    LayoutSource source(layout);
    GraphRunner runner(source, driver, ensurePool(layout.numThreads()));
    return runner.run();
}

PipelineStats
WindowSchedule::runPipelined(EpochStream &stream,
                             AnalysisDriver &driver) const
{
    if (stream.numEpochs() == 0)
        return PipelineStats{};
    StreamSource source(stream);
    GraphRunner runner(source, driver, ensurePool(stream.numThreads()));
    return runner.run();
}

} // namespace bfly
