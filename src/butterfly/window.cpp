#include "butterfly/window.hpp"

#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly {

namespace {

/** Pre-interned names/ids for the schedule's telemetry (one-time). */
struct WindowTelemetry
{
    std::uint32_t epochSpan;
    std::uint32_t pass1Span;
    std::uint32_t pass2Span;
    std::uint32_t blockPass1Span;
    std::uint32_t blockPass2Span;
    std::uint32_t finalizeSpan;
    std::uint32_t epochArg;
    telemetry::MetricId epochsDone;
    telemetry::MetricId pass1Blocks;
    telemetry::MetricId pass2Blocks;

    static const WindowTelemetry &
    get()
    {
        static const WindowTelemetry w = [] {
            auto &t = telemetry::tracer();
            auto &r = telemetry::registry();
            WindowTelemetry s;
            s.epochSpan = t.internName("window.epoch");
            s.pass1Span = t.internName("window.pass1");
            s.pass2Span = t.internName("window.pass2");
            s.blockPass1Span = t.internName("block.pass1");
            s.blockPass2Span = t.internName("block.pass2");
            s.finalizeSpan = t.internName("window.sos_update");
            s.epochArg = t.internName("epoch");
            s.epochsDone = r.counter("bfly.window.epochs_finalized");
            s.pass1Blocks = r.counter("bfly.window.pass1_blocks");
            s.pass2Blocks = r.counter("bfly.window.pass2_blocks");
            return s;
        }();
        return w;
    }
};

} // namespace

WorkerPool &
WindowSchedule::ensurePool(std::size_t nthreads) const
{
    if (pool_)
        return *pool_;
    if (!owned_)
        owned_ = std::make_unique<WorkerPool>(nthreads);
    return *owned_;
}

void
WindowSchedule::runPass(const EpochLayout &layout, EpochId l, bool second,
                        AnalysisDriver &driver) const
{
    const std::size_t nthreads = layout.numThreads();
    const bool traced = telemetry::enabled();
    const WindowTelemetry *w = traced ? &WindowTelemetry::get() : nullptr;

    // Give drivers one single-threaded hook to pre-size shared state
    // before blocks fan out.
    driver.beginPass(l, second);

    // Resolve every block view once, on the scheduler thread.
    std::vector<BlockView> blocks;
    blocks.reserve(nthreads);
    for (ThreadId t = 0; t < nthreads; ++t)
        blocks.push_back(layout.block(l, t));

    auto work = [&](std::size_t t) {
        const BlockView &block = blocks[t];
        if (!traced) {
            if (second)
                driver.pass2(block);
            else
                driver.pass1(block);
            return;
        }
        // Worker t writes its spans to timeline track t+1 (track 0 is
        // the scheduler thread); each block index is claimed by exactly
        // one pool worker per pass, so each track keeps a single writer
        // at any moment.
        telemetry::ScopedTid tid(static_cast<std::uint16_t>(t + 1));
        telemetry::TraceSpan span(second ? w->blockPass2Span
                                         : w->blockPass1Span,
                                  w->epochArg, l);
        if (second)
            driver.pass2(block);
        else
            driver.pass1(block);
    };

    if (traced)
        telemetry::registry().add(second ? w->pass2Blocks : w->pass1Blocks,
                                  nthreads);

    if (!parallelPasses_ || nthreads <= 1) {
        for (std::size_t t = 0; t < nthreads; ++t)
            work(t);
        return;
    }
    ensurePool(nthreads).run(nthreads, work);
}

void
WindowSchedule::run(const EpochLayout &layout, AnalysisDriver &driver) const
{
    const std::size_t nepochs = layout.numEpochs();
    const bool traced = telemetry::enabled();
    const WindowTelemetry *w = traced ? &WindowTelemetry::get() : nullptr;

    auto finalize = [&](EpochId l) {
        telemetry::TraceSpan span(traced ? w->finalizeSpan : 0,
                                  traced ? w->epochArg : telemetry::kNoMetric,
                                  l);
        driver.finalizeEpoch(l);
        if (traced)
            telemetry::registry().add(w->epochsDone);
    };

    for (EpochId l = 0; l < nepochs; ++l) {
        // One window step: pass 1 of epoch l, pass 2 + SOS of epoch l-1.
        telemetry::TraceSpan step(traced ? w->epochSpan : 0,
                                  traced ? w->epochArg : telemetry::kNoMetric,
                                  l);
        // Step 1: pass 1 over the newly-arrived epoch l.
        {
            telemetry::TraceSpan span(traced ? w->pass1Span : 0,
                                      traced ? w->epochArg
                                             : telemetry::kNoMetric,
                                      l);
            runPass(layout, l, false, driver);
        }
        // Steps 2-4: epoch l-1's wings (epochs l-2..l) are now summarized.
        if (l >= 1) {
            {
                telemetry::TraceSpan span(traced ? w->pass2Span : 0,
                                          traced ? w->epochArg
                                                 : telemetry::kNoMetric,
                                          l - 1);
                runPass(layout, l - 1, true, driver);
            }
            finalize(l - 1);
        }
    }
    if (nepochs >= 1) {
        // The final epoch's wings end at the trace boundary.
        telemetry::TraceSpan span(traced ? w->pass2Span : 0,
                                  traced ? w->epochArg : telemetry::kNoMetric,
                                  nepochs - 1);
        runPass(layout, nepochs - 1, true, driver);
        finalize(nepochs - 1);
    }
}

} // namespace bfly
