#include "butterfly/window.hpp"

#include <thread>
#include <vector>

namespace bfly {

void
WindowSchedule::runPass(const EpochLayout &layout, EpochId l, bool second,
                        AnalysisDriver &driver) const
{
    const std::size_t nthreads = layout.numThreads();
    auto work = [&](ThreadId t) {
        const BlockView block = layout.block(l, t);
        if (second)
            driver.pass2(block);
        else
            driver.pass1(block);
    };

    if (!parallelPasses_ || nthreads <= 1) {
        for (ThreadId t = 0; t < nthreads; ++t)
            work(t);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (ThreadId t = 0; t < nthreads; ++t)
        pool.emplace_back(work, t);
    for (std::thread &th : pool)
        th.join();
}

void
WindowSchedule::run(const EpochLayout &layout, AnalysisDriver &driver) const
{
    const std::size_t nepochs = layout.numEpochs();
    for (EpochId l = 0; l < nepochs; ++l) {
        // Step 1: pass 1 over the newly-arrived epoch l.
        runPass(layout, l, false, driver);
        // Steps 2-4: epoch l-1's wings (epochs l-2..l) are now summarized.
        if (l >= 1) {
            runPass(layout, l - 1, true, driver);
            driver.finalizeEpoch(l - 1);
        }
    }
    if (nepochs >= 1) {
        // The final epoch's wings end at the trace boundary.
        runPass(layout, nepochs - 1, true, driver);
        driver.finalizeEpoch(nepochs - 1);
    }
}

} // namespace bfly
