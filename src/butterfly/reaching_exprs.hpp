/**
 * @file
 * Dynamic parallel reaching expressions (paper Section 5.2).
 *
 * The canonical *must* analysis, dual to reaching definitions: an expression
 * e reaches a point p only if it reaches p under *every* valid ordering.
 * Killing is global (KILL-SIDE-OUT is the union of every kill anywhere in
 * the block, since the body can interleave between any two wing
 * instructions); generating is local (GEN-SIDE-OUT is empty — no block can
 * know that every path generated e).
 *
 * Expressions are abstract 64-bit ids; the instantiation supplies an
 * extractor describing which expressions each event generates and kills.
 * ADDRCHECK (Section 6.1) instantiates this analysis with
 * "e = address is allocated": alloc generates, free kills.
 */

#ifndef BUTTERFLY_BUTTERFLY_REACHING_EXPRS_HPP
#define BUTTERFLY_BUTTERFLY_REACHING_EXPRS_HPP

#include <functional>
#include <vector>

#include "common/addr_set.hpp"
#include "butterfly/ids.hpp"
#include "butterfly/window.hpp"

namespace bfly {

/** Abstract expression identifier. */
using ExprId = std::uint64_t;
using ExprSet = FlatSet<ExprId>;

/** Expressions an event generates and kills. */
struct ExprEffect
{
    std::vector<ExprId> gens;
    std::vector<ExprId> kills;
};

using ExprExtractor = std::function<ExprEffect(const Event &)>;

/** Butterfly reaching expressions over a dynamic parallel trace. */
class ReachingExpressions : public AnalysisDriver
{
  public:
    struct BlockResults
    {
        ExprSet gen;         ///< GEN_{l,t}: available at block end
        ExprSet kill;        ///< KILL_{l,t}: killed at block end
        ExprSet killSideOut; ///< KILL-SIDE-OUT_{l,t}: killed anywhere
        ExprSet lsos;        ///< LSOS_{l,t} at block entry
        ExprSet killSideIn;  ///< KILL-SIDE-IN_{l,t} (union of wing KSOs)
        ExprSet in;          ///< IN_{l,t} = LSOS - KILL-SIDE-IN
        ExprSet out;         ///< OUT_{l,t}
    };

    ReachingExpressions(std::size_t num_threads, ExprExtractor effects);

    // AnalysisDriver hooks.
    void pass1(const BlockView &block) override;
    void pass2(const BlockView &block) override;
    void finalizeEpoch(EpochId l) override;
    void beginPass(EpochId l, bool second) override;

    const ExprSet &sos(EpochId l) const;
    const BlockResults &blockResults(EpochId l, ThreadId t) const;
    const ExprSet &genEpoch(EpochId l) const;
    const ExprSet &killEpoch(EpochId l) const;

    /** IN_{l,t,i} = LSOS_{l,t,i} - KILL-SIDE-IN_{l,t}, on demand. */
    ExprSet inAt(EpochId l, ThreadId t, InstrOffset i) const;

    std::size_t numThreads() const { return numThreads_; }

  private:
    struct BlockPrivate
    {
        BlockResults res;
        /** (offset, effect) for instructions with effects, program order. */
        std::vector<std::pair<InstrOffset, ExprEffect>> effects;
    };

    const BlockPrivate &priv(EpochId l, ThreadId t) const;
    BlockPrivate &priv(EpochId l, ThreadId t);

    /** e in GEN_{(l-1,l),t} = (GEN_{l-1,t} - KILL_{l,t}) U GEN_{l,t}. */
    bool inGenSpan(ExprId e, EpochId l, ThreadId t) const;

    /** e in NOT-KILL_{(l-1,l),t}. */
    bool inNotKillSpan(ExprId e, EpochId l, ThreadId t) const;

    ExprSet computeLsos(EpochId l, ThreadId t) const;

    std::size_t numThreads_;
    ExprExtractor effects_;
    std::vector<std::vector<BlockPrivate>> blocks_; ///< [l][t]
    std::vector<ExprSet> sos_;
    std::vector<ExprSet> genEpoch_;
    std::vector<ExprSet> killEpoch_;
};

} // namespace bfly

#endif // BUTTERFLY_BUTTERFLY_REACHING_EXPRS_HPP
