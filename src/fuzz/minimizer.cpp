#include "fuzz/minimizer.hpp"

#include <algorithm>

#include "telemetry/trace_span.hpp"

namespace bfly::fuzz {

namespace {

/** Stable handle for one event of the original case. */
struct EventRef
{
    std::size_t tid;
    std::size_t index; ///< position in the original program
};

/** Rebuild a case keeping only @p kept (program order is preserved
 *  because kept refs are in flattened program order). */
FuzzCase
project(const FuzzCase &base, const std::vector<EventRef> &kept)
{
    FuzzCase out = base;
    for (auto &p : out.programs)
        p.clear();
    for (const EventRef &ref : kept)
        out.programs[ref.tid].push_back(base.programs[ref.tid][ref.index]);
    return out;
}

} // namespace

TraceMinimizer::Result
TraceMinimizer::minimize(const FuzzCase &failing) const
{
    telemetry::TraceSpan span("fuzz.minimize");

    Result result;
    result.minimized = failing;
    result.fromEvents = failing.totalEvents();

    const CaseOutcome original = runner_.run(failing);
    ++result.probes;
    if (original.violations.empty()) {
        result.toEvents = result.fromEvents;
        return result;
    }
    result.reproduced = true;
    result.signature = {original.violations.front().invariant,
                        original.violations.front().lifeguard};

    std::vector<EventRef> kept;
    for (std::size_t t = 0; t < failing.programs.size(); ++t)
        for (std::size_t i = 0; i < failing.programs[t].size(); ++i)
            kept.push_back({t, i});

    // Classic ddmin: test complements of n chunks; on failure-preserving
    // reduction restart at coarse granularity, otherwise refine.
    std::size_t n = 2;
    while (kept.size() >= 2 && n <= kept.size() &&
           result.probes < config_.maxProbes) {
        bool reduced = false;
        const std::size_t chunk = (kept.size() + n - 1) / n;
        for (std::size_t c = 0; c * chunk < kept.size(); ++c) {
            std::vector<EventRef> candidate;
            candidate.reserve(kept.size() - chunk);
            for (std::size_t i = 0; i < kept.size(); ++i)
                if (i / chunk != c)
                    candidate.push_back(kept[i]);
            if (candidate.size() == kept.size())
                continue;

            const FuzzCase trial = project(failing, candidate);
            const CaseOutcome outcome = runner_.run(trial);
            if (++result.probes >= config_.maxProbes && !reduced)
                break;
            if (result.signature.matches(outcome)) {
                kept = std::move(candidate);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= kept.size())
                break;
            n = std::min(kept.size(), n * 2);
        }
    }

    result.minimized = project(failing, kept);
    result.toEvents = result.minimized.totalEvents();
    return result;
}

} // namespace bfly::fuzz
