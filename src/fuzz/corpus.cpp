#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>

#include "trace/log_codec.hpp"

namespace bfly::fuzz {

namespace {

constexpr char kMagic[4] = {'B', 'F', 'Z', 'R'};
constexpr std::uint8_t kVersion = 1;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Bounds-checked reader over the encoded buffer. */
struct Reader
{
    const std::uint8_t *p;
    const std::uint8_t *end;

    void
    need(std::size_t n) const
    {
        if (static_cast<std::size_t>(end - p) < n)
            throw std::runtime_error("fuzz repro: truncated");
    }

    std::uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            const std::uint8_t byte = u8();
            v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return v;
        }
        throw std::runtime_error("fuzz repro: varint overflow");
    }
};

} // namespace

std::vector<std::uint8_t>
encodeCase(const FuzzCase &c)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic, kMagic + 4);
    out.push_back(kVersion);
    putU64(out, c.caseId);
    putU64(out, c.interleaveSeed);
    putVarint(out, c.globalH);
    putU64(out, c.heapBase);
    putU64(out, c.heapLimit);
    out.push_back(static_cast<std::uint8_t>(c.model));

    putVarint(out, c.scenario.size());
    out.insert(out.end(), c.scenario.begin(), c.scenario.end());

    putVarint(out, c.speedWeights.size());
    for (double w : c.speedWeights) {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof w);
        std::memcpy(&bits, &w, sizeof bits);
        putU64(out, bits);
    }

    putVarint(out, c.programs.size());
    for (const auto &program : c.programs) {
        const std::vector<std::uint8_t> payload = encodeEvents(program);
        putVarint(out, payload.size());
        out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
}

FuzzCase
decodeCase(const std::vector<std::uint8_t> &bytes)
{
    Reader r{bytes.data(), bytes.data() + bytes.size()};
    r.need(4);
    if (std::memcmp(r.p, kMagic, 4) != 0)
        throw std::runtime_error("fuzz repro: bad magic");
    r.p += 4;
    if (r.u8() != kVersion)
        throw std::runtime_error("fuzz repro: unsupported version");

    FuzzCase c;
    c.caseId = r.u64();
    c.interleaveSeed = r.u64();
    c.globalH = static_cast<std::size_t>(r.varint());
    c.heapBase = r.u64();
    c.heapLimit = r.u64();
    const std::uint8_t model = r.u8();
    if (model > static_cast<std::uint8_t>(MemModel::TSO))
        throw std::runtime_error("fuzz repro: bad memory model");
    c.model = static_cast<MemModel>(model);

    const std::size_t scenario_len =
        static_cast<std::size_t>(r.varint());
    r.need(scenario_len);
    c.scenario.assign(reinterpret_cast<const char *>(r.p), scenario_len);
    r.p += scenario_len;

    const std::size_t nweights = static_cast<std::size_t>(r.varint());
    c.speedWeights.reserve(nweights);
    for (std::size_t i = 0; i < nweights; ++i) {
        const std::uint64_t bits = r.u64();
        double w = 0;
        std::memcpy(&w, &bits, sizeof w);
        c.speedWeights.push_back(w);
    }

    const std::size_t nthreads = static_cast<std::size_t>(r.varint());
    c.programs.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) {
        const std::size_t len = static_cast<std::size_t>(r.varint());
        r.need(len);
        c.programs.push_back(decodeEvents({r.p, len}));
        r.p += len;
    }
    if (r.p != r.end)
        throw std::runtime_error("fuzz repro: trailing bytes");
    return c;
}

bool
saveRepro(const FuzzCase &c, const std::string &path)
{
    const std::vector<std::uint8_t> bytes = encodeCase(c);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

FuzzCase
loadRepro(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("fuzz repro: cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decodeCase(bytes);
}

std::vector<std::string>
listCorpus(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".bfz")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
reproFileName(const FuzzCase &c)
{
    return c.scenario + "-" + std::to_string(c.caseId) + ".bfz";
}

} // namespace bfly::fuzz
