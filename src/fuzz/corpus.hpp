/**
 * @file
 * Serialized fuzz repros (`.bfz` files) — the bridge from a fuzz-found
 * failure to a permanent regression test in tests/corpus/.
 *
 * A repro is a complete FuzzCase: per-thread programs (compressed with
 * the log_codec event encoding) plus the execution parameters needed to
 * re-derive the exact interleaving (seed, memory model, speed weights,
 * epoch size). Global sequence numbers are deliberately *not* stored —
 * replaying a repro runs the real interleaver, so a repro exercises the
 * same machinery as live fuzzing, and the format stays valid even if
 * trace internals change.
 *
 * Layout (all integers little-endian; varint = LEB128 as in log_codec):
 *
 *   magic "BFZR"  u8 version  u64 caseId  u64 interleaveSeed
 *   varint globalH  u64 heapBase  u64 heapLimit  u8 model
 *   varint |scenario| bytes     varint nSpeedWeights  (f64 each)
 *   varint nThreads  then per thread: varint payloadLen, payload
 *   (payload = log_codec encodeEvents of that thread's program)
 */

#ifndef BUTTERFLY_FUZZ_CORPUS_HPP
#define BUTTERFLY_FUZZ_CORPUS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/trace_fuzzer.hpp"

namespace bfly::fuzz {

/** Serialize @p c to the .bfz byte format. */
std::vector<std::uint8_t> encodeCase(const FuzzCase &c);

/** Parse a .bfz byte buffer. Throws std::runtime_error on malformed
 *  input (bad magic, truncation, unsupported version). */
FuzzCase decodeCase(const std::vector<std::uint8_t> &bytes);

/** Write @p c to @p path. @return false on I/O failure. */
bool saveRepro(const FuzzCase &c, const std::string &path);

/** Load a repro written by saveRepro. Throws on I/O or parse errors. */
FuzzCase loadRepro(const std::string &path);

/** All .bfz files under @p dir, sorted by filename (empty if the
 *  directory does not exist). */
std::vector<std::string> listCorpus(const std::string &dir);

/** Canonical corpus filename for a case: `<scenario>-<caseId>.bfz`. */
std::string reproFileName(const FuzzCase &c);

} // namespace bfly::fuzz

#endif // BUTTERFLY_FUZZ_CORPUS_HPP
