#include "fuzz/trace_fuzzer.hpp"

#include <algorithm>

namespace bfly::fuzz {

namespace {

/** Shared simulated heap window for every generated case. */
constexpr Addr kHeapBase = 0x10000;
constexpr Addr kHeapLimit = 0x18000;
/** Allocation slots are 64-byte aligned inside the window. */
constexpr std::size_t kSlots = 96;
/** Slots at and above this index are never allocated by any generator:
 *  accesses to them are guaranteed oracle errors (not just races). */
constexpr std::size_t kRogueSlotBase = 80;

Addr
slotAddr(std::size_t slot)
{
    return kHeapBase + static_cast<Addr>(slot) * 64;
}

std::uint16_t
drawSize(Rng &rng)
{
    static constexpr std::uint16_t sizes[] = {8, 8, 8, 4, 16, 32};
    return sizes[rng.below(std::size(sizes))];
}

/** A random access-ish event against slot @p a (no alloc/free). */
Event
drawAccess(Rng &rng, Addr a)
{
    switch (rng.below(4)) {
      case 0:
        return Event::write(a, drawSize(rng));
      case 1:
        return Event::use(a);
      default:
        return Event::read(a, drawSize(rng));
    }
}

/**
 * Racy allocation/free interleavings: every thread allocates, frees and
 * accesses the *same* small slot pool with no synchronization at all, so
 * double allocs, double frees, use-after-free and alloc/access races are
 * all common — the oracle flags plenty, and butterfly must subsume it.
 */
void
racyAllocFree(FuzzCase &c, Rng &rng, unsigned threads, std::size_t per)
{
    const std::size_t pool = 4 + rng.below(12);
    c.programs.assign(threads, {});
    for (unsigned t = 0; t < threads; ++t) {
        auto &p = c.programs[t];
        while (p.size() < per) {
            const Addr a = slotAddr(rng.below(pool));
            switch (rng.below(8)) {
              case 0:
                p.push_back(Event::alloc(a, drawSize(rng)));
                break;
              case 1:
                p.push_back(Event::freeOf(a, drawSize(rng)));
                break;
              case 2: // guaranteed-unallocated touch, sometimes
                if (rng.chance(0.3)) {
                    p.push_back(drawAccess(
                        rng, slotAddr(kRogueSlotBase + rng.below(8))));
                    break;
                }
                [[fallthrough]];
              default:
                p.push_back(drawAccess(rng, a));
            }
        }
    }
}

/**
 * Taint laundering: taint enters on one thread and is washed through
 * cross-thread Assign chains — copies into shared cells, partial
 * untaints, overwrites with trusted data — before reaching Use events on
 * *other* threads. Exercises the Check DFS over wing transfer functions
 * and both termination conditions.
 */
void
taintLaunder(FuzzCase &c, Rng &rng, unsigned threads, std::size_t per)
{
    const std::size_t pool = 6 + rng.below(10);
    c.programs.assign(threads, {});
    for (unsigned t = 0; t < threads; ++t) {
        auto &p = c.programs[t];
        while (p.size() < per) {
            const Addr a = slotAddr(rng.below(pool));
            const Addr b = slotAddr(rng.below(pool));
            switch (rng.below(10)) {
              case 0:
                p.push_back(Event::taintSrc(a, drawSize(rng)));
                break;
              case 1:
                p.push_back(Event::untaint(a, drawSize(rng)));
                break;
              case 2:
              case 3:
                p.push_back(Event::use(a));
                break;
              case 4: // trusted overwrite (untaints its range)
                p.push_back(Event::write(a, drawSize(rng)));
                break;
              case 5:
                p.push_back(
                    Event::assign2(a, b, slotAddr(rng.below(pool))));
                break;
              default: // the laundering step: copy b into a
                p.push_back(Event::assign(a, b));
            }
        }
    }
}

/**
 * Heartbeat-boundary straddles: work comes in phases of roughly H global
 * events; each phase's *last* events are allocation-state changes and the
 * next phase's *first* events access them, so metadata transitions land
 * right at (or skewed across) epoch boundaries.
 */
void
heartbeatStraddle(FuzzCase &c, Rng &rng, unsigned threads,
                  std::size_t per)
{
    c.globalH = 24 + rng.below(72);
    const std::size_t phase_per_thread =
        std::max<std::size_t>(2, c.globalH / std::max(1u, threads));
    const std::size_t pool = 8 + rng.below(8);
    c.programs.assign(threads, {});
    std::size_t phase = 0;
    bool grew = true;
    while (grew) {
        grew = false;
        const Addr hot = slotAddr(phase % pool);
        for (unsigned t = 0; t < threads; ++t) {
            auto &p = c.programs[t];
            if (p.size() >= per)
                continue;
            grew = true;
            // Phase opening: touch what the previous phase just changed.
            p.push_back(drawAccess(rng, hot));
            for (std::size_t i = 2; i < phase_per_thread; ++i)
                p.push_back(drawAccess(rng, slotAddr(rng.below(pool))));
            // Phase close: one thread flips allocation state of the slot
            // the *next* phase opens on.
            const Addr next_hot = slotAddr((phase + 1) % pool);
            if (t == phase % threads)
                p.push_back(rng.chance(0.5)
                                ? Event::alloc(next_hot, 64)
                                : Event::freeOf(next_hot, 64));
            else
                p.push_back(drawAccess(rng, slotAddr(rng.below(pool))));
        }
        ++phase;
    }
}

/**
 * Epoch-skewed progress: grossly unequal thread speeds (the interleaver's
 * speedWeights), so fast threads race many epochs ahead of slow ones and
 * stalled threads contribute empty blocks — the straggler pattern that
 * broke the first worker-pool protocol.
 */
void
epochSkew(FuzzCase &c, Rng &rng, unsigned threads, std::size_t per)
{
    racyAllocFree(c, rng, threads, per);
    c.speedWeights.resize(threads);
    for (unsigned t = 0; t < threads; ++t)
        c.speedWeights[t] = static_cast<double>(1u << rng.below(7));
    c.globalH = 16 + rng.below(112);
}

/**
 * Degenerate epochs: H so small that most epochs hold one or two events
 * (and many blocks are empty). Stresses window arithmetic, empty-block
 * summaries and the slicer's boundary handling.
 */
void
degenerateEpochs(FuzzCase &c, Rng &rng, unsigned threads,
                 std::size_t /*per*/)
{
    racyAllocFree(c, rng, threads, 6 + rng.below(10));
    if (rng.chance(0.4)) {
        // Mix in some taint flow at the same tiny scale.
        FuzzCase taint;
        taintLaunder(taint, rng, threads, 6);
        for (unsigned t = 0; t < threads; ++t)
            c.programs[t].insert(c.programs[t].end(),
                                 taint.programs[t].begin(),
                                 taint.programs[t].end());
    }
    c.globalH = 1 + rng.below(4);
    c.model = MemModel::SequentiallyConsistent; // drift must stay < H
}

/** Lock identities live outside the heap window so data-address-keyed
 *  lifeguards never confuse a lock with a monitored cell. */
constexpr Addr kLockBase = 0x20000;

Addr
lockAddr(std::size_t j)
{
    return kLockBase + static_cast<Addr>(j) * 8;
}

/**
 * Lock-churn: threads hammer a small pool of shared slots under a small
 * pool of locks. Most critical sections use the slot's designated lock
 * (race-free), but threads sometimes grab the *wrong* lock, skip locking
 * entirely, or release early and keep touching the slot — so LOCKSET's
 * candidate intersections drain at different rates per slot, and lock
 * acquisitions constantly straddle epoch boundaries. A prelude of allocs
 * keeps ADDRCHECK's view of the same traces mostly quiet.
 */
void
lockChurn(FuzzCase &c, Rng &rng, unsigned threads, std::size_t per)
{
    const std::size_t pool = 3 + rng.below(8);
    const std::size_t nlocks = 2 + rng.below(6);
    c.programs.assign(threads, {});
    for (unsigned t = 0; t < threads; ++t) {
        auto &p = c.programs[t];
        if (t == 0) {
            for (std::size_t s = 0; s < pool; ++s)
                p.push_back(Event::alloc(slotAddr(s), 64));
        }
        while (p.size() < per) {
            const std::size_t s = rng.below(pool);
            const Addr a = slotAddr(s);
            const std::size_t right = s % nlocks;
            switch (rng.below(10)) {
              case 0: // unsynchronized touch: a real race
                p.push_back(drawAccess(rng, a));
                break;
              case 1: { // wrong lock: drains the candidate set
                const Addr l = lockAddr(rng.below(nlocks));
                p.push_back(Event::lock(l));
                p.push_back(drawAccess(rng, a));
                p.push_back(Event::unlock(l));
                break;
              }
              case 2: // early release, then keep touching
                p.push_back(Event::lock(lockAddr(right)));
                p.push_back(drawAccess(rng, a));
                p.push_back(Event::unlock(lockAddr(right)));
                p.push_back(drawAccess(rng, a));
                break;
              case 3: // nested sections over two locks
                p.push_back(Event::lock(lockAddr(right)));
                p.push_back(Event::lock(lockAddr(rng.below(nlocks))));
                p.push_back(drawAccess(rng, a));
                p.push_back(Event::unlock(lockAddr(rng.below(nlocks))));
                p.push_back(Event::unlock(lockAddr(right)));
                break;
              default: { // well-locked critical section
                p.push_back(Event::lock(lockAddr(right)));
                const std::size_t body = 1 + rng.below(3);
                for (std::size_t i = 0; i < body; ++i)
                    p.push_back(drawAccess(rng, a));
                p.push_back(Event::unlock(lockAddr(right)));
                break;
              }
            }
        }
    }
}

/**
 * Leak laundering: heap pointers enter cells at Alloc events and are
 * washed through cross-thread Assign chains — copied into shared cells,
 * overwritten with plain data, re-derived from laundered copies — before
 * Output events ship cells to the outside world. Exercises ADDRLEAK's
 * window may-set closure and the must-kill SOS fold; Outputs of
 * never-allocated rogue slots are guaranteed clean sinks.
 */
void
leakLaunder(FuzzCase &c, Rng &rng, unsigned threads, std::size_t per)
{
    const std::size_t pool = 6 + rng.below(10);
    c.programs.assign(threads, {});
    for (unsigned t = 0; t < threads; ++t) {
        auto &p = c.programs[t];
        while (p.size() < per) {
            const Addr a = slotAddr(rng.below(pool));
            const Addr b = slotAddr(rng.below(pool));
            switch (rng.below(10)) {
              case 0: // pointer enters the cell
                p.push_back(Event::alloc(a, drawSize(rng)));
                break;
              case 1: // scrubbed with plain data
                p.push_back(Event::write(a, drawSize(rng)));
                break;
              case 2: // clean sink: rogue slots never hold a pointer
                p.push_back(Event::output(
                    slotAddr(kRogueSlotBase + rng.below(8)),
                    drawSize(rng)));
                break;
              case 3:
              case 4: // the sink under test
                p.push_back(Event::output(a, drawSize(rng)));
                break;
              case 5:
                p.push_back(
                    Event::assign2(a, b, slotAddr(rng.below(pool))));
                break;
              case 6: // launder from off-heap: degenerates to a kill
                p.push_back(Event::assign(a, 0x100 + 8 * rng.below(32)));
                break;
              default: // the laundering step: copy b into a
                p.push_back(Event::assign(a, b));
            }
        }
    }
}

/** Anything-goes soup over the full event vocabulary. */
void
randomSoup(FuzzCase &c, Rng &rng, unsigned threads, std::size_t per)
{
    const std::size_t pool = 4 + rng.below(28);
    c.programs.assign(threads, {});
    for (unsigned t = 0; t < threads; ++t) {
        auto &p = c.programs[t];
        while (p.size() < per) {
            const Addr a = rng.chance(0.9)
                               ? slotAddr(rng.below(pool))
                               : 0x100 + 8 * rng.below(64); // off-heap
            switch (rng.below(15)) {
              case 0:
                p.push_back(Event::alloc(a, drawSize(rng)));
                break;
              case 1:
                p.push_back(Event::freeOf(a, drawSize(rng)));
                break;
              case 2:
                p.push_back(Event::taintSrc(a, drawSize(rng)));
                break;
              case 3:
                p.push_back(Event::untaint(a, drawSize(rng)));
                break;
              case 4:
                p.push_back(Event::assign(a, slotAddr(rng.below(pool))));
                break;
              case 5:
                p.push_back(Event::assign2(a, slotAddr(rng.below(pool)),
                                           slotAddr(rng.below(pool))));
                break;
              case 6:
                p.push_back(Event::nop());
                break;
              case 7:
                p.push_back(Event::lock(lockAddr(rng.below(6))));
                break;
              case 8:
                p.push_back(Event::unlock(lockAddr(rng.below(6))));
                break;
              case 9:
                p.push_back(Event::output(a, drawSize(rng)));
                break;
              default:
                p.push_back(drawAccess(rng, a));
            }
        }
    }
}

using Generator = void (*)(FuzzCase &, Rng &, unsigned, std::size_t);

struct Scenario
{
    const char *name;
    Generator generate;
};

constexpr Scenario kScenarios[] = {
    {"racy-alloc-free", racyAllocFree},
    {"taint-launder", taintLaunder},
    {"heartbeat-straddle", heartbeatStraddle},
    {"epoch-skew", epochSkew},
    {"degenerate-epochs", degenerateEpochs},
    {"random-soup", randomSoup},
    {"lock-churn", lockChurn},
    {"leak-launder", leakLaunder},
};

/** True if swapping adjacent events preserves the thread's semantics:
 *  their address footprints must not overlap. */
bool
commutes(const Event &a, const Event &b)
{
    auto touches = [](const Event &e, Addr lo, Addr hi) {
        auto in = [&](Addr base, std::uint16_t sz) {
            if (base == kNoAddr)
                return false;
            const Addr end = base + (sz > 0 ? sz : 1);
            return base < hi && lo < end;
        };
        if (in(e.addr, e.size))
            return true;
        if (e.kind == EventKind::Assign) {
            if (e.nsrc >= 1 && in(e.src0, e.size))
                return true;
            if (e.nsrc >= 2 && in(e.src1, e.size))
                return true;
        }
        return false;
    };
    auto footprint = [](const Event &e, Addr out[3]) {
        out[0] = e.addr;
        out[1] = e.kind == EventKind::Assign && e.nsrc >= 1 ? e.src0
                                                            : kNoAddr;
        out[2] = e.kind == EventKind::Assign && e.nsrc >= 2 ? e.src1
                                                            : kNoAddr;
    };
    Addr fa[3];
    footprint(a, fa);
    for (Addr base : fa) {
        if (base == kNoAddr)
            continue;
        const Addr end = base + (a.size > 0 ? a.size : 1);
        if (touches(b, base, end))
            return false;
    }
    return true;
}

} // namespace

Trace
FuzzCase::materialize() const
{
    InterleaveConfig icfg;
    icfg.model = model;
    icfg.speedWeights = speedWeights;
    Rng rng(interleaveSeed);
    return interleave(programs, icfg, rng);
}

const std::vector<std::string> &
scenarioNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const Scenario &s : kScenarios)
            out.emplace_back(s.name);
        return out;
    }();
    return names;
}

TraceFuzzer::TraceFuzzer(const FuzzerConfig &config)
    : config_(config), rng_(config.seed)
{}

FuzzCase
TraceFuzzer::generate(std::uint64_t case_seed) const
{
    Rng rng(case_seed);
    const Scenario &scenario = kScenarios[rng.below(std::size(kScenarios))];

    FuzzCase c;
    c.scenario = scenario.name;
    c.heapBase = kHeapBase;
    c.heapLimit = kHeapLimit;
    c.interleaveSeed = rng.next() | 1;
    c.globalH = 16 + rng.below(112);

    const unsigned threads =
        1 + static_cast<unsigned>(rng.below(config_.maxThreads));
    const std::size_t per =
        16 + rng.below(std::max<std::size_t>(1,
                                             config_.maxEventsPerThread -
                                                 15));
    scenario.generate(c, rng, threads, per);

    // TSO only when the epoch covers store-buffer drift comfortably
    // (the butterfly premise; see EpochLayout::byGlobalSeq).
    if (config_.allowTso && c.globalH >= 64 && rng.chance(0.4) &&
        c.model == MemModel::SequentiallyConsistent &&
        c.scenario != "degenerate-epochs")
        c.model = MemModel::TSO;
    return c;
}

FuzzCase
TraceFuzzer::mutate(const FuzzCase &base, std::uint64_t mutation_seed) const
{
    Rng rng(mutation_seed);
    FuzzCase c = base;
    c.scenario = base.scenario + "+mut";

    const unsigned rounds = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned round = 0; round < rounds; ++round) {
        // Non-empty threads, for the structural mutators (deletion and
        // splicing can empty a program mid-mutation).
        std::vector<std::size_t> busy;
        for (std::size_t t = 0; t < c.programs.size(); ++t)
            if (!c.programs[t].empty())
                busy.push_back(t);
        switch (rng.below(6)) {
          case 0: // schedule perturbation: same program, new interleaving
            c.interleaveSeed = rng.next() | 1;
            break;
          case 1: { // swap an adjacent commuting pair
            if (busy.empty())
                break;
            auto &p = c.programs[busy[rng.below(busy.size())]];
            if (p.size() < 2)
                break;
            const std::size_t i = rng.below(p.size() - 1);
            if (commutes(p[i], p[i + 1]))
                std::swap(p[i], p[i + 1]);
            break;
          }
          case 2: { // duplicate or delete one event
            if (busy.empty())
                break;
            auto &p = c.programs[busy[rng.below(busy.size())]];
            const std::size_t i = rng.below(p.size());
            if (rng.chance(0.5))
                p.insert(p.begin() + i, p[i]);
            else
                p.erase(p.begin() + i);
            break;
          }
          case 3: { // retarget an address within the slot pool
            if (busy.empty())
                break;
            auto &p = c.programs[busy[rng.below(busy.size())]];
            Event &e = p[rng.below(p.size())];
            if (e.addr != kNoAddr)
                e.addr = slotAddr(rng.below(kSlots));
            break;
          }
          case 4: // epoch-size jitter (keeps the TSO drift bound)
            if (c.model == MemModel::TSO)
                c.globalH = 64 + rng.below(128);
            else
                c.globalH =
                    std::max<std::size_t>(1, c.globalH / 2 +
                                                 rng.below(c.globalH + 1));
            break;
          default: { // splice a run of events onto another thread
            if (busy.size() < 2)
                break;
            const std::size_t from_i = rng.below(busy.size());
            const std::size_t from = busy[from_i];
            const std::size_t to =
                busy[(from_i + 1 + rng.below(busy.size() - 1)) %
                     busy.size()];
            auto &src = c.programs[from];
            auto &dst = c.programs[to];
            const std::size_t n =
                1 + rng.below(std::min<std::size_t>(8, src.size()));
            const std::size_t at = rng.below(src.size() - n + 1);
            dst.insert(dst.begin() + rng.below(dst.size() + 1),
                       src.begin() + at, src.begin() + at + n);
            src.erase(src.begin() + at, src.begin() + at + n);
            break;
          }
        }
    }
    return c;
}

FuzzCase
TraceFuzzer::next()
{
    FuzzCase c;
    if (!recent_.empty() && rng_.chance(config_.mutateProbability))
        c = mutate(recent_[rng_.below(recent_.size())], rng_.next());
    else
        c = generate(rng_.next());
    c.caseId = nextId_++;
    if (recent_.size() < 16)
        recent_.push_back(c);
    else
        recent_[rng_.below(recent_.size())] = c;
    return c;
}

} // namespace bfly::fuzz
