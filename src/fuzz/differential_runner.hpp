/**
 * @file
 * Differential conformance runner: executes one fuzz case through every
 * lifeguard in every scheduling mode and machine-checks the paper's
 * correctness claims as properties.
 *
 * Invariants checked per case:
 *
 *  - mode equivalence (Theorem-free, but the repo's own guarantee): the
 *    sequential barrier schedule, the parallel barrier schedule, the
 *    pipelined task graph over a materialized layout, and the pipelined
 *    task graph over a streaming EpochStream must produce bit-identical
 *    reports (error records, SOS, and — for the generic reaching-defs
 *    analysis — every per-epoch/per-block dataflow set);
 *
 *  - oracle subsumption (Theorems 6.1/6.2): the butterfly lifeguard
 *    never misses an error the exact sequential oracle flags — zero
 *    false negatives for ADDRCHECK, TAINTCHECK, DEFINEDCHECK, LOCKSET
 *    and ADDRLEAK under the replayed true interleaving;
 *
 *  - epoch-size monotonicity (Fig. 12/13 direction): shrinking epochs
 *    can only shrink the false-positive count. Checked between the
 *    case's H and factor*H (the factor keeps boundaries nested, so the
 *    small-epoch concurrency relation is a subset of the large one) for
 *    ADDRCHECK and ADDRLEAK per flagged event, and for LOCKSET per
 *    flagged variable (attribution may legitimately move between epoch
 *    sizes, the set of racy variables may only shrink).
 *
 *  - elision soundness (opt-in, --elision): stamping deterministic
 *    pseudo-sites on the materialized trace, building an ElisionPlan
 *    with the static classifier, applying it, and re-running every
 *    error-reporting lifeguard on the elided trace must still subsume
 *    the sequential oracle run on the *full* trace — static elision may
 *    never introduce a false negative, for any lifeguard, on any
 *    scenario family the fuzzer generates.
 *
 * Mutation testing: a FaultPlan deliberately corrupts one lifeguard's
 * report (dropping records of one kind in a subset of modes) before the
 * invariants are evaluated. A fault in some modes must surface as a
 * mode-equivalence violation; a fault in *all* modes must surface as a
 * false negative. The unit tests use this to prove the runner actually
 * catches and minimizes injected lifeguard bugs.
 */

#ifndef BUTTERFLY_FUZZ_DIFFERENTIAL_RUNNER_HPP
#define BUTTERFLY_FUZZ_DIFFERENTIAL_RUNNER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/trace_fuzzer.hpp"
#include "lifeguards/report.hpp"

namespace bfly::fuzz {

/** The monitored analyses (the repo's six lifeguards). */
enum class Lifeguard : std::uint8_t {
    AddrCheck,
    TaintCheck,
    DefCheck,
    ReachingDefs, ///< generic analysis: no errors, dataflow sets only
    LockSet,      ///< Eraser-style data races
    AddrLeak,     ///< heap-pointer values reaching output sinks
};
inline constexpr Lifeguard kAllLifeguards[] = {
    Lifeguard::AddrCheck, Lifeguard::TaintCheck, Lifeguard::DefCheck,
    Lifeguard::ReachingDefs, Lifeguard::LockSet, Lifeguard::AddrLeak};
const char *lifeguardName(Lifeguard lg);

/** Scheduling modes: {sequential, parallel, pipelined} × {full-trace,
 *  EpochStream}, plus the batched-kernel execution strategy. Streaming
 *  exists only for the pipelined task graph (the barrier schedule
 *  requires a materialized layout by construction), so the scheduling
 *  matrix has four populated cells; Batched reruns the sequential
 *  barrier schedule with the lifeguard's columnar pass-1 kernels, which
 *  must be report-identical to the scalar ones. */
enum class RunMode : std::uint8_t {
    Sequential,      ///< barrier schedule, scheduler thread only
    Parallel,        ///< barrier schedule, per-block worker fan-out
    PipelinedLayout, ///< dependency task graph over the full trace
    PipelinedStream, ///< dependency task graph over an EpochStream
    Batched,         ///< barrier schedule, columnar (SoA) pass-1 kernels
};
inline constexpr RunMode kAllModes[] = {
    RunMode::Sequential, RunMode::Parallel, RunMode::PipelinedLayout,
    RunMode::PipelinedStream, RunMode::Batched};
/** FaultPlan::modeMask value covering every mode (1 bit per RunMode). */
inline constexpr std::uint8_t kAllModesMask =
    (1u << std::size(kAllModes)) - 1;
const char *runModeName(RunMode mode);

/** Which property a violation breaches. */
enum class Invariant : std::uint8_t {
    ModeEquivalence,
    OracleSubsumption,
    FpMonotonicity,
    ElisionSoundness, ///< elided trace still subsumes the full oracle
};
const char *invariantName(Invariant inv);

/** Deliberate report corruption for mutation-testing the runner. */
struct FaultPlan
{
    bool enabled = false;
    Lifeguard target = Lifeguard::AddrCheck;
    /** Records of this kind are dropped from the corrupted reports. */
    ErrorKind dropKind = ErrorKind::UnallocatedAccess;
    /** Bit per RunMode (1 << mode). kAllModesMask simulates a true
     *  false negative; a subset simulates a scheduling-dependent bug. */
    std::uint8_t modeMask = 0;

    bool
    corrupts(Lifeguard lg, RunMode mode) const
    {
        return enabled && lg == target &&
               (modeMask & (1u << static_cast<unsigned>(mode))) != 0;
    }
};

/** One property breach, with enough context to triage. */
struct Violation
{
    Invariant invariant = Invariant::ModeEquivalence;
    Lifeguard lifeguard = Lifeguard::AddrCheck;
    /** Mode that diverged (mode equivalence only). */
    RunMode mode = RunMode::Sequential;
    std::string detail;

    std::string toString() const;
};

/** Everything measured while running one case. */
struct CaseOutcome
{
    std::vector<Violation> violations;
    std::size_t events = 0;
    std::size_t epochs = 0;
    std::size_t oracleErrors = 0;
    std::size_t butterflyErrors = 0; ///< ADDRCHECK sequential-mode flags
    std::size_t falsePositives = 0;  ///< ADDRCHECK at the case's H
    std::size_t elidedEvents = 0;    ///< events dropped by the plan
    std::size_t summaryEvents = 0;   ///< SiteSummary events emitted

    bool clean() const { return violations.empty(); }
};

/** Runner configuration. */
struct RunnerConfig
{
    bool checkModeEquivalence = true;
    bool checkOracleSubsumption = true;
    bool checkFpMonotonicity = true;
    /** Compare FP(H) against FP(factor*H); factor keeps epoch boundaries
     *  nested so uncertainty shrinks pointwise. */
    std::size_t monotonicityFactor = 4;
    /** Build + apply an ElisionPlan (deterministic pseudo-sites) and
     *  require the elided run to still subsume the full-trace oracle. */
    bool checkElision = false;
    FaultPlan fault;
};

/** Executes cases and evaluates the conformance invariants. */
class DifferentialRunner
{
  public:
    explicit DifferentialRunner(const RunnerConfig &config = {})
        : config_(config)
    {}

    const RunnerConfig &config() const { return config_; }

    /** Run every lifeguard in every mode over @p c and check invariants. */
    CaseOutcome run(const FuzzCase &c) const;

  private:
    RunnerConfig config_;
};

} // namespace bfly::fuzz

#endif // BUTTERFLY_FUZZ_DIFFERENTIAL_RUNNER_HPP
