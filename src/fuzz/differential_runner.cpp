#include "fuzz/differential_runner.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <tuple>

#include "butterfly/reaching_defs.hpp"
#include "butterfly/window.hpp"
#include "common/worker_pool.hpp"
#include "lifeguards/addrcheck.hpp"
#include "lifeguards/addrcheck_oracle.hpp"
#include "lifeguards/addrleak.hpp"
#include "lifeguards/defcheck.hpp"
#include "lifeguards/lockset.hpp"
#include "lifeguards/taintcheck.hpp"
#include "staticpass/classify.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"
#include "trace/epoch_slicer.hpp"

namespace bfly::fuzz {

namespace {

const char *const kLifeguardNames[] = {"ADDRCHECK",     "TAINTCHECK",
                                       "DEFINEDCHECK",  "REACHING-DEFS",
                                       "LOCKSET",       "ADDRLEAK"};
const char *const kModeNames[] = {"sequential", "parallel",
                                  "pipelined-layout", "pipelined-stream",
                                  "batched"};
const char *const kInvariantNames[] = {"mode-equivalence",
                                       "oracle-subsumption",
                                       "fp-monotonicity",
                                       "elision-soundness"};

/** Pre-interned fuzz metric ids. */
struct FuzzMetrics
{
    telemetry::MetricId cases;
    telemetry::MetricId events;
    telemetry::MetricId violations;

    static const FuzzMetrics &
    get()
    {
        static const FuzzMetrics m = [] {
            auto &r = telemetry::registry();
            FuzzMetrics f;
            f.cases = r.counter("bfly.fuzz.cases");
            f.events = r.counter("bfly.fuzz.events");
            f.violations = r.counter("bfly.fuzz.violations");
            return f;
        }();
        return m;
    }
};

/** Canonical, order-independent form of an error log. */
std::vector<ErrorRecord>
canonicalRecords(const ErrorLog &log)
{
    std::vector<ErrorRecord> out = log.records();
    std::sort(out.begin(), out.end(),
              [](const ErrorRecord &a, const ErrorRecord &b) {
                  return std::tie(a.tid, a.index, a.addr, a.kind, a.size) <
                         std::tie(b.tid, b.index, b.addr, b.kind, b.size);
              });
    return out;
}

bool
sameRecord(const ErrorRecord &a, const ErrorRecord &b)
{
    return a.tid == b.tid && a.index == b.index && a.addr == b.addr &&
           a.kind == b.kind && a.size == b.size;
}

/** One mode's observable result for one lifeguard. */
struct Report
{
    std::vector<ErrorRecord> records; ///< canonical error records
    std::vector<Addr> sos;            ///< final SOS (where exposed)
    std::uint64_t fingerprint = 0;    ///< dataflow sets (reaching defs)
};

void
fnv(std::uint64_t &h, std::uint64_t v)
{
    h ^= v;
    h *= 0x100000001b3ull;
}

bool
sameReport(const Report &a, const Report &b)
{
    if (a.records.size() != b.records.size() || a.sos != b.sos ||
        a.fingerprint != b.fingerprint)
        return false;
    for (std::size_t i = 0; i < a.records.size(); ++i)
        if (!sameRecord(a.records[i], b.records[i]))
            return false;
    return true;
}

std::string
diffReports(const Report &seq, const Report &other)
{
    std::ostringstream os;
    os << "records " << seq.records.size() << " vs "
       << other.records.size();
    const std::size_t n =
        std::min(seq.records.size(), other.records.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!sameRecord(seq.records[i], other.records[i])) {
            os << "; first diff at " << i << ": "
               << seq.records[i].toString() << " vs "
               << other.records[i].toString();
            return os.str();
        }
    }
    if (seq.records.size() != other.records.size()) {
        const auto &longer = seq.records.size() > other.records.size()
                                 ? seq.records
                                 : other.records;
        os << "; extra: " << longer[n].toString();
    } else if (seq.sos != other.sos) {
        os << "; SOS sizes " << seq.sos.size() << " vs "
           << other.sos.size();
    } else if (seq.fingerprint != other.fingerprint) {
        os << "; dataflow fingerprints differ";
    }
    return os.str();
}

/** Drop records of @p kind (the FaultPlan's corruption primitive). */
void
dropKind(Report &report, ErrorKind kind)
{
    report.records.erase(
        std::remove_if(report.records.begin(), report.records.end(),
                       [&](const ErrorRecord &r) {
                           return r.kind == kind;
                       }),
        report.records.end());
}

/** Rebuild an ErrorLog from canonical records (post-fault). */
ErrorLog
logOf(const std::vector<ErrorRecord> &records)
{
    ErrorLog log;
    for (const ErrorRecord &r : records)
        log.report(r);
    return log;
}

/** Per-case execution context shared by the mode runs. */
struct CaseContext
{
    const FuzzCase &c;
    const Trace &trace;
    const EpochLayout &layout;

    AddrCheckConfig addrCfg;
    TaintCheckConfig taintCfg;
    DefCheckConfig defCfg;
    LockSetConfig lockCfg;
    AddrLeakConfig leakCfg;
    TaintTermination termination;
};

/** Drive @p driver over the case in @p mode. */
void
drive(const CaseContext &ctx, RunMode mode, AnalysisDriver &driver)
{
    const std::size_t nthreads = std::max<std::size_t>(
        1, ctx.trace.numThreads());
    switch (mode) {
      case RunMode::Sequential:
        WindowSchedule(false).run(ctx.layout, driver);
        break;
      case RunMode::Parallel: {
        WorkerPool pool(nthreads);
        WindowSchedule(true, &pool).run(ctx.layout, driver);
        break;
      }
      case RunMode::PipelinedLayout: {
        WorkerPool pool(nthreads);
        WindowSchedule(true, &pool).runPipelined(ctx.layout, driver);
        break;
      }
      case RunMode::PipelinedStream: {
        EpochStream stream(ctx.trace,
                           EpochStream::Config{ctx.c.globalH, 4, nullptr});
        WorkerPool pool(nthreads);
        WindowSchedule(true, &pool).runPipelined(stream, driver);
        break;
      }
      case RunMode::Batched:
        // Same barrier schedule as Sequential; only the lifeguard's
        // pass-1 kernel changes (scalar shim for drivers without one).
        driver.setBatchMode(true);
        WindowSchedule(false).run(ctx.layout, driver);
        break;
    }
}

Report
runLifeguard(const CaseContext &ctx, Lifeguard lg, RunMode mode)
{
    Report report;
    switch (lg) {
      case Lifeguard::AddrCheck: {
        ButterflyAddrCheck driver(ctx.layout, ctx.addrCfg);
        drive(ctx, mode, driver);
        report.records = canonicalRecords(driver.errors());
        report.sos = driver.sosNow().sorted();
        break;
      }
      case Lifeguard::TaintCheck: {
        ButterflyTaintCheck driver(ctx.layout, ctx.taintCfg,
                                   ctx.termination);
        drive(ctx, mode, driver);
        report.records = canonicalRecords(driver.errors());
        report.sos = driver.sosNow().sorted();
        break;
      }
      case Lifeguard::DefCheck: {
        ButterflyDefCheck driver(ctx.layout, ctx.defCfg);
        drive(ctx, mode, driver);
        report.records = canonicalRecords(driver.errors());
        break;
      }
      case Lifeguard::LockSet: {
        ButterflyLockSet driver(ctx.layout, ctx.lockCfg);
        drive(ctx, mode, driver);
        report.records = canonicalRecords(driver.errors());
        break;
      }
      case Lifeguard::AddrLeak: {
        ButterflyAddrLeak driver(ctx.layout, ctx.leakCfg);
        drive(ctx, mode, driver);
        report.records = canonicalRecords(driver.errors());
        report.sos = driver.sosNow().sorted();
        break;
      }
      case Lifeguard::ReachingDefs: {
        ReachingDefinitions driver(ctx.layout.numThreads());
        drive(ctx, mode, driver);
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (EpochId l = 0; l < ctx.layout.numEpochs(); ++l) {
            for (DefId d : driver.sos(l).sorted())
                fnv(h, d);
            fnv(h, 0x5051);
            for (DefId d : driver.genEpoch(l).sorted())
                fnv(h, d);
            fnv(h, 0x5052);
            for (ThreadId t = 0; t < ctx.layout.numThreads(); ++t) {
                for (DefId d : driver.blockResults(l, t).in.sorted())
                    fnv(h, d);
                fnv(h, 0x5053);
                for (DefId d : driver.blockResults(l, t).out.sorted())
                    fnv(h, d);
                fnv(h, 0x5054);
            }
        }
        report.fingerprint = h;
        break;
      }
    }
    return report;
}

/** ADDRCHECK false positives at epoch size @p global_h (sequential). */
std::size_t
addrFalsePositivesAt(const CaseContext &ctx, std::size_t global_h,
                     const ErrorLog &oracle_log)
{
    const EpochLayout layout =
        EpochLayout::byGlobalSeq(ctx.trace, global_h);
    ButterflyAddrCheck butterfly(layout, ctx.addrCfg);
    WindowSchedule(false).run(layout, butterfly);
    return compareToOracle(butterfly.errors(), oracle_log,
                           ctx.addrCfg.granularity)
        .falsePositives;
}

/** ADDRLEAK false positives at epoch size @p global_h (sequential). */
std::size_t
leakFalsePositivesAt(const CaseContext &ctx, std::size_t global_h,
                     const ErrorLog &oracle_log)
{
    const EpochLayout layout =
        EpochLayout::byGlobalSeq(ctx.trace, global_h);
    ButterflyAddrLeak butterfly(layout, ctx.leakCfg);
    WindowSchedule(false).run(layout, butterfly);
    return compareToOracle(butterfly.errors(), oracle_log,
                           ctx.leakCfg.granularity)
        .falsePositives;
}

/**
 * LOCKSET false positives at epoch size @p global_h, counted per flagged
 * *variable* rather than per flagged event: the race is a property of
 * the variable, and shrinking epochs may move the report to a different
 * (earlier) access of the same variable while the set of reported
 * variables provably only shrinks.
 */
std::size_t
lockKeyFalsePositivesAt(const CaseContext &ctx, std::size_t global_h,
                        const ErrorLog &oracle_log)
{
    const EpochLayout layout =
        EpochLayout::byGlobalSeq(ctx.trace, global_h);
    ButterflyLockSet butterfly(layout, ctx.lockCfg);
    WindowSchedule(false).run(layout, butterfly);

    std::size_t fp = 0;
    for (const ErrorRecord &rec : butterfly.errors().records()) {
        bool real = false;
        for (const ErrorRecord &o : oracle_log.records()) {
            if (o.addr == rec.addr) {
                real = true;
                break;
            }
        }
        if (!real)
            ++fp;
    }
    return fp;
}

} // namespace

const char *
lifeguardName(Lifeguard lg)
{
    return kLifeguardNames[static_cast<unsigned>(lg)];
}

const char *
runModeName(RunMode mode)
{
    return kModeNames[static_cast<unsigned>(mode)];
}

const char *
invariantName(Invariant inv)
{
    return kInvariantNames[static_cast<unsigned>(inv)];
}

std::string
Violation::toString() const
{
    std::string out = std::string(invariantName(invariant)) + " [" +
                      lifeguardName(lifeguard) + "]";
    if (invariant == Invariant::ModeEquivalence)
        out += std::string(" (") + runModeName(mode) + ")";
    if (!detail.empty())
        out += ": " + detail;
    return out;
}

CaseOutcome
DifferentialRunner::run(const FuzzCase &c) const
{
    const FuzzMetrics &metrics = FuzzMetrics::get();
    telemetry::TraceSpan span("fuzz.case");

    CaseOutcome outcome;
    outcome.events = c.totalEvents();

    const Trace trace = [&] {
        telemetry::TraceSpan s("fuzz.materialize");
        return c.materialize();
    }();
    const EpochLayout layout =
        EpochLayout::byGlobalSeq(trace, c.globalH);
    outcome.epochs = layout.numEpochs();

    CaseContext ctx{c,  trace, layout,
                    {}, {},    {},
                    {}, {},
                    TaintTermination::SequentialConsistency};
    ctx.addrCfg.heapBase = c.heapBase;
    ctx.addrCfg.heapLimit = c.heapLimit;
    ctx.defCfg.heapBase = c.heapBase;
    ctx.defCfg.heapLimit = c.heapLimit;
    ctx.lockCfg.heapBase = c.heapBase;
    ctx.lockCfg.heapLimit = c.heapLimit;
    ctx.leakCfg.heapBase = c.heapBase;
    ctx.leakCfg.heapLimit = c.heapLimit;
    if (c.model == MemModel::TSO)
        ctx.termination = TaintTermination::Relaxed;

    Report sequential[std::size(kAllLifeguards)];
    for (Lifeguard lg : kAllLifeguards) {
        telemetry::TraceSpan s("fuzz.lifeguard", "lifeguard",
                               static_cast<std::uint64_t>(lg));
        const auto li = static_cast<std::size_t>(lg);
        sequential[li] = runLifeguard(ctx, lg, RunMode::Sequential);
        if (config_.fault.corrupts(lg, RunMode::Sequential))
            dropKind(sequential[li], config_.fault.dropKind);

        if (config_.checkModeEquivalence) {
            for (RunMode mode : kAllModes) {
                if (mode == RunMode::Sequential)
                    continue;
                Report r = runLifeguard(ctx, lg, mode);
                if (config_.fault.corrupts(lg, mode))
                    dropKind(r, config_.fault.dropKind);
                if (!sameReport(sequential[li], r))
                    outcome.violations.push_back(
                        {Invariant::ModeEquivalence, lg, mode,
                         diffReports(sequential[li], r)});
            }
        }
    }

    outcome.butterflyErrors =
        sequential[static_cast<std::size_t>(Lifeguard::AddrCheck)]
            .records.size();

    ErrorLog addrOracleLog;
    ErrorLog lockOracleLog;
    ErrorLog leakOracleLog;
    if (config_.checkOracleSubsumption || config_.checkFpMonotonicity ||
        config_.checkElision) {
        telemetry::TraceSpan s("fuzz.oracles");
        AddrCheckOracle addrOracle(ctx.addrCfg);
        addrOracle.runOnTrace(trace);
        addrOracleLog = addrOracle.errors();
        TaintCheckOracle taintOracle(ctx.taintCfg);
        taintOracle.runOnTrace(trace);
        DefCheckOracle defOracle(ctx.defCfg);
        defOracle.runOnTrace(trace);
        LockSetOracle lockOracle(ctx.lockCfg);
        lockOracle.runOnTrace(trace);
        lockOracleLog = lockOracle.errors();
        AddrLeakOracle leakOracle(ctx.leakCfg);
        leakOracle.runOnTrace(trace);
        leakOracleLog = leakOracle.errors();
        outcome.oracleErrors = addrOracleLog.size() +
                               taintOracle.errors().size() +
                               defOracle.errors().size() +
                               lockOracleLog.size() +
                               leakOracleLog.size();

        const struct
        {
            Lifeguard lg;
            const ErrorLog &oracle;
            unsigned granularity;
        } pairs[] = {
            {Lifeguard::AddrCheck, addrOracleLog,
             ctx.addrCfg.granularity},
            {Lifeguard::TaintCheck, taintOracle.errors(),
             ctx.taintCfg.granularity},
            {Lifeguard::DefCheck, defOracle.errors(),
             ctx.defCfg.granularity},
            {Lifeguard::LockSet, lockOracleLog,
             ctx.lockCfg.granularity},
            {Lifeguard::AddrLeak, leakOracleLog,
             ctx.leakCfg.granularity},
        };
        for (const auto &p : pairs) {
            const auto li = static_cast<std::size_t>(p.lg);
            const ErrorLog monitored = logOf(sequential[li].records);
            const AccuracyReport acc =
                compareToOracle(monitored, p.oracle, p.granularity);
            if (p.lg == Lifeguard::AddrCheck)
                outcome.falsePositives = acc.falsePositives;
            if (config_.checkOracleSubsumption &&
                acc.falseNegatives != 0) {
                std::ostringstream os;
                os << acc.falseNegatives << " of " << p.oracle.size()
                   << " oracle errors missed";
                outcome.violations.push_back({Invariant::OracleSubsumption,
                                              p.lg, RunMode::Sequential,
                                              os.str()});
            }
        }

        // Elision axis: classify deterministic pseudo-sites, elide, and
        // prove the elided run still misses nothing the full-trace
        // oracle flags. The oracle always replays the *unelided* trace,
        // so every clean case is a per-case zero-FN certificate.
        if (config_.checkElision) {
            telemetry::TraceSpan es("fuzz.elision");
            Trace stamped = trace;
            staticpass::SiteTable sites;
            const staticpass::ElisionPlan plan =
                staticpass::buildElisionPlan(stamped, sites);
            staticpass::ElisionStats estats;
            const Trace elided =
                staticpass::applyElisionPlan(stamped, plan, &estats);
            outcome.elidedEvents = estats.elidedEvents;
            outcome.summaryEvents = estats.summaryEvents;

            const EpochLayout elayout =
                EpochLayout::byGlobalSeq(elided, c.globalH);
            CaseContext ectx{c,           elided,      elayout,
                             ctx.addrCfg, ctx.taintCfg, ctx.defCfg,
                             ctx.lockCfg, ctx.leakCfg,  ctx.termination};
            for (const auto &p : pairs) {
                Report r =
                    runLifeguard(ectx, p.lg, RunMode::Sequential);
                if (config_.fault.corrupts(p.lg, RunMode::Sequential))
                    dropKind(r, config_.fault.dropKind);
                const AccuracyReport acc = compareToOracle(
                    logOf(r.records), p.oracle, p.granularity);
                if (acc.falseNegatives != 0) {
                    std::ostringstream os;
                    os << acc.falseNegatives << " of " << p.oracle.size()
                       << " oracle errors missed after eliding "
                       << estats.elidedEvents << " events";
                    outcome.violations.push_back(
                        {Invariant::ElisionSoundness, p.lg,
                         RunMode::Sequential, os.str()});
                }
            }
        }
    }

    if (config_.checkFpMonotonicity && config_.monotonicityFactor > 1) {
        telemetry::TraceSpan s("fuzz.monotonicity");
        const std::size_t large_h = c.globalH * config_.monotonicityFactor;
        const struct
        {
            Lifeguard lg;
            std::size_t fpSmall;
            std::size_t fpLarge;
        } mono[] = {
            {Lifeguard::AddrCheck,
             addrFalsePositivesAt(ctx, c.globalH, addrOracleLog),
             addrFalsePositivesAt(ctx, large_h, addrOracleLog)},
            {Lifeguard::LockSet,
             lockKeyFalsePositivesAt(ctx, c.globalH, lockOracleLog),
             lockKeyFalsePositivesAt(ctx, large_h, lockOracleLog)},
            {Lifeguard::AddrLeak,
             leakFalsePositivesAt(ctx, c.globalH, leakOracleLog),
             leakFalsePositivesAt(ctx, large_h, leakOracleLog)},
        };
        for (const auto &m : mono) {
            if (m.fpSmall > m.fpLarge) {
                std::ostringstream os;
                os << "FP(H=" << c.globalH << ")=" << m.fpSmall
                   << " > FP(H=" << large_h << ")=" << m.fpLarge;
                outcome.violations.push_back({Invariant::FpMonotonicity,
                                              m.lg, RunMode::Sequential,
                                              os.str()});
            }
        }
    }

    auto &reg = telemetry::registry();
    reg.add(metrics.cases, 1);
    reg.add(metrics.events, outcome.events);
    reg.add(metrics.violations, outcome.violations.size());
    return outcome;
}

} // namespace bfly::fuzz
