/**
 * @file
 * Seeded generation and mutation of adversarial event traces.
 *
 * The workload generators in src/workloads reproduce the *benign*
 * structure of the paper's benchmarks (barrier-synchronized, race-free
 * unless a bug is injected). The fuzzer deliberately goes the other way:
 * it emits hostile per-thread programs — racy allocation/free
 * interleavings, taint laundering across threads, bursts engineered to
 * straddle heartbeat boundaries, grossly skewed thread progress,
 * degenerate single-event epochs — and schedule-perturbation mutators
 * that reorder commutative events or re-seed the interleaver, so the
 * conformance invariants (see differential_runner.hpp) are exercised far
 * outside the hand-written test corpus.
 *
 * A FuzzCase is a *program*, not a trace: per-thread event sequences plus
 * the interleave seed, memory model and epoch size needed to reconstruct
 * the execution deterministically. Global sequence numbers are never
 * stored (a real log has no global order); they are re-derived by running
 * the interleaver, which is what makes minimized repros replayable from a
 * compact serialized form (see corpus.hpp).
 */

#ifndef BUTTERFLY_FUZZ_TRACE_FUZZER_HPP
#define BUTTERFLY_FUZZ_TRACE_FUZZER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memmodel/interleaver.hpp"
#include "trace/trace.hpp"

namespace bfly::fuzz {

/** One reproducible fuzz input: programs + execution parameters. */
struct FuzzCase
{
    std::uint64_t caseId = 0;
    /** Generator that produced it (stable names, see scenarioNames()). */
    std::string scenario;

    /** Per-thread event programs, program order, no heartbeats. */
    std::vector<std::vector<Event>> programs;

    /** Monitored heap window handed to ADDRCHECK / DEFINEDCHECK. */
    Addr heapBase = 0;
    Addr heapLimit = 0;

    /** Execution parameters: re-running interleave() with these yields
     *  the exact trace this case denotes. */
    MemModel model = MemModel::SequentiallyConsistent;
    std::uint64_t interleaveSeed = 1;
    /** Relative thread speeds (empty = uniform); the skew scenarios use
     *  this to drive epoch-skewed thread progress. */
    std::vector<double> speedWeights;

    /** Epoch size H in *global* events (EpochLayout::byGlobalSeq). */
    std::size_t globalH = 64;

    std::size_t
    totalEvents() const
    {
        std::size_t n = 0;
        for (const auto &p : programs)
            n += p.size();
        return n;
    }

    /** Execute the case: interleave the programs under its model/seed. */
    Trace materialize() const;
};

/** Generation knobs. */
struct FuzzerConfig
{
    std::uint64_t seed = 1;
    /** Threads per case are drawn from [1, maxThreads]. */
    unsigned maxThreads = 4;
    /** Events per thread are drawn up to this bound (scenarios may use
     *  fewer; degenerate-epoch cases are intentionally tiny). */
    std::size_t maxEventsPerThread = 240;
    /** Permit TSO executions (epoch sizes are kept above the
     *  store-buffer drift bound so the butterfly premise holds). */
    bool allowTso = true;
    /** Probability that next() mutates a recently generated case
     *  instead of generating a fresh one. */
    double mutateProbability = 0.35;
};

/** Names of the generation scenarios, for reporting. */
const std::vector<std::string> &scenarioNames();

/**
 * Deterministic adversarial case generator. The stream of cases produced
 * by next() is a pure function of FuzzerConfig (including its seed);
 * generate(case_seed) is a pure function of its argument, so any case can
 * be regenerated from its seed alone.
 */
class TraceFuzzer
{
  public:
    explicit TraceFuzzer(const FuzzerConfig &config);

    /** Next case: a fresh scenario draw, or a mutation of a recent case. */
    FuzzCase next();

    /** Generate one case deterministically from @p case_seed. */
    FuzzCase generate(std::uint64_t case_seed) const;

    /**
     * Schedule/structure perturbation of @p base: re-seed the
     * interleaver, swap adjacent commuting events, duplicate/delete an
     * event, retarget an address, jitter H, or splice events across
     * threads. Deterministic in @p mutation_seed.
     */
    FuzzCase mutate(const FuzzCase &base,
                    std::uint64_t mutation_seed) const;

    /** Cases handed out so far. */
    std::uint64_t generated() const { return nextId_; }

  private:
    FuzzerConfig config_;
    Rng rng_;
    std::uint64_t nextId_ = 0;
    /** Small reservoir of recent cases for the mutation path. */
    std::vector<FuzzCase> recent_;
};

} // namespace bfly::fuzz

#endif // BUTTERFLY_FUZZ_TRACE_FUZZER_HPP
