/**
 * @file
 * Delta-debugging trace minimizer (Zeller's ddmin over the case's
 * events).
 *
 * A failing FuzzCase can carry hundreds of events, of which only a
 * handful participate in the invariant violation. The minimizer shrinks
 * the case while preserving the *failure signature* — the (invariant,
 * lifeguard) pair of the first violation — so the minimized repro
 * demonstrably fails for the same reason, not for a new one introduced
 * by the reduction.
 *
 * Events are removed, never reordered: each candidate keeps a subset of
 * every thread's program in program order, and threads are emptied
 * rather than deleted so speedWeights stay index-aligned and thread ids
 * remain stable. Interleave seed, memory model and epoch size are
 * untouched — the reduced case replays through the same execution
 * machinery as the original.
 */

#ifndef BUTTERFLY_FUZZ_MINIMIZER_HPP
#define BUTTERFLY_FUZZ_MINIMIZER_HPP

#include <cstddef>

#include "fuzz/differential_runner.hpp"
#include "fuzz/trace_fuzzer.hpp"

namespace bfly::fuzz {

/** Why the original case failed; preserved across reduction. */
struct FailureSignature
{
    Invariant invariant = Invariant::ModeEquivalence;
    Lifeguard lifeguard = Lifeguard::AddrCheck;

    bool
    matches(const CaseOutcome &outcome) const
    {
        for (const Violation &v : outcome.violations)
            if (v.invariant == invariant && v.lifeguard == lifeguard)
                return true;
        return false;
    }
};

/** ddmin over a failing case's events. */
class TraceMinimizer
{
  public:
    struct Config
    {
        /** Upper bound on differential re-runs during reduction. */
        std::size_t maxProbes = 512;
    };

    struct Result
    {
        FuzzCase minimized;
        FailureSignature signature;
        /** False if the input case did not fail at all. */
        bool reproduced = false;
        std::size_t probes = 0;   ///< differential runs spent
        std::size_t fromEvents = 0;
        std::size_t toEvents = 0;
    };

    explicit TraceMinimizer(const DifferentialRunner &runner)
        : runner_(runner)
    {}

    TraceMinimizer(const DifferentialRunner &runner, Config config)
        : runner_(runner), config_(config)
    {}

    /** Shrink @p failing to a 1-minimal repro of its first violation. */
    Result minimize(const FuzzCase &failing) const;

  private:
    const DifferentialRunner &runner_;
    Config config_;
};

} // namespace bfly::fuzz

#endif // BUTTERFLY_FUZZ_MINIMIZER_HPP
