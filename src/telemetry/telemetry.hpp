/**
 * @file
 * Telemetry master switch and lifecycle.
 *
 * The telemetry subsystem (metrics registry, span tracer, exporters) is
 * compiled in unconditionally but *disabled by default*: every
 * instrumentation site guards its recording with `telemetry::enabled()`,
 * a single relaxed atomic load, so the cost of a disabled build is one
 * predictable branch per instrumented block (never per event — hot loops
 * aggregate locally and flush per block/epoch).
 *
 * Naming scheme: every metric is a dot-path `bfly.<component>.<name>`
 * (e.g. `bfly.window.pass1_blocks`, `bfly.logbuffer.producer_stalls`).
 * The JSON exporter nests snapshots by path component, so the metrics
 * file mirrors the component hierarchy. Trace spans use the hierarchy
 * session / epoch / thread / pass: the root `session` span encloses
 * per-epoch `window.epoch` spans, which enclose per-pass spans, which
 * enclose per-(thread, block) spans on their own timeline tracks.
 */

#ifndef BUTTERFLY_TELEMETRY_TELEMETRY_HPP
#define BUTTERFLY_TELEMETRY_TELEMETRY_HPP

#include <atomic>

namespace bfly::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Is telemetry recording on? Hot-path guard: one relaxed load. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off process-wide. Registration is always allowed;
 *  only recording (adds, observes, span pushes) is gated. */
void setEnabled(bool on);

/**
 * Zero every metric value and drop every buffered trace event, keeping
 * interned names and metric registrations (so cached MetricIds held by
 * instrumentation sites stay valid). Call between sessions to scope one
 * export to one run.
 */
void resetAll();

} // namespace bfly::telemetry

#endif // BUTTERFLY_TELEMETRY_TELEMETRY_HPP
