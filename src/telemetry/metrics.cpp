#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>

namespace bfly::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

// ---------------------------------------------------------------- Interner

std::uint32_t
Interner::intern(std::string_view name)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = byName_.find(std::string(name));
    if (it != byName_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    auto [pos, inserted] = byName_.emplace(std::string(name), id);
    names_.push_back(&pos->first);
    return id;
}

std::string
Interner::lookup(std::uint32_t id) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (id >= names_.size())
        return "?";
    return *names_[id];
}

std::size_t
Interner::size() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return names_.size();
}

// -------------------------------------------------------- MetricDirectory

namespace {

/**
 * Process-wide name -> MetricId mapping shared by every MetricsRegistry
 * instance. Splitting the directory from the value cells is what makes a
 * MetricId cached in a `static const` telemetry struct valid against any
 * registry instance: the id is a stable index; each instance merely
 * holds (lazily allocated) cells for it.
 */
struct MetricDirectory
{
    struct Info
    {
        std::string name;
        MetricId id = kNoMetric;
    };

    mutable std::mutex mutex;
    std::unordered_map<std::string, MetricId> byName;
    std::vector<Info> infos; // in registration order
    std::uint32_t nextScalar = 0;
    std::uint32_t nextHist = 0;

    static MetricDirectory &
    get()
    {
        static MetricDirectory *d = new MetricDirectory;
        return *d;
    }
};

} // namespace

// -------------------------------------------------------- MetricsRegistry

unsigned
MetricsRegistry::bucketIndex(std::uint64_t value)
{
    if (value <= 1)
        return 0;
    const unsigned b = std::bit_width(value) - 1;
    return b < kHistBuckets ? b : kHistBuckets - 1;
}

namespace {

MetricId
registerMetric(MetricKind kind, std::string_view name)
{
    constexpr std::uint32_t kChunkShift = 8;
    constexpr std::uint32_t kMaxChunks = 256;
    constexpr std::uint32_t kMaxHists = 1024;
    constexpr std::uint32_t kKindShift = 30;

    MetricDirectory &dir = MetricDirectory::get();
    std::lock_guard<std::mutex> guard(dir.mutex);
    auto it = dir.byName.find(std::string(name));
    if (it != dir.byName.end())
        return it->second; // first registration's kind wins

    std::uint32_t index = 0;
    if (kind == MetricKind::Histogram) {
        if (dir.nextHist >= kMaxHists)
            return kNoMetric; // out of slots: silently a no-op metric
        index = dir.nextHist++;
    } else {
        if ((dir.nextScalar >> kChunkShift) >= kMaxChunks)
            return kNoMetric;
        index = dir.nextScalar++;
    }
    const MetricId id =
        (static_cast<std::uint32_t>(kind) << kKindShift) | index;
    dir.byName.emplace(std::string(name), id);
    dir.infos.push_back(MetricDirectory::Info{std::string(name), id});
    return id;
}

} // namespace

MetricsRegistry::~MetricsRegistry()
{
    for (auto &chunk : chunks_)
        delete chunk.load(std::memory_order_acquire);
    for (auto &hist : hists_)
        delete hist.load(std::memory_order_acquire);
}

MetricId
MetricsRegistry::counter(std::string_view name)
{
    return registerMetric(MetricKind::Counter, name);
}

MetricId
MetricsRegistry::gauge(std::string_view name)
{
    return registerMetric(MetricKind::Gauge, name);
}

MetricId
MetricsRegistry::histogram(std::string_view name)
{
    return registerMetric(MetricKind::Histogram, name);
}

std::atomic<std::uint64_t> *
MetricsRegistry::scalarCell(MetricId id) const
{
    if (id == kNoMetric || kindOf(id) == MetricKind::Histogram)
        return nullptr;
    const std::uint32_t index = indexOf(id);
    const std::uint32_t chunk = index >> kChunkShift;
    if (chunk >= kMaxChunks)
        return nullptr;
    ScalarChunk *c = chunks_[chunk].load(std::memory_order_acquire);
    if (!c) {
        // First touch of this chunk in this instance: allocate and
        // publish; a racing toucher's allocation wins or is discarded.
        auto *fresh = new ScalarChunk;
        if (chunks_[chunk].compare_exchange_strong(
                c, fresh, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            c = fresh;
        } else {
            delete fresh; // c now holds the winner
        }
    }
    return &c->cells[index & (kChunkSize - 1)];
}

MetricsRegistry::HistCell *
MetricsRegistry::histCell(MetricId id) const
{
    if (id == kNoMetric || kindOf(id) != MetricKind::Histogram)
        return nullptr;
    const std::uint32_t index = indexOf(id);
    if (index >= kMaxHists)
        return nullptr;
    HistCell *h = hists_[index].load(std::memory_order_acquire);
    if (!h) {
        auto *fresh = new HistCell;
        if (hists_[index].compare_exchange_strong(
                h, fresh, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            h = fresh;
        } else {
            delete fresh;
        }
    }
    return h;
}

void
MetricsRegistry::observe(MetricId id, std::uint64_t value)
{
    HistCell *h = histCell(id);
    if (!h)
        return;
    h->buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    h->count.fetch_add(1, std::memory_order_relaxed);
    h->sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = h->min.load(std::memory_order_relaxed);
    while (value < seen &&
           !h->min.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
    seen = h->max.load(std::memory_order_relaxed);
    while (value > seen &&
           !h->max.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

std::uint64_t
MetricsRegistry::value(MetricId id) const
{
    if (const HistCell *h = histCell(id))
        return h->count.load(std::memory_order_relaxed);
    if (const std::atomic<std::uint64_t> *c = scalarCell(id))
        return c->load(std::memory_order_relaxed);
    return 0;
}

RegistrySnapshot
MetricsRegistry::snapshot() const
{
    RegistrySnapshot snap;
    std::vector<MetricDirectory::Info> infos;
    {
        MetricDirectory &dir = MetricDirectory::get();
        std::lock_guard<std::mutex> guard(dir.mutex);
        infos = dir.infos;
    }
    snap.metrics.reserve(infos.size());
    for (const auto &info : infos) {
        MetricSnapshot m;
        m.name = info.name;
        m.kind = kindOf(info.id);
        if (const HistCell *h = histCell(info.id)) {
            HistogramSnapshot &hs = m.histogram;
            hs.count = h->count.load(std::memory_order_relaxed);
            hs.sum = h->sum.load(std::memory_order_relaxed);
            hs.max = h->max.load(std::memory_order_relaxed);
            const std::uint64_t mn = h->min.load(std::memory_order_relaxed);
            hs.min = hs.count ? mn : 0;
            for (unsigned b = 0; b < kHistBuckets; ++b)
                hs.buckets[b] =
                    h->buckets[b].load(std::memory_order_relaxed);
            m.value = hs.count;
        } else {
            m.value = value(info.id);
        }
        snap.metrics.push_back(std::move(m));
    }
    std::sort(snap.metrics.begin(), snap.metrics.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::clear()
{
    std::uint32_t scalars = 0;
    std::uint32_t hists = 0;
    {
        MetricDirectory &dir = MetricDirectory::get();
        std::lock_guard<std::mutex> guard(dir.mutex);
        scalars = dir.nextScalar;
        hists = dir.nextHist;
    }
    for (std::uint32_t i = 0; i < scalars; ++i) {
        ScalarChunk *c = chunks_[i >> kChunkShift].load();
        if (c)
            c->cells[i & (kChunkSize - 1)].store(
                0, std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < hists; ++i) {
        HistCell *h = hists_[i].load();
        if (!h)
            continue;
        for (auto &b : h->buckets)
            b.store(0, std::memory_order_relaxed);
        h->count.store(0, std::memory_order_relaxed);
        h->sum.store(0, std::memory_order_relaxed);
        h->min.store(~std::uint64_t{0}, std::memory_order_relaxed);
        h->max.store(0, std::memory_order_relaxed);
    }
}

std::size_t
MetricsRegistry::metricCount() const
{
    MetricDirectory &dir = MetricDirectory::get();
    std::lock_guard<std::mutex> guard(dir.mutex);
    return dir.infos.size();
}

// ----------------------------------------------------------- RegistrySnapshot

std::uint64_t
RegistrySnapshot::value(std::string_view name) const
{
    for (const MetricSnapshot &m : metrics)
        if (m.name == name)
            return m.value;
    return 0;
}

const HistogramSnapshot *
RegistrySnapshot::histogram(std::string_view name) const
{
    for (const MetricSnapshot &m : metrics)
        if (m.name == name && m.kind == MetricKind::Histogram)
            return &m.histogram;
    return nullptr;
}

// ------------------------------------------------------------------ globals

namespace {
/** Innermost ScopedRegistry target; null = process-global default. */
thread_local MetricsRegistry *t_currentRegistry = nullptr;
} // namespace

MetricsRegistry &
globalRegistry()
{
    static MetricsRegistry *r = new MetricsRegistry;
    return *r;
}

MetricsRegistry &
registry()
{
    MetricsRegistry *current = t_currentRegistry;
    return current ? *current : globalRegistry();
}

ScopedRegistry::ScopedRegistry(MetricsRegistry *target)
    : prev_(t_currentRegistry)
{
    t_currentRegistry = target;
}

ScopedRegistry::~ScopedRegistry()
{
    t_currentRegistry = prev_;
}

Interner &
statNames()
{
    static Interner *i = new Interner;
    return *i;
}

} // namespace bfly::telemetry
