/**
 * @file
 * Telemetry exporters.
 *
 *  - writeMetricsJson: the metrics registry snapshot as a JSON tree,
 *    nested by the dots of the `bfly.<component>.<name>` naming scheme
 *    (histograms become {count, sum, mean, min, max, buckets} objects).
 *    This is the format the BENCH_*.json trajectory and the monitor CLI
 *    `--telemetry` flag emit.
 *  - writeChromeTrace: buffered span/instant events in the Chrome
 *    trace-event JSON array format — load in chrome://tracing or
 *    Perfetto. Events are sorted by (pid, ts); process-name metadata
 *    labels the wall-clock and simulated-cycle clock domains.
 */

#ifndef BUTTERFLY_TELEMETRY_EXPORTER_HPP
#define BUTTERFLY_TELEMETRY_EXPORTER_HPP

#include <ostream>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

namespace bfly::telemetry {

/** Serialize @p snap as a nested JSON object. */
void writeMetricsJson(std::ostream &os, const RegistrySnapshot &snap);

/** Snapshot the global registry and serialize it. */
void writeMetricsJson(std::ostream &os);

/** Serialize the global tracer's buffered events as a Chrome trace. */
void writeChromeTrace(std::ostream &os);

/** Write the metrics JSON to @p path. @return false on I/O failure. */
bool dumpMetricsJson(const std::string &path);

/** Write the Chrome trace JSON to @p path. @return false on failure. */
bool dumpChromeTrace(const std::string &path);

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(std::string_view s);

} // namespace bfly::telemetry

#endif // BUTTERFLY_TELEMETRY_EXPORTER_HPP
