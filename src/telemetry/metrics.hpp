/**
 * @file
 * Structured metrics: typed counters, gauges and log-scale histograms
 * behind interned metric IDs.
 *
 * Registration (name -> MetricId) happens once, under a mutex; after
 * that every hot-path operation is addressed by the integer ID and is a
 * single atomic RMW on a stable cell — no string hashing, no
 * `std::map<std::string, ...>` lookups, no locks. Cells live in chunks
 * reached through atomic pointers, so registration can proceed
 * concurrently with recording without invalidating any cell address.
 *
 * Kinds:
 *  - Counter: monotonically increasing `add(id, delta)`;
 *  - Gauge: last-write-wins `set(id, value)` (also supports add);
 *  - Histogram: `observe(id, value)` into power-of-two buckets
 *    (bucket b counts values in [2^b, 2^(b+1))), with count / sum /
 *    min / max tracked atomically.
 */

#ifndef BUTTERFLY_TELEMETRY_METRICS_HPP
#define BUTTERFLY_TELEMETRY_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace bfly::telemetry {

/** Interned metric identifier (kind in the top bits, index below). */
using MetricId = std::uint32_t;

/** Sentinel: not a metric. */
inline constexpr MetricId kNoMetric = 0xFFFFFFFFu;

enum class MetricKind : std::uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

/**
 * Thread-safe string interner: stable uint32 ids for names. Used by the
 * metrics registry, the span tracer and the StatSet compatibility shim.
 */
class Interner
{
  public:
    std::uint32_t intern(std::string_view name);

    /** Name for @p id ("?" if unknown). Returns a copy (thread safety). */
    std::string lookup(std::uint32_t id) const;

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::uint32_t> byName_;
    std::vector<const std::string *> names_; // points into byName_ keys
};

/** Point-in-time copy of one histogram's state. */
struct HistogramSnapshot
{
    static constexpr unsigned kBuckets = 64;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const { return count ? double(sum) / double(count) : 0.0; }
};

/** Point-in-time copy of one metric. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t value = 0;     ///< counter/gauge value; histogram count
    HistogramSnapshot histogram; ///< populated for histograms only
};

/** Point-in-time copy of the whole registry, sorted by name. */
struct RegistrySnapshot
{
    std::vector<MetricSnapshot> metrics;

    /** Scalar value of metric @p name (0 if absent). */
    std::uint64_t value(std::string_view name) const;

    /** Histogram snapshot for @p name (nullptr if absent/not a histogram). */
    const HistogramSnapshot *histogram(std::string_view name) const;
};

/**
 * Thread-safe registry of typed metrics with interned IDs.
 *
 * Multi-tenancy: the name -> MetricId mapping lives in one process-wide
 * directory shared by every registry *instance*, so a MetricId cached by
 * an instrumentation site (the `static const` telemetry structs) is
 * valid against any instance — only the value cells are per-instance.
 * The monitoring service gives each session its own registry (values
 * recorded by concurrent sessions never interleave) while single-session
 * CLIs keep using the process-global default; see registry() /
 * ScopedRegistry below. Cells are allocated lazily on first touch per
 * instance, so a fresh session registry costs nothing for metrics the
 * session never records.
 */
class MetricsRegistry
{
  public:
    static constexpr unsigned kHistBuckets = HistogramSnapshot::kBuckets;

    MetricsRegistry() = default;
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Register (or find) a metric in the process-wide directory.
     *  Idempotent per name; the kind of the first registration wins.
     *  Never invalidates issued ids; ids are valid for every instance. */
    MetricId counter(std::string_view name);
    MetricId gauge(std::string_view name);
    MetricId histogram(std::string_view name);

    /** Atomic increment of a counter or gauge cell. */
    void
    add(MetricId id, std::uint64_t delta = 1)
    {
        if (std::atomic<std::uint64_t> *c = scalarCell(id))
            c->fetch_add(delta, std::memory_order_relaxed);
    }

    /** Atomic overwrite of a gauge (or counter) cell. */
    void
    set(MetricId id, std::uint64_t value)
    {
        if (std::atomic<std::uint64_t> *c = scalarCell(id))
            c->store(value, std::memory_order_relaxed);
    }

    /** Record one sample into a histogram. */
    void observe(MetricId id, std::uint64_t value);

    /** Current scalar value (histograms: sample count). */
    std::uint64_t value(MetricId id) const;

    RegistrySnapshot snapshot() const;

    /** Zero all values; registrations and ids survive. */
    void clear();

    std::size_t metricCount() const;

  private:
    static constexpr unsigned kChunkShift = 8;
    static constexpr unsigned kChunkSize = 1u << kChunkShift; // cells/chunk
    static constexpr unsigned kMaxChunks = 256; // 64K scalar metrics
    static constexpr unsigned kMaxHists = 1024;

    static constexpr std::uint32_t kKindShift = 30;
    static constexpr std::uint32_t kIndexMask = (1u << kKindShift) - 1;

    struct ScalarChunk
    {
        std::array<std::atomic<std::uint64_t>, kChunkSize> cells{};
    };

    struct HistCell
    {
        std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{~std::uint64_t{0}};
        std::atomic<std::uint64_t> max{0};
    };

    static MetricKind
    kindOf(MetricId id)
    {
        return static_cast<MetricKind>(id >> kKindShift);
    }
    static std::uint32_t indexOf(MetricId id) { return id & kIndexMask; }
    static MetricId
    makeId(MetricKind kind, std::uint32_t index)
    {
        return (static_cast<std::uint32_t>(kind) << kKindShift) | index;
    }

    /** Bucket for @p value: floor(log2(value)), 0 for value <= 1. */
    static unsigned bucketIndex(std::uint64_t value);

    /** Cell of @p id in *this* instance, allocated on first touch. */
    std::atomic<std::uint64_t> *scalarCell(MetricId id) const;
    HistCell *histCell(MetricId id) const;

    mutable std::array<std::atomic<ScalarChunk *>, kMaxChunks> chunks_{};
    mutable std::array<std::atomic<HistCell *>, kMaxHists> hists_{};
};

/**
 * Make @p target the calling thread's current registry() for the scope's
 * lifetime (nullptr restores the process-global default). The monitoring
 * service wraps each session's ingest and analysis driver in one of
 * these, so instrumentation sites publish into the session's registry
 * without knowing sessions exist.
 */
class ScopedRegistry
{
  public:
    explicit ScopedRegistry(MetricsRegistry *target);
    ~ScopedRegistry();
    ScopedRegistry(const ScopedRegistry &) = delete;
    ScopedRegistry &operator=(const ScopedRegistry &) = delete;

  private:
    MetricsRegistry *prev_;
};

/**
 * The calling thread's current registry: the one installed by the
 * innermost live ScopedRegistry, else the process-global default. Every
 * instrumentation site publishes through this accessor, so single-session
 * CLIs see exactly the old process-global behaviour.
 */
MetricsRegistry &registry();

/** The process-global default registry. */
MetricsRegistry &globalRegistry();

/** Process-wide interner used by the StatSet compatibility shim. */
Interner &statNames();

} // namespace bfly::telemetry

#endif // BUTTERFLY_TELEMETRY_METRICS_HPP
