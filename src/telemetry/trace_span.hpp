/**
 * @file
 * Span tracing: RAII TraceSpan guards writing into per-thread lock-free
 * ring buffers, exported as Chrome trace-event JSON (load the file in
 * chrome://tracing or https://ui.perfetto.dev).
 *
 * Two clock domains, rendered as two Chrome "processes":
 *  - pid 0 ("wall-clock"): nanoseconds from std::chrono::steady_clock,
 *    relative to the tracer epoch — real time spent in each pipeline
 *    stage (passes, barriers, oracle, perf model);
 *  - pid 1 ("simulated-pipeline"): *simulated cycles* from the LBA
 *    timing model, one cycle rendered as one microsecond — the paper's
 *    butterfly pipeline (per-lifeguard pass-1/pass-2 spans, barriers,
 *    SOS updates) as a timeline.
 *
 * Concurrency model: each ring has a single writer. A thread's events go
 * to the ring selected by its *logical tid* — auto-assigned on first use,
 * or pinned with ScopedTid (the window scheduler pins worker w to ring
 * w+1, so re-spawned std::threads across passes reuse one track and the
 * single-writer invariant holds because passes are join-separated).
 * Rings overwrite their oldest events on wrap; the drop count is
 * reported in the export. collect() is meant for quiescent points
 * (after joins / end of session).
 */

#ifndef BUTTERFLY_TELEMETRY_TRACE_SPAN_HPP
#define BUTTERFLY_TELEMETRY_TRACE_SPAN_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace bfly::telemetry {

/** One buffered trace event (fixed-size, POD). */
struct TraceEvent
{
    std::uint64_t ts = 0;  ///< ns (pid 0) or cycles (pid 1)
    std::uint64_t dur = 0; ///< same unit as ts; 0 for instants
    std::uint64_t argValue = 0;
    std::uint32_t name = 0;            ///< interned
    std::uint32_t argName = kNoMetric; ///< interned; kNoMetric = no arg
    std::uint16_t tid = 0;
    std::uint8_t pid = 0;
    char ph = 'X'; ///< 'X' complete, 'i' instant
};

/** A collected event with names resolved (export/test-friendly). */
struct ResolvedEvent
{
    std::string name;
    std::string argName; ///< empty if no arg
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint64_t argValue = 0;
    std::uint16_t tid = 0;
    std::uint8_t pid = 0;
    char ph = 'X';
    bool hasArg = false;
};

/** Per-thread rings + name table + clock epoch. */
class SpanTracer
{
  public:
    static constexpr std::uint8_t kWallPid = 0;
    static constexpr std::uint8_t kSimPid = 1;
    static constexpr std::uint16_t kMaxTids = 256;

    /** @param ring_capacity  events per ring; rounded up to a power of
     *  two, minimum 16 */
    explicit SpanTracer(std::size_t ring_capacity = std::size_t{1} << 15);
    ~SpanTracer();

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    std::uint32_t internName(std::string_view name);

    /** Nanoseconds since the tracer epoch (monotonic). */
    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** Push a complete ('X') event. No-op when telemetry is disabled. */
    void complete(std::uint32_t name, std::uint64_t ts, std::uint64_t dur,
                  std::uint8_t pid, std::uint16_t tid,
                  std::uint32_t arg_name = kNoMetric,
                  std::uint64_t arg_value = 0);

    /** Push an instant ('i') event. No-op when telemetry is disabled. */
    void instant(std::uint32_t name, std::uint8_t pid, std::uint16_t tid,
                 std::uint32_t arg_name = kNoMetric,
                 std::uint64_t arg_value = 0);

    /**
     * Snapshot all buffered events, names resolved, sorted by (pid, ts).
     * Intended for quiescent points; concurrent writers may race their
     * newest events in or out of the snapshot.
     */
    std::vector<ResolvedEvent> collect() const;

    /** Events lost to ring wrap or tid exhaustion since last clear(). */
    std::uint64_t dropped() const;

    /** Drop all buffered events and reset the clock epoch and drop
     *  count. Interned names and tid assignments survive. */
    void clear();

    std::size_t ringCapacity() const { return capacity_; }

    /** Current thread's logical tid (auto-assigns on first call). */
    static std::uint16_t currentTid();

  private:
    friend class ScopedTid;

    struct Ring
    {
        explicit Ring(std::size_t capacity) : buf(capacity) {}
        std::vector<TraceEvent> buf;
        std::atomic<std::uint64_t> head{0}; ///< total events ever pushed
    };

    Ring *ringFor(std::uint16_t tid);
    void push(const TraceEvent &event);

    const std::size_t capacity_; ///< power of two
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_; // guards ring allocation + interner
    Interner names_;
    std::vector<std::atomic<Ring *>> rings_; // kMaxTids slots
    std::atomic<std::uint64_t> droppedTidless_{0};

    friend class TraceSpan;
};

/** The process-wide tracer all spans write into. */
SpanTracer &tracer();

/**
 * Pin the calling thread's logical tid for the guard's lifetime (e.g.
 * per-app-thread timeline tracks in the window scheduler's workers).
 */
class ScopedTid
{
  public:
    explicit ScopedTid(std::uint16_t tid);
    ~ScopedTid();
    ScopedTid(const ScopedTid &) = delete;
    ScopedTid &operator=(const ScopedTid &) = delete;

  private:
    std::uint16_t saved_;
};

/**
 * RAII span: captures the start time at construction and pushes one
 * complete event into the current thread's ring at destruction. When
 * telemetry is disabled at construction the guard is inert.
 */
class TraceSpan
{
  public:
    /** Slow path: interns @p name (fine at per-epoch granularity). */
    explicit TraceSpan(std::string_view name);
    TraceSpan(std::string_view name, std::string_view arg_name,
              std::uint64_t arg_value);

    /** Fast path for cached interned ids. */
    explicit TraceSpan(std::uint32_t name_id,
                       std::uint32_t arg_name_id = kNoMetric,
                       std::uint64_t arg_value = 0);

    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::uint64_t start_ = 0;
    std::uint64_t argValue_ = 0;
    std::uint32_t name_ = 0;
    std::uint32_t argName_ = kNoMetric;
    bool active_ = false;
};

} // namespace bfly::telemetry

#endif // BUTTERFLY_TELEMETRY_TRACE_SPAN_HPP
