#include "telemetry/exporter.hpp"

#include <cstdio>
#include <fstream>
#include <string_view>
#include <vector>

namespace bfly::telemetry {

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
resetAll()
{
    registry().clear();
    tracer().clear();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
indentTo(std::ostream &os, unsigned depth)
{
    for (unsigned i = 0; i < depth; ++i)
        os << "  ";
}

void
writeHistogram(std::ostream &os, const HistogramSnapshot &h,
               unsigned depth)
{
    os << "{\n";
    indentTo(os, depth + 1);
    os << "\"count\": " << h.count << ",\n";
    indentTo(os, depth + 1);
    os << "\"sum\": " << h.sum << ",\n";
    indentTo(os, depth + 1);
    os << "\"mean\": " << h.mean() << ",\n";
    indentTo(os, depth + 1);
    os << "\"min\": " << h.min << ",\n";
    indentTo(os, depth + 1);
    os << "\"max\": " << h.max << ",\n";
    indentTo(os, depth + 1);
    os << "\"buckets\": [";
    bool first = true;
    for (unsigned b = 0; b < HistogramSnapshot::kBuckets; ++b) {
        if (h.buckets[b] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "{\"lo\": " << (std::uint64_t{1} << b)
           << ", \"count\": " << h.buckets[b] << "}";
    }
    os << "]\n";
    indentTo(os, depth);
    os << "}";
}

/**
 * Emit the metrics whose names share the dot-prefix [begin, end) as one
 * JSON object, recursing on the next path component. Metrics are sorted
 * by name, so every subtree is a contiguous range. A name that is both
 * a leaf and a prefix of deeper names keeps its leaf value under the
 * component key suffixed with "#value".
 */
void
writeSubtree(std::ostream &os, const std::vector<MetricSnapshot> &metrics,
             std::size_t begin, std::size_t end, std::size_t prefix_len,
             unsigned depth)
{
    os << "{";
    bool first = true;
    std::size_t i = begin;
    while (i < end) {
        const std::string &name = metrics[i].name;
        std::string_view rest =
            std::string_view(name).substr(prefix_len);
        const std::size_t dot = rest.find('.');
        const std::string_view comp =
            dot == std::string_view::npos ? rest : rest.substr(0, dot);

        // The subtree of metrics sharing this component.
        std::size_t j = i;
        bool has_leaf = false;
        bool has_children = false;
        while (j < end) {
            std::string_view jrest =
                std::string_view(metrics[j].name).substr(prefix_len);
            if (jrest.substr(0, comp.size()) != comp)
                break;
            if (jrest.size() == comp.size())
                has_leaf = true;
            else if (jrest[comp.size()] == '.')
                has_children = true;
            else
                break; // shared prefix but different component
            ++j;
        }

        if (!first)
            os << ",";
        first = false;

        if (has_leaf) {
            const MetricSnapshot &m = metrics[i];
            os << "\n";
            indentTo(os, depth + 1);
            os << "\"" << jsonEscape(comp)
               << (has_children ? "#value" : "") << "\": ";
            if (m.kind == MetricKind::Histogram)
                writeHistogram(os, m.histogram, depth + 1);
            else
                os << m.value;
            if (has_children) {
                os << ",";
            } else {
                i = j;
                continue;
            }
        }
        os << "\n";
        indentTo(os, depth + 1);
        os << "\"" << jsonEscape(comp) << "\": ";
        writeSubtree(os, metrics, i + (has_leaf ? 1 : 0), j,
                     prefix_len + comp.size() + 1, depth + 1);
        i = j;
    }
    os << "\n";
    indentTo(os, depth);
    os << "}";
}

} // namespace

void
writeMetricsJson(std::ostream &os, const RegistrySnapshot &snap)
{
    os << "{\n  \"schema\": \"bfly.telemetry.v1\",\n  \"metrics\": ";
    writeSubtree(os, snap.metrics, 0, snap.metrics.size(), 0, 1);
    os << "\n}\n";
}

void
writeMetricsJson(std::ostream &os)
{
    writeMetricsJson(os, registry().snapshot());
}

void
writeChromeTrace(std::ostream &os)
{
    const std::vector<ResolvedEvent> events = tracer().collect();
    os << "{\n\"displayTimeUnit\": \"ms\",\n";
    os << "\"otherData\": {\"droppedEvents\": " << tracer().dropped()
       << ", \"clocks\": \"pid 0: wall ns; pid 1: simulated cycles "
          "(1 cycle = 1us)\"},\n";
    os << "\"traceEvents\": [\n";
    // Process-name metadata so the two clock domains are labeled.
    os << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": 0, \"args\": {\"name\": \"wall-clock\"}},\n";
    os << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"simulated-pipeline\"}}";
    char buf[64];
    for (const ResolvedEvent &e : events) {
        os << ",\n {\"name\": \"" << jsonEscape(e.name) << "\", \"cat\": "
           << "\"bfly\", \"ph\": \"" << e.ph << "\", \"pid\": "
           << unsigned(e.pid) << ", \"tid\": " << e.tid << ", \"ts\": ";
        // Wall events are stored in ns; Chrome wants us. Simulated
        // events are stored in cycles and rendered one cycle per us.
        if (e.pid == SpanTracer::kWallPid) {
            std::snprintf(buf, sizeof buf, "%.3f", double(e.ts) / 1000.0);
            os << buf;
        } else {
            os << e.ts;
        }
        if (e.ph == 'X') {
            os << ", \"dur\": ";
            if (e.pid == SpanTracer::kWallPid) {
                std::snprintf(buf, sizeof buf, "%.3f",
                              double(e.dur) / 1000.0);
                os << buf;
            } else {
                os << e.dur;
            }
        } else if (e.ph == 'i') {
            os << ", \"s\": \"t\"";
        }
        if (e.hasArg) {
            os << ", \"args\": {\"" << jsonEscape(e.argName)
               << "\": " << e.argValue << "}";
        }
        os << "}";
    }
    os << "\n]\n}\n";
}

bool
dumpMetricsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeMetricsJson(out);
    return static_cast<bool>(out);
}

bool
dumpChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return static_cast<bool>(out);
}

} // namespace bfly::telemetry
