#include "telemetry/trace_span.hpp"

#include <algorithm>
#include <bit>

namespace bfly::telemetry {

namespace {

/** Logical tid of this thread; kUnassigned until first use/pin. */
constexpr std::uint16_t kUnassignedTid = 0xFFFF;
thread_local std::uint16_t t_logicalTid = kUnassignedTid;

/** Monotonic auto-assignment for threads that never pin a tid. */
std::atomic<std::uint32_t> g_nextAutoTid{0};

} // namespace

SpanTracer::SpanTracer(std::size_t ring_capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(ring_capacity, 16))),
      epoch_(std::chrono::steady_clock::now()), rings_(kMaxTids)
{
}

SpanTracer::~SpanTracer()
{
    for (auto &slot : rings_)
        delete slot.load();
}

std::uint32_t
SpanTracer::internName(std::string_view name)
{
    return names_.intern(name);
}

std::uint16_t
SpanTracer::currentTid()
{
    if (t_logicalTid == kUnassignedTid) {
        const std::uint32_t next =
            g_nextAutoTid.fetch_add(1, std::memory_order_relaxed);
        // Beyond kMaxTids auto-assigned threads we keep handing out ids;
        // ringFor() rejects them and counts the events as dropped rather
        // than sharing a ring (which would break single-writer).
        t_logicalTid = static_cast<std::uint16_t>(
            next < kMaxTids ? next : kMaxTids);
    }
    return t_logicalTid;
}

SpanTracer::Ring *
SpanTracer::ringFor(std::uint16_t tid)
{
    if (tid >= kMaxTids)
        return nullptr;
    Ring *r = rings_[tid].load(std::memory_order_acquire);
    if (r)
        return r;
    std::lock_guard<std::mutex> guard(mutex_);
    r = rings_[tid].load(std::memory_order_acquire);
    if (!r) {
        r = new Ring(capacity_);
        rings_[tid].store(r, std::memory_order_release);
    }
    return r;
}

void
SpanTracer::push(const TraceEvent &event)
{
    Ring *r = ringFor(event.tid);
    if (!r) {
        droppedTidless_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const std::uint64_t head = r->head.load(std::memory_order_relaxed);
    r->buf[head & (capacity_ - 1)] = event;
    r->head.store(head + 1, std::memory_order_release);
}

void
SpanTracer::complete(std::uint32_t name, std::uint64_t ts,
                     std::uint64_t dur, std::uint8_t pid,
                     std::uint16_t tid, std::uint32_t arg_name,
                     std::uint64_t arg_value)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.ts = ts;
    e.dur = dur;
    e.argValue = arg_value;
    e.name = name;
    e.argName = arg_name;
    e.tid = tid;
    e.pid = pid;
    e.ph = 'X';
    push(e);
}

void
SpanTracer::instant(std::uint32_t name, std::uint8_t pid,
                    std::uint16_t tid, std::uint32_t arg_name,
                    std::uint64_t arg_value)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.ts = nowNs();
    e.argValue = arg_value;
    e.name = name;
    e.argName = arg_name;
    e.tid = tid;
    e.pid = pid;
    e.ph = 'i';
    push(e);
}

std::vector<ResolvedEvent>
SpanTracer::collect() const
{
    std::vector<ResolvedEvent> out;
    for (std::uint16_t tid = 0; tid < kMaxTids; ++tid) {
        const Ring *r = rings_[tid].load(std::memory_order_acquire);
        if (!r)
            continue;
        const std::uint64_t head = r->head.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(head, capacity_);
        for (std::uint64_t k = head - n; k < head; ++k) {
            const TraceEvent &e = r->buf[k & (capacity_ - 1)];
            ResolvedEvent res;
            res.name = names_.lookup(e.name);
            res.hasArg = e.argName != kNoMetric;
            if (res.hasArg)
                res.argName = names_.lookup(e.argName);
            res.ts = e.ts;
            res.dur = e.dur;
            res.argValue = e.argValue;
            res.tid = e.tid;
            res.pid = e.pid;
            res.ph = e.ph;
            out.push_back(std::move(res));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ResolvedEvent &a, const ResolvedEvent &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         return a.ts < b.ts;
                     });
    return out;
}

std::uint64_t
SpanTracer::dropped() const
{
    std::uint64_t total = droppedTidless_.load(std::memory_order_relaxed);
    for (std::uint16_t tid = 0; tid < kMaxTids; ++tid) {
        const Ring *r = rings_[tid].load(std::memory_order_acquire);
        if (!r)
            continue;
        const std::uint64_t head = r->head.load(std::memory_order_acquire);
        if (head > capacity_)
            total += head - capacity_;
    }
    return total;
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &slot : rings_) {
        Ring *r = slot.load(std::memory_order_acquire);
        if (r)
            r->head.store(0, std::memory_order_release);
    }
    droppedTidless_.store(0, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
}

SpanTracer &
tracer()
{
    static SpanTracer *t = new SpanTracer;
    return *t;
}

// ---------------------------------------------------------------- ScopedTid

ScopedTid::ScopedTid(std::uint16_t tid) : saved_(t_logicalTid)
{
    t_logicalTid = tid;
}

ScopedTid::~ScopedTid()
{
    t_logicalTid = saved_;
}

// ---------------------------------------------------------------- TraceSpan

TraceSpan::TraceSpan(std::string_view name)
{
    if (!enabled())
        return;
    SpanTracer &t = tracer();
    name_ = t.internName(name);
    start_ = t.nowNs();
    active_ = true;
}

TraceSpan::TraceSpan(std::string_view name, std::string_view arg_name,
                     std::uint64_t arg_value)
{
    if (!enabled())
        return;
    SpanTracer &t = tracer();
    name_ = t.internName(name);
    argName_ = t.internName(arg_name);
    argValue_ = arg_value;
    start_ = t.nowNs();
    active_ = true;
}

TraceSpan::TraceSpan(std::uint32_t name_id, std::uint32_t arg_name_id,
                     std::uint64_t arg_value)
{
    if (!enabled())
        return;
    name_ = name_id;
    argName_ = arg_name_id;
    argValue_ = arg_value;
    start_ = tracer().nowNs();
    active_ = true;
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    SpanTracer &t = tracer();
    const std::uint64_t end = t.nowNs();
    t.complete(name_, start_, end > start_ ? end - start_ : 0,
               SpanTracer::kWallPid, SpanTracer::currentTid(), argName_,
               argValue_);
}

} // namespace bfly::telemetry
