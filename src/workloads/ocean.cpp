/**
 * @file
 * OCEAN-like workload (Splash-2 ocean simulation, contiguous partitions).
 *
 * Structure reproduced: a 2-D grid partitioned by rows across threads;
 * every sweep reads the boundary data of neighbouring threads and
 * allocates a per-iteration boundary buffer. Two realistic temporal
 * details drive OCEAN's epoch-size sensitivity (the paper's Figure 13
 * outlier):
 *
 *  - double buffering: a sweep reads the boundary buffers its neighbours
 *    published in the *previous* iteration (one iteration of distance);
 *  - deferred reclamation: buffers are freed a few iterations after
 *    their last reader, after which first-fit reuse hands the same
 *    addresses to *other* threads.
 *
 * With epochs much shorter than an iteration these distances order every
 * alloc/free against its cross-thread readers; once the epoch approaches
 * iteration scale they all become potentially concurrent and the
 * false-positive rate jumps by orders of magnitude.
 */

#include <deque>

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeOcean(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 48 * 1024 * 1024);

    const std::size_t row_bytes = 1024;
    const std::size_t rows_per_thread =
        std::max<std::size_t>(4, config.phaseEvents / 190);
    const std::size_t sweeps_per_iteration = 2;
    const std::size_t cols_sampled = 24; // stencil points per row sweep
    const std::size_t stride = 40;
    /** Iterations between a buffer's publication and its free. */
    const std::size_t reclaim_lag = 3;

    // Each thread owns a contiguous band of rows (allocated in row
    // chunks to respect the event size field). Rows are initialized by
    // their owner before the first sweep, as the real benchmark does.
    std::vector<std::vector<Addr>> band(T);
    b.beginSite("ocean/band-alloc");
    for (ThreadId t = 0; t < T; ++t) {
        for (std::size_t r = 0; r < rows_per_thread; ++r)
            band[t].push_back(b.malloc(t, row_bytes));
    }
    b.beginSite("ocean/band-init");
    for (ThreadId t = 0; t < T; ++t) {
        for (std::size_t r = 0; r < rows_per_thread; ++r)
            for (std::size_t c = 0; c < cols_sampled; ++c)
                b.write(t, band[t][r] + c * stride, 8);
    }
    b.barrier();
    b.beginSite("ocean/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();

    // boundary[t] = buffers published by t, newest last.
    std::vector<std::deque<Addr>> boundary(T);

    while (!b.budgetExhausted()) {
        // Publish this iteration's boundary buffer. The gather from the
        // own band is a distinct site from the scatter into the shared
        // buffer: the former touches only private rows, the latter is
        // what the neighbours will read.
        for (ThreadId t = 0; t < T; ++t) {
            b.beginSite("ocean/publish-alloc");
            const Addr buf = b.malloc(t, row_bytes);
            boundary[t].push_back(buf);
            for (std::size_t c = 0; c < cols_sampled; ++c) {
                b.beginSite("ocean/publish-gather");
                b.read(t, band[t][rows_per_thread - 1] + c * stride, 8);
                b.beginSite("ocean/publish-scatter");
                b.write(t, buf + c * stride, 8);
            }
        }
        b.barrier();

        // Stencil sweeps over the own band — the long phase.
        b.beginSite("ocean/stencil-sweep");
        for (ThreadId t = 0; t < T; ++t) {
            for (std::size_t s = 0; s < sweeps_per_iteration; ++s)
            for (std::size_t r = 0; r < rows_per_thread; ++r) {
                for (std::size_t c = 0; c < cols_sampled; ++c) {
                    const Addr p = band[t][r] + c * stride;
                    b.read(t, p, 8);
                    b.write(t, p, 8);
                    b.nop(t, 2);
                }
            }
        }

        // Boundary exchange: read the buffers the neighbours published
        // *last* iteration (double buffering).
        b.beginSite("ocean/boundary-exchange");
        for (ThreadId t = 0; t < T; ++t) {
            const ThreadId up = (t + T - 1) % T;
            const ThreadId down = (t + 1) % T;
            for (const ThreadId n : {up, down}) {
                if (boundary[n].size() >= 2) {
                    const Addr buf =
                        boundary[n][boundary[n].size() - 2];
                    for (std::size_t c = 0; c < cols_sampled; ++c)
                        b.read(t, buf + c * stride, 8);
                }
            }
        }
        b.barrier();

        // Deferred reclamation of buffers older than the lag.
        b.beginSite("ocean/reclaim");
        for (ThreadId t = 0; t < T; ++t) {
            while (boundary[t].size() > reclaim_lag) {
                b.free(t, boundary[t].front());
                boundary[t].pop_front();
            }
        }
        b.barrier();
    }

    b.beginSite("ocean/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops);
    b.barrier();
    b.beginSite("ocean/teardown");
    for (ThreadId t = 0; t < T; ++t) {
        for (Addr buf : boundary[t])
            b.free(t, buf);
        for (Addr row : band[t])
            b.free(t, row);
    }
    return b.finish("ocean");
}

} // namespace bfly
