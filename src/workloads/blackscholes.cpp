/**
 * @file
 * BLACKSCHOLES-like workload (Parsec 2.0 option pricing).
 *
 * Structure reproduced: the main thread publishes a small constants
 * table; every worker allocates and loads its private option and result
 * chunk; after a single barrier every thread streams through its chunk — several reads of option fields, repeated reads of a small shared
 * constants table, a long stretch of register-only compute (Nops), one
 * result write. No cross-thread sharing and almost no allocation activity:
 * the embarrassingly-parallel, compute-dense profile that keeps the
 * timesliced baseline competitive in the paper's Figure 11.
 */

#include "workloads/workload.hpp"

namespace bfly {

Workload
makeBlackscholes(const WorkloadConfig &config)
{
    const unsigned T = config.numThreads;
    ProgramBuilder b(config, 0x10000000, 48 * 1024 * 1024);

    const std::size_t option_bytes = 48; // S, K, r, v, T, type
    // Sized so the whole option set fits the lifeguard's idempotent
    // filter (cheap steady-state timesliced monitoring) while one sweep
    // exceeds an epoch (the butterfly's per-epoch filter flush voids
    // in-epoch reuse): the profile behind its Figure 11 behaviour.
    const std::size_t chunk_options = 64;
    const std::size_t compute_nops = 7; // compute-dense kernel

    // Main thread allocates the shared constants table; each worker
    // allocates its own option/result chunk and loads the option data
    // into it (chunked per thread so blocks stay within the allocator's
    // size cap, as real workers index one array).
    std::vector<Addr> options(T), results(T);
    b.beginSite("blackscholes/constants-init");
    const Addr constants = b.malloc(0, 256);
    for (std::size_t k = 0; k < 256; k += 8)
        b.write(0, constants + k, 8);
    b.beginSite("blackscholes/chunk-alloc");
    for (ThreadId t = 0; t < T; ++t) {
        options[t] = b.malloc(t, chunk_options * option_bytes);
        results[t] = b.malloc(t, chunk_options * 8);
    }
    b.beginSite("blackscholes/option-load");
    for (ThreadId t = 0; t < T; ++t) {
        for (std::size_t i = 0; i < chunk_options; ++i) {
            const Addr opt = options[t] + i * option_bytes;
            b.write(t, opt, 8);
            b.write(t, opt + 8, 8);
            b.write(t, opt + 16, 8);
        }
    }
    b.barrier();
    b.beginSite("blackscholes/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops); // sequential-init spacer
    b.barrier();

    std::size_t sweep = 0;
    while (!b.budgetExhausted()) {
        for (ThreadId t = 0; t < T; ++t) {
            for (std::size_t i = 0; i < chunk_options; ++i) {
                const Addr opt = options[t] + i * option_bytes;
                b.beginSite("blackscholes/option-read");
                b.read(t, opt, 8);      // spot
                b.read(t, opt + 8, 8);  // strike
                b.read(t, opt + 16, 8); // rate/volatility
                b.beginSite("blackscholes/constants-read");
                b.read(t, constants + 8 * ((i + sweep) % 32), 8);
                b.beginSite("blackscholes/compute");
                b.nop(t, compute_nops); // CNDF evaluation
                b.beginSite("blackscholes/result-write");
                b.write(t, results[t] + i * 8, 8);
            }
        }
        ++sweep;
    }

    b.beginSite("blackscholes/idle");
    for (ThreadId t = 0; t < T; ++t)
        b.nop(t, config.warmupNops); // cooldown before teardown
    b.barrier(); // quiesce workers before teardown
    b.beginSite("blackscholes/teardown");
    for (ThreadId t = 0; t < T; ++t) {
        b.free(t, options[t]);
        b.free(t, results[t]);
    }
    b.free(0, constants);
    return b.finish("blackscholes");
}

} // namespace bfly
